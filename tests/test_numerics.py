"""Tests of the numerics-health watchdog (:mod:`repro.obs.numerics`).

Covers each detector (non-finite guard, underflow canary, residual
blowup/stall, iteration pressure, condition proxy), the telemetry signals
they emit, the instrumentation wired through the crossbar solver, and the
disabled-overhead contract: with the watchdog *and* audit off, the guard
cost per solve stays under 2% of a 64x64 operating-point solve.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.circuit import BiasPattern, CrossbarSolver, build_crossbar_netlist
from repro.config import CrossbarGeometry, WireParameters
from repro.devices import DeviceStateArrays, JartVcmModel
from repro.obs import (
    NULL_WATCHDOG,
    NumericsWatchdog,
    disable_numerics,
    disable_telemetry,
    enable_numerics,
    get_audit,
    get_watchdog,
    numerics_capture,
    telemetry_capture,
    watchdog_enabled,
)


@pytest.fixture(autouse=True)
def _watchdog_off_after_each_test():
    yield
    disable_numerics()
    disable_telemetry()


def _solver_setup(rows=3):
    geometry = CrossbarGeometry(rows=rows, columns=rows)
    netlist = build_crossbar_netlist(geometry, WireParameters())
    states = DeviceStateArrays(geometry.rows, geometry.columns)
    states.x[...] = 0.5
    states.temperature_k[...] = 300.0
    bias = BiasPattern(
        row_voltages_v={i: (0.6 if i == 1 else 0.0) for i in range(geometry.rows)},
        column_voltages_v={j: 0.0 for j in range(geometry.columns)},
        label="numerics",
    )
    return CrossbarSolver(netlist, JartVcmModel()), bias, states


class TestDetectors:
    def test_disabled_by_default(self):
        assert not watchdog_enabled()
        assert get_watchdog() is NULL_WATCHDOG
        assert NULL_WATCHDOG.check_array("s", "x", [float("nan")]) is True

    def test_capture_scope_restores(self):
        with numerics_capture() as watchdog:
            assert get_watchdog() is watchdog and watchdog.enabled
        assert get_watchdog() is NULL_WATCHDOG

    def test_nonfinite_array_counts_and_events(self):
        watchdog = NumericsWatchdog()
        with telemetry_capture() as tel:
            assert watchdog.check_array("solver.solve", "v", [1.0, 2.0]) is True
            assert watchdog.check_array("solver.solve", "v", [1.0, np.nan, np.inf]) is False
        snapshot = tel.snapshot()
        assert snapshot["counters"]["numerics.checks"] == 2.0
        assert snapshot["counters"]["numerics.nonfinite"] == 1.0
        event = tel.events["numerics.nonfinite"][-1]
        assert event["stage"] == "solver.solve" and event["array"] == "v"
        assert event["nan"] == 1 and event["inf"] == 1 and event["size"] == 3

    def test_integer_arrays_are_skipped(self):
        watchdog = NumericsWatchdog()
        with telemetry_capture() as tel:
            assert watchdog.check_array("s", "ints", np.arange(4)) is True
        assert "numerics.checks" not in tel.snapshot()["counters"]

    def test_subnormal_underflow_is_counted_not_failed(self):
        watchdog = NumericsWatchdog()
        tiny = np.finfo(np.float64).tiny
        with telemetry_capture() as tel:
            assert watchdog.check_array("s", "x", [1.0, tiny / 4, tiny / 2]) is True
        assert tel.snapshot()["counters"]["numerics.underflow"] == 2.0

    def test_residual_blowup_detected_with_step(self):
        watchdog = NumericsWatchdog()
        with telemetry_capture() as tel:
            assert watchdog.check_residuals("solver.solve", [1e-3, 1e-6, 1e-2]) is False
        event = tel.events["numerics.residual_anomaly"][-1]
        assert event["kind"] == "blowup" and event["step"] == 2
        assert tel.snapshot()["counters"]["numerics.residual_anomalies"] == 1.0

    def test_residual_stall_detected(self):
        watchdog = NumericsWatchdog()
        with telemetry_capture() as tel:
            assert watchdog.check_residuals("s", [1e-3, 5e-4, 1e-3]) is False
        assert tel.events["numerics.residual_anomaly"][-1]["kind"] == "stall"

    def test_contracting_residuals_pass(self):
        watchdog = NumericsWatchdog()
        with telemetry_capture() as tel:
            assert watchdog.check_residuals("s", [1e-3, 1e-5, 1e-9]) is True
            assert watchdog.check_residuals("s", [1e-3]) is True
        assert "numerics.residual_anomalies" not in tel.snapshot()["counters"]

    def test_iteration_pressure(self):
        watchdog = NumericsWatchdog()
        with telemetry_capture() as tel:
            assert watchdog.check_iterations("s", 10, 100) is True
            assert watchdog.check_iterations("s", 95, 100) is False
            assert watchdog.check_iterations("s", 95, 0) is True
        assert tel.snapshot()["counters"]["numerics.iteration_pressure"] == 1.0
        event = tel.events["numerics.iteration_pressure"][-1]
        assert event["iterations"] == 95 and event["limit"] == 100

    def test_condition_proxy_gauge(self):
        watchdog = NumericsWatchdog()
        with telemetry_capture() as tel:
            proxy = watchdog.gauge_condition("solver.jacobian", [1e-3, 0.0, 1e3])
        assert proxy == pytest.approx(1e6)
        assert tel.snapshot()["gauges"]["numerics.condition_proxy.solver.jacobian"][
            "value"
        ] == pytest.approx(1e6)
        assert watchdog.gauge_condition("s", [0.0, 0.0]) is None


class TestSolverIntegration:
    def test_healthy_solve_emits_checks_and_condition_gauge(self):
        solver, bias, states = _solver_setup()
        with telemetry_capture() as tel, numerics_capture():
            solver.solve(bias, states)
        snapshot = tel.snapshot()
        assert snapshot["counters"]["numerics.checks"] >= 2.0
        assert "numerics.nonfinite" not in snapshot["counters"]
        assert any(
            name.startswith("numerics.condition_proxy.solver.jacobian")
            for name in snapshot["gauges"]
        )

    def test_watchdog_off_emits_nothing(self):
        solver, bias, states = _solver_setup()
        with telemetry_capture() as tel:
            solver.solve(bias, states)
        assert not any(
            name.startswith("numerics.") for name in tel.snapshot()["counters"]
        )


class TestDisabledOverhead:
    def test_disabled_watchdog_and_audit_cost_under_two_percent_of_a_solve(self):
        """The opt-out contract for the PR's new guards, mirroring the
        telemetry bound: watchdog + audit off must cost <2% of a 64x64
        solve at a generous 100-guards-per-solve budget."""
        disable_numerics()
        solver, bias, states = _solver_setup(rows=64)
        solver.solve(bias, states)  # warm-up: structure + first factorisation

        loops = 3
        start = time.perf_counter()
        for _ in range(loops):
            solver.solve(bias, states)
        solve_s = (time.perf_counter() - start) / loops

        guards = 10_000
        start = time.perf_counter()
        for _ in range(guards):
            watchdog = get_watchdog()
            if watchdog.enabled:  # pragma: no cover - watchdog is off here
                watchdog.check_iterations("never", 0, 1)
            audit = get_audit()
            if audit.enabled:  # pragma: no cover - audit is off here
                audit.record("never")
        guard_s = (time.perf_counter() - start) / guards

        overhead = (100 * guard_s) / solve_s
        assert overhead < 0.02, (
            f"disabled watchdog+audit guard overhead {overhead:.2%} of a "
            f"{solve_s * 1e3:.1f}ms solve exceeds the 2% budget"
        )

"""Tests for the baseline device models (linear ion drift, Yakopcic, windows)."""

from __future__ import annotations

import pytest

from repro.devices import (
    DeviceState,
    LinearIonDriftModel,
    LinearIonDriftParameters,
    YakopcicModel,
    YakopcicParameters,
    bit_from_state,
    biolek_window,
    get_window,
    joglekar_window,
    prodromakis_window,
    rectangular_window,
)
from repro.errors import DeviceModelError


class TestWindows:
    def test_joglekar_symmetric_and_bounded(self):
        for x in (0.0, 0.25, 0.5, 0.75, 1.0):
            value = joglekar_window(x, 1e-6)
            assert 0.0 <= value <= 1.0
            assert value == pytest.approx(joglekar_window(1.0 - x, 1e-6))

    def test_joglekar_vanishes_at_boundaries(self):
        assert joglekar_window(0.0, 1e-6) == pytest.approx(0.0)
        assert joglekar_window(1.0, 1e-6) == pytest.approx(0.0)

    def test_biolek_depends_on_current_direction(self):
        at_top_forward = biolek_window(1.0, current_a=1e-6)
        at_top_backward = biolek_window(1.0, current_a=-1e-6)
        assert at_top_forward == pytest.approx(0.0)
        assert at_top_backward == pytest.approx(1.0)

    def test_rectangular_blocks_only_at_boundaries(self):
        assert rectangular_window(0.5, 1e-6) == 1.0
        assert rectangular_window(1.0, 1e-6) == 0.0
        assert rectangular_window(0.0, -1e-6) == 0.0
        assert rectangular_window(0.0, 1e-6) == 1.0

    def test_prodromakis_bounded(self):
        assert 0.0 <= prodromakis_window(0.5, 1e-6) <= 1.0

    def test_registry_lookup(self):
        assert get_window("biolek") is biolek_window
        with pytest.raises(DeviceModelError):
            get_window("nonexistent")

    def test_invalid_order_rejected(self):
        with pytest.raises(DeviceModelError):
            joglekar_window(0.5, 1e-6, p=0)


class TestLinearIonDrift:
    def test_memristance_interpolates(self, drift_model):
        p = drift_model.parameters
        assert drift_model.memristance(DeviceState(0.0)) == pytest.approx(p.r_off_ohm)
        assert drift_model.memristance(DeviceState(1.0)) == pytest.approx(p.r_on_ohm)
        middle = drift_model.memristance(DeviceState(0.5))
        assert p.r_on_ohm < middle < p.r_off_ohm

    def test_current_is_ohmic(self, drift_model):
        state = DeviceState(0.5)
        assert drift_model.current(0.4, state) == pytest.approx(
            2 * drift_model.current(0.2, state), rel=1e-9
        )

    def test_state_moves_with_positive_bias(self, drift_model):
        assert drift_model.state_derivative(1.0, DeviceState(0.5)) > 0.0

    def test_state_motion_is_temperature_independent(self, drift_model):
        cold = drift_model.state_derivative(0.5, DeviceState(0.3, filament_temperature_k=300.0))
        hot = drift_model.state_derivative(0.5, DeviceState(0.3, filament_temperature_k=500.0))
        assert cold == pytest.approx(hot)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DeviceModelError):
            LinearIonDriftParameters(r_on_ohm=1e6, r_off_ohm=1e3)

    def test_window_shapes_boundary(self):
        model = LinearIonDriftModel(LinearIonDriftParameters(window="joglekar"))
        assert model.state_derivative(1.0, DeviceState(1.0)) == pytest.approx(0.0, abs=1e-12)


class TestYakopcic:
    def test_conduction_polarity_asymmetry(self):
        model = YakopcicModel()
        state = DeviceState(0.5)
        assert abs(model.current(0.5, state)) > abs(model.current(-0.5, state))

    def test_no_motion_below_threshold(self):
        model = YakopcicModel()
        assert model.state_derivative(0.5, DeviceState(0.5)) == 0.0
        assert model.state_derivative(-0.5, DeviceState(0.5)) == 0.0

    def test_motion_above_threshold(self):
        model = YakopcicModel()
        assert model.state_derivative(1.0, DeviceState(0.5)) > 0.0
        assert model.state_derivative(-1.0, DeviceState(0.5)) < 0.0

    def test_boundary_damping(self):
        model = YakopcicModel()
        inside = model.state_derivative(1.0, DeviceState(0.5))
        near_top = model.state_derivative(1.0, DeviceState(0.99))
        assert near_top < inside

    def test_hrs_state_keeps_finite_conductance(self):
        model = YakopcicModel()
        state = model.hrs_state()
        assert state.x > 0.0
        assert model.current(0.2, state) > 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DeviceModelError):
            YakopcicParameters(x_n=0.9, x_p=0.1)


class TestDeviceBaseHelpers:
    def test_bit_round_trip(self, jart_model):
        assert bit_from_state(jart_model.state_from_bit(1)) == 1
        assert bit_from_state(jart_model.state_from_bit(0)) == 0

    def test_bit_encoding_can_be_inverted(self, jart_model):
        state = jart_model.state_from_bit(1, lrs_is_one=False)
        assert state.x == pytest.approx(0.0)
        assert bit_from_state(state, lrs_is_one=False) == 1

    def test_invalid_bit_rejected(self, jart_model):
        with pytest.raises(DeviceModelError):
            jart_model.state_from_bit(2)

    def test_clamp_state(self, jart_model):
        assert jart_model.clamp_state(-0.5) == 0.0
        assert jart_model.clamp_state(1.5) == 1.0
        assert jart_model.clamp_state(0.25) == 0.25

    def test_conductance_positive(self, jart_model):
        state = DeviceState(0.5, 300.0)
        assert jart_model.conductance(0.3, state) > 0.0

    def test_resistance_of_near_open_device(self, drift_model):
        # Extremely small read voltage should still return a finite resistance.
        assert drift_model.resistance(DeviceState(0.0), read_voltage_v=0.2) > 0.0

    def test_state_copy_is_independent(self):
        state = DeviceState(0.3, 350.0)
        clone = state.copy()
        clone.x = 0.9
        assert state.x == pytest.approx(0.3)

"""Tests for the concurrent-safe shared result store (repro.store).

Covers the sqlite index, the advisory lease protocol, checksum detection
and quarantine, verify/gc/migrate, the ResultCache facade (auto-detection
and graceful degradation), runner leasing, and — the acceptance bar —
multi-process contention: an N-writer stress test with no lost updates and
two concurrent ``campaign run`` processes partitioning one sweep with zero
duplicated computations.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import stat
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, ResultCache
from repro.campaign.runner import JobRecord
from repro.cli import main
from repro.errors import CampaignError, StoreError
from repro.store import (
    DEFAULT_LEASE_TTL_S,
    INDEX_FILENAME,
    LeaseManager,
    ResultStore,
    SqliteIndex,
    is_store_dir,
    migrate_legacy_cache,
)

KEY_A = "aa11"
KEY_B = "bb22"
PAYLOAD = {"status": "ok", "result": {"flipped": True, "pulses": 7}}


def small_spec(n: int = 3, name: str = "store-spec") -> CampaignSpec:
    """A tiny n-point grid on a fast 3x3 crossbar."""
    return CampaignSpec(
        name=name,
        mode="grid",
        simulation={"geometry": {"rows": 3, "columns": 3}},
        attack={"aggressors": [[1, 1]], "victim": [1, 2]},
        axes=[
            {
                "path": "attack.pulse.length_s",
                "values": [float(10e-9 * (i + 1)) for i in range(n)],
            }
        ],
    )


def fake_job(payload):
    """Instant stand-in for the real compute: deterministic per-point result."""
    index, key, _job, overrides = payload
    return JobRecord(
        index=index,
        key=key,
        status="ok",
        overrides=overrides,
        result={"index": index},
        duration_s=0.0,
    )


def dead_pid() -> int:
    """A pid that provably belonged to an exited process."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


# ----------------------------------------------------------------------
# sqlite index
# ----------------------------------------------------------------------


class TestSqliteIndex:
    def test_upsert_lookup_remove_roundtrip(self, tmp_path):
        index = SqliteIndex(tmp_path / INDEX_FILENAME)
        index.upsert(KEY_A, sha256="0" * 64, size=12, spec_name="s")
        row = index.lookup(KEY_A)
        assert row["sha256"] == "0" * 64 and row["size"] == 12
        assert index.lookup(KEY_B) is None
        assert index.remove(KEY_A) is True
        assert index.remove(KEY_A) is False
        index.close()

    def test_index_persists_across_instances(self, tmp_path):
        path = tmp_path / INDEX_FILENAME
        first = SqliteIndex(path)
        first.upsert(KEY_A, sha256="1" * 64, size=3)
        first.close()
        second = SqliteIndex(path)
        assert second.lookup(KEY_A)["sha256"] == "1" * 64
        assert second.keys() == [KEY_A]
        second.close()

    def test_upsert_replaces_in_place(self, tmp_path):
        index = SqliteIndex(tmp_path / INDEX_FILENAME)
        index.upsert(KEY_A, sha256="2" * 64, size=1)
        index.upsert(KEY_A, sha256="3" * 64, size=2)
        assert index.count() == 1
        assert index.lookup(KEY_A)["sha256"] == "3" * 64
        index.close()


# ----------------------------------------------------------------------
# leases
# ----------------------------------------------------------------------


class TestLeaseManager:
    def test_acquire_is_exclusive_across_managers(self, tmp_path):
        ours = LeaseManager(tmp_path)
        theirs = LeaseManager(tmp_path)
        assert ours.acquire(KEY_A) is True
        assert theirs.acquire(KEY_A) is False
        assert ours.holds(KEY_A) and not theirs.holds(KEY_A)

    def test_release_lets_another_process_claim(self, tmp_path):
        ours = LeaseManager(tmp_path)
        theirs = LeaseManager(tmp_path)
        ours.acquire(KEY_A)
        assert ours.release(KEY_A) is True
        assert theirs.acquire(KEY_A) is True

    def test_live_lease_cannot_be_stolen(self, tmp_path):
        ours = LeaseManager(tmp_path)
        thief = LeaseManager(tmp_path)
        ours.acquire(KEY_A)
        assert thief.steal(KEY_A) is False
        assert ours.holds(KEY_A)

    def test_past_deadline_lease_is_stolen(self, tmp_path):
        expiring = LeaseManager(tmp_path, ttl_s=0.05)
        thief = LeaseManager(tmp_path)
        expiring.acquire(KEY_A)
        time.sleep(0.1)
        assert thief.steal(KEY_A) is True
        assert thief.holds(KEY_A)

    def test_dead_pid_lease_is_stolen_before_deadline(self, tmp_path):
        owner = LeaseManager(tmp_path, ttl_s=3600.0)
        owner.acquire(KEY_A)
        # Rewrite the lease as if a since-dead process held it.
        state = owner.read(KEY_A)
        payload = state.to_dict()
        payload["pid"] = dead_pid()
        owner.path_for(KEY_A).write_text(json.dumps(payload), encoding="utf-8")
        thief = LeaseManager(tmp_path)
        assert thief.steal(KEY_A) is True

    def test_refresh_extends_the_deadline(self, tmp_path):
        ours = LeaseManager(tmp_path, ttl_s=10.0)
        ours.acquire(KEY_A)
        before = ours.read(KEY_A).deadline_s
        time.sleep(0.02)
        ours.refresh(KEY_A)
        assert ours.read(KEY_A).deadline_s > before

    def test_refresh_of_unheld_lease_raises(self, tmp_path):
        ours = LeaseManager(tmp_path)
        with pytest.raises(StoreError):
            ours.refresh(KEY_A)

    def test_refresh_due_only_touches_aged_leases(self, tmp_path):
        ours = LeaseManager(tmp_path, ttl_s=1000.0)
        ours.acquire(KEY_A)
        assert ours.refresh_due() == 0  # brand new: nowhere near half-life
        aging = LeaseManager(tmp_path, ttl_s=0.1)
        aging.acquire(KEY_B)
        time.sleep(0.06)
        assert aging.refresh_due() == 1

    def test_release_all_cleans_up_everything_held(self, tmp_path):
        ours = LeaseManager(tmp_path)
        ours.acquire(KEY_A)
        ours.acquire(KEY_B)
        assert ours.release_all() == 2
        assert ours.held == []
        assert ours.active() == []

    def test_sweep_removes_stale_lease_files(self, tmp_path):
        expiring = LeaseManager(tmp_path, ttl_s=0.05)
        expiring.acquire(KEY_A)
        fresh = LeaseManager(tmp_path, ttl_s=3600.0)
        fresh.acquire(KEY_B)
        time.sleep(0.1)
        assert fresh.sweep() == 1
        assert [state.key for state in fresh.active()] == [KEY_B]


# ----------------------------------------------------------------------
# result store
# ----------------------------------------------------------------------


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, PAYLOAD)
        assert store.get(KEY_A)["result"]["pulses"] == 7
        assert store.get(KEY_B) is None
        assert store.contains(KEY_A) and KEY_A in store.keys()

    def test_identical_payloads_share_one_content_addressed_file(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, PAYLOAD)
        store.put(KEY_B, PAYLOAD)
        assert len(store) == 2
        assert len(list(store.payloads_dir.glob("*/*.json"))) == 1
        # Deleting one key keeps the payload the other still references.
        store.delete(KEY_A)
        assert store.get(KEY_B)["result"]["pulses"] == 7

    def test_torn_payload_is_detected_and_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, PAYLOAD)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # torn, possibly still parseable
        assert store.get(KEY_A) is None
        assert store.get(KEY_A) is None  # idempotent after quarantine
        assert store.index.lookup(KEY_A) is None
        assert list(store.quarantine_dir.glob(f"{KEY_A}.corrupt"))

    def test_verify_reports_checksum_damage_and_repair_quarantines(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, PAYLOAD)
        path = store.put(KEY_B, {"status": "ok", "result": {"x": 2}})
        path.write_bytes(b'{"status": "ok"')
        report = store.verify()
        assert report["entries"] == 2 and report["ok"] == 1
        assert report["checksum_failures"] == 1 and not report["clean"]
        assert report["bad_keys"] == [KEY_B]
        # Without repair the damaged row is still indexed.
        assert store.index.lookup(KEY_B) is not None
        repaired = store.verify(repair=True)
        assert repaired["checksum_failures"] == 1
        after = store.verify()
        assert after["clean"] and after["entries"] == 1 and after["quarantined"] == 1

    def test_verify_reports_missing_payloads(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, PAYLOAD)
        path.unlink()
        report = store.verify()
        assert report["missing_payloads"] == 1 and not report["clean"]

    def test_gc_sweeps_orphans_tmp_files_and_stale_leases(self, tmp_path):
        store = ResultStore(tmp_path, lease_ttl_s=0.05)
        store.put(KEY_A, PAYLOAD)
        orphan_dir = store.payloads_dir / "ff"
        orphan_dir.mkdir(parents=True, exist_ok=True)
        (orphan_dir / ("f" * 64 + ".json")).write_text("{}", encoding="utf-8")
        (orphan_dir / ("e" * 64 + ".tmp")).write_text("", encoding="utf-8")
        store.leases.acquire(KEY_B)
        time.sleep(0.1)  # lease lapses
        swept = store.gc()
        assert swept == {"orphan_payloads": 1, "tmp_files": 1, "stale_leases": 1}
        assert store.get(KEY_A)["result"]["pulses"] == 7  # live data untouched

    def test_clear_empties_entries_and_quarantine(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, PAYLOAD)
        path.write_bytes(b"xx")
        store.get(KEY_A)  # quarantines
        store.put(KEY_B, PAYLOAD)
        assert store.clear() == 1
        assert len(store) == 0
        assert list(store.quarantine_dir.glob("*")) == []

    def test_stats_shape(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, PAYLOAD)
        stats = store.stats()
        assert stats["backend"] == "store" and stats["entries"] == 1
        assert stats["bytes"] > 0 and stats["corrupt"] == 0


# ----------------------------------------------------------------------
# ResultCache facade
# ----------------------------------------------------------------------


class TestResultCacheFacade:
    def test_fresh_directory_defaults_to_legacy(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.backend == "legacy"
        assert cache.lease_manager() is None

    def test_store_backend_is_auto_detected_afterwards(self, tmp_path):
        ResultCache(tmp_path, backend="store").put(KEY_A, PAYLOAD)
        assert is_store_dir(tmp_path)
        cache = ResultCache(tmp_path)  # no flag needed the second time
        assert cache.backend == "store"
        assert cache.get(KEY_A)["result"]["pulses"] == 7
        assert cache.lease_manager() is not None

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(CampaignError):
            ResultCache(tmp_path, backend="parquet")

    def test_unusable_store_degrades_to_legacy_with_warning(self, tmp_path, caplog):
        (tmp_path / INDEX_FILENAME).mkdir()  # sqlite cannot open a directory
        with caplog.at_level("WARNING", logger="repro.campaign.cache"):
            cache = ResultCache(tmp_path, backend="store")
        assert cache.backend == "legacy"
        assert any("degrading" in message for message in caplog.messages)
        # The legacy path still works end to end.
        cache.put(KEY_A, PAYLOAD)
        assert cache.get(KEY_A)["result"]["pulses"] == 7

    def test_store_keys_are_validated_like_legacy_keys(self, tmp_path):
        cache = ResultCache(tmp_path, backend="store")
        with pytest.raises(CampaignError):
            cache.get("../escape")
        with pytest.raises(CampaignError):
            cache.put("not-hex!", PAYLOAD)

    def test_legacy_stats_tolerates_concurrent_deletion(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, PAYLOAD)
        cache.put(KEY_B, PAYLOAD)
        original = Path.stat
        victim = cache.path_for(KEY_A)

        def racing_stat(self, *args, **kwargs):
            if self == victim:
                # Another process deleted the entry between glob and stat.
                raise FileNotFoundError(str(self))
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Path, "stat", racing_stat)
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["bytes"] > 0

    def test_legacy_clear_removes_quarantined_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_A, PAYLOAD)
        cache.path_for(KEY_B).write_text("not json", encoding="utf-8")
        assert cache.get(KEY_B) is None  # quarantined to .corrupt
        assert cache.clear() == 1
        assert list(tmp_path.glob("*.corrupt")) == []
        assert list(tmp_path.glob("*.json")) == []

    def test_put_honours_process_umask(self, tmp_path):
        previous = os.umask(0o022)
        try:
            for backend in ("legacy", "store"):
                cache = ResultCache(tmp_path / backend, backend=backend)
                path = cache.put(KEY_A, PAYLOAD)
                mode = stat.S_IMODE(path.stat().st_mode)
                # mkstemp's private 0600 must not leak through: group/other
                # keep read access so a shared cache stays shared.
                assert mode == 0o644, f"{backend}: {oct(mode)}"
        finally:
            os.umask(previous)


# ----------------------------------------------------------------------
# migration
# ----------------------------------------------------------------------


class TestMigrateLegacyCache:
    def test_migrates_entries_and_quarantine_in_place(self, tmp_path):
        legacy = ResultCache(tmp_path)
        legacy.put(KEY_A, PAYLOAD)
        legacy.put(KEY_B, {"status": "ok", "result": {"x": 1}})
        (tmp_path / "cc33.json").write_text("torn{", encoding="utf-8")
        (tmp_path / "dd44.corrupt").write_text("old evidence", encoding="utf-8")
        report = migrate_legacy_cache(tmp_path)
        assert report["migrated"] == 2 and report["quarantined"] == 2
        assert report["entries"] == 2
        migrated = ResultCache(tmp_path)
        assert migrated.backend == "store"
        assert migrated.get(KEY_A)["result"]["pulses"] == 7
        assert list(tmp_path.glob("*.json")) == []  # legacy files consumed

    def test_migration_is_idempotent(self, tmp_path):
        ResultCache(tmp_path).put(KEY_A, PAYLOAD)
        first = migrate_legacy_cache(tmp_path)
        second = migrate_legacy_cache(tmp_path)
        assert first["migrated"] == 1 and second["migrated"] == 0
        assert second["entries"] == 1


# ----------------------------------------------------------------------
# runner leasing
# ----------------------------------------------------------------------


class TestRunnerLeasing:
    def test_run_releases_every_lease(self, tmp_path):
        cache = ResultCache(tmp_path, backend="store")
        runner = CampaignRunner(small_spec(), cache=cache, job_fn=fake_job)
        report = runner.run()
        assert report.counts()["ok"] == 3
        assert cache.store.leases.active() == []
        assert runner.resilience["lease_steals"] == 0
        assert runner.resilience["claim_conflicts"] == 0

    def test_stale_lease_from_dead_process_is_stolen(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path, backend="store")
        point = next(iter(spec.iter_points()))
        # Manufacture the debris of a SIGKILLed campaign: a lease whose
        # owner pid no longer exists.
        other = LeaseManager(cache.store.leases.root, ttl_s=3600.0)
        other.acquire(point.key)
        state = other.read(point.key)
        payload = state.to_dict()
        payload["pid"] = dead_pid()
        other.path_for(point.key).write_text(json.dumps(payload), encoding="utf-8")

        runner = CampaignRunner(spec, cache=cache, job_fn=fake_job)
        report = runner.run()
        assert report.counts()["ok"] == 3 and report.cached_count == 0
        assert runner.resilience["lease_steals"] == 1
        assert cache.store.leases.active() == []

    def test_deferred_point_uses_result_published_by_holder(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path, backend="store")
        points = list(spec.iter_points())
        held = points[1]
        holder = LeaseManager(cache.store.leases.root)  # alive: this process
        assert holder.acquire(held.key)
        computed: list = []

        def counting_job(payload):
            computed.append(payload[0])
            return fake_job(payload)

        def publish_and_release():
            # A stand-in for the other process: its own store instance (sqlite
            # connections are per process/thread), publishing then releasing.
            time.sleep(0.2)
            other = ResultStore(tmp_path)
            other.put(held.key, {"status": "ok", "result": {"index": held.index}})
            other.close()
            holder.release(held.key)

        publisher = threading.Thread(target=publish_and_release)
        publisher.start()
        try:
            runner = CampaignRunner(spec, cache=cache, job_fn=counting_job)
            report = runner.run()
        finally:
            publisher.join()
        assert report.counts()["ok"] == 3
        assert held.index not in computed  # never duplicated the held point
        assert runner.resilience["claim_conflicts"] == 1
        by_index = {record.index: record for record in report.records}
        assert by_index[held.index].cached is True

    def test_deferred_point_is_reclaimed_when_holder_gives_up(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path, backend="store")
        held = list(spec.iter_points())[1]
        holder = LeaseManager(cache.store.leases.root)
        assert holder.acquire(held.key)

        def release_without_publishing():
            time.sleep(0.2)
            holder.release(held.key)  # the holder failed; nothing published

        quitter = threading.Thread(target=release_without_publishing)
        quitter.start()
        try:
            runner = CampaignRunner(spec, cache=cache, job_fn=fake_job)
            report = runner.run()
        finally:
            quitter.join()
        assert report.counts()["ok"] == 3 and report.cached_count == 0
        assert runner.resilience["claim_conflicts"] == 1
        assert runner.resilience["lease_steals"] == 0


# ----------------------------------------------------------------------
# store CLI
# ----------------------------------------------------------------------


class TestStoreCli:
    def test_verify_clean_then_damaged_then_repaired(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        store = ResultStore(store_dir)
        path = store.put(KEY_A, PAYLOAD)
        store.close()
        assert main(["store", "verify", str(store_dir)]) == 0
        assert "CLEAN" in capsys.readouterr().out
        path.write_bytes(b"torn")
        assert main(["store", "verify", str(store_dir), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["checksum_failures"] == 1
        assert main(["store", "verify", str(store_dir), "--repair"]) == 1
        capsys.readouterr()
        assert main(["store", "verify", str(store_dir)]) == 0

    def test_verify_rejects_non_store_directory(self, tmp_path, capsys):
        ResultCache(tmp_path).put(KEY_A, PAYLOAD)  # legacy, no index
        assert main(["store", "verify", str(tmp_path)]) == 1
        assert "repro store migrate" in capsys.readouterr().err

    def test_gc_reports_sweep_counts(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        ResultStore(store_dir).close()
        assert main(["store", "gc", str(store_dir), "--json"]) == 0
        swept = json.loads(capsys.readouterr().out)
        assert swept["orphan_payloads"] == 0 and swept["stale_leases"] == 0

    def test_migrate_then_campaign_run_reuses_entries(self, tmp_path, capsys):
        spec = small_spec(name="migrate-spec")
        spec_path = tmp_path / "spec.json"
        spec.to_json(spec_path)
        cache_dir = tmp_path / "cache"
        # Seed a legacy cache through a real (fake-job) run.
        runner = CampaignRunner(spec, cache=ResultCache(cache_dir), job_fn=fake_job)
        runner.run()
        assert main(["store", "migrate", str(cache_dir)]) == 0
        capsys.readouterr()
        # The migrated store answers the same spec without recomputing.
        rerun = CampaignRunner(spec, cache=ResultCache(cache_dir), job_fn=fake_job)
        report = rerun.run()
        assert report.cached_count == 3 and rerun.cache.backend == "store"


# ----------------------------------------------------------------------
# multi-process contention
# ----------------------------------------------------------------------


def _stress_writer(root: str, writer_id: int, keys: list) -> None:
    """One writer process: publish every key, then exit cleanly."""
    store = ResultStore(root)
    for position, key in enumerate(keys):
        store.put(key, {"status": "ok", "result": {"writer": writer_id, "n": position}})
    store.close()


class TestMultiProcessContention:
    def test_n_writers_no_lost_updates(self, tmp_path):
        """Acceptance: concurrent writers leave index and payloads consistent."""
        ResultStore(tmp_path).close()  # initialise WAL schema once, uncontended
        writers = 4
        private = 12  # keys unique to each writer
        shared = [f"{i:04x}" for i in range(8)]  # keys every writer fights over
        expected = set(shared)
        jobs = []
        for writer_id in range(writers):
            mine = [f"{writer_id + 1:02x}{i:02x}" for i in range(private)]
            expected.update(mine)
            jobs.append((writer_id, mine + shared))
        ctx = multiprocessing.get_context()
        procs = [
            ctx.Process(target=_stress_writer, args=(str(tmp_path), writer_id, keys))
            for writer_id, keys in jobs
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
        assert all(proc.exitcode == 0 for proc in procs), [p.exitcode for p in procs]

        store = ResultStore(tmp_path)
        # No lost updates: every key every writer published is indexed...
        assert set(store.keys()) == expected
        # ...and the index matches the payload set exactly (no torn files,
        # no dangling rows, no orphans beyond replaced content).
        report = store.verify()
        assert report["clean"], report
        assert report["entries"] == len(expected)
        for key in expected:
            assert store.get(key) is not None

    def test_two_concurrent_campaign_runs_partition_the_sweep(self, tmp_path):
        """Acceptance: two `campaign run` processes share one store with zero
        duplicated point computations, bit-identical to a serial run."""
        spec = small_spec(n=6, name="two-proc")
        spec_path = tmp_path / "spec.json"
        spec.to_json(spec_path)
        store_dir = tmp_path / "store"
        ResultCache(store_dir, backend="store")  # pre-create the store

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        cmd = [
            sys.executable, "-m", "repro", "campaign", "run", str(spec_path),
            "--cache", str(store_dir), "--no-obs", "--json",
        ]
        procs = [
            subprocess.Popen(cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env)
            for _ in range(2)
        ]
        outputs = []
        for proc in procs:
            out, err = proc.communicate(timeout=300)
            assert proc.returncode == 0, err.decode()
            outputs.append(json.loads(out))

        total = spec.point_count()
        computed = sum(
            payload["report"]["counts"]["total"] - payload["report"]["counts"]["cached"]
            for payload in outputs
        )
        steals = sum(payload["resilience"]["lease_steals"] for payload in outputs)
        # Zero duplicated computations beyond explicit stale-lease steals
        # (and with both processes alive there is nothing stale to steal).
        assert steals == 0
        assert computed == total
        for payload in outputs:
            assert payload["report"]["counts"]["ok"] == total

        # The shared store holds exactly one result per point, verified clean.
        store_cache = ResultCache(store_dir)
        assert store_cache.backend == "store"
        assert len(store_cache) == total
        assert store_cache.store.verify()["clean"]

        # Bit-identical to a serial single-process run of the same spec.
        serial_dir = tmp_path / "serial"
        assert main(
            ["campaign", "run", str(spec_path), "--cache", str(serial_dir), "--no-obs"]
        ) == 0
        serial_cache = ResultCache(serial_dir)
        for point in spec.iter_points():
            concurrent = store_cache.get(point.key)
            serial = serial_cache.get(point.key)
            assert concurrent is not None and serial is not None
            assert concurrent["result"] == serial["result"]

"""Cross-module integration tests.

These tie the whole stack together: the fast quasi-static attack path against
the full transient engine, the no-hammering control experiment, end-to-end
bit corruption visible through the memory controller, and the physics-to-
system-level hand-off used by the scenarios.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attack import NeuroHammer, hammer_once, single_aggressor
from repro.circuit import (
    CrossbarArray,
    MemoryController,
    StimulusSchedule,
    StimulusSegment,
    TransientSimulator,
    write_bias,
)
from repro.config import AttackConfig, CrossbarGeometry, PulseConfig
from repro.memory import profile_from_attack_result, ReramMemory, AddressMapping


class TestFastPathAgainstTransient:
    """The quasi-static campaign must agree with the pulse-by-pulse engine."""

    @pytest.fixture(scope="class")
    def hot_geometry(self):
        # A very vulnerable operating point (tight spacing, hot ambient) keeps
        # the pulse count small enough for the transient engine.
        return CrossbarGeometry(electrode_spacing_m=10e-9)

    def test_pulse_counts_agree_within_factor_two(self, hot_geometry):
        ambient = 373.0
        pulse = PulseConfig(length_s=50e-9)
        pattern = single_aggressor(hot_geometry)
        config = AttackConfig(
            aggressors=[pattern.aggressors[0]],
            victim=pattern.victim,
            pulse=pulse,
            ambient_temperature_k=ambient,
            max_pulses=10_000,
        )

        fast_attack = NeuroHammer(CrossbarArray(geometry=hot_geometry, ambient_temperature_k=ambient))
        fast = fast_attack.run(pattern=pattern, config=config)

        transient_attack = NeuroHammer(CrossbarArray(geometry=hot_geometry, ambient_temperature_k=ambient))
        slow = transient_attack.run_transient(pattern=pattern, config=config, max_pulses=200)

        assert fast.flipped and slow.flipped
        assert fast.pulses <= 2 * slow.pulses
        assert slow.pulses <= 2 * fast.pulses

    def test_both_paths_flip_only_the_victim(self, hot_geometry):
        ambient = 373.0
        pattern = single_aggressor(hot_geometry)
        config = AttackConfig(
            aggressors=[pattern.aggressors[0]],
            victim=pattern.victim,
            pulse=PulseConfig(length_s=50e-9),
            ambient_temperature_k=ambient,
            max_pulses=500,
        )
        crossbar = CrossbarArray(geometry=hot_geometry, ambient_temperature_k=ambient)
        attack = NeuroHammer(crossbar)
        result = attack.run_transient(pattern=pattern, config=config, max_pulses=200)
        assert result.flipped
        # Every half-selected neighbour of the aggressor is a potential victim
        # (they all share a line with it); cells that share no line with the
        # aggressor see neither voltage stress nor meaningful crosstalk and
        # must stay firmly in their state.
        aggressor = pattern.aggressors[0]
        state_map = crossbar.state_map()
        for cell in crossbar.cells():
            if cell in pattern.aggressors:
                continue
            shares_line = cell[0] == aggressor[0] or cell[1] == aggressor[1]
            if not shares_line:
                assert state_map[cell] < 0.5, f"cell {cell} should not have flipped"


class TestControlExperiments:
    def test_no_flip_without_hammering(self):
        """Half-select stress alone must not flip within the attack's budget."""
        hammered = hammer_once(pulse_length_s=50e-9)
        assert hammered.flipped

        geometry = CrossbarGeometry()
        crossbar = CrossbarArray(geometry=geometry)
        # Same victim, same half-select voltage, but the aggressor stays HRS
        # (so it dissipates almost nothing and delivers no crosstalk).
        attack = NeuroHammer(crossbar)
        pattern = single_aggressor(geometry)
        config = AttackConfig(
            aggressors=[pattern.aggressors[0]],
            victim=pattern.victim,
            pulse=PulseConfig(length_s=50e-9),
            max_pulses=10 * hammered.pulses,
        )
        attack.prepare(pattern)
        crossbar.set_state(pattern.aggressors[0], 0.0)  # aggressor left in HRS
        point = attack.phase_operating_point(pattern, pattern.phases[0], 1.05)
        assert point.victim_crosstalk_k < 5.0

    def test_attack_acceleration_factor_is_large(self):
        """The hammered flip must be orders of magnitude faster than the
        unhammered half-select disturbance at the same operating point."""
        from repro.devices import JartVcmModel, pulses_to_switch

        model = JartVcmModel()
        hammered = pulses_to_switch(model, 0.525, 50e-9, 0.0, 0.5, crosstalk_temperature_k=75.0)
        unhammered = pulses_to_switch(
            model, 0.525, 50e-9, 0.0, 0.5, crosstalk_temperature_k=0.0,
            max_pulses=200 * hammered.pulses,
        )
        assert hammered.flipped
        assert (not unhammered.flipped) or unhammered.pulses > 100 * hammered.pulses


class TestSystemLevelHandOff:
    def test_flip_visible_through_memory_controller(self):
        """A full transient attack corrupts the bit the controller reads back."""
        geometry = CrossbarGeometry(electrode_spacing_m=10e-9)
        crossbar = CrossbarArray(geometry=geometry, ambient_temperature_k=373.0)
        controller = MemoryController(crossbar)
        pattern = single_aggressor(geometry)

        # Victim stores a 0 (HRS); aggressor stores a 1 (LRS).
        crossbar.set_bit(pattern.victim, 0)
        crossbar.set_bit(pattern.aggressors[0], 1)
        assert controller.read(pattern.victim).bit == 0

        attack = NeuroHammer(crossbar)
        config = AttackConfig(
            aggressors=[pattern.aggressors[0]],
            victim=pattern.victim,
            pulse=PulseConfig(length_s=50e-9),
            ambient_temperature_k=373.0,
            max_pulses=500,
        )
        result = attack.run_transient(pattern=pattern, config=config, max_pulses=200)
        assert result.flipped
        assert controller.read(pattern.victim).bit == 1
        # The aggressor's own content is untouched.
        assert controller.read(pattern.aggressors[0]).bit == 1

    def test_physics_profile_feeds_memory_model(self):
        """The circuit-level pulse count drives the behavioural memory model."""
        physics = hammer_once(pulse_length_s=50e-9)
        profile = profile_from_attack_result(physics.pulses, 100e-9)
        memory = ReramMemory(
            mapping=AddressMapping(rows=32, columns=32, tiles_per_bank=2, banks=1),
            disturbance=profile,
        )
        aggressor_address, aggressor_bit = 64, 0
        # One pulse short of the threshold: no flip.
        assert memory.hammer(aggressor_address, aggressor_bit, physics.pulses - 1) == []
        # Crossing the threshold produces the flip.
        flips = memory.hammer(aggressor_address, aggressor_bit, 1)
        assert flips

    def test_write_disturbs_are_absent_in_normal_operation(self):
        """Writing every cell of a small array once must not corrupt others."""
        geometry = CrossbarGeometry(rows=3, columns=3)
        crossbar = CrossbarArray(geometry=geometry)
        controller = MemoryController(crossbar, write_pulse=PulseConfig(length_s=2e-6))
        pattern = np.array([[1, 0, 1], [0, 1, 0], [1, 0, 1]])
        for (row, column) in geometry.iter_cells():
            controller.write((row, column), int(pattern[row, column]))
        assert np.array_equal(controller.read_all(), pattern)

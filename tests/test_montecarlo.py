"""Monte-Carlo subsystem: sampling, vectorized physics, engine, maps, campaign.

The heart of this suite is the scalar/vectorized agreement property: every
batched function must reproduce the scalar reference element-for-element
within 1e-9 relative tolerance on seeded populations (the acceptance
criterion of the subsystem).  In practice the two paths track each other to
float64 rounding noise (~1e-15) because the batched code mirrors the scalar
control flow per lane.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.attack import WorstCaseCornerScenario, YieldScenario
from repro.campaign import CampaignRunner, CampaignSpec
from repro.devices import JartVcmModel, pulses_to_switch, solve_operating_point, time_to_switch
from repro.errors import CampaignError, DeviceModelError, MonteCarloError
from repro.montecarlo import (
    MapAxis,
    MonteCarloConfig,
    MonteCarloEngine,
    ParameterDistribution,
    PopulationSampler,
    VectorizedJartVcm,
    flip_probability_map,
    pulses_to_switch_batch,
    solve_operating_point_batch,
    time_to_switch_batch,
)
from repro.utils.rng import child_rng, child_seed

RTOL = 1e-9

#: Relative process variation of the validation populations (a few percent,
#: the realistic device-to-device scale).
VARIED_DEVICE_FIELDS = (
    "activation_energy_ev",
    "series_resistance_ohm",
    "set_rate_prefactor_per_s",
    "rth_eff_k_per_w",
    "barrier_height_ev",
)


def sampled_model(seed: int, n: int) -> VectorizedJartVcm:
    """A seeded population with a few percent variation on key parameters."""
    rng = np.random.default_rng(seed)
    from repro.devices import JartVcmParameters

    base = JartVcmParameters()
    overrides = {
        name: getattr(base, name) * rng.normal(1.0, 0.02, n) for name in VARIED_DEVICE_FIELDS
    }
    return VectorizedJartVcm(n, overrides=overrides)


def relative_error(a, b):
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return np.abs(a - b) / np.maximum(np.abs(b), 1e-30)


class TestRngHelpers:
    def test_child_rng_is_reproducible_and_stream_independent(self):
        assert child_rng(7, "a").uniform() == child_rng(7, "a").uniform()
        assert child_rng(7, "a").uniform() != child_rng(7, "b").uniform()
        assert child_rng(7, "a").uniform() != child_rng(8, "a").uniform()

    def test_child_seed_is_stable_integer(self):
        seed = child_seed(3, "campaign", "random-sweep")
        assert seed == child_seed(3, "campaign", "random-sweep")
        assert 0 <= seed < 2**63
        assert seed != child_seed(3, "campaign", "other")

    def test_string_keys_hash_stably_not_by_builtin_hash(self):
        # Same numbers across processes => cannot rely on salted hash().
        assert child_seed(0, "montecarlo") == child_seed(0, "montecarlo")

    def test_rejects_bool_and_negative_keys(self):
        with pytest.raises(TypeError):
            child_rng(0, True)
        with pytest.raises(ValueError):
            child_rng(0, -1)


class TestSampling:
    def test_unknown_path_rejected(self):
        with pytest.raises(MonteCarloError, match="not a sampleable"):
            ParameterDistribution(path="device.not_a_field", kind="uniform", low=0, high=1)
        with pytest.raises(MonteCarloError, match="rooted"):
            ParameterDistribution(path="nonsense", kind="uniform", low=0, high=1)

    def test_parameter_validation(self):
        with pytest.raises(MonteCarloError):
            ParameterDistribution(path="attack.pulse.length_s", kind="normal", mean=1.0)
        with pytest.raises(MonteCarloError):
            ParameterDistribution(path="attack.pulse.length_s", kind="uniform", low=2.0, high=1.0)
        with pytest.raises(MonteCarloError):
            ParameterDistribution(path="attack.pulse.length_s", kind="gaussian", mean=1, sigma=1)
        with pytest.raises(MonteCarloError, match="lognormal needs a positive mean"):
            ParameterDistribution(path="attack.pulse.length_s", kind="lognormal", mean=-1, sigma=1)

    def test_draws_are_seed_reproducible_and_stream_independent(self):
        dists = [
            ParameterDistribution(path="device.activation_energy_ev", kind="normal", mean=1.2, sigma=0.02),
            ParameterDistribution(path="attack.pulse.length_s", kind="uniform", low=1e-8, high=1e-7),
        ]
        one = PopulationSampler(dists, seed=5).sample(64, {})
        two = PopulationSampler(dists, seed=5).sample(64, {})
        assert np.array_equal(one.values["device.activation_energy_ev"], two.values["device.activation_energy_ev"])
        # Dropping one distribution must not change the other's draws.
        alone = PopulationSampler([dists[0]], seed=5).sample(64, {})
        assert np.array_equal(
            alone.values["device.activation_energy_ev"], one.values["device.activation_energy_ev"]
        )
        other_seed = PopulationSampler(dists, seed=6).sample(64, {})
        assert not np.array_equal(
            other_seed.values["device.activation_energy_ev"], one.values["device.activation_energy_ev"]
        )

    def test_relative_draws_scale_the_nominal(self):
        dist = ParameterDistribution(
            path="device.series_resistance_ohm", kind="normal", mean=1.0, sigma=0.0, relative=True
        )
        draw = PopulationSampler([dist], seed=0).sample(8, {"device.series_resistance_ohm": 650.0})
        assert np.allclose(draw.values["device.series_resistance_ohm"], 650.0)

    def test_relative_draw_without_nominal_rejected(self):
        dist = ParameterDistribution(
            path="device.series_resistance_ohm", kind="normal", mean=1.0, sigma=0.1, relative=True
        )
        with pytest.raises(MonteCarloError, match="relative"):
            PopulationSampler([dist], seed=0).sample(8, {})

    def test_truncation_resamples_within_bounds(self):
        dist = ParameterDistribution(
            path="attack.ambient_temperature_k", kind="normal", mean=300.0, sigma=50.0,
            truncate_low=280.0, truncate_high=320.0,
        )
        values = PopulationSampler([dist], seed=2).sample(512, {}).values["attack.ambient_temperature_k"]
        assert values.min() >= 280.0 and values.max() <= 320.0

    def test_impossible_truncation_raises(self):
        dist = ParameterDistribution(
            path="attack.ambient_temperature_k", kind="normal", mean=300.0, sigma=0.001,
            truncate_low=500.0,
        )
        with pytest.raises(MonteCarloError, match="truncation"):
            PopulationSampler([dist], seed=2).sample(64, {})

    def test_duplicate_paths_rejected(self):
        dist = {"path": "attack.pulse.length_s", "kind": "uniform", "low": 1e-9, "high": 1e-7}
        with pytest.raises(MonteCarloError, match="duplicate"):
            PopulationSampler([dist, dict(dist)], seed=0)


class TestVectorizedModel:
    def test_scalar_parameters_round_trip(self):
        model = sampled_model(seed=1, n=4)
        for lane in range(4):
            params = model.scalar_parameters(lane)
            assert params.activation_energy_ev == model.activation_energy_ev[lane]

    def test_lane_validation_mirrors_scalar(self):
        with pytest.raises(DeviceModelError):
            VectorizedJartVcm(4, overrides={"activation_energy_ev": [1.2, 1.2, -1.0, 1.2]})
        with pytest.raises(DeviceModelError):
            VectorizedJartVcm(4, overrides={"unknown_field": [1.0] * 4})

    def test_current_matches_scalar_model(self):
        model = sampled_model(seed=3, n=32)
        rng = np.random.default_rng(3)
        voltage = rng.uniform(-1.2, 1.2, 32)
        x = rng.uniform(0.0, 1.0, 32)
        temperature = rng.uniform(280.0, 900.0, 32)
        batched = model.current(voltage, x, temperature)
        for lane in range(32):
            scalar = JartVcmModel(model.scalar_parameters(lane))
            from repro.devices import DeviceState

            expected = scalar.current(float(voltage[lane]), DeviceState(float(x[lane]), float(temperature[lane])))
            assert relative_error(batched[lane], expected).max() < RTOL or abs(expected) < 1e-30

    def test_voltage_validity_guard(self):
        model = sampled_model(seed=0, n=2)
        with pytest.raises(DeviceModelError):
            model.current(np.array([0.5, 11.0]), np.zeros(2), np.full(2, 300.0))


class TestOperatingPointBatch:
    def test_agrees_with_scalar_within_tolerance(self):
        n = 48
        model = sampled_model(seed=11, n=n)
        rng = np.random.default_rng(11)
        voltage = rng.uniform(0.3, 1.05, n)
        x = rng.uniform(0.0, 1.0, n)
        ambient = rng.uniform(273.0, 373.0, n)
        crosstalk = rng.uniform(0.0, 100.0, n)
        batch = solve_operating_point_batch(model, voltage, x, ambient, crosstalk)
        assert batch.converged.all()
        for lane in range(n):
            scalar = solve_operating_point(
                JartVcmModel(model.scalar_parameters(lane)),
                float(voltage[lane]),
                float(x[lane]),
                float(ambient[lane]),
                float(crosstalk[lane]),
            )
            assert relative_error(batch.filament_temperature_k[lane], scalar.filament_temperature_k).max() < RTOL
            assert relative_error(batch.current_a[lane], scalar.current_a).max() < RTOL
            assert relative_error(batch.power_w[lane], scalar.power_w).max() < RTOL

    def test_self_heating_properties(self):
        model = sampled_model(seed=4, n=8)
        batch = solve_operating_point_batch(model, 1.05, 1.0, 300.0)
        assert (batch.self_heating_k > 100.0).all()
        assert np.allclose(batch.crosstalk_temperature_k, 0.0)


class TestKineticsBatch:
    def test_time_to_switch_agrees_with_scalar(self):
        n = 32
        model = sampled_model(seed=21, n=n)
        rng = np.random.default_rng(21)
        voltage = rng.uniform(0.45, 0.6, n)
        crosstalk = rng.uniform(40.0, 90.0, n)
        batch = time_to_switch_batch(
            model, voltage, 0.0, 0.5, ambient_temperature_k=300.0,
            crosstalk_temperature_k=crosstalk, max_time_s=10.0,
        )
        for lane in range(n):
            scalar = time_to_switch(
                JartVcmModel(model.scalar_parameters(lane)),
                float(voltage[lane]), 0.0, 0.5,
                ambient_temperature_k=300.0,
                crosstalk_temperature_k=float(crosstalk[lane]),
                max_time_s=10.0,
            )
            assert bool(batch.switched[lane]) == scalar.switched
            assert int(batch.steps[lane]) == scalar.steps
            assert relative_error(batch.time_s[lane], scalar.time_s).max() < RTOL
            assert relative_error(batch.final_x[lane], scalar.final_x).max() < RTOL

    def test_wrong_polarity_never_switches(self):
        model = sampled_model(seed=5, n=4)
        batch = time_to_switch_batch(model, -0.5, 0.0, 0.5, max_time_s=1e-3)
        assert not batch.switched.any()
        assert np.allclose(batch.time_s, 1e-3)

    def test_invalid_lane_states_rejected(self):
        model = sampled_model(seed=5, n=2)
        with pytest.raises(DeviceModelError):
            time_to_switch_batch(model, 0.5, np.array([0.0, -0.1]), 0.5)
        with pytest.raises(DeviceModelError):
            time_to_switch_batch(model, 0.5, 0.0, 0.5, max_time_s=0.0)

    def test_pulse_validation(self):
        model = sampled_model(seed=5, n=2)
        with pytest.raises(DeviceModelError):
            pulses_to_switch_batch(model, 0.5, 0.0, 0.0, 0.5)
        with pytest.raises(DeviceModelError):
            pulses_to_switch_batch(model, 0.5, 50e-9, 0.0, 0.5, duty_cycle=1.5)
        with pytest.raises(DeviceModelError):
            pulses_to_switch_batch(model, 0.5, 50e-9, 0.0, 0.5, max_pulses=0)

    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        voltage_scale=st.floats(min_value=0.85, max_value=1.15),
        crosstalk=st.floats(min_value=0.0, max_value=110.0),
        pulse_exponent=st.floats(min_value=-8.3, max_value=-7.0),
    )
    def test_property_pulses_agree_with_scalar_reference(
        self, seed, voltage_scale, crosstalk, pulse_exponent
    ):
        """Acceptance property: seeded populations agree within 1e-9 rtol."""
        n = 12
        model = sampled_model(seed=seed, n=n)
        rng = np.random.default_rng(seed)
        voltage = 0.52 * voltage_scale * rng.uniform(0.95, 1.05, n)
        pulse_length = 10.0**pulse_exponent
        batch = pulses_to_switch_batch(
            model, voltage, pulse_length, 0.0, 0.5,
            ambient_temperature_k=300.0, crosstalk_temperature_k=crosstalk,
            max_pulses=100_000,
        )
        for lane in range(n):
            scalar = pulses_to_switch(
                JartVcmModel(model.scalar_parameters(lane)),
                float(voltage[lane]), pulse_length, 0.0, 0.5,
                ambient_temperature_k=300.0, crosstalk_temperature_k=crosstalk,
                max_pulses=100_000,
            )
            assert bool(batch.flipped[lane]) == scalar.flipped
            assert int(batch.pulses[lane]) == scalar.pulses
            assert relative_error(batch.stress_time_s[lane], scalar.stress_time_s).max() < RTOL
            assert relative_error(batch.final_x[lane], scalar.final_x).max() < RTOL
            assert relative_error(batch.final_temperature_k[lane], scalar.final_temperature_k).max() < RTOL


def engine_config(n_samples=32, seed=9, **attack_overrides):
    from repro.config import AttackConfig, SimulationConfig

    montecarlo = MonteCarloConfig(
        n_samples=n_samples,
        seed=seed,
        distributions=[
            {"path": "device.activation_energy_ev", "kind": "normal",
             "mean": 1.0, "sigma": 0.01, "relative": True},
            {"path": "device.series_resistance_ohm", "kind": "normal",
             "mean": 1.0, "sigma": 0.05, "relative": True},
            {"path": "attack.pulse.length_s", "kind": "lognormal", "mean": 50e-9, "sigma": 0.2},
        ],
    )
    simulation = SimulationConfig.from_dict({"geometry": {"rows": 3, "columns": 3}})
    attack = AttackConfig.from_dict(
        {"aggressors": [[1, 1]], "victim": [1, 2], "max_pulses": 500_000, **attack_overrides}
    )
    return montecarlo, simulation, attack


class TestMonteCarloEngine:
    @pytest.fixture(scope="class")
    def engine(self):
        montecarlo, simulation, attack = engine_config()
        return MonteCarloEngine(montecarlo, simulation=simulation, attack=attack)

    @pytest.fixture(scope="class")
    def vectorized_result(self, engine):
        return engine.run()

    def test_vectorized_and_scalar_paths_agree(self, engine, vectorized_result):
        scalar = engine.run(vectorized=False)
        assert np.array_equal(vectorized_result.flipped, scalar.flipped)
        assert np.array_equal(vectorized_result.pulses, scalar.pulses)
        assert np.array_equal(vectorized_result.valid, scalar.valid)
        assert relative_error(vectorized_result.final_x, scalar.final_x).max() < RTOL
        assert (
            relative_error(
                vectorized_result.victim_temperature_k, scalar.victim_temperature_k
            ).max()
            < RTOL
        )

    def test_same_seed_reproduces_the_population(self, engine, vectorized_result):
        montecarlo, simulation, attack = engine_config()
        again = MonteCarloEngine(montecarlo, simulation=simulation, attack=attack).run()
        assert np.array_equal(again.pulses, vectorized_result.pulses)

    def test_summary_shape(self, vectorized_result):
        summary = vectorized_result.summary()
        assert summary["n_samples"] == 32
        assert 0.0 <= summary["flip_probability"] <= 1.0
        assert summary["valid"] + summary["failed"] == 32
        if summary["flipped"]:
            assert summary["min_pulses_to_flip"] <= summary["p50"] <= summary["max_pulses_to_flip"]

    def test_population_varies_pulse_counts(self, vectorized_result):
        flipped = vectorized_result.pulses_to_flip()
        assert flipped.size > 2
        assert np.unique(flipped).size > 2  # variation actually propagates

    def test_experiment_result_export(self, vectorized_result):
        table = vectorized_result.to_experiment_result(max_rows=8)
        assert len(table.rows) == 8
        assert "summary" in table.metadata and "conditions" in table.metadata

    def test_nominal_conditions_match_circuit_solve(self, engine):
        conditions = engine.nominal_conditions()
        assert 0.0 < conditions.victim_voltage_v < 1.05
        assert conditions.crosstalk_temperature_k > 0.0
        assert 0.0 < conditions.coupling_ratio < 1.0

    def test_pathological_draws_invalidate_lanes_not_the_run(self):
        """A fat-tailed draw outside the model's validity range (e.g. a
        sampled amplitude beyond +-10 V) must flag those lanes invalid
        instead of aborting the whole population — in both engines."""
        from repro.config import AttackConfig, SimulationConfig

        montecarlo = MonteCarloConfig(
            n_samples=16,
            seed=2,
            distributions=[
                {"path": "attack.pulse.amplitude_v", "kind": "normal",
                 "mean": 1.0, "sigma": 8.0, "relative": True},
            ],
        )
        simulation = SimulationConfig.from_dict({"geometry": {"rows": 3, "columns": 3}})
        attack = AttackConfig.from_dict(
            {"aggressors": [[1, 1]], "victim": [1, 2], "max_pulses": 100_000}
        )
        engine = MonteCarloEngine(montecarlo, simulation=simulation, attack=attack)
        vectorized = engine.run()
        scalar = engine.run(vectorized=False)
        assert not vectorized.valid.all()  # the fat tail must actually hit
        assert np.array_equal(vectorized.valid, scalar.valid)
        assert np.array_equal(vectorized.flipped, scalar.flipped)
        # Invalid lanes are excluded from the statistics, not counted as safe.
        assert vectorized.valid_count == vectorized.summary()["valid"]

    def test_multi_phase_pattern_rejected(self):
        from repro.config import AttackConfig

        montecarlo, simulation, _ = engine_config()
        attack = AttackConfig.from_dict({"pattern": "quad"})
        with pytest.raises(MonteCarloError, match="phases"):
            MonteCarloEngine(montecarlo, attack=attack).nominal_conditions()


class TestMonteCarloCampaign:
    def test_montecarlo_kind_runs_through_the_runner(self, tmp_path):
        spec = CampaignSpec(
            name="mc-sweep",
            kind="montecarlo",
            experiment="montecarlo",
            simulation={"geometry": {"rows": 3, "columns": 3}},
            attack={"aggressors": [[1, 1]], "victim": [1, 2], "max_pulses": 500_000},
            montecarlo={"n_samples": 8, "seed": 3},
            axes=[{"path": "attack.pulse.length_s", "values": [30e-9, 60e-9]}],
        )
        report = CampaignRunner(spec).run()
        assert all(record.ok for record in report.records)
        assert [r.result["n_samples"] for r in report.records] == [8, 8]
        for record in report.records:
            assert 0.0 <= record.result["flip_probability"] <= 1.0

    def test_montecarlo_section_needs_montecarlo_kind(self):
        with pytest.raises(CampaignError, match="montecarlo"):
            CampaignSpec(name="bad", montecarlo={"n_samples": 8})

    def test_flip_probability_map_grid(self):
        mc_map = flip_probability_map(
            MapAxis(path="attack.pulse.length_s", values=[30e-9, 60e-9]),
            MapAxis(path="attack.ambient_temperature_k", values=[300.0, 340.0]),
            simulation={"geometry": {"rows": 3, "columns": 3}},
            attack={"aggressors": [[1, 1]], "victim": [1, 2], "max_pulses": 500_000},
            montecarlo={"n_samples": 8, "seed": 3},
        )
        assert mc_map.probabilities.shape == (2, 2)
        assert ((mc_map.probabilities >= 0) & (mc_map.probabilities <= 1)).all()
        assert len(mc_map.result.rows) == 4
        assert "flip probability" in mc_map.to_heatmap()
        # Hotter ambient can only make the attack easier.
        assert (mc_map.probabilities[:, 1] >= mc_map.probabilities[:, 0]).all()

    def test_map_axes_must_differ(self):
        from repro.montecarlo.maps import montecarlo_map_spec

        axis = MapAxis(path="attack.pulse.length_s", values=[30e-9])
        with pytest.raises(MonteCarloError, match="different"):
            montecarlo_map_spec(axis, axis)


class TestReliabilityScenarios:
    def test_yield_scenario_narrates_and_reports_stats(self):
        montecarlo, simulation, attack = engine_config(n_samples=16)
        result = YieldScenario(
            montecarlo, simulation=simulation, attack=attack,
            cells_per_array=64, min_yield=0.5,
        ).run(pulse_budget=1_000_000)
        assert result.name == "yield"
        assert len(result.steps) >= 4
        stats = result.stats
        assert set(stats) >= {"cell_bit_error_rate", "array_yield", "pulse_budget"}
        assert 0.0 <= stats["cell_bit_error_rate"] <= 1.0
        expected = (1.0 - stats["cell_bit_error_rate"]) ** 64
        assert stats["array_yield"] == pytest.approx(expected)
        assert result.success == (stats["array_yield"] >= 0.5)

    def test_tiny_budget_keeps_yield_high(self):
        montecarlo, simulation, attack = engine_config(n_samples=16)
        result = YieldScenario(
            montecarlo, simulation=simulation, attack=attack,
            cells_per_array=64, min_yield=0.99,
        ).run(pulse_budget=1)
        assert result.stats["cells_exposed"] == 0
        assert result.stats["array_yield"] == 1.0
        assert result.success

    def test_worst_case_corner_scenario(self):
        montecarlo, simulation, attack = engine_config(n_samples=16)
        result = WorstCaseCornerScenario(
            montecarlo, simulation=simulation, attack=attack, target_fraction=0.5
        ).run()
        assert result.name == "worst_case_corner"
        assert result.stats["cheapest_pulses"] >= 1
        assert result.stats["pulses_for_target_fraction"] >= result.stats["cheapest_pulses"]

    def test_invalid_arguments_rejected(self):
        from repro.errors import AttackError

        with pytest.raises(AttackError):
            YieldScenario(cells_per_array=0)
        with pytest.raises(AttackError):
            YieldScenario(min_yield=0.0)
        with pytest.raises(AttackError):
            WorstCaseCornerScenario(target_fraction=0.0)

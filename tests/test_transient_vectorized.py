"""Vectorized transient engine vs. the seed per-cell reference loop.

The array-native :class:`TransientSimulator` must reproduce the seed engine's
flip events (times, cells, directions) and recorded traces on the
integration-test style schedules within 1e-9 relative tolerance, plus the
flip-detection edge case of a cell crossing the threshold twice within one
record interval.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import (
    CrossbarArray,
    ReferenceTransientSimulator,
    StimulusSchedule,
    StimulusSegment,
    TransientSimulator,
    hammer_schedule,
    write_bias,
)
from repro.config import CrossbarGeometry, PulseConfig

RTOL = 1e-9


def fresh_crossbar(rows: int = 3, columns: int = 3, lrs_cells=()) -> CrossbarArray:
    crossbar = CrossbarArray(geometry=CrossbarGeometry(rows=rows, columns=columns))
    for cell in lrs_cells:
        crossbar.set_state(cell, 1.0)
    return crossbar


def write_schedule(geometry: CrossbarGeometry, target, amplitude_v=1.05, duration_s=5e-6):
    schedule = StimulusSchedule()
    schedule.append(
        StimulusSegment(0.0, duration_s, label="write", payload=write_bias(geometry, [target], amplitude_v))
    )
    return schedule


def assert_same_run(vectorized, reference):
    assert vectorized.steps == reference.steps
    assert vectorized.simulated_time_s == pytest.approx(reference.simulated_time_s, rel=RTOL)
    assert len(vectorized.flip_events) == len(reference.flip_events)
    for ours, seed in zip(vectorized.flip_events, reference.flip_events):
        assert ours.cell == seed.cell
        assert ours.direction == seed.direction
        assert ours.time_s == pytest.approx(seed.time_s, rel=RTOL)
        assert ours.state_x == pytest.approx(seed.state_x, rel=RTOL, abs=1e-12)
    assert len(vectorized.trace) == len(reference.trace)
    np.testing.assert_allclose(vectorized.trace.times_s, reference.trace.times_s, rtol=RTOL)
    np.testing.assert_allclose(
        vectorized.trace.states, reference.trace.states, rtol=RTOL, atol=1e-12
    )
    np.testing.assert_allclose(
        vectorized.trace.temperatures_k, reference.trace.temperatures_k, rtol=RTOL
    )
    np.testing.assert_allclose(
        vectorized.trace.voltages_v, reference.trace.voltages_v, rtol=RTOL, atol=1e-12
    )
    assert vectorized.trace.labels == reference.trace.labels


class TestTransientRegression:
    def test_write_schedule_matches_seed_engine(self):
        crossbar_v = fresh_crossbar(lrs_cells=[(0, 2)])
        crossbar_r = fresh_crossbar(lrs_cells=[(0, 2)])
        schedule = write_schedule(crossbar_v.geometry, (1, 1))
        vectorized = TransientSimulator(crossbar_v).run(schedule)
        reference = ReferenceTransientSimulator(crossbar_r).run(
            write_schedule(crossbar_r.geometry, (1, 1))
        )
        assert vectorized.first_flip((1, 1)) is not None
        assert_same_run(vectorized, reference)
        np.testing.assert_allclose(crossbar_v.state_map(), crossbar_r.state_map(), rtol=RTOL)

    def test_hammer_schedule_matches_seed_engine(self):
        pulse = PulseConfig(length_s=200e-9, amplitude_v=1.05)
        crossbar_v = fresh_crossbar()
        crossbar_r = fresh_crossbar()
        bias = write_bias(crossbar_v.geometry, [(1, 1)], pulse.amplitude_v)
        schedule = hammer_schedule(pulse, 3, bias)
        vectorized = TransientSimulator(crossbar_v, record_every=2).run(schedule)
        reference = ReferenceTransientSimulator(crossbar_r, record_every=2).run(
            hammer_schedule(pulse, 3, write_bias(crossbar_r.geometry, [(1, 1)], pulse.amplitude_v))
        )
        assert_same_run(vectorized, reference)

    def test_stop_on_flip_matches_seed_engine(self):
        crossbar_v = fresh_crossbar()
        crossbar_r = fresh_crossbar()
        vectorized = TransientSimulator(crossbar_v).run(
            write_schedule(crossbar_v.geometry, (1, 1)), stop_on_flip_of=(1, 1)
        )
        reference = ReferenceTransientSimulator(crossbar_r).run(
            write_schedule(crossbar_r.geometry, (1, 1)), stop_on_flip_of=(1, 1)
        )
        assert vectorized.flip_events and vectorized.flip_events[-1].cell == (1, 1)
        assert_same_run(vectorized, reference)

    def test_non_default_threshold_matches_seed_engine(self):
        """Seed quirk preserved: initial bits decode at 0.5, not flip_threshold.

        With mid-range initial states and a non-default threshold the seed
        engine reports first-step events for cells sitting between the two
        thresholds; the vectorized engine must reproduce them exactly.
        """
        crossbar_v = fresh_crossbar()
        crossbar_r = fresh_crossbar()
        for crossbar in (crossbar_v, crossbar_r):
            crossbar.set_state((0, 0), 0.4)
            crossbar.set_state((2, 2), 0.4)
        schedule = write_schedule(crossbar_v.geometry, (1, 1), duration_s=1e-6)
        vectorized = TransientSimulator(crossbar_v, flip_threshold=0.3).run(schedule)
        reference = ReferenceTransientSimulator(crossbar_r, flip_threshold=0.3).run(
            write_schedule(crossbar_r.geometry, (1, 1), duration_s=1e-6)
        )
        assert len(reference.flip_events) >= 2  # the between-threshold cells
        assert_same_run(vectorized, reference)

    def test_idle_schedule_matches_seed_engine(self):
        crossbar_v = fresh_crossbar(lrs_cells=[(2, 2)])
        crossbar_r = fresh_crossbar(lrs_cells=[(2, 2)])
        schedule = StimulusSchedule()
        schedule.append(StimulusSegment(0.0, 1e-6, label="idle", payload=None))
        vectorized = TransientSimulator(crossbar_v).run(schedule)
        reference = ReferenceTransientSimulator(crossbar_r).run(schedule)
        assert not vectorized.flip_events
        assert_same_run(vectorized, reference)


class TestFlipDetectionEdgeCases:
    def test_double_threshold_crossing_within_one_record_interval(self):
        """SET then RESET between two recorded samples: both events captured.

        Flip detection runs per *step*, not per recorded sample, so a cell
        that crosses the threshold upwards and back downwards between two
        records must still produce both events.
        """
        crossbar = fresh_crossbar()
        geometry = crossbar.geometry
        schedule = StimulusSchedule()
        schedule.append(
            StimulusSegment(0.0, 5e-6, label="set", payload=write_bias(geometry, [(1, 1)], 1.05))
        )
        schedule.append(
            StimulusSegment(5e-6, 5e-6, label="reset", payload=write_bias(geometry, [(1, 1)], -1.05))
        )
        # record_every far above the step count: only the forced segment-end
        # samples are recorded, so both crossings happen "inside" intervals.
        simulator = TransientSimulator(crossbar, record_every=10**6)
        result = simulator.run(schedule)

        victim_events = [event for event in result.flip_events if event.cell == (1, 1)]
        assert [event.direction for event in victim_events] == ["set", "reset"]
        assert victim_events[0].time_s < victim_events[1].time_s
        # Only the two segment-end samples were recorded — fewer samples than
        # events per interval boundary would imply.
        assert len(result.trace) == 2
        assert result.trace.labels == ["set", "reset"]
        # The reference engine sees the same two events.
        crossbar_r = fresh_crossbar()
        reference = ReferenceTransientSimulator(crossbar_r, record_every=10**6).run(
            result_schedule(crossbar_r.geometry)
        )
        seed_events = [event for event in reference.flip_events if event.cell == (1, 1)]
        assert [event.direction for event in seed_events] == ["set", "reset"]
        for ours, seed in zip(victim_events, seed_events):
            assert ours.time_s == pytest.approx(seed.time_s, rel=RTOL)

    def test_trace_grows_beyond_initial_capacity(self):
        crossbar = fresh_crossbar(2, 2)
        schedule = StimulusSchedule()
        schedule.append(
            StimulusSegment(
                0.0, 1e-6, label="fine", payload=write_bias(crossbar.geometry, [(0, 0)], 0.4)
            )
        )
        simulator = TransientSimulator(crossbar, min_steps_per_segment=100)
        result = simulator.run(schedule)
        assert len(result.trace) >= 100  # beyond the initial 64-slot capacity
        assert np.all(np.diff(result.trace.times_s) > 0)
        assert result.trace.states.shape == (len(result.trace), 2, 2)

    def test_trace_cell_series_and_views(self):
        crossbar = fresh_crossbar()
        result = TransientSimulator(crossbar).run(write_schedule(crossbar.geometry, (1, 1), duration_s=1e-6))
        series = result.trace.cell_series((1, 1), "state")
        assert series.shape == (len(result.trace),)
        assert series[-1] >= series[0]
        # Trimmed views never expose unwritten capacity.
        assert result.trace.times_s.shape[0] == len(result.trace)
        assert len(result.trace.labels) == len(result.trace)


def result_schedule(geometry: CrossbarGeometry) -> StimulusSchedule:
    schedule = StimulusSchedule()
    schedule.append(
        StimulusSegment(0.0, 5e-6, label="set", payload=write_bias(geometry, [(1, 1)], 1.05))
    )
    schedule.append(
        StimulusSegment(5e-6, 5e-6, label="reset", payload=write_bias(geometry, [(1, 1)], -1.05))
    )
    return schedule

"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import CrossbarGeometry
from repro.devices import DeviceState, JartVcmModel, LinearIonDriftModel
from repro.memory import AddressMapping, HammingSecDed
from repro.thermal import AnalyticCouplingModel
from repro.utils import ascii_table, format_value, to_csv

MODEL = JartVcmModel()
DRIFT = LinearIonDriftModel()
GEOMETRY = CrossbarGeometry()
COUPLING = AnalyticCouplingModel(GEOMETRY)

states = st.floats(min_value=0.0, max_value=1.0)
temperatures = st.floats(min_value=250.0, max_value=1000.0)
voltages = st.floats(min_value=-1.5, max_value=1.5)
cells = st.tuples(st.integers(0, GEOMETRY.rows - 1), st.integers(0, GEOMETRY.columns - 1))

common_settings = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestDeviceProperties:
    @common_settings
    @given(voltage=voltages, x=states, temperature=temperatures)
    def test_current_sign_follows_voltage(self, voltage, x, temperature):
        current = MODEL.current(voltage, DeviceState(x, temperature))
        if voltage > 0:
            assert current >= 0.0
        elif voltage < 0:
            assert current <= 0.0
        else:
            assert current == 0.0

    @common_settings
    @given(voltage=st.floats(min_value=0.01, max_value=1.5), x=states, temperature=temperatures)
    def test_current_bounded_by_ohmic_limit(self, voltage, x, temperature):
        current = MODEL.current(voltage, DeviceState(x, temperature))
        assert current <= voltage / MODEL.ohmic_resistance(x) + 1e-15

    @common_settings
    @given(voltage=st.floats(min_value=0.05, max_value=1.5), x=states, temperature=temperatures)
    def test_state_derivative_direction(self, voltage, x, temperature):
        state = DeviceState(x, temperature)
        set_rate = MODEL.state_derivative(voltage, state)
        reset_rate = MODEL.state_derivative(-voltage, state)
        assert set_rate >= 0.0
        assert reset_rate <= 0.0

    @common_settings
    @given(
        voltage=st.floats(min_value=0.1, max_value=1.0),
        x=st.floats(min_value=0.0, max_value=0.9),
        cold=st.floats(min_value=280.0, max_value=500.0),
        delta=st.floats(min_value=10.0, max_value=300.0),
    )
    def test_set_rate_monotone_in_temperature(self, voltage, x, cold, delta):
        cold_rate = MODEL.state_derivative(voltage, DeviceState(x, cold))
        hot_rate = MODEL.state_derivative(voltage, DeviceState(x, cold + delta))
        assert hot_rate >= cold_rate

    @common_settings
    @given(x=states)
    def test_drift_memristance_within_bounds(self, x):
        resistance = DRIFT.memristance(DeviceState(x))
        assert DRIFT.parameters.r_on_ohm <= resistance <= DRIFT.parameters.r_off_ohm

    @common_settings
    @given(x=st.floats(min_value=-2.0, max_value=3.0))
    def test_clamp_state_idempotent(self, x):
        clamped = MODEL.clamp_state(x)
        assert 0.0 <= clamped <= 1.0
        assert MODEL.clamp_state(clamped) == clamped


class TestCouplingProperties:
    @common_settings
    @given(aggressor=cells, victim=cells)
    def test_alpha_in_unit_interval_and_symmetric(self, aggressor, victim):
        alpha = COUPLING.alpha_between(aggressor, victim)
        assert 0.0 <= alpha <= 1.0
        assert alpha == pytest.approx(COUPLING.alpha_between(victim, aggressor))
        if aggressor == victim:
            assert alpha == 1.0

    @common_settings
    @given(aggressor=cells)
    def test_matrix_consistent_with_pairwise(self, aggressor):
        matrix = COUPLING.matrix_for(aggressor)
        for victim in ((0, 0), (2, 3), (4, 4)):
            assert matrix.alpha_of(victim) == pytest.approx(COUPLING.alpha_between(aggressor, victim))


class TestEccProperties:
    CODEC = HammingSecDed(data_bits=32)

    @common_settings
    @given(value=st.integers(min_value=0, max_value=2**32 - 1))
    def test_round_trip(self, value):
        decoded, result = self.CODEC.decode_int(self.CODEC.encode_int(value))
        assert decoded == value
        assert not result.corrected

    @common_settings
    @given(
        value=st.integers(min_value=0, max_value=2**32 - 1),
        position=st.integers(min_value=0, max_value=32 + 6),
    )
    def test_single_flip_always_corrected(self, value, position):
        codeword = self.CODEC.encode_int(value)
        codeword[position % self.CODEC.codeword_bits] ^= 1
        decoded, result = self.CODEC.decode_int(codeword)
        assert decoded == value
        assert not result.double_error_detected

    @common_settings
    @given(
        value=st.integers(min_value=0, max_value=2**32 - 1),
        positions=st.sets(st.integers(min_value=0, max_value=38), min_size=2, max_size=2),
    )
    def test_double_flip_never_silently_accepted(self, value, positions):
        codeword = self.CODEC.encode_int(value)
        for position in positions:
            codeword[position % self.CODEC.codeword_bits] ^= 1
        decoded, result = self.CODEC.decode_int(codeword)
        assert result.double_error_detected or decoded != value or result.corrected


class TestMappingProperties:
    MAPPING = AddressMapping(rows=32, columns=32, tiles_per_bank=8, banks=2)

    @common_settings
    @given(
        address=st.integers(min_value=0, max_value=32 * 32 // 8 * 8 * 2 - 1),
        bit=st.integers(min_value=0, max_value=7),
    )
    def test_mapping_is_bijective(self, address, bit):
        location = self.MAPPING.locate_bit(address, bit)
        assert self.MAPPING.address_of(location) == (address, bit)

    @common_settings
    @given(
        address=st.integers(min_value=0, max_value=32 * 32 // 8 * 8 * 2 - 1),
        bit=st.integers(min_value=0, max_value=7),
    )
    def test_adjacency_is_symmetric(self, address, bit):
        location = self.MAPPING.locate_bit(address, bit)
        for neighbour in self.MAPPING.physically_adjacent_bits(location):
            assert location in self.MAPPING.physically_adjacent_bits(neighbour)


class TestGeometryProperties:
    @common_settings
    @given(
        rows=st.integers(min_value=1, max_value=8),
        columns=st.integers(min_value=1, max_value=8),
        spacing_nm=st.floats(min_value=5.0, max_value=200.0),
    )
    def test_pitch_and_distances(self, rows, columns, spacing_nm):
        geometry = CrossbarGeometry(rows=rows, columns=columns, electrode_spacing_m=spacing_nm * 1e-9)
        assert geometry.pitch_m > geometry.electrode_width_m
        assert geometry.cell_count == rows * columns
        first = next(iter(geometry.iter_cells()))
        assert geometry.cell_distance(first, first) == 0.0


class TestReportingProperties:
    @common_settings
    @given(
        rows=st.lists(
            st.tuples(
                st.text(
                    min_size=0,
                    max_size=8,
                    alphabet=st.characters(blacklist_categories=("Cs",)),
                ),
                st.floats(allow_nan=False, allow_infinity=False),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_ascii_table_never_crashes_and_has_one_line_per_row(self, rows):
        table = ascii_table(["name", "value"], rows)
        lines = table.splitlines()
        assert len(lines) == len(rows) + 2

    @common_settings
    @given(value=st.floats(allow_nan=False, allow_infinity=False))
    def test_format_value_round_trippable(self, value):
        text = format_value(value)
        assert isinstance(text, str) and text
        float(text)  # must parse back as a float

    @common_settings
    @given(cells_text=st.lists(st.text(max_size=12), min_size=1, max_size=5))
    def test_csv_round_trips_through_csv_reader(self, cells_text):
        import csv
        import io

        csv_text = to_csv(["c"] * len(cells_text), [cells_text])
        parsed = list(csv.reader(io.StringIO(csv_text)))
        if cells_text == [""]:
            # A single empty field is indistinguishable from a blank line in
            # CSV; the reader may drop it entirely.
            assert len(parsed) in (1, 2)
        else:
            assert len(parsed) == 2
            assert parsed[1] == [str(cell) for cell in cells_text]

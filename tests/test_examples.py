"""Smoke tests: every shipped example must run to completion.

The examples double as documentation; running them in-process (with argv
pinned) guarantees they stay in sync with the public API.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart.py",
    "thermal_map.py",
    "attack_patterns.py",
    "privilege_escalation.py",
    "countermeasures.py",
    "spacing_study.py",
    "campaign_sweep.py",
    "montecarlo_flip_probability.py",
    "adaptive_sampling.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_to_completion(script, capsys, monkeypatch):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert len(output) > 200, f"example {script} produced suspiciously little output"


def test_every_example_file_is_covered():
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES)

"""Tests of the determinism audit trail (:mod:`repro.obs.audit`).

Covers the canonical fingerprints themselves (dtype normalization, volatile
key stripping, spawn digests), the null-object opt-in and capture scoping,
stream persistence and the divergence differ, the execution-path invariant —
serial, 2-worker pool and two-process shared-store campaigns of one seeded
spec produce identical fingerprint streams — and the headline acceptance
scenario: a deliberately perturbed point is localized to its exact stage and
index by ``repro obs audit``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.campaign import CampaignRunner, CampaignSpec, ResultCache
from repro.campaign.cli import main
from repro.errors import ReproError
from repro.obs import (
    NULL_AUDIT,
    AuditTrail,
    RunLedger,
    audit_capture,
    audit_enabled,
    canonical_array_bytes,
    diff_audit_streams,
    disable_audit,
    enable_audit,
    fingerprint,
    get_audit,
    payload_max_abs_diff,
    read_audit_stream,
    render_audit_diff,
    spawn_digest,
    strip_volatile,
    write_audit_stream,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(autouse=True)
def _audit_off_after_each_test():
    yield
    disable_audit()


#: A 4-point attack campaign on a fast 3x3 crossbar.
CAMPAIGN_SPEC = dict(
    name="audit-campaign",
    simulation={"geometry": {"rows": 3, "columns": 3}},
    attack={"aggressors": [[1, 1]], "victim": [1, 2]},
    axes=[{"path": "attack.pulse.length_s", "values": [30e-9, 50e-9, 70e-9, 90e-9]}],
)


def _spec_file(tmp_path: Path) -> Path:
    path = tmp_path / "spec.json"
    CampaignSpec(**CAMPAIGN_SPEC).to_json(path)
    return path


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------


class TestFingerprint:
    def test_float32_and_float64_views_fingerprint_identically(self):
        values = np.array([1.0, 2.5, -3.0])
        assert canonical_array_bytes(values.astype(np.float32)) == canonical_array_bytes(values)
        # Non-contiguous views canonicalize too.
        square = np.arange(9, dtype=np.float64).reshape(3, 3)
        assert canonical_array_bytes(square.T) == canonical_array_bytes(
            np.ascontiguousarray(square.T)
        )

    def test_dtype_and_shape_cannot_alias(self):
        ints = np.array([1, 2, 3], dtype=np.int64)
        floats = np.array([1.0, 2.0, 3.0])
        assert canonical_array_bytes(ints) != canonical_array_bytes(floats)
        flat = np.zeros(4)
        assert canonical_array_bytes(flat) != canonical_array_bytes(flat.reshape(2, 2))

    def test_fingerprint_sensitive_to_single_element(self):
        a = np.linspace(0.0, 1.0, 16)
        b = a.copy()
        b[7] += 2.0**-40 * b[7]
        assert fingerprint(arrays={"x": a}) != fingerprint(arrays={"x": b})

    def test_volatile_keys_are_stripped_recursively(self):
        payload = {
            "status": "ok",
            "duration_s": 1.23,
            "result": {"flipped": True, "engine_duration_s": 9.9, "wall_clock_s": 0.5},
        }
        slower = json.loads(json.dumps(payload))
        slower["duration_s"] = 99.0
        slower["result"]["engine_duration_s"] = 0.1
        slower["result"]["wall_clock_s"] = 7.0
        assert fingerprint(payload=payload) == fingerprint(payload=slower)
        assert "duration_s" not in strip_volatile(payload)
        assert "wall_clock_s" not in strip_volatile(payload)["result"]

    def test_fingerprint_sensitive_to_payload_values(self):
        assert fingerprint(payload={"p": 0.25}) != fingerprint(payload={"p": 0.250001})

    def test_spawn_digest_is_stable_and_path_sensitive(self):
        assert spawn_digest(42, "montecarlo", "batch", 3) == spawn_digest(
            42, "montecarlo", "batch", 3
        )
        assert spawn_digest(42, "montecarlo", "batch", 3) != spawn_digest(
            42, "montecarlo", "batch", 4
        )
        assert spawn_digest(42, "montecarlo") != spawn_digest(43, "montecarlo")


# ----------------------------------------------------------------------
# the trail and its scoping
# ----------------------------------------------------------------------


class TestAuditTrail:
    def test_disabled_by_default_and_null_is_inert(self):
        assert not audit_enabled()
        assert get_audit() is NULL_AUDIT
        assert NULL_AUDIT.record("stage", key=1) is None
        assert NULL_AUDIT.records() == []

    def test_enable_disable_and_capture_restores_previous(self):
        trail = enable_audit()
        assert audit_enabled() and get_audit() is trail
        with audit_capture() as inner:
            assert get_audit() is inner and inner is not trail
        assert get_audit() is trail
        disable_audit()
        assert not audit_enabled()

    def test_capture_with_null_suppresses_recording(self):
        with audit_capture() as trail:
            get_audit().record("outer", key=0)
            with audit_capture(NULL_AUDIT):
                assert not audit_enabled()
                get_audit().record("inner", key=1)
            get_audit().record("outer", key=2)
        stages = [record["stage"] for record in trail.records()]
        assert stages == ["outer", "outer"]

    def test_unkeyed_records_get_per_stage_sequence(self):
        trail = AuditTrail()
        trail.record("a")
        trail.record("b")
        trail.record("a")
        assert [(r["stage"], r["key"]) for r in trail.records()] == [
            ("a", 0),
            ("b", 0),
            ("a", 1),
        ]

    def test_meta_rides_on_the_record_but_not_the_fingerprint(self):
        trail = AuditTrail()
        a = trail.record("s", key=0, arrays={"x": [1.0]}, meta={"note": "one"})
        b = trail.record("s", key=0, arrays={"x": [1.0]}, meta={"note": "two"})
        assert a["sha256"] == b["sha256"]
        assert a["meta"] != b["meta"]


# ----------------------------------------------------------------------
# persistence + differ
# ----------------------------------------------------------------------


class TestStreamsAndDiffer:
    def test_stream_round_trip(self, tmp_path):
        trail = AuditTrail()
        trail.record("solver.operating_point", arrays={"v": np.ones(3)})
        trail.record("campaign.point", key=2, payload={"status": "ok"})
        path = write_audit_stream(tmp_path / "a.jsonl", trail.records(), run_id="r1", label="x")
        header, records = read_audit_stream(path)
        assert header["records"] == 2 and header["run_id"] == "r1"
        assert records == trail.records()

    def test_read_missing_stream_raises(self, tmp_path):
        with pytest.raises(ReproError, match="no audit stream"):
            read_audit_stream(tmp_path / "nope.jsonl")

    def test_diff_identical(self):
        records = AuditTrail()
        records.record("s", key=0, arrays={"x": [1.0]})
        report = diff_audit_streams(records.records(), records.records())
        assert report["identical"] and report["divergent"] == 0
        assert "IDENTICAL" in render_audit_diff(report)

    def test_diff_pinpoints_first_fingerprint_divergence(self):
        a, b = AuditTrail(), AuditTrail()
        for key in range(4):
            value = 1.0 if key != 2 else 1.0 + 2.0**-40
            a.record("campaign.point", key=key, arrays={"x": [1.0]})
            b.record("campaign.point", key=key, arrays={"x": [value]})
        report = diff_audit_streams(a.records(), b.records())
        assert not report["identical"]
        first = report["first_divergence"]
        assert first["reason"] == "fingerprint"
        assert first["stage"] == "campaign.point" and first["key"] == 2
        assert "DIVERGENT" in render_audit_diff(report)

    def test_diff_reports_stage_mismatch_and_length_mismatch(self):
        a, b = AuditTrail(), AuditTrail()
        a.record("s1", key=0)
        b.record("s2", key=0)
        report = diff_audit_streams(a.records(), b.records())
        assert report["first_divergence"]["reason"] == "stage-mismatch"
        longer = AuditTrail()
        longer.record("s1", key=0)
        longer.record("s1", key=1)
        report = diff_audit_streams(a.records(), longer.records())
        assert report["first_divergence"]["reason"] == "missing-in-a"

    def test_payload_max_abs_diff_walks_nested_payloads(self):
        a = {"result": {"p": [0.5, 0.25], "flag": True}}
        b = {"result": {"p": [0.5, 0.75], "flag": True}}
        assert payload_max_abs_diff(a, b) == (0.5, "result.p[1]")
        assert payload_max_abs_diff(a, a) is None
        assert payload_max_abs_diff({"k": 1}, {})[0] == float("inf")


# ----------------------------------------------------------------------
# execution-path invariance (the tentpole contract)
# ----------------------------------------------------------------------


def _run_campaign_stream(tmp_path, name, **runner_kwargs):
    spec = CampaignSpec(**{**CAMPAIGN_SPEC, "name": "stream-campaign"})
    cache = ResultCache(tmp_path / name) if runner_kwargs.pop("cached", True) else None
    with audit_capture() as trail:
        report = CampaignRunner(spec, cache=cache, **runner_kwargs).run()
    assert report.counts()["ok"] == 4
    return trail.records()


class TestExecutionPathInvariance:
    def test_serial_pool_and_cached_replay_streams_are_identical(self, tmp_path):
        serial = _run_campaign_stream(tmp_path, "cache-serial", workers=0)
        pool = _run_campaign_stream(tmp_path, "cache-pool", workers=2)
        assert diff_audit_streams(serial, pool)["identical"]
        # All four stages are campaign.point records keyed 0..3, in order.
        assert [(r["stage"], r["key"]) for r in serial] == [
            ("campaign.point", index) for index in range(4)
        ]
        # A replay served entirely from the cache fingerprints identically.
        replay = _run_campaign_stream(tmp_path, "cache-serial", workers=0)
        assert all(r["meta"]["cached"] for r in replay)
        assert diff_audit_streams(serial, replay)["identical"]

    def test_serial_jobs_do_not_leak_stage_records(self, tmp_path):
        """In-process jobs run under NULL_AUDIT: only parent-side records."""
        records = _run_campaign_stream(tmp_path, "cache-leak", workers=0, cached=False)
        assert {record["stage"] for record in records} == {"campaign.point"}

    def test_two_process_shared_store_streams_are_identical(self, tmp_path):
        """Two concurrent CLI processes on one shared store partition the
        sweep, yet both emit the same full fingerprint stream."""
        spec_path = _spec_file(tmp_path)
        store = tmp_path / "store"
        obs = tmp_path / "obs"
        cmd = [
            sys.executable, "-m", "repro", "campaign", "run", str(spec_path),
            "--store", "--cache", str(store), "--obs-dir", str(obs), "--audit",
        ]
        env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
        procs = [subprocess.Popen(cmd, env=env, cwd=tmp_path) for _ in range(2)]
        assert [proc.wait(timeout=300) for proc in procs] == [0, 0]
        ledger = RunLedger(obs)
        entries = ledger.entries()
        assert len(entries) == 2
        streams = [read_audit_stream(ledger.audit_path(e.run_id))[1] for e in entries]
        assert len(streams[0]) == 4
        assert diff_audit_streams(streams[0], streams[1])["identical"]


# ----------------------------------------------------------------------
# divergence localization through the CLI (acceptance scenario)
# ----------------------------------------------------------------------


class TestAuditCli:
    def _run(self, spec_path, obs, cache, *extra):
        argv = [
            "campaign", "run", str(spec_path),
            "--cache", str(cache), "--obs-dir", str(obs), "--audit", *extra,
        ]
        assert main(argv) == 0

    def test_perturbed_point_is_localized_with_context(self, tmp_path, capsys):
        spec_path = _spec_file(tmp_path)
        obs = tmp_path / "obs"
        self._run(spec_path, obs, tmp_path / "cache-clean")
        self._run(
            spec_path, obs, tmp_path / "cache-bad", "--inject-faults", "perturb@2"
        )
        capsys.readouterr()
        code = main([
            "obs", "audit", "latest~1", "latest", "--obs-dir", str(obs),
            "--cache-a", str(tmp_path / "cache-clean"),
            "--cache-b", str(tmp_path / "cache-bad"),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "DIVERGENT: 1 of 4" in out
        assert "stage='campaign.point' key=2" in out
        assert "payload max-abs-diff" in out

    def test_identical_runs_pass_and_check_gates(self, tmp_path, capsys):
        spec_path = _spec_file(tmp_path)
        obs = tmp_path / "obs"
        self._run(spec_path, obs, tmp_path / "cache-a")
        self._run(spec_path, obs, tmp_path / "cache-b", "--workers", "2")
        capsys.readouterr()
        assert main(["obs", "audit", "latest~1", "latest", "--obs-dir", str(obs)]) == 0
        assert "IDENTICAL" in capsys.readouterr().out
        golden = tmp_path / "golden.jsonl"
        assert main(["obs", "audit", "latest~1", "--obs-dir", str(obs),
                     "--export", str(golden)]) == 0
        assert main(["obs", "audit", "latest", "--obs-dir", str(obs),
                     "--check", str(golden)]) == 0

    def test_single_run_summary_and_json(self, tmp_path, capsys):
        spec_path = _spec_file(tmp_path)
        obs = tmp_path / "obs"
        self._run(spec_path, obs, tmp_path / "cache")
        capsys.readouterr()
        assert main(["obs", "audit", "latest", "--obs-dir", str(obs), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] == 4
        assert payload["stages"] == {"campaign.point": 4}

    def test_missing_stream_is_a_clear_error(self, tmp_path, capsys):
        spec_path = _spec_file(tmp_path)
        obs = tmp_path / "obs"
        argv = ["campaign", "run", str(spec_path), "--no-cache", "--obs-dir", str(obs)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["obs", "audit", "latest", "--obs-dir", str(obs)]) == 1
        assert "no audit stream" in capsys.readouterr().err

    def test_audit_with_no_obs_is_refused_gracefully(self, tmp_path, capsys):
        spec_path = _spec_file(tmp_path)
        argv = [
            "campaign", "run", str(spec_path), "--no-cache",
            "--obs-dir", str(tmp_path / "obs"), "--audit", "--no-obs",
        ]
        assert main(argv) == 0
        assert "ignored with --no-obs" in capsys.readouterr().out


# ----------------------------------------------------------------------
# satellite CLI surfaces riding along
# ----------------------------------------------------------------------


class TestSatelliteCliSurfaces:
    def test_obs_runs_status_filter(self, tmp_path, capsys):
        spec_path = _spec_file(tmp_path)
        obs = tmp_path / "obs"
        assert main(["campaign", "run", str(spec_path), "--no-cache", "--obs-dir", str(obs)]) == 0
        capsys.readouterr()
        assert main(["obs", "runs", "--obs-dir", str(obs), "--status", "ok", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert len(entries) == 1 and entries[0]["status"] == "ok"
        assert main(["obs", "runs", "--obs-dir", str(obs), "--status", "error"]) == 0
        assert "(no runs recorded)" in capsys.readouterr().out

    def test_store_verify_json_reports_checked_corrupt_orphaned(self, tmp_path, capsys):
        spec_path = _spec_file(tmp_path)
        store = tmp_path / "store"
        argv = [
            "campaign", "run", str(spec_path), "--store", "--cache", str(store),
            "--obs-dir", str(tmp_path / "obs"),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["store", "verify", str(store), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["checked"] == report["entries"] == 4
        assert report["corrupt"] == 0
        assert report["orphaned"] == report["orphan_payloads"]
        assert report["clean"] is True

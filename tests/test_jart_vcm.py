"""Tests for the JART-style VCM compact model."""

from __future__ import annotations

import math

import pytest

from repro.devices import DeviceState, JartVcmModel, JartVcmParameters
from repro.devices.thermal import solve_operating_point
from repro.errors import DeviceModelError


class TestStateMapping:
    def test_disc_concentration_bounds(self, jart_model):
        p = jart_model.parameters
        assert jart_model.disc_concentration(0.0) == pytest.approx(p.n_disc_min_per_m3)
        assert jart_model.disc_concentration(1.0) == pytest.approx(p.n_disc_max_per_m3)

    def test_disc_concentration_clamps(self, jart_model):
        assert jart_model.disc_concentration(-1.0) == pytest.approx(
            jart_model.parameters.n_disc_min_per_m3
        )
        assert jart_model.disc_concentration(2.0) == pytest.approx(
            jart_model.parameters.n_disc_max_per_m3
        )

    def test_normalised_state_inverse(self, jart_model):
        for x in (0.0, 0.25, 0.5, 1.0):
            n = jart_model.disc_concentration(x)
            assert jart_model.normalised_state(n) == pytest.approx(x, abs=1e-9)


class TestResistances:
    def test_lrs_much_smaller_than_hrs(self, jart_model):
        assert jart_model.hrs_resistance_ohm() > 100 * jart_model.lrs_resistance_ohm()

    def test_resistance_window_above_hundred(self, jart_model):
        assert jart_model.resistance_window() > 100.0

    def test_disc_resistance_decreases_with_state(self, jart_model):
        assert jart_model.disc_resistance(1.0) < jart_model.disc_resistance(0.1)

    def test_ohmic_resistance_includes_series(self, jart_model):
        assert jart_model.ohmic_resistance(1.0) > jart_model.parameters.series_resistance_ohm


class TestCurrent:
    def test_zero_voltage_zero_current(self, jart_model):
        assert jart_model.current(0.0, DeviceState(0.5, 300.0)) == 0.0

    def test_polarity_antisymmetric(self, jart_model):
        state = DeviceState(0.5, 300.0)
        forward = jart_model.current(0.6, state)
        backward = jart_model.current(-0.6, state)
        assert backward == pytest.approx(-forward, rel=1e-6)

    def test_current_increases_with_voltage(self, jart_model):
        state = DeviceState(0.2, 300.0)
        currents = [jart_model.current(v, state) for v in (0.2, 0.4, 0.6, 0.8, 1.0)]
        assert all(b > a for a, b in zip(currents, currents[1:]))

    def test_current_increases_with_state(self, jart_model):
        low = jart_model.current(0.5, DeviceState(0.1, 300.0))
        high = jart_model.current(0.5, DeviceState(0.9, 300.0))
        assert high > low

    def test_current_increases_with_temperature_in_hrs(self, jart_model):
        cold = jart_model.current(0.5, DeviceState(0.0, 300.0))
        hot = jart_model.current(0.5, DeviceState(0.0, 400.0))
        assert hot > cold

    def test_lrs_current_at_set_voltage_in_expected_range(self, jart_model):
        # The calibration anchors the LRS current at V_SET in the hundreds of
        # microamps (Fig. 2a operating point).
        current = jart_model.current(1.05, DeviceState(1.0, 300.0))
        assert 100e-6 < current < 500e-6

    def test_current_respects_ohmic_bound(self, jart_model):
        state = DeviceState(1.0, 300.0)
        current = jart_model.current(1.05, state)
        assert current < 1.05 / jart_model.ohmic_resistance(1.0)

    def test_rejects_absurd_voltage(self, jart_model):
        with pytest.raises(DeviceModelError):
            jart_model.current(50.0, DeviceState(0.5, 300.0))

    def test_interface_voltage_positive_under_forward_bias(self, jart_model):
        assert jart_model.interface_voltage(0.5, DeviceState(0.0, 300.0)) > 0.0

    def test_driving_voltage_below_cell_voltage(self, jart_model):
        state = DeviceState(1.0, 300.0)
        assert 0.0 < jart_model.driving_voltage(1.05, state) < 1.05


class TestKinetics:
    def test_positive_voltage_sets(self, jart_model):
        state = DeviceState(0.0, 400.0)
        assert jart_model.state_derivative(0.6, state) > 0.0

    def test_negative_voltage_resets(self, jart_model):
        state = DeviceState(1.0, 400.0)
        assert jart_model.state_derivative(-0.6, state) < 0.0

    def test_no_motion_at_zero_bias(self, jart_model):
        assert jart_model.state_derivative(0.0, DeviceState(0.5, 500.0)) == 0.0

    def test_saturated_states_do_not_overshoot(self, jart_model):
        assert jart_model.state_derivative(0.8, DeviceState(1.0, 500.0)) == 0.0
        assert jart_model.state_derivative(-0.8, DeviceState(0.0, 500.0)) == 0.0

    def test_rate_exponential_in_temperature(self, jart_model):
        cold = jart_model.state_derivative(0.525, DeviceState(0.0, 300.0))
        hot = jart_model.state_derivative(0.525, DeviceState(0.0, 375.0))
        assert hot > 100.0 * cold

    def test_rate_strongly_nonlinear_in_voltage(self, jart_model):
        half = jart_model.state_derivative(0.525, DeviceState(0.0, 300.0))
        full = jart_model.state_derivative(1.05, DeviceState(0.0, 300.0))
        assert full > 50.0 * half

    def test_field_coefficient_positive(self, jart_model):
        assert jart_model.parameters.field_coefficient_k_per_v > 1000.0


class TestThermal:
    def test_equilibrium_temperature_matches_fig2a(self, jart_model):
        point = solve_operating_point(jart_model, 1.05, 1.0, 300.0)
        assert 850.0 < point.filament_temperature_k < 1050.0

    def test_half_selected_hrs_cell_barely_heats(self, jart_model):
        point = solve_operating_point(jart_model, 0.525, 0.0, 300.0)
        assert point.self_heating_k < 5.0

    def test_thermal_resistance_exposed(self, jart_model):
        assert jart_model.thermal_resistance_k_per_w() == pytest.approx(
            jart_model.parameters.rth_eff_k_per_w
        )


class TestParameters:
    def test_invalid_concentrations_rejected(self):
        with pytest.raises(DeviceModelError):
            JartVcmParameters(n_disc_min_per_m3=1e27, n_disc_max_per_m3=1e26)

    def test_barrier_lowering_must_stay_below_barrier(self):
        with pytest.raises(DeviceModelError):
            JartVcmParameters(barrier_height_ev=0.3, barrier_lowering_ev=0.3)

    def test_negative_prefactor_rejected(self):
        with pytest.raises(DeviceModelError):
            JartVcmParameters(set_rate_prefactor_per_s=-1.0)

    def test_filament_area(self):
        params = JartVcmParameters(filament_radius_m=10e-9)
        assert params.filament_area_m2 == pytest.approx(math.pi * 1e-16)

    def test_custom_parameters_change_behaviour(self, jart_model):
        slow = JartVcmModel(JartVcmParameters(set_rate_prefactor_per_s=1.2e14))
        state = DeviceState(0.0, 400.0)
        assert slow.state_derivative(0.6, state) < jart_model.state_derivative(0.6, state)

"""Tests of live campaign monitoring: heartbeat files and cross-process tails.

Covers the :class:`~repro.obs.live.HeartbeatWriter` file protocol (atomic
replace, monotone ``seq``, throttling, terminal statuses), the scope/null
idiom instrumented code uses, the runner/engine/adaptive hooks that populate
progress fields, and — the acceptance scenario — one process running a
campaign while a second process tails it via ``repro campaign status
--follow`` and observes monotonically increasing progress.
"""

from __future__ import annotations

import subprocess
import sys
import time
from pathlib import Path

import pytest

import numpy as np

from repro.campaign import CampaignRunner, CampaignSpec, ResultCache
from repro.campaign.cli import main
from repro.montecarlo import AdaptiveConfig, AdaptiveSampler
from repro.obs import (
    NULL_HEARTBEAT,
    HeartbeatWriter,
    RunLedger,
    disable_telemetry,
    find_heartbeats,
    follow_heartbeat,
    get_heartbeat,
    heartbeat_scope,
    read_heartbeat,
    render_heartbeat,
)

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture(autouse=True)
def _telemetry_off_after_each_test():
    yield
    disable_telemetry()


CAMPAIGN_SPEC = dict(
    name="live-campaign",
    simulation={"geometry": {"rows": 3, "columns": 3}},
    attack={"aggressors": [[1, 1]], "victim": [1, 2]},
    axes=[{"path": "attack.pulse.length_s", "values": [30e-9, 50e-9, 70e-9, 90e-9]}],
)


@pytest.fixture
def spec_path(tmp_path) -> Path:
    path = tmp_path / "spec.json"
    CampaignSpec(**CAMPAIGN_SPEC).to_json(path)
    return path


# ----------------------------------------------------------------------
# file protocol
# ----------------------------------------------------------------------


class TestHeartbeatWriter:
    def test_initial_write_is_immediate(self, tmp_path):
        path = tmp_path / "hb.json"
        writer = HeartbeatWriter(path, run_id="r1", label="campaign.run", total=4)
        state = read_heartbeat(path)
        assert state["run_id"] == "r1"
        assert state["status"] == "running"
        assert state["seq"] == 1
        assert state["done"] == 0 and state["total"] == 4
        assert state["pid"] and state["started_unix_s"] > 0
        writer.finish()

    def test_seq_is_monotone_and_finish_is_terminal(self, tmp_path):
        path = tmp_path / "hb.json"
        writer = HeartbeatWriter(path, total=2, min_interval_s=0.0)
        seqs = [read_heartbeat(path)["seq"]]
        writer.advance(1)
        seqs.append(read_heartbeat(path)["seq"])
        writer.finish("done", cached=2)
        state = read_heartbeat(path)
        seqs.append(state["seq"])
        assert seqs == sorted(seqs) and len(set(seqs)) == 3
        assert state["status"] == "done"
        assert state["cached"] == 2

    def test_throttle_skips_rapid_updates_but_keeps_state(self, tmp_path):
        path = tmp_path / "hb.json"
        writer = HeartbeatWriter(path, total=100, min_interval_s=60.0)
        first = read_heartbeat(path)["seq"]
        for _ in range(50):
            writer.advance(1)
        # Rapid updates inside the interval never hit the filesystem...
        assert read_heartbeat(path)["seq"] == first
        # ...but the accumulated state lands with the (forced) final write.
        writer.finish()
        state = read_heartbeat(path)
        assert state["done"] == 50
        assert state["seq"] == first + 1

    def test_eta_extrapolates_remaining_points(self, tmp_path):
        writer = HeartbeatWriter(tmp_path / "hb.json", total=4, min_interval_s=0.0)
        time.sleep(0.01)
        writer.advance(2)
        state = read_heartbeat(tmp_path / "hb.json")
        # Half done: ETA ~ elapsed.
        assert state["eta_s"] == pytest.approx(state["elapsed_s"], rel=1e-6)

    def test_eta_with_zero_observed_rate_is_none(self, tmp_path):
        """An all-cached resume reports done>0 at ~zero elapsed; the ETA
        must be "no estimate", not a division blowup or a bogus 0."""
        writer = HeartbeatWriter(tmp_path / "hb.json", total=4, min_interval_s=0.0)
        writer.advance(2)
        assert writer._eta(0.0) is None
        assert writer._eta(-1.0) is None
        # A positive elapsed with progress still extrapolates normally.
        assert writer._eta(1.0) == pytest.approx(1.0)
        writer.finish()

    def test_no_tmp_files_left_behind(self, tmp_path):
        writer = HeartbeatWriter(tmp_path / "hb.json", min_interval_s=0.0)
        for _ in range(5):
            writer.advance(1)
        writer.finish()
        assert [p.name for p in tmp_path.iterdir()] == ["hb.json"]

    def test_read_heartbeat_missing_file_returns_none(self, tmp_path):
        assert read_heartbeat(tmp_path / "absent.json") is None

    def test_find_heartbeats_keyed_by_run_id(self, tmp_path):
        HeartbeatWriter(tmp_path / "a.json", run_id="run-a").finish()
        HeartbeatWriter(tmp_path / "b.json", run_id="run-b").finish()
        found = find_heartbeats(tmp_path)
        assert set(found) == {"run-a", "run-b"}
        assert find_heartbeats(tmp_path / "nope") == {}


class TestFollowHeartbeat:
    def test_follow_yields_each_seq_then_stops_on_terminal(self, tmp_path):
        path = tmp_path / "hb.json"
        writer = HeartbeatWriter(path, total=2, min_interval_s=0.0)
        writer.advance(1)
        writer.finish("done")
        states = list(follow_heartbeat(path, poll_s=0.01, timeout_s=1.0))
        # Only the latest state is on disk, and it is terminal.
        assert len(states) == 1
        assert states[0]["status"] == "done"

    def test_follow_times_out_on_stalled_writer(self, tmp_path):
        path = tmp_path / "hb.json"
        HeartbeatWriter(path, total=10, min_interval_s=0.0)  # never finishes
        start = time.monotonic()
        states = list(follow_heartbeat(path, poll_s=0.01, timeout_s=0.2))
        assert time.monotonic() - start < 5.0
        assert len(states) == 1
        assert states[0]["status"] == "running"


class TestHeartbeatScope:
    def test_default_is_null_and_inert(self):
        hb = get_heartbeat()
        assert hb is NULL_HEARTBEAT
        assert not hb.enabled
        hb.update(done=1)
        hb.advance()
        hb.finish()

    def test_scope_installs_and_restores(self, tmp_path):
        writer = HeartbeatWriter(tmp_path / "hb.json")
        with heartbeat_scope(writer) as scoped:
            assert scoped is writer
            assert get_heartbeat() is writer
        assert get_heartbeat() is NULL_HEARTBEAT
        # The scope does not write a terminal status; the owner does.
        assert read_heartbeat(tmp_path / "hb.json")["status"] == "running"


class TestRenderHeartbeat:
    def test_render_includes_progress_fields(self):
        line = render_heartbeat(
            {
                "spec_name": "demo",
                "status": "running",
                "done": 3,
                "total": 8,
                "cached": 2,
                "samples": 64,
                "ci_half_width": 0.025,
                "worker_utilization": 0.5,
                "eta_s": 1.25,
                "elapsed_s": 0.75,
            }
        )
        assert line.startswith("[demo] running: 3/8 points")
        for token in ("cached=2", "samples=64", "ci_half_width=0.025", "util=50%", "eta=1.2s", "elapsed=0.8s"):
            assert token in line


# ----------------------------------------------------------------------
# instrumentation hooks
# ----------------------------------------------------------------------


class TestHeartbeatHooks:
    def test_campaign_runner_populates_heartbeat(self, tmp_path, spec_path):
        path = tmp_path / "hb.json"
        writer = HeartbeatWriter(path, min_interval_s=0.0)
        spec = CampaignSpec.from_json(spec_path)
        with heartbeat_scope(writer):
            CampaignRunner(spec, workers=2).run()
        writer.finish()
        state = read_heartbeat(path)
        assert state["spec_name"] == "live-campaign"
        assert state["total"] == 4
        assert state["done"] == 4
        assert state["failed"] == 0
        assert state["workers"] == 2
        assert 0.0 < state["worker_utilization"] <= 1.0

    def test_campaign_runner_reports_cache_hits(self, tmp_path, spec_path):
        spec = CampaignSpec.from_json(spec_path)
        cache = ResultCache(tmp_path / "cache")
        CampaignRunner(spec, cache=cache).run()
        path = tmp_path / "hb.json"
        writer = HeartbeatWriter(path, min_interval_s=0.0)
        with heartbeat_scope(writer):
            CampaignRunner(spec, cache=cache).run()
        writer.finish()
        state = read_heartbeat(path)
        assert state["cached"] == 4
        assert state["done"] == 4

    def test_adaptive_sampler_reports_ci_and_batches(self, tmp_path):
        path = tmp_path / "hb.json"
        writer = HeartbeatWriter(path, min_interval_s=0.0)
        rng = np.random.default_rng(0)

        def evaluate(index, n):
            return rng.uniform(size=n) < 0.5, None

        config = AdaptiveConfig(batch_size=32, n_max=64, target_half_width=1e-4)
        with heartbeat_scope(writer):
            AdaptiveSampler(config, evaluate).run()
        writer.finish()
        state = read_heartbeat(path)
        assert state["samples"] == 64
        assert state["batches"] == 2
        assert "ci_half_width" in state and "estimate" in state


# ----------------------------------------------------------------------
# cross-process acceptance scenario
# ----------------------------------------------------------------------


def _parse_progress(lines):
    """Extract the N of 'N/M points' from rendered heartbeat lines."""
    done = []
    for line in lines:
        if " points" not in line:
            continue
        fraction = line.split(":", 1)[1].strip().split(" ", 1)[0]
        done.append(int(fraction.split("/")[0]))
    return done


class TestTwoProcessFollow:
    @pytest.fixture
    def slow_spec_path(self, tmp_path) -> Path:
        """A spec slow enough (~seconds) for the tail to observe progress."""
        spec = dict(
            CAMPAIGN_SPEC,
            name="live-follow",
            axes=[
                {
                    "path": "attack.pulse.length_s",
                    "values": [float(30e-9 + 2e-9 * i) for i in range(12)],
                }
            ],
        )
        path = tmp_path / "slow-spec.json"
        CampaignSpec(**spec).to_json(path)
        return path

    def test_status_follow_tails_live_run_from_another_process(
        self, tmp_path, slow_spec_path, capsys
    ):
        """One process runs the campaign; this one tails its heartbeat."""
        obs = tmp_path / "obs"
        child = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "campaign",
                "run",
                str(slow_spec_path),
                "--no-cache",
                "--obs-dir",
                str(obs),
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            cwd=tmp_path,
            env={"PYTHONPATH": SRC_DIR, "PATH": "/usr/bin:/bin"},
        )
        try:
            code = main(
                [
                    "campaign",
                    "status",
                    str(slow_spec_path),
                    "--follow",
                    "--obs-dir",
                    str(obs),
                    "--poll",
                    "0.05",
                    "--timeout",
                    "120",
                ]
            )
        finally:
            child.wait(timeout=120)
        assert code == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.startswith("[live-follow]")]
        assert lines, f"no heartbeat lines in output:\n{out}"
        done = _parse_progress(lines)
        # Monotonically increasing progress, observed live across processes.
        assert done == sorted(done)
        assert done[-1] == 12
        assert any(d < 12 for d in done), "never saw an in-flight state"
        assert lines[-1].startswith("[live-follow] done:")
        assert child.returncode == 0
        # The run also landed in the shared ledger.
        entries = RunLedger(obs).entries()
        assert [e.spec_name for e in entries] == ["live-follow"]
        assert entries[0].status == "ok"

    def test_follow_with_no_live_run_fails_cleanly(self, tmp_path, spec_path, capsys):
        code = main(
            [
                "campaign",
                "status",
                str(spec_path),
                "--follow",
                "--obs-dir",
                str(tmp_path / "obs"),
                "--timeout",
                "0.3",
                "--poll",
                "0.05",
            ]
        )
        assert code == 1
        assert "no live run" in capsys.readouterr().out

    def test_follow_picks_up_finished_run(self, tmp_path, spec_path, capsys):
        obs = tmp_path / "obs"
        assert main(
            ["campaign", "run", str(spec_path), "--no-cache", "--obs-dir", str(obs)]
        ) == 0
        capsys.readouterr()
        code = main(
            [
                "campaign",
                "status",
                str(spec_path),
                "--follow",
                "--obs-dir",
                str(obs),
                "--timeout",
                "5",
                "--poll",
                "0.05",
            ]
        )
        assert code == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[-1].startswith("[live-campaign] done: 4/4 points")

    def test_obs_top_shows_latest_heartbeat(self, tmp_path, spec_path, capsys):
        obs = tmp_path / "obs"
        main(["campaign", "run", str(spec_path), "--no-cache", "--obs-dir", str(obs)])
        capsys.readouterr()
        assert main(["obs", "top", "latest", "--once", "--obs-dir", str(obs)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("[live-campaign] done: 4/4 points")

    def test_obs_top_unknown_run_fails(self, tmp_path, capsys):
        (tmp_path / "obs").mkdir()
        assert main(["obs", "top", "nope", "--once", "--obs-dir", str(tmp_path / "obs")]) == 1


# ----------------------------------------------------------------------
# sharded status
# ----------------------------------------------------------------------


class TestShardedStatus:
    def test_status_reports_per_shard_coverage(self, tmp_path, spec_path, capsys):
        cache = tmp_path / "cache"
        # Warm only the first half of the grid: shard 0 complete, shard 1 empty.
        half = dict(CAMPAIGN_SPEC, axes=[
            {"path": "attack.pulse.length_s", "values": [30e-9, 50e-9]}
        ])
        half_path = tmp_path / "half.json"
        CampaignSpec(**half).to_json(half_path)
        assert main(["campaign", "run", str(half_path), "--cache", str(cache)]) == 0
        capsys.readouterr()

        code = main(
            [
                "campaign",
                "status",
                str(spec_path),
                "--cache",
                str(cache),
                "--shard-size",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shards (2 points each):" in out
        assert "2/2 cached (complete)" in out
        assert "0/2 cached (partial)" in out

    def test_runner_status_payload_includes_shards(self, tmp_path, spec_path):
        spec = CampaignSpec.from_json(spec_path)
        spec.shard_size = 3
        payload = CampaignRunner(spec, cache=ResultCache(tmp_path / "cache")).status()
        assert payload["shard_size"] == 3
        assert [s["total"] for s in payload["shards"]] == [3, 1]
        assert all(s["cached"] == 0 for s in payload["shards"])

"""Tests for the transient engine, the memory controller and the read path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import (
    CrossbarArray,
    MemoryController,
    StimulusOperation,
    StimulusSchedule,
    StimulusSegment,
    TransientSimulator,
    read_margin,
    sneak_path_report,
    write_bias,
)
from repro.config import CrossbarGeometry, PulseConfig
from repro.errors import ConfigurationError


class TestTransient:
    def test_full_write_flips_target_and_only_target(self, small_crossbar):
        geometry = small_crossbar.geometry
        bias = write_bias(geometry, [(1, 1)], 1.05)
        schedule = StimulusSchedule()
        schedule.append(StimulusSegment(0.0, 5e-6, label="write", payload=bias))
        simulator = TransientSimulator(small_crossbar)
        result = simulator.run(schedule, stop_on_flip_of=(1, 1))
        flip = result.first_flip((1, 1))
        assert flip is not None
        assert flip.direction == "set"
        # No other cell flipped.
        assert all(event.cell == (1, 1) for event in result.flip_events)
        assert small_crossbar.get_state((1, 1)).x >= 0.5
        assert small_crossbar.get_state((0, 0)).x < 0.1

    def test_idle_schedule_changes_nothing(self, small_crossbar):
        schedule = StimulusSchedule()
        schedule.append(StimulusSegment(0.0, 1e-6, label="idle", payload=None))
        result = TransientSimulator(small_crossbar).run(schedule)
        assert not result.flip_events
        assert np.allclose(small_crossbar.state_map(), 0.0)

    def test_trace_records_requested_quantities(self, small_crossbar):
        bias = write_bias(small_crossbar.geometry, [(0, 0)], 1.05)
        schedule = StimulusSchedule()
        schedule.append(StimulusSegment(0.0, 1e-6, label="write", payload=bias))
        result = TransientSimulator(small_crossbar).run(schedule)
        assert len(result.trace) >= 1
        states = result.trace.cell_series((0, 0), "state")
        assert states[-1] >= states[0]
        assert result.trace.cell_series((0, 0), "temperature")[-1] > 0
        with pytest.raises(ConfigurationError):
            result.trace.cell_series((0, 0), "bogus")

    def test_invalid_payload_rejected(self, small_crossbar):
        schedule = StimulusSchedule()
        schedule.append(StimulusSegment(0.0, 1e-9, label="junk", payload="not-a-bias"))
        with pytest.raises(ConfigurationError):
            TransientSimulator(small_crossbar).run(schedule)

    def test_invalid_thresholds_rejected(self, small_crossbar):
        with pytest.raises(ConfigurationError):
            TransientSimulator(small_crossbar, flip_threshold=0.0)
        with pytest.raises(ConfigurationError):
            TransientSimulator(small_crossbar, max_dx_per_step=0.9)


class TestMemoryController:
    @pytest.fixture
    def controller(self, small_crossbar):
        return MemoryController(small_crossbar, write_pulse=PulseConfig(length_s=2e-6))

    def test_write_and_read_back_one(self, controller):
        outcome = controller.write((1, 1), 1)
        assert outcome.success
        assert outcome.pulses_used >= 1
        assert controller.read((1, 1)).bit == 1

    def test_write_zero_is_idempotent_on_fresh_cell(self, controller):
        outcome = controller.write((0, 2), 0)
        assert outcome.success
        assert outcome.pulses_used == 0
        assert controller.read((0, 2)).bit == 0

    def test_write_then_erase(self, controller):
        controller.write((1, 1), 1)
        outcome = controller.write((1, 1), 0)
        assert outcome.success
        assert controller.read((1, 1)).bit == 0

    def test_read_all_matches_bit_map(self, controller, small_crossbar):
        small_crossbar.set_bit((0, 0), 1)
        small_crossbar.set_bit((2, 2), 1)
        bits = controller.read_all()
        assert np.array_equal(bits, small_crossbar.bit_map())

    def test_read_reports_resistance(self, controller, small_crossbar):
        small_crossbar.set_bit((1, 0), 1)
        lrs_read = controller.read((1, 0))
        hrs_read = controller.read((1, 2))
        assert lrs_read.resistance_ohm < hrs_read.resistance_ohm

    def test_init_file_round_trip(self, controller, small_crossbar, tmp_path):
        pattern = np.array([[1, 0, 0], [0, 1, 0], [0, 0, 1]])
        controller.load_init(pattern)
        path = tmp_path / "init.json"
        controller.save_init(path)
        small_crossbar.initialise_states(default_x=0.0)
        controller.load_init(path)
        assert np.array_equal(small_crossbar.bit_map(), pattern)

    def test_run_stimuli_sequence(self, controller):
        operations = [
            StimulusOperation(kind="write", cell=(0, 0), value=1),
            StimulusOperation(kind="read", cell=(0, 0)),
            StimulusOperation(kind="hammer", cell=(0, 0), value=3),
        ]
        results = controller.run_stimuli(operations)
        assert results[0].success
        assert results[1].bit == 1
        assert len(results[2]) == 3  # three hammer segments scheduled

    def test_hammer_schedule_uses_write_bias(self, controller):
        schedule = controller.hammer((1, 1), 2)
        assert len(schedule) == 2
        assert schedule.segments[0].payload.nominal_cell_voltage((1, 1)) == pytest.approx(1.05)

    def test_invalid_inputs_rejected(self, controller):
        with pytest.raises(ConfigurationError):
            controller.write((0, 0), 2)
        with pytest.raises(ConfigurationError):
            controller.hammer((0, 0), 0)
        with pytest.raises(ConfigurationError):
            StimulusOperation(kind="erase", cell=(0, 0))


class TestReadout:
    def test_read_margin_separates_states(self, small_crossbar):
        margin = read_margin(small_crossbar, (1, 1))
        assert margin.ratio > 10.0
        assert margin.margin_a > 0.0
        assert margin.hrs_current_a < margin.midpoint_a < margin.lrs_current_a

    def test_read_margin_restores_states(self, small_crossbar):
        small_crossbar.set_bit((1, 1), 1)
        before = small_crossbar.state_map().copy()
        read_margin(small_crossbar, (1, 1))
        assert np.allclose(small_crossbar.state_map(), before)

    def test_sneak_paths_reduce_but_keep_window(self, small_crossbar):
        report = sneak_path_report(small_crossbar, (1, 1))
        assert report.sneak_current_a >= 0.0
        assert report.isolated_lrs_current_a > report.isolated_hrs_current_a
        assert not report.window_closed

    def test_sneak_paths_grow_with_array_size(self):
        small = CrossbarArray(geometry=CrossbarGeometry(rows=3, columns=3))
        large = CrossbarArray(geometry=CrossbarGeometry(rows=5, columns=5))
        assert (
            sneak_path_report(large, large.centre_cell()).sneak_current_a
            >= sneak_path_report(small, small.centre_cell()).sneak_current_a
        )

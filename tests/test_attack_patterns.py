"""Tests for the attack pattern definitions."""

from __future__ import annotations

import pytest

from repro.attack import (
    AttackPattern,
    HammerPhase,
    double_sided_column,
    double_sided_row,
    quad_surround,
    row_sweep,
    single_aggressor,
    standard_patterns,
)
from repro.config import CrossbarGeometry
from repro.errors import AttackError


class TestPatternFactories:
    def test_single_aggressor_defaults_to_centre(self, paper_geometry):
        pattern = single_aggressor(paper_geometry)
        assert pattern.aggressors == ((2, 2),)
        assert pattern.victim == (2, 3)
        assert pattern.shares_line_with_victim(pattern.aggressors[0])

    def test_double_sided_row_flanks_victim(self, paper_geometry):
        pattern = double_sided_row(paper_geometry)
        assert set(pattern.aggressors) == {(2, 1), (2, 3)}
        assert pattern.victim == (2, 2)
        assert pattern.phase_count == 1

    def test_double_sided_column_flanks_victim(self, paper_geometry):
        pattern = double_sided_column(paper_geometry)
        assert set(pattern.aggressors) == {(1, 2), (3, 2)}
        assert pattern.phase_count == 1

    def test_quad_uses_two_phases(self, paper_geometry):
        pattern = quad_surround(paper_geometry)
        assert pattern.aggressor_count == 4
        assert pattern.phase_count == 2
        for phase in pattern.phases:
            rows = {cell[0] for cell in phase.aggressors}
            columns = {cell[1] for cell in phase.aggressors}
            assert len(rows) == 1 or len(columns) == 1

    def test_row_sweep_covers_whole_row(self, paper_geometry):
        pattern = row_sweep(paper_geometry)
        assert pattern.aggressor_count == paper_geometry.columns - 1
        assert all(cell[0] == pattern.victim[0] for cell in pattern.aggressors)

    def test_standard_patterns_cover_expected_set(self, paper_geometry):
        patterns = standard_patterns(paper_geometry)
        assert set(patterns) == {"single", "double_row", "double_column", "quad", "row_sweep"}

    def test_edge_victim_reduces_pattern_set(self):
        geometry = CrossbarGeometry(rows=3, columns=3)
        patterns = standard_patterns(geometry, victim=(0, 0))
        assert "quad" not in patterns
        assert "single" in patterns

    def test_corner_victim_double_sided_rejected(self, paper_geometry):
        with pytest.raises(AttackError):
            double_sided_row(paper_geometry, victim=(0, 0))


class TestPatternValidation:
    def test_victim_cannot_be_aggressor(self):
        with pytest.raises(AttackError):
            AttackPattern(name="bad", victim=(1, 1), aggressors=((1, 1),))

    def test_phases_must_cover_aggressors(self):
        with pytest.raises(AttackError):
            AttackPattern(
                name="bad",
                victim=(0, 0),
                aggressors=((0, 1), (1, 0)),
                phases=(HammerPhase(((0, 1),)),),
            )

    def test_default_phases_are_one_per_aggressor(self):
        pattern = AttackPattern(name="p", victim=(0, 0), aggressors=((0, 1), (1, 0)))
        assert pattern.phase_count == 2

    def test_validate_rejects_pattern_that_full_selects_victim(self, paper_geometry):
        pattern = AttackPattern(
            name="bad",
            victim=(2, 2),
            aggressors=((2, 1), (1, 2)),
            phases=(HammerPhase(((2, 1), (1, 2))),),
        )
        with pytest.raises(AttackError):
            pattern.validate(paper_geometry)

    def test_validate_rejects_unintended_full_selects(self, paper_geometry):
        pattern = AttackPattern(
            name="bad",
            victim=(0, 4),
            aggressors=((1, 1), (2, 2)),
            phases=(HammerPhase(((1, 1), (2, 2))),),
        )
        with pytest.raises(AttackError):
            pattern.validate(paper_geometry)

    def test_validate_rejects_out_of_range_cells(self, small_geometry):
        from repro.errors import GeometryError

        pattern = AttackPattern(name="p", victim=(0, 0), aggressors=((0, 4),))
        with pytest.raises(GeometryError):
            pattern.validate(small_geometry)

    def test_empty_phase_rejected(self):
        with pytest.raises(AttackError):
            HammerPhase(())

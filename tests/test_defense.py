"""Tests for the countermeasure suite."""

from __future__ import annotations

import pytest

from repro.config import CrossbarGeometry, PulseConfig
from repro.defense import (
    HammerCounterDetector,
    ProbabilisticRefresh,
    RefreshPolicy,
    ThermalGuard,
    ThermalGuardPolicy,
    evaluate_defenses,
    minimum_refresh_interval,
    neighbour_cells,
    pulses_survivable_with_refresh,
    refresh_cell,
)
from repro.devices import DeviceState, JartVcmModel
from repro.errors import ConfigurationError
from repro.thermal import AnalyticCouplingModel


class TestDetection:
    def test_neighbour_cells_of_centre(self, paper_geometry):
        assert set(neighbour_cells(paper_geometry, (2, 2))) == {(2, 1), (2, 3), (1, 2), (3, 2)}

    def test_neighbour_cells_of_corner(self, paper_geometry):
        assert set(neighbour_cells(paper_geometry, (0, 0))) == {(0, 1), (1, 0)}

    def test_counter_triggers_at_threshold(self, paper_geometry):
        detector = HammerCounterDetector(paper_geometry, threshold=10, window_writes=1000)
        triggers = [detector.observe_write((2, 2)) for _ in range(25)]
        fired = [t for t in triggers if t is not None]
        assert len(fired) == 2  # at write 10 and write 20
        assert fired[0].victim_cells == neighbour_cells(paper_geometry, (2, 2))

    def test_counter_ignores_distributed_writes(self, paper_geometry):
        detector = HammerCounterDetector(paper_geometry, threshold=10, window_writes=1000)
        for index in range(30):
            cell = (index % 5, (index // 5) % 5)
            assert detector.observe_write(cell) is None

    def test_window_reset_clears_counters(self, paper_geometry):
        detector = HammerCounterDetector(paper_geometry, threshold=10, window_writes=12)
        # Six hammer writes, then six unrelated writes roll the window over,
        # then six more hammer writes: no single window sees ten of them.
        for _ in range(6):
            detector.observe_write((2, 2))
        for index in range(6):
            detector.observe_write((0, index % 5))
        for _ in range(6):
            detector.observe_write((2, 2))
        assert detector.writes_observed() == 18
        assert len(detector.requests) == 0

    def test_counter_invalid_config(self, paper_geometry):
        with pytest.raises(ConfigurationError):
            HammerCounterDetector(paper_geometry, threshold=0)
        with pytest.raises(ConfigurationError):
            HammerCounterDetector(paper_geometry, threshold=100, window_writes=10)

    def test_probabilistic_refresh_rate(self, paper_geometry):
        para = ProbabilisticRefresh(paper_geometry, probability=0.01, seed=7)
        for _ in range(10_000):
            para.observe_write((2, 2))
        assert 50 <= len(para.requests) <= 200
        assert para.expected_writes_between_refreshes() == pytest.approx(100.0)

    def test_probabilistic_refresh_deterministic_with_seed(self, paper_geometry):
        a = ProbabilisticRefresh(paper_geometry, probability=0.05, seed=42)
        b = ProbabilisticRefresh(paper_geometry, probability=0.05, seed=42)
        for _ in range(200):
            a.observe_write((1, 1))
            b.observe_write((1, 1))
        assert len(a.requests) == len(b.requests)


class TestRefresh:
    def test_refresh_rewrites_drifted_cell(self, jart_model):
        state = DeviceState(x=0.3, filament_temperature_k=350.0)
        outcome = refresh_cell(jart_model, state, stored_bit=0, policy=RefreshPolicy(), ambient_temperature_k=300.0)
        assert outcome.rewritten
        assert state.x == pytest.approx(0.0)
        assert state.filament_temperature_k == pytest.approx(300.0)

    def test_refresh_skips_clean_cell(self, jart_model):
        state = DeviceState(x=0.01, filament_temperature_k=300.0)
        outcome = refresh_cell(jart_model, state, stored_bit=0, policy=RefreshPolicy(), ambient_temperature_k=300.0)
        assert not outcome.rewritten

    def test_refresh_interval_logic(self):
        assert pulses_survivable_with_refresh(pulses_to_flip=5000, refresh_interval_pulses=1000)
        assert not pulses_survivable_with_refresh(pulses_to_flip=5000, refresh_interval_pulses=10_000)
        assert minimum_refresh_interval(5000) == 2500
        with pytest.raises(ConfigurationError):
            minimum_refresh_interval(0)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            RefreshPolicy(interval_pulses=0)
        with pytest.raises(ConfigurationError):
            RefreshPolicy(rewrite_threshold_x=2.0)


class TestThermalGuard:
    @pytest.fixture
    def guard(self, paper_geometry):
        return ThermalGuard(
            paper_geometry,
            AnalyticCouplingModel(paper_geometry),
            policy=ThermalGuardPolicy(max_neighbour_rise_k=10.0, averaging_window_s=10e-6),
            aggressor_rise_k=650.0,
        )

    def test_first_write_allowed(self, guard):
        decision = guard.request_write((2, 2), time_s=0.0, pulse_length_s=50e-9)
        assert decision.allowed

    def test_sustained_hammering_gets_throttled(self, guard):
        time_s = 0.0
        throttled = False
        for _ in range(10_000):
            decision = guard.request_write((2, 2), time_s=time_s, pulse_length_s=50e-9)
            if not decision.allowed:
                throttled = True
                break
            time_s += 100e-9
        assert throttled
        assert guard.throttled_writes >= 1

    def test_slow_writes_never_throttled(self, guard):
        time_s = 0.0
        for _ in range(200):
            decision = guard.request_write((2, 2), time_s=time_s, pulse_length_s=50e-9)
            assert decision.allowed
            time_s += 10e-6  # very low duty cycle
        assert guard.throttled_writes == 0

    def test_duty_cycle_limit_below_attack_duty_cycle(self, guard):
        limit = guard.maximum_sustained_duty_cycle((2, 2))
        assert 0.0 < limit < 0.5

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            ThermalGuardPolicy(max_neighbour_rise_k=0.0)


class TestDefenseEvaluation:
    @pytest.fixture(scope="class")
    def evaluation(self):
        return evaluate_defenses(pulse=PulseConfig(length_s=50e-9), max_pulses=2_000_000)

    def test_baseline_attack_succeeds(self, evaluation):
        assert evaluation.baseline.flipped

    def test_all_defences_evaluated(self, evaluation):
        names = {outcome.name for outcome in evaluation.outcomes}
        assert names == {"v_third_bias", "victim_refresh", "thermal_guard", "secded_ecc"}

    def test_refresh_defeats_attack(self, evaluation):
        assert evaluation.outcome("victim_refresh").attack_defeated

    def test_v_third_slows_attack_substantially(self, evaluation):
        outcome = evaluation.outcome("v_third_bias")
        assert outcome.attack_defeated or outcome.slowdown_factor > 10.0

    def test_thermal_guard_limits_duty_cycle(self, evaluation):
        outcome = evaluation.outcome("thermal_guard")
        assert outcome.attack_defeated

    def test_ecc_survives_but_doubles_cost(self, evaluation):
        outcome = evaluation.outcome("secded_ecc")
        assert not outcome.attack_defeated
        assert outcome.slowdown_factor == pytest.approx(2.0)

    def test_unknown_defence_lookup_rejected(self, evaluation):
        with pytest.raises(ConfigurationError):
            evaluation.outcome("does_not_exist")

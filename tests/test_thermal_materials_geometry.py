"""Tests for the material library and the crossbar voxelisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CrossbarGeometry, ThermalSolverConfig
from repro.errors import ConfigurationError, GeometryError
from repro.thermal import (
    DEFAULT_STACK,
    HAFNIUM_OXIDE,
    PLATINUM,
    REGION_BOTTOM_ELECTRODE,
    REGION_FILAMENT,
    REGION_OXIDE,
    REGION_SUBSTRATE,
    REGION_TOP_ELECTRODE,
    Material,
    build_voxel_model,
    filament_material,
)


class TestMaterials:
    def test_default_stack_complete(self):
        roles = DEFAULT_STACK.as_dict()
        assert set(roles) == {
            "substrate", "insulator", "bottom_electrode", "oxide", "top_electrode", "ambient"
        }
        assert all(material.thermal_conductivity_w_per_mk > 0 for material in roles.values())

    def test_electrodes_are_conductors_oxide_is_not(self):
        assert PLATINUM.is_conductor
        assert not HAFNIUM_OXIDE.is_conductor

    def test_invalid_material_rejected(self):
        with pytest.raises(ConfigurationError):
            Material("bad", thermal_conductivity_w_per_mk=0.0)
        with pytest.raises(ConfigurationError):
            Material("bad", thermal_conductivity_w_per_mk=1.0, electrical_conductivity_s_per_m=-1.0)

    def test_filament_material_carries_target_current(self):
        material = filament_material(
            target_current_a=290e-6, voltage_v=1.05, filament_radius_m=15e-9, filament_height_m=5e-9
        )
        area = np.pi * (15e-9) ** 2
        resistance = 5e-9 / (material.electrical_conductivity_s_per_m * area)
        assert 1.05 / resistance == pytest.approx(290e-6, rel=1e-6)

    def test_filament_material_wiedemann_franz_floor(self):
        material = filament_material(1e-6, 1.05, 15e-9, 5e-9)
        assert material.thermal_conductivity_w_per_mk >= HAFNIUM_OXIDE.thermal_conductivity_w_per_mk

    def test_filament_material_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            filament_material(-1e-6, 1.0, 15e-9, 5e-9)


class TestVoxelModel:
    @pytest.fixture
    def model(self, thin_stack_geometry, coarse_thermal_config):
        return build_voxel_model(thin_stack_geometry, coarse_thermal_config)

    def test_every_cell_has_a_filament(self, model, thin_stack_geometry):
        assert set(model.filament_masks) == set(thin_stack_geometry.iter_cells())
        for mask in model.filament_masks.values():
            assert mask.any()

    def test_regions_present(self, model):
        present = set(np.unique(model.region))
        assert {REGION_SUBSTRATE, REGION_BOTTOM_ELECTRODE, REGION_OXIDE,
                REGION_FILAMENT, REGION_TOP_ELECTRODE} <= present

    def test_conductivities_positive_everywhere_thermally(self, model):
        assert np.all(model.kappa > 0.0)

    def test_oxide_is_electrically_insulating(self, model):
        assert np.all(model.sigma[model.region == REGION_OXIDE] == 0.0)
        assert np.all(model.sigma[model.region == REGION_SUBSTRATE] == 0.0)

    def test_electrodes_are_electrically_conducting(self, model):
        assert np.all(model.sigma[model.region == REGION_TOP_ELECTRODE] > 0.0)
        assert np.all(model.sigma[model.region == REGION_BOTTOM_ELECTRODE] > 0.0)

    def test_probe_index_lies_in_filament(self, model):
        for cell in model.filament_masks:
            index = model.probe_index(cell)
            assert model.filament_masks[cell][index]

    def test_line_masks_have_expected_region(self, model):
        top = model.top_line_mask(1)
        bottom = model.bottom_line_mask(1)
        assert top.any() and bottom.any()
        assert np.all(model.region[top] == REGION_TOP_ELECTRODE)
        assert np.all(model.region[bottom] == REGION_BOTTOM_ELECTRODE)

    def test_unknown_cell_rejected(self, model):
        with pytest.raises(GeometryError):
            model.filament_indices((9, 9))

    def test_layer_spans_cover_z_axis(self, model):
        spans = sorted(model.layer_spans.values())
        assert spans[0][0] == 0
        assert spans[-1][1] == model.z_axis.count
        # Layers must be contiguous and non-overlapping.
        for (start_a, stop_a), (start_b, stop_b) in zip(spans, spans[1:]):
            assert stop_a == start_b

    def test_lrs_cells_selection_changes_filament_conductivity(self, thin_stack_geometry, coarse_thermal_config):
        selected = (1, 1)
        model = build_voxel_model(
            thin_stack_geometry, coarse_thermal_config, lrs_cells=[selected], hrs_conductivity_ratio=1e-3
        )
        lrs_sigma = model.sigma[model.filament_masks[selected]].max()
        hrs_sigma = model.sigma[model.filament_masks[(0, 0)]].max()
        assert lrs_sigma > 100.0 * hrs_sigma

    def test_axis_helpers(self, model):
        axis = model.x_axis
        assert axis.count == len(axis.centres_m)
        assert axis.length_m == pytest.approx(float(axis.widths_m.sum()))
        assert axis.locate(axis.centres_m[0]) == 0
        assert axis.locate(axis.centres_m[-1]) == axis.count - 1

    def test_voxel_volume_positive(self, model):
        assert model.voxel_volume_m3(0, 0, 0) > 0.0

    def test_region_fraction_sums_to_one(self, model):
        total = sum(model.region_fraction(code) for code in np.unique(model.region))
        assert total == pytest.approx(1.0)

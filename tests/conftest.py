"""Shared fixtures for the test suite.

The fixtures favour small geometries and coarse grids so the whole suite
stays fast while still exercising every code path of the full-size setup.
"""

from __future__ import annotations

import pytest

from repro.circuit import CrossbarArray
from repro.config import CrossbarGeometry, PulseConfig, ThermalSolverConfig, WireParameters
from repro.devices import JartVcmModel, LinearIonDriftModel
from repro.thermal import AnalyticCouplingModel


@pytest.fixture(autouse=True)
def _obs_dir_in_tmp(tmp_path, monkeypatch):
    """Point the run ledger at a per-test tmp dir.

    CLI invocations now record every run under the obs dir; without this,
    tests calling ``main()`` would litter ``.repro-obs`` into the repo
    working directory.
    """
    monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "repro-obs"))


@pytest.fixture(autouse=True)
def _no_inherited_faults(monkeypatch):
    """Strip any ambient fault-injection plan (see :mod:`repro.faults`).

    A ``REPRO_FAULTS`` value leaking in from the environment (e.g. a chaos
    run in the same shell) would make unrelated campaign tests raise, hang
    or kill their workers.  Tests that *want* injection set the variable
    themselves via ``monkeypatch.setenv``.
    """
    monkeypatch.delenv("REPRO_FAULTS", raising=False)


@pytest.fixture(scope="session")
def jart_model() -> JartVcmModel:
    """The default JART-style VCM model (stateless, safe to share)."""
    return JartVcmModel()


@pytest.fixture(scope="session")
def drift_model() -> LinearIonDriftModel:
    """The linear-ion-drift baseline model."""
    return LinearIonDriftModel()


@pytest.fixture
def paper_geometry() -> CrossbarGeometry:
    """The paper's 5x5 / 50 nm spacing crossbar."""
    return CrossbarGeometry()


@pytest.fixture
def small_geometry() -> CrossbarGeometry:
    """A 3x3 crossbar for fast structural tests."""
    return CrossbarGeometry(rows=3, columns=3)


@pytest.fixture
def coarse_thermal_config() -> ThermalSolverConfig:
    """A coarse finite-volume grid for fast thermal tests."""
    return ThermalSolverConfig(lateral_resolution_m=40e-9, vertical_resolution_m=40e-9)


@pytest.fixture
def thin_stack_geometry() -> CrossbarGeometry:
    """A 3x3 crossbar with a thin substrate to keep the voxel count small."""
    return CrossbarGeometry(
        rows=3,
        columns=3,
        substrate_thickness_m=80e-9,
        insulator_thickness_m=40e-9,
    )


@pytest.fixture
def paper_crossbar(paper_geometry) -> CrossbarArray:
    """A 5x5 crossbar array with the default device model and coupling."""
    return CrossbarArray(geometry=paper_geometry)


@pytest.fixture
def small_crossbar(small_geometry) -> CrossbarArray:
    """A 3x3 crossbar array for fast circuit tests."""
    return CrossbarArray(geometry=small_geometry)


@pytest.fixture
def default_pulse() -> PulseConfig:
    """The paper's default hammer pulse (1.05 V, 50 ns, 50 % duty cycle)."""
    return PulseConfig(length_s=50e-9)

"""Sparse vectorized nodal solver vs. the legacy dense reference path.

Mirrors the PR-2 scalar-vs-vectorized harness of ``tests/test_montecarlo.py``:
the array-native :class:`CrossbarSolver` must reproduce the seed
:class:`ReferenceCrossbarSolver` element-for-element — node voltages, device
voltages, device currents and residual behaviour — within 1e-9 relative
tolerance across random geometries, bias patterns and mixed HRS/LRS states.
In practice the two paths track each other to ~1e-13 (dense vs. sparse LU
rounding); the 1e-9 budget is the acceptance criterion.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import (
    BiasPattern,
    CrossbarSolver,
    ReferenceCrossbarSolver,
    build_crossbar_netlist,
    write_bias,
)
from repro.config import CrossbarGeometry, WireParameters
from repro.devices import (
    DeviceState,
    DeviceStateArrays,
    JartVcmModel,
    LinearIonDriftModel,
    ScalarBatchedModel,
    YakopcicModel,
)
from repro.errors import ConfigurationError

RTOL = 1e-9
#: Absolute floors: node voltages live on ~1 V scales, device currents on
#: ~1e-6..1e-3 A scales; entries near zero are compared against these floors.
ATOL_V = 1e-12
ATOL_A = 1e-15


def random_states(rng: np.random.Generator, geometry: CrossbarGeometry) -> DeviceStateArrays:
    """Mixed HRS/LRS states with randomised temperatures."""
    states = DeviceStateArrays(geometry.rows, geometry.columns)
    states.x[...] = rng.choice([0.0, 1.0, 0.3, 0.8], size=states.shape)
    states.temperature_k[...] = rng.uniform(300.0, 700.0, size=states.shape)
    return states


def random_bias(rng: np.random.Generator, geometry: CrossbarGeometry) -> BiasPattern:
    """Random driven/floating line voltages (floating with 20 % probability)."""

    def line_voltages(count: int):
        voltages = {}
        for i in range(count):
            if rng.uniform() < 0.2:
                voltages[i] = None
            else:
                voltages[i] = float(rng.uniform(-1.2, 1.2))
        return voltages

    return BiasPattern(
        row_voltages_v=line_voltages(geometry.rows),
        column_voltages_v=line_voltages(geometry.columns),
        label="random",
    )


def assert_same_operating_point(fast, reference):
    np.testing.assert_allclose(
        fast.device_voltages_v, reference.device_voltages_v, rtol=RTOL, atol=ATOL_V
    )
    np.testing.assert_allclose(
        fast.device_currents_a, reference.device_currents_a, rtol=RTOL, atol=ATOL_A
    )
    np.testing.assert_allclose(
        fast.device_powers_w, reference.device_powers_w, rtol=RTOL, atol=ATOL_V * ATOL_A
    )
    for name, value in reference.node_voltages_v.items():
        assert fast.node_voltages_v[name] == pytest.approx(value, rel=RTOL, abs=ATOL_V)


class TestSparseSolverAgreement:
    def test_property_random_geometries_biases_and_states(self):
        """The headline property: element-for-element agreement on seeded cases."""
        rng = np.random.default_rng(2024)
        model = JartVcmModel()
        for case in range(12):
            rows = int(rng.integers(2, 6))
            columns = int(rng.integers(2, 6))
            geometry = CrossbarGeometry(rows=rows, columns=columns)
            wires = WireParameters(
                segment_resistance_ohm=float(rng.uniform(0.5, 50.0)),
                driver_resistance_ohm=float(rng.uniform(10.0, 500.0)),
            )
            netlist = build_crossbar_netlist(geometry, wires)
            states = random_states(rng, geometry)
            bias = random_bias(rng, geometry)

            fast = CrossbarSolver(netlist, model)
            reference = ReferenceCrossbarSolver(netlist, model)
            fast_op = fast.solve(bias, states)
            ref_op = reference.solve(bias, states.as_mapping())

            assert_same_operating_point(fast_op, ref_op)
            assert fast_op.iterations == ref_op.iterations, f"case {case}"
            assert fast_op.residual_a < fast.residual_tolerance_a
            assert ref_op.residual_a < reference.residual_tolerance_a

    @pytest.mark.parametrize("model_factory", [JartVcmModel, LinearIonDriftModel, YakopcicModel])
    def test_agreement_across_device_models(self, model_factory):
        rng = np.random.default_rng(7)
        model = model_factory()
        geometry = CrossbarGeometry(rows=4, columns=3)
        netlist = build_crossbar_netlist(geometry)
        states = random_states(rng, geometry)
        if isinstance(model, YakopcicModel):
            # The Yakopcic conduction term vanishes at x = 0 (open circuit);
            # keep every lane at a finite conductance as the model's own
            # hrs_state does.
            states.x[...] = np.maximum(states.x, 0.01)
        bias = write_bias(geometry, [(1, 1)], 1.0)

        fast_op = CrossbarSolver(netlist, model).solve(bias, states)
        ref_op = ReferenceCrossbarSolver(netlist, model).solve(bias, states.as_mapping())
        assert_same_operating_point(fast_op, ref_op)

    def test_mapping_and_array_states_give_identical_results(self, small_geometry):
        model = JartVcmModel()
        netlist = build_crossbar_netlist(small_geometry)
        rng = np.random.default_rng(3)
        states = random_states(rng, small_geometry)
        bias = write_bias(small_geometry, [(1, 1)], 1.05)

        from_arrays = CrossbarSolver(netlist, model).solve(bias, states)
        legacy_mapping = {
            cell: DeviceState(float(states.x[cell]), float(states.temperature_k[cell]))
            for cell in small_geometry.iter_cells()
        }
        from_mapping = CrossbarSolver(netlist, model).solve(bias, legacy_mapping)
        np.testing.assert_array_equal(from_arrays.device_voltages_v, from_mapping.device_voltages_v)
        np.testing.assert_array_equal(from_arrays.device_currents_a, from_mapping.device_currents_a)

    def test_sparse_and_dense_backends_agree(self, small_geometry):
        pytest.importorskip("scipy")
        model = JartVcmModel()
        netlist = build_crossbar_netlist(small_geometry)
        states = DeviceStateArrays(small_geometry.rows, small_geometry.columns)
        states.x[1, 1] = 1.0
        bias = write_bias(small_geometry, [(1, 1)], 1.05)

        sparse = CrossbarSolver(netlist, model, backend="sparse")
        dense = CrossbarSolver(netlist, model, backend="dense")
        op_sparse = sparse.solve(bias, states)
        op_dense = dense.solve(bias, states)
        assert sparse.last_backend == "sparse"
        assert dense.last_backend == "dense"
        np.testing.assert_allclose(
            op_sparse.device_voltages_v, op_dense.device_voltages_v, rtol=RTOL, atol=ATOL_V
        )

    def test_auto_backend_crossover(self, small_geometry):
        pytest.importorskip("scipy")
        model = JartVcmModel()
        netlist = build_crossbar_netlist(small_geometry)
        states = DeviceStateArrays(small_geometry.rows, small_geometry.columns)
        bias = write_bias(small_geometry, [(0, 0)], 0.8)
        # 3x3 -> 24 nodes: auto picks dense below the crossover ...
        auto = CrossbarSolver(netlist, model)
        auto.solve(bias, states)
        assert auto.last_backend == "dense"
        # ... and sparse once the crossover is lowered below the node count.
        forced = CrossbarSolver(netlist, model, dense_crossover_nodes=10)
        forced.solve(bias, states)
        assert forced.last_backend == "sparse"

    def test_unknown_backend_rejected(self, small_geometry):
        netlist = build_crossbar_netlist(small_geometry)
        with pytest.raises(ConfigurationError):
            CrossbarSolver(netlist, JartVcmModel(), backend="magic")

    def test_state_shape_mismatch_rejected(self, small_geometry):
        netlist = build_crossbar_netlist(small_geometry)
        solver = CrossbarSolver(netlist, JartVcmModel())
        wrong = DeviceStateArrays(small_geometry.rows + 1, small_geometry.columns)
        with pytest.raises(ConfigurationError):
            solver.solve(write_bias(small_geometry, [(0, 0)], 0.5), wrong)

    def test_node_voltage_map_behaves_like_the_legacy_dict(self, small_geometry):
        netlist = build_crossbar_netlist(small_geometry)
        states = DeviceStateArrays(small_geometry.rows, small_geometry.columns)
        op = CrossbarSolver(netlist, JartVcmModel()).solve(
            write_bias(small_geometry, [(1, 1)], 1.05), states
        )
        assert op.node_voltages_v["gnd"] == 0.0
        assert len(op.node_voltages_v) == netlist.node_count + 1
        assert set(op.node_voltages_v) == set(netlist.nodes) | {"gnd"}
        as_dict = dict(op.node_voltages_v)
        assert as_dict["wl_1_1"] == op.node_voltages_v["wl_1_1"]
        with pytest.raises(KeyError):
            op.node_voltages_v["no_such_node"]

    def test_warm_start_reuses_previous_solution(self, small_geometry):
        netlist = build_crossbar_netlist(small_geometry)
        solver = CrossbarSolver(netlist, JartVcmModel())
        states = DeviceStateArrays(small_geometry.rows, small_geometry.columns)
        bias = write_bias(small_geometry, [(1, 1)], 1.05)
        first = solver.solve(bias, states)
        second = solver.solve(bias, states)
        assert second.iterations <= first.iterations
        assert second.cell_voltage((1, 1)) == pytest.approx(first.cell_voltage((1, 1)), abs=1e-6)


class TestBatchedModelKernels:
    """The batched kernels must mirror their scalar models element-for-element."""

    def _grids(self, seed: int):
        rng = np.random.default_rng(seed)
        voltage = rng.uniform(-1.5, 1.5, 64)
        voltage[:4] = [0.0, 1e-6, -1e-6, 1.2]
        x = rng.uniform(0.0, 1.0, 64)
        x[:4] = [0.0, 1.0, 0.5, 0.01]
        temperature = rng.uniform(250.0, 900.0, 64)
        return voltage, x, temperature

    @pytest.mark.parametrize(
        "model_factory", [JartVcmModel, LinearIonDriftModel, YakopcicModel]
    )
    def test_batched_matches_scalar(self, model_factory):
        model = model_factory()
        batched = model.batched()
        voltage, x, temperature = self._grids(11)
        for name in ("current", "conductance", "state_derivative"):
            batch_values = getattr(batched, name)(voltage, x, temperature)
            scalar_values = np.array(
                [
                    getattr(model, name)(float(v), DeviceState(float(xi), float(ti)))
                    for v, xi, ti in zip(voltage, x, temperature)
                ]
            )
            np.testing.assert_allclose(
                batch_values, scalar_values, rtol=RTOL, atol=1e-30, err_msg=name
            )

    def test_batched_kernels_are_cached(self):
        model = JartVcmModel()
        assert model.batched() is model.batched()

    def test_scalar_fallback_adapter_matches_native_kernel(self):
        model = JartVcmModel()
        fallback = ScalarBatchedModel(model)
        native = model.batched()
        voltage, x, temperature = self._grids(23)
        np.testing.assert_allclose(
            fallback.current(voltage, x, temperature),
            native.current(voltage, x, temperature),
            rtol=RTOL,
            atol=1e-30,
        )

    def test_custom_scalar_models_fall_back_to_the_loop_adapter(self):
        class ToyModel(LinearIonDriftModel):
            def _make_batched(self):  # pretend there is no native kernel
                return super(LinearIonDriftModel, self)._make_batched()

        model = ToyModel()
        assert isinstance(model.batched(), ScalarBatchedModel)
        netlist = build_crossbar_netlist(CrossbarGeometry(rows=2, columns=2))
        states = DeviceStateArrays(2, 2)
        op = CrossbarSolver(netlist, model).solve(
            write_bias(CrossbarGeometry(rows=2, columns=2), [(0, 0)], 1.0), states
        )
        ref = ReferenceCrossbarSolver(netlist, LinearIonDriftModel()).solve(
            write_bias(CrossbarGeometry(rows=2, columns=2), [(0, 0)], 1.0), states.as_mapping()
        )
        assert_same_operating_point(op, ref)

"""Tests for the figure-reproduction experiments (reduced, fast operating points).

The full-size sweeps are exercised by the benchmark harness; these tests run
smaller versions of each experiment so the shapes are continuously verified
by the plain test suite as well.
"""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    FIG2A_PAPER_REFERENCE,
    calibration_report,
    decades_spanned,
    monotonically_decreasing,
    run_bias_scheme_ablation,
    run_device_model_ablation,
    run_fig2a,
    run_fig3a,
    run_fig3b,
    run_fig3c,
    run_fig3d,
    run_scenarios,
    fig2a_experiment,
)


class TestFig2a:
    def test_circuit_method_matches_paper_regime(self):
        outcome = run_fig2a(method="circuit")
        assert outcome.aggressor_temperature_k == pytest.approx(
            FIG2A_PAPER_REFERENCE["aggressor_k"], rel=0.15
        )
        assert (
            FIG2A_PAPER_REFERENCE["diagonal_neighbour_min_k"] - 25.0
            <= outcome.same_line_neighbour_k
            <= FIG2A_PAPER_REFERENCE["same_line_neighbour_max_k"] + 25.0
        )

    def test_network_method_runs(self):
        outcome = run_fig2a(method="network")
        assert outcome.aggressor_temperature_k > 600.0

    def test_unknown_method_rejected(self):
        with pytest.raises(ExperimentError):
            run_fig2a(method="comsol")

    def test_experiment_wrapper_exposes_metadata(self):
        result = fig2a_experiment()
        assert result.name == "fig2a"
        assert len(result.rows) == 5
        assert result.metadata["aggressor_temperature_k"] > 800.0


class TestFig3Sweeps:
    def test_fig3a_reduced_sweep_shape(self):
        result = run_fig3a(pulse_lengths_s=(10e-9, 50e-9, 100e-9))
        pulses = [float(v) for v in result.column("pulses_to_flip")]
        assert all(result.column("flipped"))
        assert monotonically_decreasing(pulses)
        assert 0.5 <= decades_spanned(pulses) <= 1.5

    def test_fig3b_reduced_sweep_shape(self):
        result = run_fig3b(spacings_m=(10e-9, 90e-9), pulse_lengths_s=(50e-9,))
        pulses = {row["electrode_spacing_nm"]: row["pulses_to_flip"] for row in result.rows}
        assert pulses[10.0] < pulses[90.0] / 5

    def test_fig3c_reduced_sweep_shape(self):
        result = run_fig3c(temperatures_k=(273.0, 373.0), pulse_lengths_s=(50e-9,))
        pulses = {row["ambient_temperature_k"]: row["pulses_to_flip"] for row in result.rows}
        assert pulses[373.0] < pulses[273.0] / 100

    def test_fig3d_pattern_ordering(self):
        result = run_fig3d(pattern_names=("single", "double_row"))
        pulses = {row["pattern"]: row["pulses_to_flip"] for row in result.rows}
        assert pulses["double_row"] < pulses["single"]


class TestScenarioAndAblationExperiments:
    def test_scenarios_table(self):
        result = run_scenarios(pulse_length_s=50e-9)
        by_name = {row["scenario"]: row for row in result.rows}
        assert by_name["privilege_escalation"]["success"]
        assert by_name["denial_of_service"]["success"]
        assert result.metadata["pulses_to_flip_one_bit"] > 100

    def test_device_model_ablation(self):
        result = run_device_model_ablation()
        by_model = {row["model"]: row for row in result.rows}
        assert by_model["jart_vcm"]["thermal_acceleration"] > 50.0
        assert by_model["linear_ion_drift"]["thermal_acceleration"] == pytest.approx(1.0)

    def test_bias_scheme_ablation(self):
        result = run_bias_scheme_ablation(max_pulses=2_000_000)
        by_scheme = {row["scheme"]: row for row in result.rows}
        assert by_scheme["v_third"]["pulses_to_flip"] > by_scheme["v_half"]["pulses_to_flip"]

    def test_calibration_report_anchors_hold(self):
        result = calibration_report()
        assert all(result.column("within_tolerance"))
        assert result.metadata["resistance_window"] > 100.0

"""Tests for the ReRAM memory model, page tables and the isolation auditor."""

from __future__ import annotations

import pytest

from repro.errors import AddressingError
from repro.memory import (
    AddressMapping,
    DisturbanceProfile,
    HammingSecDed,
    Page,
    PageTable,
    PageTableEntry,
    PhysicalMemoryManager,
    ReramMemory,
    audit_isolation,
    profile_from_attack_result,
)


@pytest.fixture
def memory():
    mapping = AddressMapping(rows=32, columns=32, tiles_per_bank=4, banks=1)
    profile = DisturbanceProfile(same_line_pulses=100, pulse_period_s=100e-9)
    return ReramMemory(mapping=mapping, disturbance=profile)


class TestReramMemory:
    def test_write_read_round_trip(self, memory):
        memory.write_byte(10, 0xA5)
        assert memory.read_byte(10) == 0xA5

    def test_block_round_trip(self, memory):
        memory.write_block(0x20, b"hello world")
        assert memory.read_block(0x20, 11) == b"hello world"

    def test_invalid_accesses_rejected(self, memory):
        with pytest.raises(AddressingError):
            memory.write_byte(0, 300)
        with pytest.raises(AddressingError):
            memory.read_byte(memory.mapping.capacity_bytes)
        with pytest.raises(AddressingError):
            memory.hammer(0, 0, 0)

    def test_hammering_below_threshold_does_nothing(self, memory):
        flips = memory.hammer(64, 0, 50)
        assert flips == []
        assert memory.flip_log == []

    def test_hammering_accumulates_across_calls(self, memory):
        first = memory.hammer(64, 0, 60)
        second = memory.hammer(64, 0, 60)
        assert first == []
        assert second  # 120 accumulated pulses exceed the 100-pulse threshold

    def test_flips_only_affect_adjacent_vulnerable_bits(self, memory):
        flips = memory.hammer(64, 0, 200)
        assert flips
        aggressor = memory.mapping.locate_bit(64, 0)
        for flip in flips:
            victim = memory.mapping.locate_bit(flip.byte_address, flip.bit_index)
            assert abs(victim.row - aggressor.row) + abs(victim.column - aggressor.column) == 1
            assert flip.old_bit == 0 and flip.new_bit == 1

    def test_stored_ones_do_not_flip_under_set_disturbance(self, memory):
        # Fill the neighbourhood with ones, which are stored as LRS and are
        # not vulnerable to further SET disturbance.
        for address in range(56, 80):
            memory.write_byte(address, 0xFF)
        flips = memory.hammer(64, 0, 500)
        assert flips == []

    def test_genuine_write_resets_disturbance_counter(self, memory):
        memory.hammer(64, 0, 60)
        memory.write_byte(64, 0x00)  # re-programs the hammered cells
        flips = memory.hammer(64, 0, 60)
        assert flips == []

    def test_hammer_time(self, memory):
        assert memory.hammer_time_s(1000) == pytest.approx(1000 * 100e-9)

    def test_profile_from_attack_result(self):
        profile = profile_from_attack_result(5655, 100e-9)
        assert profile.same_line_pulses == 5655
        assert profile.pulse_period_s == pytest.approx(100e-9)


class TestEccProtectedMemory:
    @pytest.fixture
    def protected(self):
        mapping = AddressMapping(rows=32, columns=32, tiles_per_bank=4, banks=1)
        profile = DisturbanceProfile(same_line_pulses=10, pulse_period_s=100e-9)
        return ReramMemory(
            mapping=mapping, disturbance=profile, ecc=HammingSecDed(64), ecc_word_bytes=8
        )

    def test_single_flip_corrected_on_read(self, protected):
        protected.write_block(0x40, bytes(8))
        aggressors = protected.mapping.aggressor_addresses_for(0x40, 0)
        outside = [(a, b) for a, b in aggressors if not 0x40 <= a < 0x48][0]
        flips = protected.hammer(outside[0], outside[1], 20)
        landed = [f for f in flips if 0x40 <= f.byte_address < 0x48]
        assert landed, "expected a flip inside the protected word"
        assert protected.read_block(0x40, 8) == bytes(8)
        assert protected.ecc_corrections >= 1


class TestPageTableAndIsolation:
    def test_pte_encode_decode_round_trip(self):
        entry = PageTableEntry(present=True, writable=True, user=False, frame_number=42)
        assert PageTableEntry.decode(entry.encode()) == entry

    def test_translate_present_page(self, memory):
        table = PageTable(memory, base_address=0, entries=8, page_size=256)
        table.write_entry(2, PageTableEntry(present=True, writable=True, user=True, frame_number=5))
        physical, entry = table.translate(2 * 256 + 17)
        assert physical == 5 * 256 + 17
        assert entry.frame_number == 5

    def test_translate_missing_page_faults(self, memory):
        table = PageTable(memory, base_address=0, entries=8, page_size=256)
        with pytest.raises(AddressingError):
            table.translate(7 * 256)

    def test_page_table_stored_in_memory(self, memory):
        table = PageTable(memory, base_address=64, entries=4, page_size=256)
        table.write_entry(0, PageTableEntry(True, False, True, frame_number=3))
        raw = int.from_bytes(memory.read_block(64, 8), "little")
        assert PageTableEntry.decode(raw).frame_number == 3

    def test_frame_allocation_and_ownership(self):
        manager = PhysicalMemoryManager(total_frames=4)
        page = manager.allocate("attacker", kind="data")
        assert manager.owner_of(page.frame_number) == "attacker"
        assert manager.frames_of("attacker") == [page]
        assert manager.page_tables_of("kernel") == []

    def test_allocation_exhaustion(self):
        manager = PhysicalMemoryManager(total_frames=1)
        manager.allocate("a")
        with pytest.raises(AddressingError):
            manager.allocate("b")

    def test_isolation_audit_clean_and_violated(self, memory):
        manager = PhysicalMemoryManager(total_frames=8, page_size=256)
        own_frame = manager.allocate("proc", kind="data")
        foreign_frame = manager.allocate("other", kind="data")
        table = PageTable(memory, base_address=0, entries=8, page_size=256)
        table.write_entry(0, PageTableEntry(True, True, True, own_frame.frame_number))
        report = audit_isolation({"proc": table}, manager)
        assert report.intact

        table.write_entry(1, PageTableEntry(True, True, True, foreign_frame.frame_number))
        report = audit_isolation({"proc": table}, manager)
        assert not report.intact
        assert report.violations_of("proc")[0].kind == "foreign_frame"

    def test_writable_page_table_mapping_is_a_violation(self, memory):
        manager = PhysicalMemoryManager(total_frames=8, page_size=256)
        pt_frame = manager.allocate("proc", kind="page_table")
        table = PageTable(memory, base_address=0, entries=8, page_size=256)
        table.write_entry(0, PageTableEntry(True, True, True, pt_frame.frame_number))
        report = audit_isolation({"proc": table}, manager)
        assert not report.intact
        assert report.violations[0].kind == "page_table_reachable"

    def test_misaligned_page_table_rejected(self, memory):
        with pytest.raises(AddressingError):
            PageTable(memory, base_address=3, entries=4)

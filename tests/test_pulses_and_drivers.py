"""Tests for pulse/stimulus descriptions and the write-bias schemes."""

from __future__ import annotations

import pytest

from repro.circuit import (
    FULL_SELECTED,
    HALF_SELECTED,
    UNSELECTED,
    BiasPattern,
    PulseTrain,
    RectangularPulse,
    StimulusSchedule,
    StimulusSegment,
    classify_cells,
    half_select_voltage,
    half_selected_cells,
    hammer_schedule,
    idle_bias,
    read_bias,
    write_bias,
)
from repro.config import CrossbarGeometry, PulseConfig
from repro.errors import ConfigurationError


class TestRectangularPulse:
    def test_voltage_profile(self):
        pulse = RectangularPulse(amplitude_v=1.05, length_s=50e-9, idle_s=50e-9)
        assert pulse.voltage_at(10e-9) == pytest.approx(1.05)
        assert pulse.voltage_at(60e-9) == 0.0
        assert pulse.period_s == pytest.approx(100e-9)

    def test_from_config(self):
        pulse = RectangularPulse.from_config(PulseConfig(length_s=20e-9, duty_cycle=0.25))
        assert pulse.length_s == pytest.approx(20e-9)
        assert pulse.idle_s == pytest.approx(60e-9)

    def test_invalid_pulse_rejected(self):
        with pytest.raises(ConfigurationError):
            RectangularPulse(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            RectangularPulse(1.0, 1e-9, idle_s=-1e-9)


class TestPulseTrain:
    def test_totals(self):
        train = PulseTrain(RectangularPulse(1.05, 50e-9, 50e-9), count=100)
        assert train.total_duration_s == pytest.approx(10e-6)
        assert train.total_stress_s == pytest.approx(5e-6)

    def test_voltage_at_repeats(self):
        train = PulseTrain(RectangularPulse(1.0, 50e-9, 50e-9), count=3)
        assert train.voltage_at(120e-9) == pytest.approx(1.0)
        assert train.voltage_at(170e-9) == 0.0
        assert train.voltage_at(1.0) == 0.0

    def test_iteration_yields_start_times(self):
        train = PulseTrain(RectangularPulse(1.0, 50e-9, 50e-9), count=3)
        starts = [start for start, _ in train]
        assert starts == pytest.approx([0.0, 100e-9, 200e-9])

    def test_empty_train_rejected(self):
        with pytest.raises(ConfigurationError):
            PulseTrain(RectangularPulse(1.0, 1e-9), count=0)


class TestStimulusSchedule:
    def test_append_in_order(self):
        schedule = StimulusSchedule()
        schedule.append(StimulusSegment(0.0, 1e-9, label="a"))
        schedule.append(StimulusSegment(1e-9, 1e-9, label="b"))
        assert len(schedule) == 2
        assert schedule.end_s == pytest.approx(2e-9)

    def test_append_after_chains_segments(self):
        schedule = StimulusSchedule()
        schedule.append_after(5e-9, label="first")
        segment = schedule.append_after(5e-9, label="second")
        assert segment.start_s == pytest.approx(5e-9)

    def test_out_of_order_rejected(self):
        schedule = StimulusSchedule()
        schedule.append(StimulusSegment(10e-9, 1e-9))
        with pytest.raises(ConfigurationError):
            schedule.append(StimulusSegment(0.0, 1e-9))

    def test_hammer_schedule_structure(self):
        pulse = PulseConfig(length_s=50e-9, duty_cycle=0.5)
        schedule = hammer_schedule(pulse, count=3, payload_active="bias")
        labels = [segment.label for segment in schedule]
        assert labels == ["hammer", "idle"] * 3
        assert schedule.end_s == pytest.approx(3 * pulse.period_s)

    def test_hammer_schedule_full_duty_cycle_has_no_idle(self):
        pulse = PulseConfig(length_s=50e-9, duty_cycle=1.0)
        schedule = hammer_schedule(pulse, count=2, payload_active="bias")
        assert [segment.label for segment in schedule] == ["hammer", "hammer"]


class TestBiasSchemes:
    def test_v_half_voltages(self, paper_geometry):
        bias = write_bias(paper_geometry, [(2, 2)], 1.05, scheme="v_half")
        assert bias.row_voltage(2) == pytest.approx(1.05)
        assert bias.column_voltage(2) == pytest.approx(0.0)
        assert bias.row_voltage(0) == pytest.approx(0.525)
        assert bias.column_voltage(4) == pytest.approx(0.525)

    def test_nominal_cell_voltages_v_half(self, paper_geometry):
        bias = write_bias(paper_geometry, [(2, 2)], 1.05, scheme="v_half")
        assert bias.nominal_cell_voltage((2, 2)) == pytest.approx(1.05)
        assert bias.nominal_cell_voltage((2, 3)) == pytest.approx(0.525)
        assert bias.nominal_cell_voltage((0, 0)) == pytest.approx(0.0)

    def test_v_third_limits_half_select_stress(self, paper_geometry):
        bias = write_bias(paper_geometry, [(2, 2)], 1.05, scheme="v_third")
        assert bias.nominal_cell_voltage((2, 2)) == pytest.approx(1.05)
        assert abs(bias.nominal_cell_voltage((2, 3))) == pytest.approx(1.05 / 3.0)
        assert abs(bias.nominal_cell_voltage((0, 0))) == pytest.approx(1.05 / 3.0)

    def test_half_select_voltage_helper(self):
        assert half_select_voltage(1.05, "v_half") == pytest.approx(0.525)
        assert half_select_voltage(1.05, "v_third") == pytest.approx(0.35)
        with pytest.raises(ConfigurationError):
            half_select_voltage(1.05, "v_quarter")

    def test_read_and_idle_bias(self, paper_geometry):
        read = read_bias(paper_geometry, (1, 1), 0.2)
        assert read.nominal_cell_voltage((1, 1)) == pytest.approx(0.2)
        idle = idle_bias(paper_geometry)
        assert all(v == 0.0 for v in idle.row_voltages_v.values())

    def test_scaled_pattern(self, paper_geometry):
        bias = write_bias(paper_geometry, [(2, 2)], 1.0).scaled(0.5)
        assert bias.row_voltage(2) == pytest.approx(0.5)

    def test_unknown_scheme_rejected(self, paper_geometry):
        with pytest.raises(ConfigurationError):
            write_bias(paper_geometry, [(2, 2)], 1.05, scheme="bogus")

    def test_empty_targets_rejected(self, paper_geometry):
        with pytest.raises(ConfigurationError):
            write_bias(paper_geometry, [], 1.05)


class TestCellClassification:
    def test_single_target_classification(self, paper_geometry):
        classification = classify_cells(paper_geometry, [(2, 2)])
        assert classification[(2, 2)] == FULL_SELECTED
        assert classification[(2, 3)] == HALF_SELECTED
        assert classification[(0, 2)] == HALF_SELECTED
        assert classification[(0, 0)] == UNSELECTED

    def test_half_selected_count_single_target(self, paper_geometry):
        victims = half_selected_cells(paper_geometry, [(2, 2)])
        # 4 other cells in the row + 4 other cells in the column.
        assert len(victims) == 8

    def test_two_targets_in_same_row_stay_safe(self, paper_geometry):
        classification = classify_cells(paper_geometry, [(2, 1), (2, 3)])
        fully = [cell for cell, kind in classification.items() if kind == FULL_SELECTED]
        assert set(fully) == {(2, 1), (2, 3)}

    def test_diagonal_targets_create_unintended_full_selects(self, paper_geometry):
        classification = classify_cells(paper_geometry, [(1, 1), (2, 2)])
        fully = {cell for cell, kind in classification.items() if kind == FULL_SELECTED}
        assert (1, 2) in fully and (2, 1) in fully

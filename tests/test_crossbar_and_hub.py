"""Tests for the CrossbarArray, the crosstalk hub and the thermal snapshot."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import CrossbarArray, CrosstalkHub, write_bias
from repro.config import CrossbarGeometry
from repro.errors import ConfigurationError, GeometryError
from repro.thermal import AnalyticCouplingModel, UniformCouplingModel


class TestCrosstalkHub:
    @pytest.fixture
    def hub(self, paper_geometry):
        return CrosstalkHub(AnalyticCouplingModel(paper_geometry), 300.0)

    def test_cold_array_produces_no_crosstalk(self, hub):
        temperatures = np.full((5, 5), 300.0)
        assert np.allclose(hub.additional_temperatures(temperatures), 0.0)

    def test_single_hot_cell_heats_neighbours(self, hub):
        temperatures = np.full((5, 5), 300.0)
        temperatures[2, 2] = 950.0
        additional = hub.additional_temperatures(temperatures)
        assert additional[2, 2] == pytest.approx(0.0)
        assert additional[2, 3] == pytest.approx(0.115 * 650.0, rel=0.1)
        assert additional[0, 0] < additional[2, 3]

    def test_contributions_add_linearly(self, hub):
        base = np.full((5, 5), 300.0)
        one = base.copy(); one[2, 1] = 800.0
        other = base.copy(); other[2, 3] = 800.0
        both = base.copy(); both[2, 1] = 800.0; both[2, 3] = 800.0
        combined = hub.additional_temperatures(both)
        summed = hub.additional_temperatures(one) + hub.additional_temperatures(other)
        assert np.allclose(combined, summed)

    def test_aggressor_contribution_helper(self, hub):
        value = hub.aggressor_contribution((2, 2), (2, 3), 950.0)
        assert value == pytest.approx(0.115 * 650.0, rel=0.1)

    def test_cells_below_ambient_are_clamped(self, hub):
        temperatures = np.full((5, 5), 280.0)
        assert np.allclose(hub.additional_temperatures(temperatures), 0.0)

    def test_shape_mismatch_rejected(self, hub):
        with pytest.raises(ConfigurationError):
            hub.additional_temperatures(np.full((3, 3), 300.0))


class TestCrossbarArrayState:
    def test_initial_state_is_hrs(self, small_crossbar):
        assert np.allclose(small_crossbar.state_map(), 0.0)
        assert np.all(small_crossbar.bit_map() == 0)

    def test_set_and_get_state(self, small_crossbar):
        small_crossbar.set_state((1, 1), 0.8)
        assert small_crossbar.get_state((1, 1)).x == pytest.approx(0.8)

    def test_set_state_clamps(self, small_crossbar):
        small_crossbar.set_state((0, 0), 1.7)
        assert small_crossbar.get_state((0, 0)).x == 1.0

    def test_bit_round_trip(self, small_crossbar):
        small_crossbar.set_bit((2, 2), 1)
        assert small_crossbar.get_bit((2, 2)) == 1
        small_crossbar.set_bit((2, 2), 0)
        assert small_crossbar.get_bit((2, 2)) == 0

    def test_initialise_bits_pattern(self, small_crossbar):
        pattern = np.array([[1, 0, 1], [0, 1, 0], [1, 0, 1]])
        small_crossbar.initialise_bits(pattern)
        assert np.array_equal(small_crossbar.bit_map(), pattern)

    def test_initialise_bits_rejects_wrong_shape(self, small_crossbar):
        with pytest.raises(ConfigurationError):
            small_crossbar.initialise_bits(np.zeros((2, 2), dtype=int))

    def test_copy_and_restore_states(self, small_crossbar):
        small_crossbar.set_state((0, 1), 0.6)
        snapshot = small_crossbar.copy_states()
        small_crossbar.set_state((0, 1), 0.1)
        small_crossbar.restore_states(snapshot)
        assert small_crossbar.get_state((0, 1)).x == pytest.approx(0.6)

    def test_out_of_range_cell_rejected(self, small_crossbar):
        with pytest.raises(GeometryError):
            small_crossbar.set_state((5, 5), 1.0)

    def test_coupling_geometry_mismatch_rejected(self, paper_geometry):
        wrong = AnalyticCouplingModel(CrossbarGeometry(rows=3, columns=3))
        with pytest.raises(GeometryError):
            CrossbarArray(geometry=paper_geometry, coupling=wrong)


class TestThermalSnapshot:
    def test_reproduces_fig2a_operating_point(self, paper_crossbar):
        paper_crossbar.set_state((2, 2), 1.0)
        bias = write_bias(paper_crossbar.geometry, [(2, 2)], 1.05)
        snapshot = paper_crossbar.thermal_snapshot(bias)
        assert 800.0 < snapshot.cell_temperature((2, 2)) < 1050.0
        assert 340.0 < snapshot.cell_temperature((2, 3)) < 420.0
        assert snapshot.cell_temperature((0, 0)) < snapshot.cell_temperature((2, 3))

    def test_snapshot_updates_device_temperatures(self, paper_crossbar):
        paper_crossbar.set_state((2, 2), 1.0)
        bias = write_bias(paper_crossbar.geometry, [(2, 2)], 1.05)
        snapshot = paper_crossbar.thermal_snapshot(bias)
        assert paper_crossbar.get_state((2, 2)).filament_temperature_k == pytest.approx(
            snapshot.cell_temperature((2, 2))
        )
        paper_crossbar.reset_temperatures()
        assert paper_crossbar.get_state((2, 2)).filament_temperature_k == pytest.approx(300.0)

    def test_crosstalk_separated_from_self_heating(self, paper_crossbar):
        paper_crossbar.set_state((2, 2), 1.0)
        bias = write_bias(paper_crossbar.geometry, [(2, 2)], 1.05)
        snapshot = paper_crossbar.thermal_snapshot(bias)
        # The victim's temperature is dominated by crosstalk, the aggressor's
        # by its own dissipation.
        victim_crosstalk = snapshot.crosstalk_temperatures_k[2, 3]
        victim_rise = snapshot.cell_temperature((2, 3)) - 300.0
        assert victim_crosstalk == pytest.approx(victim_rise, abs=10.0)
        aggressor_crosstalk = snapshot.crosstalk_temperatures_k[2, 2]
        aggressor_rise = snapshot.cell_temperature((2, 2)) - 300.0
        assert aggressor_crosstalk < 0.1 * aggressor_rise

    def test_idle_bias_keeps_array_at_ambient(self, small_crossbar):
        from repro.circuit import idle_bias

        snapshot = small_crossbar.thermal_snapshot(idle_bias(small_crossbar.geometry))
        assert np.allclose(snapshot.filament_temperatures_k, 300.0, atol=1.0)

    def test_uniform_coupling_alternative(self, small_geometry):
        crossbar = CrossbarArray(
            geometry=small_geometry, coupling=UniformCouplingModel(small_geometry, alpha=0.2)
        )
        crossbar.set_state((1, 1), 1.0)
        bias = write_bias(small_geometry, [(1, 1)], 1.05)
        snapshot = crossbar.thermal_snapshot(bias)
        assert snapshot.cell_temperature((1, 2)) > 350.0
        # Diagonal neighbours receive no direct aggressor coupling under the
        # uniform model; only the (sub-kelvin) self-heating of half-selected
        # cells leaks through to them.
        assert snapshot.crosstalk_temperatures_k[0, 0] < 1.0
        assert snapshot.crosstalk_temperatures_k[0, 0] < 0.05 * snapshot.crosstalk_temperatures_k[1, 2]

    def test_invalid_iteration_count_rejected(self, small_crossbar):
        from repro.circuit import idle_bias

        with pytest.raises(ConfigurationError):
            small_crossbar.thermal_snapshot(idle_bias(small_crossbar.geometry), max_iterations=0)

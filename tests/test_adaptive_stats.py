"""The adaptive-sampling statistics subsystem.

Covers the estimator layer (interval numerics, streaming/batching exactness,
nominal coverage on synthetic Bernoulli streams), importance sampling against
an analytic toy model and against plain Monte-Carlo through the engine,
sequential stopping (adaptive runs must be bit-reproducible from the seed),
CI-driven map refinement, and the defense-under-variation harness riding on
adaptive budgets.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.config import AttackConfig, SimulationConfig
from repro.defense import evaluate_defenses_under_variation
from repro.errors import MonteCarloError
from repro.experiments.calibration import (
    DISTRIBUTION_PROVENANCE,
    default_variability_distributions,
    distribution_provenance_report,
)
from repro.montecarlo import (
    AdaptiveConfig,
    AdaptiveSampler,
    ImportanceEstimator,
    ImportanceSettings,
    MonteCarloConfig,
    MonteCarloEngine,
    ParameterDistribution,
    StreamingBinomialEstimator,
    StreamingMeanEstimator,
    fixed_sample_size,
    jeffreys_interval,
    refine_flip_probability_map,
    wilson_interval,
)
from repro.montecarlo.estimators import (
    beta_quantile,
    normal_quantile,
    regularized_incomplete_beta,
)
from repro.montecarlo.maps import MapAxis
from repro.utils.rng import child_rng

SMALL_SIM = {"geometry": {"rows": 3, "columns": 3}}
SMALL_ATTACK = {"aggressors": [[1, 1]], "victim": [1, 2], "max_pulses": 100_000}

#: Relative cycle-to-cycle + device variation used by the engine-level tests.
VARIED = [
    {"path": "attack.pulse.length_s", "kind": "lognormal", "mean": 1.0, "sigma": 0.3,
     "relative": True},
    {"path": "device.activation_energy_ev", "kind": "normal", "mean": 1.0, "sigma": 0.005,
     "relative": True},
]


def small_engine(montecarlo: MonteCarloConfig, max_pulses: int = 100_000) -> MonteCarloEngine:
    attack = dict(SMALL_ATTACK, max_pulses=max_pulses)
    return MonteCarloEngine(
        montecarlo,
        simulation=SimulationConfig.from_dict(SMALL_SIM),
        attack=AttackConfig.from_dict(attack),
    )


# ----------------------------------------------------------------------
# interval numerics
# ----------------------------------------------------------------------


class TestIntervalNumerics:
    def test_normal_quantile_known_values(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-12)
        assert normal_quantile(0.975) == pytest.approx(1.959963985, abs=1e-7)
        assert normal_quantile(0.995) == pytest.approx(2.575829304, abs=1e-7)
        assert normal_quantile(0.025) == pytest.approx(-1.959963985, abs=1e-7)

    def test_normal_quantile_rejects_boundaries(self):
        with pytest.raises(MonteCarloError):
            normal_quantile(0.0)
        with pytest.raises(MonteCarloError):
            normal_quantile(1.0)

    def test_regularized_beta_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        for a, b, x in [(0.5, 0.5, 0.3), (5.5, 95.5, 0.04), (20.0, 2.0, 0.9), (1.0, 1.0, 0.42)]:
            assert regularized_incomplete_beta(a, b, x) == pytest.approx(
                float(scipy_stats.beta.cdf(x, a, b)), abs=1e-10
            )

    def test_beta_quantile_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        for a, b, q in [(5.5, 95.5, 0.025), (5.5, 95.5, 0.975), (0.5, 10.5, 0.5)]:
            assert beta_quantile(q, a, b) == pytest.approx(
                float(scipy_stats.beta.ppf(q, a, b)), abs=1e-9
            )

    def test_wilson_and_jeffreys_stay_inside_unit_interval(self):
        for successes, trials in [(0, 10), (10, 10), (1, 3), (500, 1000)]:
            for low, high in (wilson_interval(successes, trials), jeffreys_interval(successes, trials)):
                assert 0.0 <= low <= high <= 1.0

    def test_jeffreys_boundary_conventions(self):
        low, _ = jeffreys_interval(0, 50)
        _, high = jeffreys_interval(50, 50)
        assert low == 0.0
        assert high == 1.0

    def test_intervals_shrink_with_n(self):
        widths = []
        for trials in (10, 100, 1000, 10000):
            low, high = wilson_interval(trials // 2, trials)
            widths.append(high - low)
        assert widths == sorted(widths, reverse=True)

    def test_fixed_sample_size_inverts_the_worst_case_wilson_width(self):
        for target in (0.05, 0.02, 0.01):
            n = fixed_sample_size(target)
            low, high = wilson_interval(n // 2, n)
            assert (high - low) / 2.0 <= target + 1e-9
            low, high = wilson_interval((n - 10) // 2, n - 10)
            assert (high - low) / 2.0 > target

    @pytest.mark.parametrize("method", ["wilson", "jeffreys"])
    @pytest.mark.parametrize("p_true", [0.05, 0.5])
    def test_nominal_coverage_on_bernoulli_streams(self, method, p_true):
        """95% intervals must cover the true p in ~95% of synthetic streams."""
        rng = child_rng(1234, "coverage-test", method, str(p_true))
        covered = 0
        streams = 300
        for _ in range(streams):
            outcomes = rng.random(200) < p_true
            estimator = StreamingBinomialEstimator(confidence=0.95, method=method)
            estimator.update(outcomes)
            low, high = estimator.interval()
            covered += low <= p_true <= high
        # Wilson/Jeffreys achieve near-nominal coverage; 0.91 leaves room for
        # the binomial noise of 300 streams without ever passing a broken
        # interval (a z-interval at p=0.05/n=200 covers ~0.88).
        assert covered / streams >= 0.91


# ----------------------------------------------------------------------
# streaming estimators
# ----------------------------------------------------------------------


class TestStreamingEstimators:
    def test_batched_updates_match_one_shot(self):
        rng = child_rng(7, "batch-equivalence")
        outcomes = rng.random(1000) < 0.3
        one_shot = StreamingBinomialEstimator()
        one_shot.update(outcomes)
        batched = StreamingBinomialEstimator()
        for chunk in np.array_split(outcomes, 13):
            batched.update(chunk)
        assert batched.trials == one_shot.trials
        assert batched.successes == one_shot.successes
        assert batched.interval() == one_shot.interval()

    def test_mean_estimator_matches_numpy_and_batching(self):
        rng = child_rng(7, "mean-equivalence")
        values = rng.normal(3.0, 2.0, 500)
        estimator = StreamingMeanEstimator()
        for chunk in np.array_split(values, 7):
            estimator.update(chunk)
        assert estimator.mean == pytest.approx(values.mean(), rel=1e-12)
        assert estimator.variance == pytest.approx(values.var(ddof=1), rel=1e-10)
        low, high = estimator.interval()
        assert low < values.mean() < high

    def test_importance_estimator_on_analytic_tail(self):
        """Self-normalized IS must recover P(X > 2.5), X ~ N(0,1), from a
        shifted proposal — the textbook rare-event toy model."""
        p_true = 0.5 * math.erfc(2.5 / math.sqrt(2.0))  # ~6.2e-3
        rng = child_rng(11, "importance-toy")
        draws = rng.normal(2.5, 1.0, 4000)
        log_w = -0.5 * draws**2 + 0.5 * (draws - 2.5) ** 2
        estimator = ImportanceEstimator()
        estimator.update(draws > 2.5, np.exp(log_w))
        low, high = estimator.interval()
        assert low <= p_true <= high
        assert estimator.estimate == pytest.approx(p_true, rel=0.25)
        assert estimator.effective_sample_size < estimator.trials

    def test_importance_estimator_with_unit_weights_matches_plain_fraction(self):
        outcomes = np.array([True, False, True, True, False])
        estimator = ImportanceEstimator()
        estimator.update(outcomes, np.ones(outcomes.size))
        assert estimator.estimate == pytest.approx(0.6)
        assert estimator.effective_sample_size == pytest.approx(5.0)

    def test_clustered_estimator_widens_correlated_intervals(self):
        """Perfectly correlated lanes inside each cluster must yield a wider
        interval than pretending every lane is independent."""
        from repro.montecarlo.estimators import ClusteredBinomialEstimator

        rng = child_rng(5, "cluster-test")
        cluster_hits = rng.random(40) < 0.3  # one Bernoulli draw per cluster
        lanes = np.repeat(cluster_hits[:, None], 16, axis=1)  # 16 identical lanes
        clustered = ClusteredBinomialEstimator()
        clustered.update(lanes)
        iid = StreamingBinomialEstimator()
        iid.update(lanes.ravel())
        assert clustered.estimate == pytest.approx(iid.estimate)
        assert clustered.half_width() > 2.0 * iid.half_width()
        assert clustered.effective_sample_size == 40.0

    def test_clustered_estimator_reduces_to_iid_width_for_independent_lanes(self):
        from repro.montecarlo.estimators import ClusteredBinomialEstimator

        rng = child_rng(6, "cluster-iid")
        lanes = rng.random((300, 8)) < 0.4  # genuinely independent lanes
        clustered = ClusteredBinomialEstimator()
        for chunk in np.array_split(lanes, 5):  # batching must be exact
            clustered.update(chunk)
        iid = StreamingBinomialEstimator()
        iid.update(lanes.ravel())
        assert clustered.half_width() == pytest.approx(iid.half_width(), rel=0.15)

    def test_clustered_estimator_drops_empty_clusters(self):
        from repro.montecarlo.estimators import ClusteredBinomialEstimator

        estimator = ClusteredBinomialEstimator()
        estimator.update_counts(np.array([2.0, 0.0, 1.0]), np.array([4.0, 0.0, 4.0]))
        assert estimator.clusters == 2
        assert estimator.trials == 8
        assert estimator.estimate == pytest.approx(3.0 / 8.0)

    def test_importance_interval_never_collapses_at_the_boundaries(self):
        """Zero observed successes (or failures) must not yield a zero-width
        interval — that would fool the sequential stopping rule into instant
        convergence on a rare event."""
        rng = child_rng(3, "is-boundary")
        weights = rng.uniform(0.1, 2.0, 100)
        none_flipped = ImportanceEstimator()
        none_flipped.update(np.zeros(100, dtype=bool), weights)
        low, high = none_flipped.interval()
        assert low == 0.0
        assert high > 0.0
        assert none_flipped.half_width() > 0.0
        all_flipped = ImportanceEstimator()
        all_flipped.update(np.ones(100, dtype=bool), weights)
        low, high = all_flipped.interval()
        assert low < 1.0
        assert high == 1.0


# ----------------------------------------------------------------------
# adaptive stopping
# ----------------------------------------------------------------------


class TestAdaptiveSampler:
    def evaluate_bernoulli(self, p, seed=0):
        def evaluate(batch_index, n):
            rng = child_rng(seed, "adaptive-test", batch_index)
            return rng.random(n) < p, None

        return evaluate

    def test_stops_early_on_a_plateau(self):
        config = AdaptiveConfig(batch_size=50, n_max=5000, target_half_width=0.05)
        outcome = AdaptiveSampler(config, self.evaluate_bernoulli(0.0)).run()
        assert outcome.converged
        assert outcome.n_drawn < 200  # a batch or three pins p ~ 0 down

    def test_spends_more_at_the_threshold(self):
        config = AdaptiveConfig(batch_size=50, n_max=5000, target_half_width=0.05)
        plateau = AdaptiveSampler(config, self.evaluate_bernoulli(0.0)).run()
        boundary = AdaptiveSampler(config, self.evaluate_bernoulli(0.5)).run()
        assert boundary.converged
        assert boundary.n_drawn > 3 * plateau.n_drawn

    def test_n_max_is_a_hard_ceiling(self):
        config = AdaptiveConfig(batch_size=64, n_max=256, target_half_width=0.001)
        outcome = AdaptiveSampler(config, self.evaluate_bernoulli(0.5)).run()
        assert not outcome.converged
        assert outcome.stop_reason == "n_max"
        assert outcome.n_drawn == 256

    def test_runs_are_bit_reproducible(self):
        config = AdaptiveConfig(batch_size=32, n_max=2048, target_half_width=0.04)
        first = AdaptiveSampler(config, self.evaluate_bernoulli(0.3, seed=5)).run()
        second = AdaptiveSampler(config, self.evaluate_bernoulli(0.3, seed=5)).run()
        assert first.n_drawn == second.n_drawn
        assert first.state.estimate == second.state.estimate
        assert [b.estimate for b in first.batches] == [b.estimate for b in second.batches]

    def test_relative_target(self):
        config = AdaptiveConfig(
            batch_size=100, n_max=20_000, target_half_width=0.1, relative=True
        )
        outcome = AdaptiveSampler(config, self.evaluate_bernoulli(0.5)).run()
        assert outcome.converged
        assert outcome.state.half_width <= 0.1 * outcome.state.estimate

    def test_validation(self):
        with pytest.raises(MonteCarloError):
            AdaptiveConfig(batch_size=0)
        with pytest.raises(MonteCarloError):
            AdaptiveConfig(batch_size=64, n_max=32)
        with pytest.raises(MonteCarloError):
            AdaptiveConfig(target_half_width=0.0)
        with pytest.raises(MonteCarloError):
            AdaptiveConfig(method="wald")


# ----------------------------------------------------------------------
# importance tilts in the sampling layer
# ----------------------------------------------------------------------


class TestImportanceTilts:
    def test_tilted_normal_shifts_mean_in_sigmas(self):
        dist = ParameterDistribution(path="device.activation_energy_ev", kind="normal",
                                     mean=1.2, sigma=0.1)
        proposal = dist.tilted(shift_sigmas=2.0, scale=1.5)
        assert proposal.mean == pytest.approx(1.4)
        assert proposal.sigma == pytest.approx(0.15)

    def test_tilted_lognormal_shifts_in_log_space(self):
        dist = ParameterDistribution(path="attack.pulse.length_s", kind="lognormal",
                                     mean=50e-9, sigma=0.2)
        proposal = dist.tilted(shift_sigmas=1.0)
        assert proposal.mean == pytest.approx(50e-9 * math.exp(0.2))

    def test_uniform_cannot_be_tilted(self):
        dist = ParameterDistribution(path="attack.pulse.duty_cycle", kind="uniform",
                                     low=0.2, high=0.8)
        with pytest.raises(MonteCarloError):
            dist.tilted(shift_sigmas=1.0)

    def test_log_density_ratio_matches_analytic_normal(self):
        dist = ParameterDistribution(path="device.series_resistance_ohm", kind="normal",
                                     mean=650.0, sigma=30.0)
        proposal = dist.tilted(shift_sigmas=1.0)
        values = np.array([600.0, 650.0, 700.0])
        ratio = dist.log_density(values) - proposal.log_density(values)
        expected = (-0.5 * ((values - 650.0) / 30.0) ** 2
                    + 0.5 * ((values - 680.0) / 30.0) ** 2)
        np.testing.assert_allclose(ratio, expected, rtol=1e-12)

    def test_importance_settings_validation(self):
        with pytest.raises(MonteCarloError):
            ImportanceSettings()  # empty tilt is a configuration mistake
        with pytest.raises(MonteCarloError):
            ImportanceSettings(scale={"attack.pulse.length_s": 0.0})
        settings = ImportanceSettings(shift_sigmas={"attack.pulse.length_s": 2.0})
        dist = ParameterDistribution(path="device.activation_energy_ev", kind="normal",
                                     mean=1.0, sigma=0.01, relative=True)
        with pytest.raises(MonteCarloError, match="not among the sampled"):
            settings.validate_against([dist])


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------


class TestEngineAdaptive:
    def adaptive_config(self, **overrides) -> MonteCarloConfig:
        adaptive = dict(batch_size=64, n_max=2048, target_half_width=0.05)
        adaptive.update(overrides)
        return MonteCarloConfig(seed=3, distributions=list(VARIED), adaptive=adaptive)

    def test_adaptive_run_is_bit_reproducible(self):
        first = small_engine(self.adaptive_config()).run()
        second = small_engine(self.adaptive_config()).run()
        assert first.n_samples == second.n_samples
        assert np.array_equal(first.flipped, second.flipped)
        assert np.array_equal(first.pulses, second.pulses)
        assert first.adaptive.state.estimate == second.adaptive.state.estimate

    def test_adaptive_summary_reports_the_trace(self):
        result = small_engine(self.adaptive_config()).run()
        summary = result.summary()
        assert summary["adaptive"]["n_drawn"] == result.n_samples
        assert summary["adaptive"]["stop_reason"] in ("target", "n_max")
        assert summary["ci_low"] <= summary["flip_probability"] <= summary["ci_high"]

    def test_adaptive_stops_fast_on_a_plateau_and_slow_at_the_boundary(self):
        plateau = small_engine(self.adaptive_config(), max_pulses=100_000).run()
        boundary = small_engine(self.adaptive_config(), max_pulses=5000).run()
        assert plateau.adaptive.converged
        assert plateau.n_samples == 64  # p ~ 1: one batch settles it
        assert boundary.n_samples > 3 * plateau.n_samples

    def test_adaptive_matches_batch_stream(self):
        """The concatenated population equals replaying run_batch by hand."""
        engine = small_engine(self.adaptive_config())
        result = engine.run()
        replay = small_engine(self.adaptive_config())
        offset = 0
        for record in result.adaptive.batches:
            batch = replay.run_batch(record.n_drawn, record.index)
            chunk = slice(offset, offset + record.n_drawn)
            assert np.array_equal(result.flipped[chunk], batch.flipped)
            assert np.array_equal(result.pulses[chunk], batch.pulses)
            offset += record.n_drawn
        assert offset == result.n_samples

    def test_run_batch_streams_are_keyed_by_index(self):
        engine = small_engine(MonteCarloConfig(seed=3, distributions=list(VARIED)))
        again = small_engine(MonteCarloConfig(seed=3, distributions=list(VARIED)))
        first = engine.run_batch(32, 0)
        repeat = again.run_batch(32, 0)
        other = engine.run_batch(32, 1)
        assert np.array_equal(first.pulses, repeat.pulses)
        assert not np.array_equal(first.pulses, other.pulses)

    def test_adaptive_full_array_mode(self):
        config = MonteCarloConfig(
            seed=2,
            mode="full_array",
            distributions=[
                {"path": "device.series_resistance_ohm", "kind": "normal",
                 "mean": 1.0, "sigma": 0.05, "relative": True},
            ],
            adaptive={"batch_size": 2, "n_max": 6, "target_half_width": 0.4},
        )
        result = small_engine(config).run()
        assert result.adaptive is not None
        assert result.n_arrays == result.adaptive.n_drawn
        assert result.array_valid.shape == (result.n_arrays,)
        assert result.n_samples == result.n_arrays * result.victims_per_array
        # The estimand is the lane-level flip probability, but the interval
        # is cluster-robust: lanes of one array share its draws and solve,
        # so the independent observations are the arrays.
        assert result.adaptive.state.method == "cluster"
        assert result.adaptive.state.estimate == pytest.approx(result.flip_probability)
        assert result.adaptive.state.effective_sample_size == float(result.array_valid.sum())
        # summary()'s interval comes from the same cluster-robust estimator.
        summary = result.summary()
        assert summary["ci_method"] == "cluster"
        assert summary["ci_low"] == pytest.approx(result.adaptive.state.ci_low)

    def test_scalar_and_vectorized_adaptive_agree(self):
        config = self.adaptive_config(n_max=128)
        vectorized = small_engine(config, max_pulses=5000).run()
        scalar = small_engine(config, max_pulses=5000).run(vectorized=False)
        assert vectorized.n_samples == scalar.n_samples
        assert np.array_equal(vectorized.flipped, scalar.flipped)
        assert np.array_equal(vectorized.pulses, scalar.pulses)


class TestEngineImportance:
    def test_importance_estimate_agrees_with_plain_mc_within_ci(self):
        """IS on a rare-ish event must agree with a longer plain run."""
        plain = small_engine(
            MonteCarloConfig(seed=9, n_samples=8000, distributions=list(VARIED)),
            max_pulses=3000,
        ).run()
        tilted = small_engine(
            MonteCarloConfig(
                seed=9,
                n_samples=1000,
                distributions=list(VARIED),
                importance={"shift_sigmas": {"attack.pulse.length_s": 1.5}},
            ),
            max_pulses=3000,
        ).run()
        plain_low, plain_high = plain.interval()
        is_low, is_high = tilted.interval()
        # The two (independent) intervals must overlap: disjoint intervals
        # would mean the reweighting is biased.
        assert max(plain_low, is_low) <= min(plain_high, is_high)
        assert tilted.weights is not None
        assert 0.0 < tilted.effective_sample_size < tilted.n_samples

    def test_importance_reweights_the_raw_fraction(self):
        result = small_engine(
            MonteCarloConfig(
                seed=9,
                n_samples=500,
                distributions=list(VARIED),
                importance={"shift_sigmas": {"attack.pulse.length_s": 2.0}},
            ),
            max_pulses=3000,
        ).run()
        raw = result.flipped_count / result.valid_count
        weighted = float(
            result.weights[result.flipped & result.valid].sum()
            / result.weights[result.valid].sum()
        )
        assert result.flip_probability == pytest.approx(weighted)
        # The tilt drives far more proposal samples into flipping than the
        # nominal distribution would; the reweighted estimate corrects that.
        assert result.flip_probability < raw

    def test_importance_rejected_in_full_array_mode(self):
        with pytest.raises(MonteCarloError, match="anchored"):
            MonteCarloConfig(
                mode="full_array",
                distributions=list(VARIED),
                importance={"shift_sigmas": {"attack.pulse.length_s": 1.0}},
            )

    def test_yield_scenario_reweights_importance_populations(self):
        """YieldScenario's BER must be the nominal (reweighted) estimate,
        not the tilted proposal's raw flip fraction."""
        from repro.attack import YieldScenario

        config = MonteCarloConfig(
            seed=9,
            n_samples=400,
            distributions=list(VARIED),
            importance={"shift_sigmas": {"attack.pulse.length_s": 2.0}},
        )
        scenario = YieldScenario(
            config,
            simulation=SimulationConfig.from_dict(SMALL_SIM),
            attack=AttackConfig.from_dict(dict(SMALL_ATTACK, max_pulses=3000)),
            cells_per_array=64,
        )
        outcome = scenario.run(pulse_budget=3000)
        reference = small_engine(config, max_pulses=3000).run()
        assert outcome.stats["cell_bit_error_rate"] == pytest.approx(
            reference.flip_probability
        )
        raw_fraction = reference.flipped_count / reference.valid_count
        assert outcome.stats["cell_bit_error_rate"] < raw_fraction

    def test_summary_carries_the_effective_sample_size(self):
        result = small_engine(
            MonteCarloConfig(
                seed=9,
                n_samples=200,
                distributions=list(VARIED),
                importance={"shift_sigmas": {"attack.pulse.length_s": 1.0}},
            ),
            max_pulses=3000,
        ).run()
        assert 0.0 < result.summary()["effective_sample_size"] <= 200.0


# ----------------------------------------------------------------------
# CI-driven map refinement
# ----------------------------------------------------------------------


class TestMapRefinement:
    def refine(self, **overrides):
        settings = dict(
            target_half_width=0.05,
            batch_size=64,
            point_n_max=4096,
        )
        settings.update(overrides)
        return refine_flip_probability_map(
            MapAxis(path="attack.pulse.amplitude_v", values=[0.8, 1.0, 1.2]),
            MapAxis(path="attack.ambient_temperature_k", values=[260.0, 300.0]),
            simulation=dict(SMALL_SIM),
            attack=dict(SMALL_ATTACK),
            montecarlo={"seed": 5, "distributions": list(VARIED)},
            **settings,
        )

    def test_refined_map_beats_the_fixed_n_budget(self):
        refined = self.refine()
        assert refined.converged.all()
        assert refined.total_samples == int(refined.samples_used.sum())
        assert refined.total_samples < refined.fixed_n_equivalent
        assert (refined.half_widths <= refined.target_half_width + 1e-12).all()
        assert ((refined.probabilities >= 0.0) & (refined.probabilities <= 1.0)).all()
        assert len(refined.result.rows) == refined.probabilities.size

    def test_global_budget_is_a_hard_ceiling(self):
        # 200 is not a multiple of the batch size: a batch that would cross
        # the ceiling must not start (the historical bug overshot to 256).
        refined = self.refine(budget=200)
        assert refined.total_samples <= 200
        refined = self.refine(budget=128)
        assert refined.total_samples <= 128
        # Points the budget never reached are NaN, not a fake P = 0 plateau.
        unsampled = refined.samples_used == 0
        assert unsampled.any()
        assert np.isnan(refined.probabilities[unsampled]).all()
        assert not refined.converged[unsampled].any()
        assert refined.result.metadata["points_unsampled"] == int(unsampled.sum())

    def test_refinement_is_reproducible(self):
        first = self.refine()
        second = self.refine()
        np.testing.assert_array_equal(first.samples_used, second.samples_used)
        np.testing.assert_allclose(first.probabilities, second.probabilities)

    def test_point_ceiling_stops_unconverged_points(self):
        refined = self.refine(target_half_width=0.004, point_n_max=128)
        assert not refined.converged.all()
        assert (refined.samples_used <= 128).all()


# ----------------------------------------------------------------------
# defense under variation + provenance satellites
# ----------------------------------------------------------------------


class TestDefenseUnderVariation:
    def test_report_scores_all_defenses_on_adaptive_budgets(self):
        report = evaluate_defenses_under_variation(
            simulation=SimulationConfig.from_dict(SMALL_SIM),
            attack=AttackConfig.from_dict(SMALL_ATTACK),
            pulse_budget=100_000,
            target_half_width=0.05,
            batch_size=64,
            n_max=512,
        )
        names = [outcome.name for outcome in report.outcomes]
        assert names == ["baseline", "v_third_bias", "victim_refresh", "thermal_guard"]
        baseline = report.outcome("baseline")
        assert baseline.ci_low <= baseline.flip_probability <= baseline.ci_high
        # every defence must reduce (or at least not increase) the exposure
        for name in ("v_third_bias", "victim_refresh", "thermal_guard"):
            assert report.outcome(name).flip_probability <= baseline.flip_probability + 1e-12
        assert report.total_samples > 0
        table = report.to_experiment_result()
        assert len(table.rows) == 4

    def test_defaults_use_the_provenance_backed_distributions(self):
        defaults = default_variability_distributions()
        assert defaults  # the shipped population is non-empty
        recorded = {entry.path for entry in DISTRIBUTION_PROVENANCE}
        assert {d["path"] for d in defaults} <= recorded


class TestDistributionProvenance:
    def test_every_entry_declares_its_source(self):
        for entry in DISTRIBUTION_PROVENANCE:
            assert entry.source in ("placeholder", "literature")
            assert entry.reference

    def test_report_matches_spec_distributions(self):
        report = distribution_provenance_report(
            [
                {"path": "device.activation_energy_ev", "kind": "normal",
                 "mean": 1.0, "sigma": 0.01, "relative": True},
                {"path": "device.disc_length_m", "kind": "normal",
                 "mean": 1.0, "sigma": 0.5, "relative": True},
            ]
        )
        by_path = {row["path"]: row for row in report.rows}
        assert by_path["device.activation_energy_ev"]["source"] == "placeholder"
        assert by_path["device.disc_length_m"]["source"] == "user-supplied"

    def test_full_table_without_arguments(self):
        report = distribution_provenance_report()
        assert len(report.rows) == len(DISTRIBUTION_PROVENANCE)

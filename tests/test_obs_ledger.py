"""Tests of the cross-run observability layer: run ledger, snapshot diffing,
OpenMetrics export, histogram percentiles, and the benchmark regression gate.

The ledger is exercised both at the library level (:mod:`repro.obs.store`)
and through the CLI surfaces (``repro obs runs/show/diff/export/check-bench``
plus the silent recording every ``campaign run`` / ``mc run`` / ``mc map`` /
``profile`` invocation now performs).
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.campaign import CampaignSpec
from repro.campaign.cli import main
from repro.errors import ReproError
from repro.obs import (
    LogHistogram,
    RunLedger,
    Telemetry,
    append_history,
    check_bench,
    diff_snapshots,
    disable_telemetry,
    gate_passed,
    load_baselines,
    load_bench_records,
    load_history,
    parse_openmetrics,
    render_diff,
    render_metrics,
    render_openmetrics,
    render_runs_table,
    render_span_table,
    spans_from_snapshot,
    total_wall_s,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(autouse=True)
def _telemetry_off_after_each_test():
    yield
    disable_telemetry()


#: A 4-point attack campaign on a fast 3x3 crossbar.
CAMPAIGN_SPEC = dict(
    name="ledger-campaign",
    simulation={"geometry": {"rows": 3, "columns": 3}},
    attack={"aggressors": [[1, 1]], "victim": [1, 2]},
    axes=[{"path": "attack.pulse.length_s", "values": [30e-9, 50e-9, 70e-9, 90e-9]}],
)


@pytest.fixture
def spec_path(tmp_path) -> Path:
    path = tmp_path / "spec.json"
    CampaignSpec(**CAMPAIGN_SPEC).to_json(path)
    return path


def _snapshot(**counters) -> dict:
    tel = Telemetry()
    for name, value in counters.items():
        tel.count(name, value)
    with tel.span("root"):
        with tel.span("inner"):
            pass
    return tel.snapshot()


# ----------------------------------------------------------------------
# RunLedger
# ----------------------------------------------------------------------


class TestRunLedger:
    def test_record_appends_index_line_and_snapshot_file(self, tmp_path):
        ledger = RunLedger(tmp_path / "obs")
        entry = ledger.record("repro mc run spec.json", _snapshot(solves=5), label="mc.run")
        assert (tmp_path / "obs" / "ledger.jsonl").exists()
        assert (tmp_path / "obs" / "runs" / f"{entry.run_id}.json").exists()
        entries = ledger.entries()
        assert [e.run_id for e in entries] == [entry.run_id]
        assert entries[0].command == "repro mc run spec.json"

    def test_snapshot_payload_round_trips(self, tmp_path):
        ledger = RunLedger(tmp_path)
        snapshot = _snapshot(a=1)
        entry = ledger.record("cmd", snapshot, manifest={"versions": {"repro": "x"}})
        payload = ledger.load_snapshot(entry.run_id)
        assert payload["counters"] == {"a": 1}
        assert payload["manifest"]["versions"]["repro"] == "x"
        assert payload["command"] == "cmd"

    def test_resolve_latest_prefix_and_ambiguity(self, tmp_path):
        ledger = RunLedger(tmp_path)
        first = ledger.record("one", _snapshot(), run_id="20260101T000000-aaaaaa")
        second = ledger.record("two", _snapshot(), run_id="20260102T000000-bbbbbb")
        assert ledger.resolve("latest").run_id == second.run_id
        assert ledger.resolve("latest~1").run_id == first.run_id
        assert ledger.resolve("20260101").run_id == first.run_id
        with pytest.raises(ReproError, match="ambiguous"):
            ledger.resolve("2026")
        with pytest.raises(ReproError, match="no recorded run"):
            ledger.resolve("nope")

    def test_empty_ledger_resolve_raises(self, tmp_path):
        with pytest.raises(ReproError, match="no recorded runs"):
            RunLedger(tmp_path / "empty").resolve("latest")

    def test_corrupt_index_lines_are_skipped(self, tmp_path):
        ledger = RunLedger(tmp_path)
        entry = ledger.record("cmd", _snapshot())
        with open(ledger.index_path, "a", encoding="utf-8") as handle:
            handle.write('{"torn wri\n')
        assert [e.run_id for e in ledger.entries()] == [entry.run_id]

    def test_index_counters_are_promoted(self, tmp_path):
        ledger = RunLedger(tmp_path)
        tel = Telemetry()
        tel.count("campaign.points", 12)
        tel.count("some.internal.counter", 99)
        entry = ledger.record("cmd", tel.snapshot())
        assert entry.counters == {"campaign.points": 12}

    def test_exclusive_invariant_holds_for_persisted_snapshot(self, tmp_path):
        """Sum of exclusive times == root wall time, after the JSON round trip."""
        tel = Telemetry()
        with tel.span("root"):
            with tel.span("a"):
                with tel.span("a.child"):
                    pass
            with tel.span("b"):
                pass
        ledger = RunLedger(tmp_path)
        entry = ledger.record("cmd", tel.snapshot())
        payload = ledger.load_snapshot(entry.run_id)
        roots = spans_from_snapshot(payload)
        wall = total_wall_s(roots)

        def walk(spans):
            for span in spans:
                yield span
                yield from walk(span.children)

        exclusive = sum(s.exclusive_s for s in walk(roots) if not s.remote)
        assert exclusive == pytest.approx(wall, rel=1e-6)


# ----------------------------------------------------------------------
# diffing
# ----------------------------------------------------------------------


class TestDiff:
    def test_counter_deltas_and_pct(self):
        diff = diff_snapshots(_snapshot(solves=10, hits=5), _snapshot(solves=15))
        assert diff["counters"]["solves"] == {"a": 10.0, "b": 15.0, "delta": 5.0, "pct": 50.0}
        assert diff["counters"]["hits"]["delta"] == -5.0
        assert diff["counters"]["hits"]["pct"] == -100.0

    def test_new_counter_has_no_pct(self):
        diff = diff_snapshots(_snapshot(), _snapshot(fresh=3))
        assert diff["counters"]["fresh"]["pct"] is None

    def test_span_aggregates_in_diff(self):
        diff = diff_snapshots(_snapshot(), _snapshot())
        assert set(diff["spans"]) == {"root", "inner"}
        assert diff["spans"]["root"]["calls_a"] == diff["spans"]["root"]["calls_b"] == 1

    def test_render_diff_mentions_runs_and_deltas(self):
        diff = diff_snapshots(_snapshot(solves=10), _snapshot(solves=15))
        text = render_diff(diff, run_a="RUN_A", run_b="RUN_B")
        assert "RUN_A -> RUN_B" in text
        assert "solves" in text
        assert "+50.0%" in text

    def test_render_runs_table_empty(self):
        assert "no runs" in render_runs_table([])


# ----------------------------------------------------------------------
# percentiles
# ----------------------------------------------------------------------


class TestHistogramPercentiles:
    def test_quantiles_land_in_the_right_bins(self):
        hist = LogHistogram()
        for value in [0.001] * 50 + [0.01] * 40 + [0.1] * 9 + [1.0]:
            hist.observe(value)
        payload = hist.to_dict()
        # Each quantile must fall inside the bin holding that rank: p50 in
        # the 1e-3 bin, p90 at the boundary into the 1e-2 bin, p99 in 1e-1.
        assert 0.001 <= payload["p50"] < 10 ** -2.75
        assert 0.01 <= payload["p90"] < 10 ** -1.75
        assert 0.1 <= payload["p99"] < 10 ** -0.75

    def test_single_sample_percentiles_clamp_to_observed(self):
        hist = LogHistogram()
        hist.observe(0.02)
        payload = hist.to_dict()
        assert payload["p50"] == payload["p90"] == payload["p99"] == 0.02

    def test_empty_histogram_has_no_percentiles(self):
        assert LogHistogram().to_dict()["p50"] is None

    def test_nonpositive_samples_report_bounded_minimum(self):
        hist = LogHistogram()
        hist.observe(-1.0)
        hist.observe(-2.0)
        hist.observe(5.0)
        assert hist.quantile(0.5) == -2.0
        assert hist.quantile(0.99) == pytest.approx(math.sqrt(10 ** 0.5 * 10 ** 0.75))

    def test_percentiles_survive_merge(self):
        a, b = LogHistogram(), LogHistogram()
        for value in (0.001, 0.01):
            a.observe(value)
        for value in (0.1, 1.0):
            b.observe(value)
        a.merge_dict(b.to_dict())
        assert a.quantile(0.5) == pytest.approx(math.sqrt(0.01 * 10 ** -1.75))

    def test_render_metrics_includes_percentiles(self):
        tel = Telemetry()
        tel.observe("lat", 0.5)
        assert "p50=" in render_metrics(tel.snapshot())


# ----------------------------------------------------------------------
# span-table determinism
# ----------------------------------------------------------------------


class TestSpanTableOrdering:
    def _snapshot_with_siblings(self):
        tel = Telemetry()
        with tel.span("root"):
            with tel.span("aaa_fast"):
                pass
            with tel.span("zzz_slow"):
                for _ in range(2000):
                    pass
        return tel.snapshot()

    def test_rows_sorted_by_total_descending(self):
        snapshot = self._snapshot_with_siblings()
        table = render_span_table(snapshot)
        assert table.index("zzz_slow") < table.index("aaa_fast")

    def test_top_truncates_and_reports_dropped(self):
        snapshot = self._snapshot_with_siblings()
        table = render_span_table(snapshot, top=1)
        assert "aaa_fast" not in table
        assert "(1 more)" in table

    def test_bad_sort_key_rejected(self):
        with pytest.raises(ValueError, match="sort"):
            render_span_table(self._snapshot_with_siblings(), sort="calls")


# ----------------------------------------------------------------------
# OpenMetrics
# ----------------------------------------------------------------------


class TestOpenMetrics:
    def test_round_trip_through_parser(self):
        tel = Telemetry()
        tel.count("solver.solves", 7)
        tel.gauge("campaign.worker_utilization", 0.75)
        for value in (0.001, 0.01, 0.01, 0.1, -1.0):
            tel.observe("solver.residual_a", value)
        with tel.span("mc.run"):
            with tel.span("mc.batch"):
                pass
        snapshot = tel.snapshot()
        text = render_openmetrics(snapshot)
        assert text.endswith("# EOF\n")
        families = parse_openmetrics(text)

        counters = families["repro_solver_solves"]
        assert counters["type"] == "counter"
        assert counters["samples"][("repro_solver_solves_total", ())] == 7.0
        gauge = families["repro_campaign_worker_utilization"]
        assert gauge["samples"][("repro_campaign_worker_utilization", ())] == 0.75

        hist = families["repro_solver_residual_a"]
        samples = hist["samples"]
        assert samples[("repro_solver_residual_a_count", ())] == 5.0
        # Cumulative buckets: the +Inf bucket equals the count, every bucket
        # (which includes the nonpositive tally) is monotone non-decreasing.
        buckets = sorted(
            (float(dict(labels)["le"]) if dict(labels)["le"] != "+Inf" else math.inf, value)
            for (name, labels) in samples
            if name.endswith("_bucket")
            for value in [samples[(name, labels)]]
        )
        values = [v for _, v in buckets]
        assert values == sorted(values)
        assert buckets[-1][1] == 5.0
        assert buckets[0][1] >= 1.0  # the nonpositive sample sits below every edge

        spans = families["repro_span_calls"]
        assert spans["samples"][("repro_span_calls_total", (("span", "mc.run"),))] == 1.0

    def test_parser_rejects_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("# TYPE repro_x counter\nrepro_x_total 1\n")

    def test_parser_rejects_malformed_sample(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_openmetrics("what even is this\n# EOF\n")

    def test_names_are_sanitised(self):
        tel = Telemetry()
        tel.count("weird-name.with$chars", 1)
        text = render_openmetrics(tel.snapshot())
        assert "repro_weird_name_with_chars_total 1" in text


# ----------------------------------------------------------------------
# regression gate
# ----------------------------------------------------------------------


BASELINES = {
    "default_tolerance": 0.25,
    "metrics": [
        {"metric": "mc.wall_s", "baseline": 1.0, "direction": "lower"},
        {"metric": "mc.speedup", "baseline": 10.0, "direction": "higher", "tolerance": 0.5},
    ],
}


class TestRegressionGate:
    def test_passes_within_tolerance(self):
        records = [{"benchmark": "mc", "wall_s": 1.2, "speedup": 9.0}]
        results = check_bench(records, BASELINES)
        assert [r.status for r in results] == ["ok", "ok"]
        assert gate_passed(results)

    def test_fails_on_doubled_wall_time(self):
        records = [{"benchmark": "mc", "wall_s": 2.0, "speedup": 9.0}]
        results = check_bench(records, BASELINES)
        assert results[0].status == "fail"
        assert not gate_passed(results)

    def test_fails_on_speedup_collapse(self):
        records = [{"benchmark": "mc", "wall_s": 0.5, "speedup": 2.0}]
        assert not gate_passed(check_bench(records, BASELINES))

    def test_when_matcher_skips_other_configs(self):
        baselines = {
            "metrics": [
                {"metric": "mc.wall_s", "baseline": 1.0, "when": {"n": 1000}},
                {"metric": "mc.wall_s", "baseline": 0.1, "when": {"n": 64}},
            ]
        }
        records = [{"benchmark": "mc", "wall_s": 1.1, "n": 1000}]
        results = check_bench(records, baselines)
        assert [r.status for r in results] == ["ok", "skipped"]
        assert gate_passed(results)

    def test_gate_fails_when_nothing_checked(self):
        # A gate whose every entry is missing/skipped must not green-light CI.
        assert not gate_passed(check_bench([], BASELINES))

    def test_missing_metric_path_reported(self):
        records = [{"benchmark": "mc", "speedup": 11.0}]
        results = check_bench(records, BASELINES)
        assert results[0].status == "missing"

    def test_history_latest_record_wins(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        append_history({"benchmark": "mc", "wall_s": 9.0}, path)
        append_history({"benchmark": "mc", "wall_s": 0.5}, path)
        assert [r["wall_s"] for r in load_history(path)] == [9.0, 0.5]
        records = load_bench_records(tmp_path)
        assert len(records) == 1 and records[0]["wall_s"] == 0.5

    def test_bench_json_fallback_when_no_history(self, tmp_path):
        (tmp_path / "BENCH_mc.json").write_text(json.dumps({"benchmark": "mc", "wall_s": 0.7}))
        records = load_bench_records(tmp_path)
        assert records[0]["wall_s"] == 0.7

    def test_committed_trajectory_passes_committed_baselines(self):
        """The in-repo BENCH history must gate clean against its baselines."""
        bench_dir = REPO_ROOT / "benchmarks"
        baselines = load_baselines(bench_dir / "BENCH_baselines.json")
        results = check_bench(load_bench_records(bench_dir), baselines)
        assert gate_passed(results), [r.to_dict() for r in results if r.status == "fail"]

    def test_committed_trajectory_fails_on_synthetic_slowdown(self, tmp_path):
        """Doubling the hottest wall time must trip the committed gate."""
        bench_dir = REPO_ROOT / "benchmarks"
        record = json.loads((bench_dir / "BENCH_montecarlo.json").read_text())
        record["vectorized_s"] *= 2.0
        (tmp_path / "BENCH_montecarlo.json").write_text(json.dumps(record))
        baselines = load_baselines(bench_dir / "BENCH_baselines.json")
        results = check_bench(load_bench_records(tmp_path), baselines)
        assert any(r.status == "fail" and r.metric == "montecarlo.vectorized_s" for r in results)
        assert not gate_passed(results)


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------


class TestObsCli:
    def test_campaign_run_records_to_ledger(self, tmp_path, spec_path, capsys):
        obs = tmp_path / "obs"
        assert main(["campaign", "run", str(spec_path), "--no-cache", "--obs-dir", str(obs)]) == 0
        capsys.readouterr()
        ledger = RunLedger(obs)
        entries = ledger.entries()
        assert len(entries) == 1
        assert entries[0].label == "campaign.run"
        assert entries[0].spec_name == "ledger-campaign"
        assert entries[0].status == "ok"
        payload = ledger.load_snapshot("latest")
        assert payload["counters"]["campaign.points"] == 4
        assert payload["manifest"]["versions"]["repro"]
        # The root CLI span was sealed before persisting.
        assert payload["open_spans"] == 0

    def test_no_obs_skips_recording(self, tmp_path, spec_path, capsys):
        obs = tmp_path / "obs"
        code = main(
            ["campaign", "run", str(spec_path), "--no-cache", "--obs-dir", str(obs), "--no-obs"]
        )
        assert code == 0
        capsys.readouterr()
        assert RunLedger(obs).entries() == []

    def test_recording_is_silent_on_stdout(self, tmp_path, spec_path, capsys):
        assert main(
            ["campaign", "run", str(spec_path), "--no-cache", "--obs-dir", str(tmp_path / "o"), "--json"]
        ) == 0
        # The whole stdout must still parse as the command's own JSON.
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["total"] == 4

    def test_error_runs_are_recorded_as_failed(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        obs = tmp_path / "obs"
        assert main(["campaign", "run", str(bad), "--no-cache", "--obs-dir", str(obs)]) == 1
        capsys.readouterr()
        entries = RunLedger(obs).entries()
        assert len(entries) == 1
        assert entries[0].status == "error"

    def test_obs_runs_and_show_and_diff(self, tmp_path, spec_path, capsys):
        obs = tmp_path / "obs"
        cache = tmp_path / "cache"
        for _ in range(2):
            assert main(
                ["campaign", "run", str(spec_path), "--cache", str(cache), "--obs-dir", str(obs)]
            ) == 0
        capsys.readouterr()

        assert main(["obs", "runs", "--obs-dir", str(obs)]) == 0
        out = capsys.readouterr().out
        assert "campaign run" in out and out.count("ok") >= 2

        assert main(["obs", "show", "latest", "--obs-dir", str(obs)]) == 0
        out = capsys.readouterr().out
        assert "cli.campaign.run" in out and "campaign.cache.hits" in out

        assert main(["obs", "diff", "latest~1", "latest", "--obs-dir", str(obs)]) == 0
        out = capsys.readouterr().out
        # First run computes all 4 points, second serves them from cache.
        assert "campaign.cache.hits" in out
        assert "+4" in out

    def test_obs_diff_json_reports_counter_deltas(self, tmp_path, spec_path, capsys):
        obs = tmp_path / "obs"
        cache = tmp_path / "cache"
        for _ in range(2):
            main(["campaign", "run", str(spec_path), "--cache", str(cache), "--obs-dir", str(obs)])
        capsys.readouterr()
        assert main(["obs", "diff", "latest~1", "latest", "--json", "--obs-dir", str(obs)]) == 0
        payload = json.loads(capsys.readouterr().out)
        deltas = payload["diff"]["counters"]
        assert deltas["campaign.cache.hits"]["delta"] == 4.0
        assert deltas["campaign.cache.misses"]["delta"] == -4.0

    def test_obs_export_round_trips(self, tmp_path, spec_path, capsys):
        obs = tmp_path / "obs"
        assert main(["campaign", "run", str(spec_path), "--no-cache", "--obs-dir", str(obs)]) == 0
        capsys.readouterr()
        assert main(["obs", "export", "latest", "--obs-dir", str(obs)]) == 0
        text = capsys.readouterr().out
        families = parse_openmetrics(text)
        assert families["repro_campaign_points"]["samples"][("repro_campaign_points_total", ())] == 4.0

    def test_obs_export_to_file(self, tmp_path, spec_path, capsys):
        obs = tmp_path / "obs"
        main(["campaign", "run", str(spec_path), "--no-cache", "--obs-dir", str(obs)])
        out_path = tmp_path / "metrics.prom"
        assert main(["obs", "export", "latest", "--obs-dir", str(obs), "--output", str(out_path)]) == 0
        parse_openmetrics(out_path.read_text())

    def test_obs_show_unknown_run_fails_cleanly(self, tmp_path, capsys):
        assert main(["obs", "runs", "--obs-dir", str(tmp_path / "void")]) == 0
        assert "no runs recorded" in capsys.readouterr().out
        assert main(["obs", "show", "zzz", "--obs-dir", str(tmp_path / "void")]) == 1
        assert "no recorded runs" in capsys.readouterr().err

    def test_profile_records_and_supports_top_sort(self, tmp_path, spec_path, capsys):
        obs = tmp_path / "obs"
        code = main(
            ["profile", "--obs-dir", str(obs), "--top", "2", "--sort", "excl",
             "campaign", "run", str(spec_path), "--no-cache"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "span" in out
        entries = RunLedger(obs).entries()
        assert len(entries) == 1
        assert entries[0].command.startswith("repro profile campaign run")

    def test_check_bench_cli_pass_and_fail(self, tmp_path, capsys):
        bench_dir = tmp_path / "bench"
        bench_dir.mkdir()
        (bench_dir / "BENCH_baselines.json").write_text(
            json.dumps({"metrics": [{"metric": "mc.wall_s", "baseline": 1.0, "direction": "lower"}]})
        )
        append_history({"benchmark": "mc", "wall_s": 1.1}, bench_dir / "BENCH_history.jsonl")
        assert main(["obs", "check-bench", "--bench-dir", str(bench_dir)]) == 0
        assert "PASS" in capsys.readouterr().out

        append_history({"benchmark": "mc", "wall_s": 2.2}, bench_dir / "BENCH_history.jsonl")
        assert main(["obs", "check-bench", "--bench-dir", str(bench_dir)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_check_bench_json_output(self, tmp_path, capsys):
        bench_dir = tmp_path / "bench"
        bench_dir.mkdir()
        (bench_dir / "BENCH_baselines.json").write_text(
            json.dumps({"metrics": [{"metric": "mc.wall_s", "baseline": 1.0, "direction": "lower"}]})
        )
        append_history({"benchmark": "mc", "wall_s": 0.4}, bench_dir / "BENCH_history.jsonl")
        assert main(["obs", "check-bench", "--bench-dir", str(bench_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert payload["checks"][0]["status"] == "ok"

"""Tests for alpha-value extraction and the coupling models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CrossbarGeometry, ThermalSolverConfig
from repro.errors import ConfigurationError, ExperimentError, GeometryError
from repro.thermal import (
    AnalyticCouplingModel,
    AnalyticCouplingParameters,
    HeatSolver,
    ThermalResistanceNetwork,
    UniformCouplingModel,
    alpha_dictionary,
    build_voxel_model,
    coupling_from_extraction,
    extract_alpha_values,
)


@pytest.fixture(scope="module")
def extraction():
    geometry = CrossbarGeometry(
        rows=3, columns=3, substrate_thickness_m=80e-9, insulator_thickness_m=40e-9
    )
    config = ThermalSolverConfig(lateral_resolution_m=30e-9, vertical_resolution_m=30e-9)
    solver = HeatSolver(build_voxel_model(geometry, config), 300.0)
    return geometry, extract_alpha_values(solver, selected_cell=(1, 1), points=3)


class TestAlphaExtraction:
    def test_selected_cell_alpha_is_one(self, extraction):
        _, result = extraction
        assert result.alpha[1, 1] == pytest.approx(1.0)

    def test_neighbour_alphas_in_unit_interval(self, extraction):
        _, result = extraction
        others = np.delete(result.alpha.ravel(), 4)
        assert np.all(others > 0.0)
        assert np.all(others < 1.0)

    def test_same_line_neighbours_couple_strongest(self, extraction):
        _, result = extraction
        same_line = [result.alpha[1, 0], result.alpha[1, 2], result.alpha[0, 1], result.alpha[2, 1]]
        diagonal = [result.alpha[0, 0], result.alpha[0, 2], result.alpha[2, 0], result.alpha[2, 2]]
        assert min(same_line) > max(diagonal)

    def test_thermal_resistance_positive_and_plausible(self, extraction):
        _, result = extraction
        assert 1e5 < result.thermal_resistance_k_per_w < 1e8

    def test_fit_quality(self, extraction):
        _, result = extraction
        assert result.r_squared > 0.999
        assert result.fitted_ambient_k == pytest.approx(300.0, abs=2.0)

    def test_alpha_dictionary_excludes_selected_cell(self, extraction):
        _, result = extraction
        table = alpha_dictionary(result)
        assert (1, 1) not in table
        assert len(table) == 8

    def test_requires_two_sweep_points(self, extraction):
        geometry, _ = extraction
        config = ThermalSolverConfig(lateral_resolution_m=30e-9, vertical_resolution_m=30e-9)
        solver = HeatSolver(build_voxel_model(geometry, config), 300.0)
        with pytest.raises(ExperimentError):
            extract_alpha_values(solver, points=1)


class TestAnalyticCoupling:
    def test_calibrated_nearest_neighbour_value(self, paper_geometry):
        coupling = AnalyticCouplingModel(paper_geometry)
        alpha = coupling.alpha_between((2, 2), (2, 3))
        # Calibrated against Fig. 2a: same-line neighbours receive ~11-12 % of
        # the aggressor rise at 100 nm pitch.
        assert 0.10 <= alpha <= 0.13

    def test_self_coupling_is_one(self, paper_geometry):
        coupling = AnalyticCouplingModel(paper_geometry)
        assert coupling.alpha_between((2, 2), (2, 2)) == 1.0

    def test_decays_with_distance(self, paper_geometry):
        coupling = AnalyticCouplingModel(paper_geometry)
        near = coupling.alpha_between((2, 2), (2, 3))
        far = coupling.alpha_between((2, 2), (2, 4))
        assert near > far > 0.0

    def test_same_line_beats_diagonal(self, paper_geometry):
        coupling = AnalyticCouplingModel(paper_geometry)
        assert coupling.alpha_between((2, 2), (2, 3)) > coupling.alpha_between((2, 2), (3, 3))

    def test_tighter_spacing_couples_more(self):
        dense = AnalyticCouplingModel(CrossbarGeometry(electrode_spacing_m=10e-9))
        sparse = AnalyticCouplingModel(CrossbarGeometry(electrode_spacing_m=90e-9))
        assert dense.alpha_between((2, 2), (2, 3)) > sparse.alpha_between((2, 2), (2, 3))

    def test_matrix_for_shape_and_symmetry(self, paper_geometry):
        matrix = AnalyticCouplingModel(paper_geometry).matrix_for((2, 2))
        assert matrix.values.shape == (5, 5)
        assert matrix.values[2, 2] == 1.0
        assert matrix.values[2, 1] == pytest.approx(matrix.values[2, 3])
        assert matrix.values[1, 2] == pytest.approx(matrix.values[3, 2])

    def test_hottest_neighbours_are_same_line(self, paper_geometry):
        matrix = AnalyticCouplingModel(paper_geometry).matrix_for((2, 2))
        hottest = set(matrix.hottest_neighbours(4))
        assert hottest == {(2, 1), (2, 3), (1, 2), (3, 2)}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            AnalyticCouplingParameters(decay_length_m=0.0)
        with pytest.raises(ConfigurationError):
            AnalyticCouplingParameters(max_alpha=1.5)

    def test_out_of_range_cell_rejected(self, paper_geometry):
        coupling = AnalyticCouplingModel(paper_geometry)
        with pytest.raises(GeometryError):
            coupling.alpha_between((2, 2), (9, 9))


class TestExtractedAndUniformCoupling:
    def test_extracted_coupling_is_translation_invariant(self, extraction):
        geometry, result = extraction
        coupling = coupling_from_extraction(geometry, result)
        assert coupling.alpha_between((1, 1), (1, 2)) == pytest.approx(
            coupling.alpha_between((0, 0), (0, 1))
        )

    def test_extracted_coupling_matches_extraction(self, extraction):
        geometry, result = extraction
        coupling = coupling_from_extraction(geometry, result)
        assert coupling.alpha_between((1, 1), (0, 0)) == pytest.approx(result.alpha[0, 0])

    def test_geometry_mismatch_rejected(self, extraction):
        _, result = extraction
        with pytest.raises(GeometryError):
            coupling_from_extraction(CrossbarGeometry(rows=5, columns=5), result)

    def test_uniform_coupling_only_nearest_neighbours(self, small_geometry):
        coupling = UniformCouplingModel(small_geometry, alpha=0.2)
        assert coupling.alpha_between((1, 1), (1, 2)) == pytest.approx(0.2)
        assert coupling.alpha_between((1, 1), (0, 0)) == 0.0

    def test_uniform_coupling_validates_alpha(self, small_geometry):
        with pytest.raises(ConfigurationError):
            UniformCouplingModel(small_geometry, alpha=1.5)


class TestThermalNetwork:
    def test_alpha_extraction_consistent_with_analytic(self, paper_geometry):
        network = ThermalResistanceNetwork(paper_geometry)
        result = network.extract_alpha_values()
        analytic = AnalyticCouplingModel(paper_geometry)
        network_alpha = result.alpha[2, 3]
        analytic_alpha = analytic.alpha_between((2, 2), (2, 3))
        assert network_alpha == pytest.approx(analytic_alpha, rel=0.5)

    def test_effective_thermal_resistance_positive(self, paper_geometry):
        network = ThermalResistanceNetwork(paper_geometry)
        assert 1e5 < network.effective_thermal_resistance() < 1e8

    def test_temperature_rises_linear_in_power(self, paper_geometry):
        network = ThermalResistanceNetwork(paper_geometry)
        low = network.temperature_rises({(2, 2): 100e-6})
        high = network.temperature_rises({(2, 2): 200e-6})
        assert np.allclose(high, 2 * low)

    def test_edge_cell_hotter_than_centre_for_same_power(self, paper_geometry):
        # Edge cells have fewer lateral escape paths, so the same power gives
        # a larger self-rise.
        network = ThermalResistanceNetwork(paper_geometry)
        centre = network.effective_thermal_resistance((2, 2))
        corner = network.effective_thermal_resistance((0, 0))
        assert corner > centre

    def test_rejects_negative_power(self, paper_geometry):
        network = ThermalResistanceNetwork(paper_geometry)
        with pytest.raises(ConfigurationError):
            network.temperature_rises({(2, 2): -1.0})

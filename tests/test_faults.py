"""Tests of the fault-tolerance layer (:mod:`repro.faults`).

Covers the retry policy and the retryable-exception registry, the
``REPRO_FAULTS`` spec grammar and its deterministic seeded draws, the
campaign runner's retry/crash/quarantine machinery under injected faults,
the straggler-timeout path with multiple hung workers, harvest of
undeliverable results, cache-corruption quarantine, and graceful shutdown —
including the acceptance scenario: a pool worker SIGKILLed mid-campaign
with bit-identical resilience counters across two seeded runs.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, JobRecord, ResultCache
from repro.errors import CampaignError, CampaignInterrupted, ConvergenceError, FaultInjectionError
from repro.faults import (
    DEFAULT_HANG_S,
    FAULTS_ENV,
    FaultPlan,
    FaultRule,
    InjectedFatalFault,
    InjectedFault,
    RetryPolicy,
    active_plan,
    fire_point_faults,
    graceful_shutdown,
    is_retryable,
    register_retryable,
    retryable_types,
    should_corrupt_cache,
)
from repro.obs import RunLedger, resilience_counts

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")


def chaos_spec(n: int = 5, **kwargs) -> CampaignSpec:
    """A tiny 3x3-crossbar campaign with ``n`` points for chaos tests."""
    defaults = dict(
        name="chaos",
        mode="grid",
        simulation={"geometry": {"rows": 3, "columns": 3}},
        attack={"aggressors": [[1, 1]], "victim": [1, 2]},
        axes=[{"path": "attack.pulse.length_s", "values": [float(10e-9 * (i + 1)) for i in range(n)]}],
    )
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


def _chaos_job(payload):
    """A fast fault-aware stand-in for the real simulation job.

    Runs the injection sites for its point and reports an injected raise as
    an ordinary error record, exactly like the production job wrapper does.
    """
    index, key, job, overrides = payload
    try:
        fire_point_faults(index)
    except Exception as exc:  # noqa: BLE001 - mirror of the production boundary
        return JobRecord(
            index=index,
            key=key,
            status="error",
            overrides=overrides,
            error=f"{type(exc).__name__}: {exc}",
            retryable=is_retryable(exc),
        )
    return JobRecord(index=index, key=key, status="ok", overrides=overrides, result={"pulses": 1})


def _slow_job(payload):
    """A job slow enough for a signal to land mid-campaign."""
    index, key, job, overrides = payload
    time.sleep(0.15)
    return JobRecord(index=index, key=key, status="ok", overrides=overrides, result={"pulses": 1})


def _unpicklable_job(payload):
    """Returns a record the pool cannot ship back to the parent."""
    index, key, job, overrides = payload
    if index == 1:
        return JobRecord(
            index=index, key=key, status="ok", overrides=overrides,
            result={"callback": lambda: None},
        )
    return JobRecord(index=index, key=key, status="ok", overrides=overrides, result={"pulses": 1})


def _record_states(report):
    """Canonical per-point outcome tuple used for determinism assertions."""
    return tuple(sorted((r.index, r.status, r.attempts) for r in report.records))


# ----------------------------------------------------------------------
# RetryPolicy and the retryable registry
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(CampaignError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(CampaignError):
            RetryPolicy(base_delay_s=-0.1)
        with pytest.raises(CampaignError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(CampaignError):
            RetryPolicy(base_delay_s=1.0, max_delay_s=0.5)
        with pytest.raises(CampaignError):
            RetryPolicy(jitter=1.5)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay_s=0.1, backoff_factor=2.0, max_delay_s=0.3, jitter=0.0)
        assert policy.delay_s(1) == pytest.approx(0.1)
        assert policy.delay_s(2) == pytest.approx(0.2)
        assert policy.delay_s(3) == pytest.approx(0.3)
        assert policy.delay_s(10) == pytest.approx(0.3)

    def test_jitter_is_seeded_and_per_key(self):
        a = RetryPolicy(seed=3)
        b = RetryPolicy(seed=3)
        c = RetryPolicy(seed=4)
        delays_a = [a.delay_s(k, key="point-1") for k in (1, 2, 3)]
        assert delays_a == [b.delay_s(k, key="point-1") for k in (1, 2, 3)]
        assert delays_a != [c.delay_s(k, key="point-1") for k in (1, 2, 3)]
        assert delays_a != [a.delay_s(k, key="point-2") for k in (1, 2, 3)]
        # Jittered delay stays within [base, base * (1 + jitter)].
        assert 0.05 <= delays_a[0] <= 0.05 * 1.5

    def test_delay_is_one_based(self):
        with pytest.raises(CampaignError):
            RetryPolicy().delay_s(0)

    def test_round_trip_and_unknown_fields(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.01, seed=9)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy
        with pytest.raises(CampaignError):
            RetryPolicy.from_dict({"max_attempts": 2, "bogus": 1})

    def test_should_retry_combines_budget_and_classification(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.should_retry(ConnectionError("flake"), attempt=0)
        assert not policy.should_retry(ConnectionError("flake"), attempt=1)
        assert not policy.should_retry(ValueError("deterministic"), attempt=0)


class TestRetryableRegistry:
    def test_os_flakes_are_registered(self):
        for exc in (ConnectionError("x"), TimeoutError("x"), EOFError("x"), MemoryError()):
            assert is_retryable(exc)
        assert not is_retryable(ValueError("x"))
        assert ConnectionError in retryable_types()

    def test_solver_registers_convergence_error(self):
        import repro.circuit.solver  # noqa: F401 - registration happens at import

        assert is_retryable(ConvergenceError("did not converge"))

    def test_instance_attribute_overrides_registry(self):
        flake = ValueError("transient this once")
        flake.retryable = True
        assert is_retryable(flake)
        hard = ConnectionError("actually fatal")
        hard.retryable = False
        assert not is_retryable(hard)

    def test_register_retryable_is_a_decorator_and_validates(self):
        @register_retryable
        class _Flaky(RuntimeError):
            pass

        assert is_retryable(_Flaky("x"))
        with pytest.raises(TypeError):
            register_retryable("not a type")

    def test_injected_fault_classification(self):
        assert is_retryable(InjectedFault("x"))
        assert not is_retryable(InjectedFatalFault("x"))


# ----------------------------------------------------------------------
# Fault spec grammar
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_round_trip(self):
        spec = "raise@1x2;kill@4;corrupt-cache~0.5;seed=7;hang=2"
        plan = FaultPlan.parse(spec)
        assert plan.seed == 7 and plan.hang_s == 2.0
        assert [r.action for r in plan.rules] == ["raise", "kill", "corrupt-cache"]
        assert plan.rules[0] == FaultRule(action="raise", indices=(1,), times=2)
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_parse_defaults(self):
        plan = FaultPlan.parse("kill@0")
        assert plan.seed == 0 and plan.hang_s == DEFAULT_HANG_S
        assert plan.rules[0].times == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "explode@1",          # unknown action
            "raise@",             # no indices
            "raise@1x0",          # repeat must be >= 1
            "raise~1.5",          # rate out of (0, 1]
            "raise~oops",         # unparsable rate
            "raise",              # no @ or ~
            "seed=abc",           # unparsable seed
        ],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(FaultInjectionError):
            FaultPlan.parse(bad)

    def test_indexed_rule_fires_on_listed_attempts_only(self):
        rule = FaultRule(action="raise", indices=(1, 3), times=2)
        assert rule.fires(1, 0, seed=0) and rule.fires(1, 1, seed=0)
        assert not rule.fires(1, 2, seed=0)
        assert rule.fires(3, 0, seed=0)
        assert not rule.fires(2, 0, seed=0)

    def test_rate_rule_is_deterministic_per_seed(self):
        rule = FaultRule(action="raise", rate=0.5)
        draws = [rule.fires(i, 0, seed=11) for i in range(64)]
        assert draws == [rule.fires(i, 0, seed=11) for i in range(64)]
        assert any(draws) and not all(draws)
        assert draws != [rule.fires(i, 0, seed=12) for i in range(64)]

    def test_active_plan_tracks_environment(self, monkeypatch):
        assert active_plan() is None
        monkeypatch.setenv(FAULTS_ENV, "raise@2")
        plan = active_plan()
        assert plan is not None and plan.should("raise", 2)
        assert active_plan() is plan  # cached per raw value
        monkeypatch.delenv(FAULTS_ENV)
        assert active_plan() is None

    def test_fire_point_faults_raises_by_schedule(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "raise@2x1;fatal@3")
        fire_point_faults(0)  # not scheduled: no-op
        with pytest.raises(InjectedFault):
            fire_point_faults(2, attempt=0)
        fire_point_faults(2, attempt=1)  # transient: second attempt clean
        with pytest.raises(InjectedFatalFault):
            fire_point_faults(3, attempt=0)

    def test_should_corrupt_cache(self, monkeypatch):
        assert not should_corrupt_cache(0)
        monkeypatch.setenv(FAULTS_ENV, "corrupt-cache@0")
        assert should_corrupt_cache(0)
        assert not should_corrupt_cache(1)


# ----------------------------------------------------------------------
# Campaign retries (serial and pool)
# ----------------------------------------------------------------------


class TestCampaignRetries:
    def test_serial_transient_fault_is_retried_to_success(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "raise@1x2")
        retry = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        runner = CampaignRunner(chaos_spec(), workers=0, job_fn=_chaos_job, retry=retry)
        report = runner.run()
        assert report.counts()["ok"] == 5 and report.counts()["error"] == 0
        by_index = {r.index: r for r in report.records}
        assert by_index[1].attempts == 3
        assert all(by_index[i].attempts == 1 for i in (0, 2, 3, 4))
        assert runner.resilience["retried"] == 2
        assert report.counts()["retried"] == 2

    def test_serial_fatal_fault_is_not_retried(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "fatal@2x99")
        retry = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        runner = CampaignRunner(chaos_spec(), workers=0, job_fn=_chaos_job, retry=retry)
        report = runner.run()
        record = {r.index: r for r in report.records}[2]
        assert record.status == "error" and record.attempts == 1
        assert "InjectedFatalFault" in record.error
        assert runner.resilience["retried"] == 0

    def test_serial_retry_budget_exhausts(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "raise@1x99")
        retry = RetryPolicy(max_attempts=2, base_delay_s=0.0)
        runner = CampaignRunner(chaos_spec(), workers=0, job_fn=_chaos_job, retry=retry)
        report = runner.run()
        record = {r.index: r for r in report.records}[1]
        assert record.status == "error" and record.attempts == 2
        assert runner.resilience["retried"] == 1

    def test_no_policy_means_no_retries(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "raise@1x2")
        runner = CampaignRunner(chaos_spec(), workers=0, job_fn=_chaos_job)
        report = runner.run()
        record = {r.index: r for r in report.records}[1]
        assert record.status == "error" and record.attempts == 1

    def test_pool_transient_fault_is_retried_to_success(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "raise@1x2")
        retry = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        runner = CampaignRunner(chaos_spec(), workers=2, job_fn=_chaos_job, retry=retry)
        report = runner.run()
        assert report.counts()["ok"] == 5
        assert {r.index: r.attempts for r in report.records}[1] == 3
        assert runner.resilience["retried"] == 2

    def test_error_record_serialises_retryability(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "raise@0x99")
        report = CampaignRunner(chaos_spec(n=1), workers=0, job_fn=_chaos_job).run()
        payload = report.records[0].to_dict()
        assert payload["status"] == "error"
        assert payload["retryable"] is True
        assert payload["attempts"] == 1


# ----------------------------------------------------------------------
# Worker crashes, stragglers, undeliverable results
# ----------------------------------------------------------------------


class TestWorkerCrashRecovery:
    def _run_chaos(self, monkeypatch, tmp_path, cache_name):
        """One seeded chaos campaign: point 1 flakes twice, point 4 is poison."""
        monkeypatch.setenv(FAULTS_ENV, "raise@1x2;kill@4x99;seed=11")
        retry = RetryPolicy(max_attempts=3, base_delay_s=0.0, seed=7)
        runner = CampaignRunner(
            chaos_spec(),
            cache=ResultCache(tmp_path / cache_name),
            workers=2,
            job_fn=_chaos_job,
            retry=retry,
            max_crashes=2,
        )
        report = runner.run()
        return runner, report

    def test_sigkilled_worker_is_detected_and_point_quarantined(self, monkeypatch, tmp_path):
        """Acceptance: a live pool worker dies by SIGKILL mid-campaign."""
        runner, report = self._run_chaos(monkeypatch, tmp_path, "cache-a")
        counts = report.counts()
        assert counts["total"] == 5 and counts["ok"] == 4 and counts["crashed"] == 1
        by_index = {r.index: r for r in report.records}
        poison = by_index[4]
        assert poison.status == "crashed"
        assert poison.attempts == 2  # exactly max_crashes executions
        assert "quarantined" in poison.error
        assert by_index[1].status == "ok" and by_index[1].attempts == 3
        assert runner.resilience == {
            "retried": 2,
            "crashed": 2,
            "quarantined": 1,
            "pool_restarts": 2,
            "lease_steals": 0,
            "claim_conflicts": 0,
        }
        # No point lost, none duplicated.
        assert sorted(r.index for r in report.records) == [0, 1, 2, 3, 4]
        # Survivors are cached; the quarantined point is not.
        cache = ResultCache(tmp_path / "cache-a")
        assert len(cache) == 4

    def test_chaos_counters_are_bit_identical_across_runs(self, monkeypatch, tmp_path):
        """Acceptance: two runs of the same seeded schedule agree exactly."""
        first_runner, first_report = self._run_chaos(monkeypatch, tmp_path, "cache-b1")
        second_runner, second_report = self._run_chaos(monkeypatch, tmp_path, "cache-b2")
        assert first_runner.resilience == second_runner.resilience
        assert first_report.counts() == second_report.counts()
        assert _record_states(first_report) == _record_states(second_report)

    def test_two_hung_jobs_time_out_without_losing_points(self, monkeypatch):
        """Two stragglers in one campaign: one pool restart each, no losses."""
        monkeypatch.setenv(FAULTS_ENV, "hang@1,3x99;hang=30")
        runner = CampaignRunner(chaos_spec(), workers=1, timeout_s=0.4, job_fn=_chaos_job)
        report = runner.run()
        counts = report.counts()
        assert counts["timeout"] == 2 and counts["ok"] == 3
        timed_out = sorted(r.index for r in report.records if r.status == "timeout")
        assert timed_out == [1, 3]
        for record in report.records:
            if record.status == "timeout":
                assert "timeout" in record.error
        assert runner.resilience["pool_restarts"] == 2
        assert sorted(r.index for r in report.records) == [0, 1, 2, 3, 4]

    def test_undeliverable_result_becomes_error_record(self):
        """A result the pool cannot pickle must not kill the campaign."""
        runner = CampaignRunner(chaos_spec(n=3), workers=2, job_fn=_unpicklable_job)
        report = runner.run()
        by_index = {r.index: r for r in report.records}
        assert by_index[0].status == "ok" and by_index[2].status == "ok"
        assert by_index[1].status == "error"
        assert "result delivery failed" in by_index[1].error


# ----------------------------------------------------------------------
# Cache corruption quarantine
# ----------------------------------------------------------------------


class TestCacheCorruption:
    def test_injected_corruption_is_quarantined_on_next_run(self, monkeypatch, tmp_path):
        spec = chaos_spec()
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv(FAULTS_ENV, "corrupt-cache@0")
        first = CampaignRunner(spec, cache=ResultCache(cache_dir), workers=0, job_fn=_chaos_job).run()
        assert first.counts()["ok"] == 5
        key0 = {r.index: r for r in first.records}[0].key
        cache = ResultCache(cache_dir)
        with pytest.raises(ValueError):
            json.loads(cache.path_for(key0).read_text(encoding="utf-8"))

        monkeypatch.delenv(FAULTS_ENV)
        second = CampaignRunner(spec, cache=ResultCache(cache_dir), workers=0, job_fn=_chaos_job).run()
        counts = second.counts()
        assert counts["ok"] == 5 and counts["cached"] == 4  # point 0 recomputed
        cache = ResultCache(cache_dir)
        assert cache.stats()["corrupt"] == 1
        assert cache.path_for(key0).exists()  # rewritten by the recompute
        assert cache.path_for(key0).with_suffix(".corrupt").exists()


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------


def _wait_for(predicate, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestGracefulShutdown:
    def test_first_signal_sets_flag_without_raising(self):
        with graceful_shutdown() as flag:
            assert not flag.requested
            os.kill(os.getpid(), signal.SIGINT)
            assert _wait_for(lambda: flag.requested)
            assert flag.signum == signal.SIGINT
            assert flag.signal_name == "SIGINT"
        # Handler restored: the context manager exits cleanly.

    def test_second_signal_raises_keyboard_interrupt(self):
        with pytest.raises(KeyboardInterrupt):
            with graceful_shutdown() as flag:
                os.kill(os.getpid(), signal.SIGINT)
                assert _wait_for(lambda: flag.requested)
                os.kill(os.getpid(), signal.SIGINT)
                time.sleep(5)  # interrupted by the raise
                pytest.fail("second SIGINT must raise KeyboardInterrupt")

    def test_interrupted_campaign_drains_caches_and_resumes(self, tmp_path):
        spec = chaos_spec(n=6)
        cache_dir = tmp_path / "cache"
        runner = CampaignRunner(spec, cache=ResultCache(cache_dir), workers=0, job_fn=_slow_job)
        timer = threading.Timer(0.35, os.kill, args=(os.getpid(), signal.SIGINT))
        timer.start()
        try:
            with pytest.raises(CampaignInterrupted, match="rerun the same spec to resume"):
                runner.run()
        finally:
            timer.cancel()
        finished = len(ResultCache(cache_dir))
        assert 1 <= finished < 6  # partial progress survived

        # A rerun of the same spec picks up exactly where the first stopped.
        report = CampaignRunner(spec, cache=ResultCache(cache_dir), workers=0, job_fn=_slow_job).run()
        counts = report.counts()
        assert counts["ok"] == 6 and counts["cached"] == finished


# ----------------------------------------------------------------------
# CLI integration: SIGINT, exit code 130, ledger status
# ----------------------------------------------------------------------


class TestCliInterruption:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        spec = chaos_spec(
            name="interruptible",
            axes=[{"path": "attack.pulse.length_s", "values": [float(30e-9 + 1e-9 * i) for i in range(40)]}],
        )
        path = tmp_path / "spec.json"
        spec.to_json(path)
        return path

    def test_sigint_exits_130_records_interrupted_and_resumes(self, tmp_path, spec_path):
        obs = tmp_path / "obs"
        cache = tmp_path / "cache"
        argv = [
            sys.executable, "-m", "repro", "campaign", "run", str(spec_path),
            "--cache", str(cache), "--obs-dir", str(obs),
        ]
        env = {"PYTHONPATH": SRC_DIR, "PATH": "/usr/bin:/bin"}
        child = subprocess.Popen(
            argv, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, cwd=tmp_path, env=env, text=True
        )
        try:
            # Interrupt once real progress is on disk.
            assert _wait_for(lambda: len(list(cache.glob("*.json"))) >= 2, timeout_s=60)
            child.send_signal(signal.SIGINT)
            _, stderr = child.communicate(timeout=60)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=10)
        assert child.returncode == 130, f"stderr:\n{stderr}"
        assert "interrupted" in stderr
        finished = len(list(cache.glob("*.json")))
        assert 2 <= finished < 40

        entries = RunLedger(obs).entries()
        assert entries and entries[-1].status == "interrupted"

        # The same command resumes from the cache and completes cleanly.
        done = subprocess.run(
            argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, cwd=tmp_path, env=env, text=True, timeout=300
        )
        assert done.returncode == 0, f"output:\n{done.stdout}"
        assert len(list(cache.glob("*.json"))) == 40
        entries = RunLedger(obs).entries()
        assert entries[-1].status == "ok"


# ----------------------------------------------------------------------
# Observability surfaces
# ----------------------------------------------------------------------


class TestResilienceSurfaces:
    def test_resilience_counts_reads_snapshot_counters(self):
        snapshot = {
            "counters": {
                "campaign.retries": 3.0,
                "campaign.crashes": 2.0,
                "campaign.quarantined": 1.0,
                "campaign.pool_restarts": 2.0,
                "cache.corrupt_entries": 1.0,
                "faults.injected.raise": 4.0,
                "faults.injected.kill": 2.0,
            }
        }
        assert resilience_counts(snapshot) == {
            "retried": 3,
            "crashed": 2,
            "quarantined": 1,
            "pool_restarts": 2,
            "cache_corrupt": 1,
            "faults_injected": 6,
        }

    def test_resilience_counts_empty_snapshot(self):
        assert resilience_counts({}) == {
            "retried": 0,
            "crashed": 0,
            "quarantined": 0,
            "pool_restarts": 0,
            "cache_corrupt": 0,
            "faults_injected": 0,
        }

    def test_campaign_summary_mentions_crashes_and_retries(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "raise@1x2;kill@4x99")
        retry = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        runner = CampaignRunner(
            chaos_spec(), workers=2, job_fn=_chaos_job, retry=retry, max_crashes=1
        )
        report = runner.run()
        summary = report.summary()
        assert "1 crashed" in summary
        assert "retried" in summary

"""Tests for the unit helpers and physical constants."""

from __future__ import annotations

import pytest

from repro import constants, units


class TestUnits:
    def test_length_round_trip(self):
        assert units.to_nm(units.nm(50)) == pytest.approx(50)
        assert units.um(1) == pytest.approx(1e-6)

    def test_time_round_trip(self):
        assert units.to_ns(units.ns(75)) == pytest.approx(75)
        assert units.to_us(units.us(3)) == pytest.approx(3)
        assert units.ms(2) == pytest.approx(2e-3)

    def test_current_and_power(self):
        assert units.uA(290) == pytest.approx(290e-6)
        assert units.to_uA(1e-3) == pytest.approx(1000)
        assert units.to_uW(units.uW(320)) == pytest.approx(320)

    def test_temperature_conversion(self):
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)
        assert units.kelvin_to_celsius(373.15) == pytest.approx(100.0)
        assert units.celsius_to_kelvin(units.kelvin_to_celsius(300.0)) == pytest.approx(300.0)


class TestConstants:
    def test_boltzmann_consistency(self):
        # k_B [J/K] / e [C] must equal k_B [eV/K].
        ratio = constants.BOLTZMANN_J_PER_K / constants.ELEMENTARY_CHARGE_C
        assert ratio == pytest.approx(constants.BOLTZMANN_EV_PER_K, rel=1e-6)

    def test_paper_defaults(self):
        assert constants.DEFAULT_SET_VOLTAGE_V == pytest.approx(1.05)
        assert constants.DEFAULT_AMBIENT_TEMPERATURE_K == pytest.approx(300.0)

    def test_zero_celsius(self):
        assert constants.ZERO_CELSIUS_K == pytest.approx(273.15)

    def test_thermal_voltage_at_room_temperature(self):
        thermal_voltage = constants.BOLTZMANN_EV_PER_K * 300.0
        assert 0.025 < thermal_voltage < 0.027

"""Tests for the ECC codec and the physical address mapping."""

from __future__ import annotations

import pytest

from repro.errors import AddressingError, EccError
from repro.memory import AddressMapping, BitLocation, HammingSecDed


class TestHammingSecDed:
    @pytest.fixture(scope="class")
    def codec(self):
        return HammingSecDed(data_bits=16)

    def test_clean_round_trip(self, codec):
        data = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 1]
        result = codec.decode(codec.encode(data))
        assert list(result.data_bits) == data
        assert not result.corrected
        assert not result.double_error_detected

    def test_single_error_corrected_everywhere(self, codec):
        data = [i % 2 for i in range(16)]
        codeword = codec.encode(data)
        for position in range(codec.codeword_bits):
            corrupted = list(codeword)
            corrupted[position] ^= 1
            result = codec.decode(corrupted)
            assert list(result.data_bits) == data, f"failed to correct flip at {position}"
            assert result.corrected
            assert not result.double_error_detected

    def test_double_error_detected_not_miscorrected(self, codec):
        data = [0] * 16
        codeword = codec.encode(data)
        corrupted = list(codeword)
        corrupted[0] ^= 1
        corrupted[5] ^= 1
        result = codec.decode(corrupted)
        assert result.double_error_detected

    def test_integer_round_trip(self, codec):
        for value in (0, 1, 0xBEEF & 0xFFFF, 0xFFFF):
            decoded, result = codec.decode_int(codec.encode_int(value))
            assert decoded == value
            assert not result.double_error_detected

    def test_parity_separation_round_trip(self, codec):
        data = [1] * 16
        codeword = codec.encode(data)
        parity = codec.parity_of(codeword)
        rebuilt = codec.assemble(data, parity)
        assert rebuilt == codeword

    def test_codeword_length(self):
        codec = HammingSecDed(data_bits=64)
        assert codec.parity_bits == 7
        assert codec.codeword_bits == 64 + 7 + 1

    def test_invalid_inputs_rejected(self, codec):
        with pytest.raises(EccError):
            codec.encode([0] * 5)
        with pytest.raises(EccError):
            codec.decode([0] * 3)
        with pytest.raises(EccError):
            codec.encode_int(1 << 20)
        with pytest.raises(EccError):
            HammingSecDed(data_bits=0)


class TestAddressMapping:
    @pytest.fixture(scope="class")
    def mapping(self):
        return AddressMapping(rows=16, columns=16, tiles_per_bank=4, banks=2)

    def test_capacity(self, mapping):
        assert mapping.bits_per_tile == 256
        assert mapping.capacity_bytes == 256 // 8 * 4 * 2

    def test_forward_inverse_bijection(self, mapping):
        for address in range(0, mapping.capacity_bytes, 7):
            for bit in (0, 3, 7):
                location = mapping.locate_bit(address, bit)
                assert mapping.address_of(location) == (address, bit)

    def test_consecutive_bits_are_same_row_neighbours(self, mapping):
        a = mapping.locate_bit(0, 0)
        b = mapping.locate_bit(0, 1)
        assert a.row == b.row
        assert abs(a.column - b.column) == 1

    def test_adjacent_bits_share_a_line(self, mapping):
        location = mapping.locate_bit(10, 4)
        for neighbour in mapping.physically_adjacent_bits(location):
            assert neighbour.bank == location.bank and neighbour.tile == location.tile
            assert (neighbour.row == location.row) != (neighbour.column == location.column)

    def test_interior_bit_has_four_neighbours(self, mapping):
        # Choose a bit well inside the tile.
        location = BitLocation(bank=0, tile=0, row=8, column=8)
        assert len(mapping.physically_adjacent_bits(location)) == 4

    def test_corner_bit_has_two_neighbours(self, mapping):
        location = BitLocation(bank=0, tile=0, row=0, column=0)
        assert len(mapping.physically_adjacent_bits(location)) == 2

    def test_aggressor_addresses_exclude_victim(self, mapping):
        aggressors = mapping.aggressor_addresses_for(10, 4)
        assert (10, 4) not in aggressors
        assert 2 <= len(aggressors) <= 4

    def test_locate_byte_returns_eight_bits(self, mapping):
        assert len(mapping.locate_byte(3)) == 8

    def test_out_of_range_rejected(self, mapping):
        with pytest.raises(AddressingError):
            mapping.locate_bit(mapping.capacity_bytes, 0)
        with pytest.raises(AddressingError):
            mapping.locate_bit(0, 9)
        with pytest.raises(AddressingError):
            mapping.address_of(BitLocation(bank=9, tile=0, row=0, column=0))

    def test_columns_must_hold_whole_bytes(self):
        with pytest.raises(AddressingError):
            AddressMapping(columns=12)

"""Tests for the switching-kinetics integrators and self-heating solver."""

from __future__ import annotations

import math

import pytest

from repro.devices import (
    DeviceState,
    JartVcmModel,
    equilibrium_temperature,
    pulses_to_switch,
    solve_operating_point,
    time_to_switch,
)
from repro.devices.kinetics import StateTrajectoryPoint
from repro.errors import DeviceModelError


class TestOperatingPoint:
    def test_zero_bias_stays_at_ambient(self, jart_model):
        point = solve_operating_point(jart_model, 0.0, 0.0, 300.0)
        assert point.filament_temperature_k == pytest.approx(300.0, abs=0.2)
        assert point.power_w == pytest.approx(0.0, abs=1e-12)

    def test_crosstalk_adds_to_ambient(self, jart_model):
        point = solve_operating_point(jart_model, 0.0, 0.0, 300.0, crosstalk_temperature_k=50.0)
        assert point.filament_temperature_k == pytest.approx(350.0, abs=0.5)
        assert point.self_heating_k == pytest.approx(0.0, abs=0.5)

    def test_lrs_at_set_voltage_heats_strongly(self, jart_model):
        point = solve_operating_point(jart_model, 1.05, 1.0, 300.0)
        assert point.self_heating_k > 400.0
        assert point.current_a > 100e-6

    def test_equilibrium_temperature_wrapper(self, jart_model):
        direct = solve_operating_point(jart_model, 0.525, 0.0, 300.0).filament_temperature_k
        wrapped = equilibrium_temperature(jart_model, 0.525, 0.0, 300.0)
        assert wrapped == pytest.approx(direct, abs=0.2)

    def test_higher_ambient_means_higher_equilibrium(self, jart_model):
        low = equilibrium_temperature(jart_model, 0.525, 0.0, 273.0)
        high = equilibrium_temperature(jart_model, 0.525, 0.0, 373.0)
        assert high > low + 90.0


class TestTimeToSwitch:
    def test_wrong_polarity_never_switches(self, jart_model):
        result = time_to_switch(jart_model, -0.5, 0.0, 0.5, max_time_s=1e-3)
        assert not result.switched

    def test_hot_victim_switches_faster(self, jart_model):
        cold = time_to_switch(jart_model, 0.525, 0.0, 0.5, crosstalk_temperature_k=0.0, max_time_s=10.0)
        hot = time_to_switch(jart_model, 0.525, 0.0, 0.5, crosstalk_temperature_k=75.0, max_time_s=10.0)
        assert hot.switched
        assert cold.time_s > 100.0 * hot.time_s

    def test_full_write_is_fast(self, jart_model):
        result = time_to_switch(jart_model, 1.05, 0.0, 0.5, max_time_s=1e-2)
        assert result.switched
        assert result.time_s < 1e-4

    def test_respects_time_budget(self, jart_model):
        result = time_to_switch(jart_model, 0.2, 0.0, 0.5, max_time_s=1e-6)
        assert not result.switched
        assert result.time_s == pytest.approx(1e-6)

    def test_records_trajectory(self, jart_model):
        trajectory = []
        time_to_switch(
            jart_model, 1.05, 0.0, 0.5, max_time_s=1e-2, record=trajectory
        )
        assert len(trajectory) >= 2
        assert all(isinstance(point, StateTrajectoryPoint) for point in trajectory)
        assert trajectory[0].x <= trajectory[-1].x

    def test_invalid_states_rejected(self, jart_model):
        with pytest.raises(DeviceModelError):
            time_to_switch(jart_model, 0.5, -0.1, 0.5)
        with pytest.raises(DeviceModelError):
            time_to_switch(jart_model, 0.5, 0.0, 1.5)

    def test_reset_direction_supported(self, jart_model):
        result = time_to_switch(jart_model, -1.05, 1.0, 0.5, max_time_s=1e-1)
        assert result.switched
        assert result.final_x <= 0.5


class TestPulsesToSwitch:
    def test_pulse_count_matches_time(self, jart_model):
        continuous = time_to_switch(jart_model, 0.525, 0.0, 0.5, crosstalk_temperature_k=75.0)
        pulsed = pulses_to_switch(
            jart_model, 0.525, 50e-9, 0.0, 0.5, crosstalk_temperature_k=75.0
        )
        assert pulsed.flipped
        expected = math.ceil(continuous.time_s / 50e-9)
        assert pulsed.pulses == pytest.approx(expected, rel=0.05)

    def test_shorter_pulses_need_more_pulses(self, jart_model):
        short = pulses_to_switch(jart_model, 0.525, 10e-9, 0.0, 0.5, crosstalk_temperature_k=75.0)
        long = pulses_to_switch(jart_model, 0.525, 100e-9, 0.0, 0.5, crosstalk_temperature_k=75.0)
        assert short.pulses > long.pulses

    def test_budget_exhaustion_reported(self, jart_model):
        result = pulses_to_switch(
            jart_model, 0.525, 50e-9, 0.0, 0.5, crosstalk_temperature_k=0.0, max_pulses=100
        )
        assert not result.flipped
        assert result.pulses == 100

    def test_wall_clock_includes_duty_cycle(self, jart_model):
        result = pulses_to_switch(
            jart_model, 0.525, 50e-9, 0.0, 0.5, duty_cycle=0.25, crosstalk_temperature_k=75.0
        )
        assert result.wall_clock_s == pytest.approx(result.pulses * 200e-9, rel=1e-6)

    def test_invalid_inputs_rejected(self, jart_model):
        with pytest.raises(DeviceModelError):
            pulses_to_switch(jart_model, 0.5, 0.0, 0.0, 0.5)
        with pytest.raises(DeviceModelError):
            pulses_to_switch(jart_model, 0.5, 50e-9, 0.0, 0.5, max_pulses=0)
        with pytest.raises(DeviceModelError):
            pulses_to_switch(jart_model, 0.5, 50e-9, 0.0, 0.5, duty_cycle=0.0)

"""Tests for the configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.config import (
    AttackConfig,
    CrossbarGeometry,
    PulseConfig,
    SimulationConfig,
    ThermalSolverConfig,
    WireParameters,
)
from repro.errors import ConfigurationError, GeometryError


class TestCrossbarGeometry:
    def test_defaults_match_paper_setup(self):
        geometry = CrossbarGeometry()
        assert geometry.rows == 5
        assert geometry.columns == 5
        assert geometry.electrode_spacing_m == pytest.approx(50e-9)
        assert geometry.filament_radius_m == pytest.approx(15e-9)
        assert geometry.filament_height_m == pytest.approx(5e-9)

    def test_pitch_is_width_plus_spacing(self):
        geometry = CrossbarGeometry(electrode_width_m=40e-9, electrode_spacing_m=60e-9)
        assert geometry.pitch_m == pytest.approx(100e-9)

    def test_cell_count(self):
        assert CrossbarGeometry(rows=3, columns=7).cell_count == 21

    def test_centre_cell(self):
        assert CrossbarGeometry().centre_cell() == (2, 2)
        assert CrossbarGeometry(rows=3, columns=3).centre_cell() == (1, 1)

    def test_cell_centre_coordinates(self):
        geometry = CrossbarGeometry()
        x, y = geometry.cell_centre(0, 0)
        assert x == pytest.approx(geometry.pitch_m / 2)
        assert y == pytest.approx(geometry.pitch_m / 2)

    def test_cell_distance_symmetric(self):
        geometry = CrossbarGeometry()
        assert geometry.cell_distance((0, 0), (2, 2)) == pytest.approx(
            geometry.cell_distance((2, 2), (0, 0))
        )

    def test_nearest_neighbour_distance_is_pitch(self):
        geometry = CrossbarGeometry()
        assert geometry.cell_distance((2, 2), (2, 3)) == pytest.approx(geometry.pitch_m)

    def test_validate_cell_rejects_out_of_range(self):
        geometry = CrossbarGeometry()
        with pytest.raises(GeometryError):
            geometry.validate_cell(5, 0)
        with pytest.raises(GeometryError):
            geometry.validate_cell(0, -1)

    def test_iter_cells_row_major(self):
        cells = list(CrossbarGeometry(rows=2, columns=2).iter_cells())
        assert cells == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_rejects_zero_rows(self):
        with pytest.raises(GeometryError):
            CrossbarGeometry(rows=0)

    def test_rejects_negative_spacing(self):
        with pytest.raises(GeometryError):
            CrossbarGeometry(electrode_spacing_m=-1e-9)

    def test_rejects_filament_wider_than_electrode(self):
        with pytest.raises(GeometryError):
            CrossbarGeometry(filament_radius_m=40e-9, electrode_width_m=50e-9)

    def test_json_round_trip(self, tmp_path):
        geometry = CrossbarGeometry(rows=4, columns=6, electrode_spacing_m=20e-9)
        path = tmp_path / "geometry.json"
        geometry.to_json(path)
        restored = CrossbarGeometry.from_json(path)
        assert restored == geometry

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            CrossbarGeometry.from_dict({"rows": 3, "bogus": 1})


class TestPulseConfig:
    def test_defaults(self):
        pulse = PulseConfig()
        assert pulse.amplitude_v == pytest.approx(1.05)
        assert pulse.duty_cycle == pytest.approx(0.5)

    def test_period_and_idle(self):
        pulse = PulseConfig(length_s=50e-9, duty_cycle=0.25)
        assert pulse.period_s == pytest.approx(200e-9)
        assert pulse.idle_s == pytest.approx(150e-9)

    def test_full_duty_cycle_has_no_idle(self):
        pulse = PulseConfig(length_s=10e-9, duty_cycle=1.0)
        assert pulse.idle_s == pytest.approx(0.0)

    def test_rejects_zero_length(self):
        with pytest.raises(ConfigurationError):
            PulseConfig(length_s=0.0)

    def test_rejects_bad_duty_cycle(self):
        with pytest.raises(ConfigurationError):
            PulseConfig(duty_cycle=0.0)
        with pytest.raises(ConfigurationError):
            PulseConfig(duty_cycle=1.5)


class TestAttackConfig:
    def test_defaults_target_centre_cell(self):
        config = AttackConfig()
        assert config.aggressors == [(2, 2)]
        assert config.bias_scheme == "v_half"

    def test_victim_cannot_be_aggressor(self):
        with pytest.raises(ConfigurationError):
            AttackConfig(aggressors=[(2, 2)], victim=(2, 2))

    def test_rejects_empty_aggressors(self):
        with pytest.raises(ConfigurationError):
            AttackConfig(aggressors=[])

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            AttackConfig(bias_scheme="v_quarter")

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            AttackConfig(flip_threshold=0.0)

    def test_nested_pulse_from_dict(self):
        config = AttackConfig.from_dict(
            {"aggressors": [[1, 1]], "pulse": {"length_s": 1e-8}, "victim": [1, 2]}
        )
        assert isinstance(config.pulse, PulseConfig)
        assert config.pulse.length_s == pytest.approx(1e-8)
        assert config.aggressors == [(1, 1)]
        assert config.victim == (1, 2)


class TestWireParameters:
    def test_defaults_positive(self):
        wires = WireParameters()
        assert wires.segment_resistance_ohm > 0
        assert wires.driver_resistance_ohm > 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            WireParameters(segment_resistance_ohm=-1.0)


class TestThermalSolverConfig:
    def test_rejects_bad_resolution(self):
        with pytest.raises(ConfigurationError):
            ThermalSolverConfig(lateral_resolution_m=0.0)

    def test_rejects_single_sweep_point(self):
        with pytest.raises(ConfigurationError):
            ThermalSolverConfig(power_sweep_points=1)


class TestSimulationConfig:
    def test_nested_round_trip(self):
        config = SimulationConfig()
        restored = SimulationConfig.from_dict(config.to_dict())
        assert restored.geometry == config.geometry
        assert restored.wires == config.wires
        assert restored.thermal == config.thermal

"""Tests of the full-array Monte-Carlo mode.

Covers the per-cell sampler (within-die correlation), the lane-remapped
batched model plugging sampled arrays into the nodal solver, the
``mode="full_array"`` engine (including the zero-variance agreement with the
anchored mode), and the campaign/CLI surface.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AttackConfig, PulseConfig, SimulationConfig
from repro.errors import DeviceModelError, MonteCarloError
from repro.montecarlo import (
    FullArrayMonteCarloResult,
    MonteCarloConfig,
    MonteCarloEngine,
    ParameterDistribution,
    PopulationSampler,
    SampledArrayJartModel,
    VectorizedJartVcm,
)
from repro.devices import JartVcmModel


def fast_attack(**overrides) -> AttackConfig:
    return AttackConfig(
        pulse=PulseConfig(amplitude_v=1.05, length_s=50e-9),
        max_pulses=200_000,
        **overrides,
    )


def small_simulation() -> SimulationConfig:
    return SimulationConfig(geometry={"rows": 5, "columns": 5})


class TestPerCellSampling:
    def test_sample_cells_shape_and_reproducibility(self):
        dist = ParameterDistribution(
            path="device.activation_energy_ev", kind="normal", mean=1.0, sigma=0.05, relative=True
        )
        sampler = PopulationSampler([dist], seed=42)
        nominals = {"device.activation_energy_ev": 0.8}
        draw = sampler.sample_cells(6, 25, nominals)
        again = sampler.sample_cells(6, 25, nominals)
        values = draw.values["device.activation_energy_ev"]
        assert values.shape == (6, 25)
        np.testing.assert_array_equal(values, again.values["device.activation_energy_ev"])
        # Independent of the anchored per-victim stream.
        anchored = sampler.sample(6 * 25, nominals).values["device.activation_energy_ev"]
        assert not np.allclose(values.ravel(), anchored)

    def test_within_die_one_shares_the_draw_across_cells(self):
        dist = ParameterDistribution(
            path="device.series_resistance_ohm", kind="normal", mean=650.0, sigma=30.0,
            within_die=1.0,
        )
        draw = PopulationSampler([dist], seed=1).sample_cells(4, 9, {})
        values = draw.values["device.series_resistance_ohm"]
        assert np.allclose(values, values[:, :1])  # constant within each array
        assert len(np.unique(values[:, 0])) == 4  # varies between arrays

    def test_within_die_zero_draws_independent_cells(self):
        dist = ParameterDistribution(
            path="device.series_resistance_ohm", kind="normal", mean=650.0, sigma=30.0
        )
        values = PopulationSampler([dist], seed=1).sample_cells(2, 16, {}).values[
            "device.series_resistance_ohm"
        ]
        assert len(np.unique(values[0])) == 16

    def test_partial_within_die_correlates_cells_of_one_array(self):
        dist = ParameterDistribution(
            path="device.activation_energy_ev", kind="lognormal", mean=1.0, sigma=0.1,
            within_die=0.9,
        )
        values = PopulationSampler([dist], seed=3).sample_cells(200, 2, {}).values[
            "device.activation_energy_ev"
        ]
        logs = np.log(values)
        correlation = np.corrcoef(logs[:, 0], logs[:, 1])[0, 1]
        assert correlation > 0.7  # expectation 0.9, loose bound for n=200

    def test_truncation_respected_per_cell(self):
        dist = ParameterDistribution(
            path="device.activation_energy_ev", kind="normal", mean=1.0, sigma=0.2,
            truncate_low=0.9, truncate_high=1.1, within_die=0.5,
        )
        values = PopulationSampler([dist], seed=4).sample_cells(8, 16, {}).values[
            "device.activation_energy_ev"
        ]
        assert float(values.min()) >= 0.9
        assert float(values.max()) <= 1.1

    def test_uniform_with_within_die_rejected(self):
        with pytest.raises(MonteCarloError):
            ParameterDistribution(
                path="device.activation_energy_ev", kind="uniform", low=0.9, high=1.1,
                within_die=0.5,
            )

    def test_within_die_bounds_validated(self):
        with pytest.raises(MonteCarloError):
            ParameterDistribution(
                path="device.activation_energy_ev", kind="normal", mean=1.0, sigma=0.1,
                within_die=1.5,
            )


class TestSampledArrayModel:
    def test_lane_count_must_match_geometry(self):
        kernel = VectorizedJartVcm(9)
        with pytest.raises(DeviceModelError):
            SampledArrayJartModel(kernel, (5, 5))

    def test_batched_lane_remap_matches_per_lane_kernel(self):
        rng = np.random.default_rng(0)
        n = 12
        overrides = {"series_resistance_ohm": rng.uniform(550.0, 750.0, n)}
        kernel = VectorizedJartVcm(n, overrides=overrides)
        model = SampledArrayJartModel(kernel, (3, 4))
        batched = model.batched()
        voltages = rng.uniform(-1.0, 1.0, (3, 4))
        x = rng.uniform(0.0, 1.0, (3, 4))
        t = np.full((3, 4), 300.0)
        out = batched.current(voltages, x, t)
        assert out.shape == (3, 4)
        direct = kernel.current(voltages.ravel(), x.ravel(), t.ravel())
        np.testing.assert_allclose(out.ravel(), direct, rtol=0, atol=0)

    def test_flat_solver_order_equals_row_major_lanes(self):
        kernel = VectorizedJartVcm(6)
        model = SampledArrayJartModel(kernel, (2, 3))
        flat = model.batched().current(np.full(6, 0.5), np.zeros(6), np.full(6, 300.0))
        shaped = model.batched().current(
            np.full((2, 3), 0.5), np.zeros((2, 3)), np.full((2, 3), 300.0)
        )
        np.testing.assert_array_equal(flat, shaped.ravel())

    def test_wrong_input_size_rejected(self):
        model = SampledArrayJartModel(VectorizedJartVcm(6), (2, 3))
        with pytest.raises(DeviceModelError):
            model.batched().current(np.full(5, 0.5), np.zeros(5), np.full(5, 300.0))

    def test_scalar_entry_points_unavailable(self):
        model = SampledArrayJartModel(VectorizedJartVcm(4), (2, 2))
        with pytest.raises(DeviceModelError):
            model.current(0.5, None)
        with pytest.raises(DeviceModelError):
            model.state_derivative(0.5, None)

    def test_set_population_swaps_lanes_in_place(self):
        model = SampledArrayJartModel(VectorizedJartVcm(4), (2, 2))
        batched = model.batched()
        replacement = VectorizedJartVcm(
            4, overrides={"series_resistance_ohm": np.full(4, 900.0)}
        )
        model.set_population(replacement)
        assert batched.kernel is replacement
        with pytest.raises(DeviceModelError):
            model.set_population(VectorizedJartVcm(9))

    def test_thermal_resistance_is_a_per_cell_map(self):
        rth = np.linspace(1e6, 3e6, 4)
        model = SampledArrayJartModel(
            VectorizedJartVcm(4, overrides={"rth_eff_k_per_w": rth}), (2, 2)
        )
        np.testing.assert_allclose(model.thermal_resistance_k_per_w(), rth.reshape(2, 2))


class TestFullArrayEngine:
    def test_zero_variance_limit_agrees_with_anchored_mode(self):
        """Acceptance bar: with no sampled variation, every sampled array's
        pattern victim reproduces the anchored mode exactly."""
        anchored = MonteCarloEngine(
            MonteCarloConfig(n_samples=3, seed=5),
            simulation=small_simulation(),
            attack=fast_attack(),
        ).run()
        full = MonteCarloEngine(
            MonteCarloConfig(n_samples=3, seed=5, mode="full_array"),
            simulation=small_simulation(),
            attack=fast_attack(),
        ).run()
        assert isinstance(full, FullArrayMonteCarloResult)
        assert full.n_arrays == 3
        lane = full.victim_lane((2, 3))
        per_array_pulses = full.pulses.reshape(3, -1)[:, lane]
        per_array_flipped = full.flipped.reshape(3, -1)[:, lane]
        np.testing.assert_array_equal(per_array_pulses, anchored.pulses)
        np.testing.assert_array_equal(per_array_flipped, anchored.flipped)

    def test_sampled_arrays_vary_the_outcomes(self):
        config = MonteCarloConfig(
            n_samples=4,
            seed=7,
            mode="full_array",
            distributions=[
                {"path": "device.activation_energy_ev", "kind": "normal",
                 "mean": 1.0, "sigma": 0.02, "relative": True, "within_die": 0.3},
            ],
        )
        result = MonteCarloEngine(
            config, simulation=small_simulation(), attack=fast_attack()
        ).run()
        lane = result.victim_lane((2, 3))
        victim_pulses = result.pulses.reshape(result.n_arrays, -1)[:, lane]
        assert len(np.unique(victim_pulses)) > 1

    def test_multiple_victims_evaluated_per_array(self):
        result = MonteCarloEngine(
            MonteCarloConfig(n_samples=2, seed=1, mode="full_array"),
            simulation=small_simulation(),
            attack=fast_attack(),
        ).run()
        # v_half single-aggressor at (2,2): victims share row 2 or column 2.
        assert result.victims_per_array == 8
        assert (2, 3) in result.victims
        assert (0, 2) in result.victims
        assert (2, 2) not in result.victims
        summary = result.summary()
        assert summary["mode"] == "full_array"
        assert summary["n_arrays"] == 2
        assert summary["victims_per_array"] == 8
        assert 0.0 <= summary["array_flip_probability"] <= 1.0

    def test_victim_mode_all_covers_every_non_aggressor_cell(self):
        result = MonteCarloEngine(
            MonteCarloConfig(n_samples=1, seed=1, mode="full_array", victim_mode="all"),
            simulation=small_simulation(),
            attack=fast_attack(),
        ).run()
        assert result.victims_per_array == 24

    def test_operating_distributions_rejected_in_full_array_mode(self):
        """operating.* paths stay anchored-only: full-array mode derives the
        operating point from each sampled array's own nodal solve."""
        config = MonteCarloConfig(
            n_samples=2,
            mode="full_array",
            distributions=[
                {"path": "operating.victim_voltage_v", "kind": "normal", "mean": 0.6,
                 "sigma": 0.05},
            ],
        )
        engine = MonteCarloEngine(config, simulation=small_simulation(), attack=fast_attack())
        with pytest.raises(MonteCarloError, match="anchored"):
            engine.run()

    def test_environment_sampled_per_array(self):
        """attack.* distributions draw once per sampled array (PR 4 leftover:
        full_array used to reject them outright)."""
        config = MonteCarloConfig(
            n_samples=4,
            seed=11,
            mode="full_array",
            distributions=[
                {"path": "device.series_resistance_ohm", "kind": "normal",
                 "mean": 1.0, "sigma": 0.03, "relative": True},
                {"path": "attack.ambient_temperature_k", "kind": "normal",
                 "mean": 300.0, "sigma": 15.0},
                {"path": "attack.pulse.amplitude_v", "kind": "normal",
                 "mean": 1.0, "sigma": 0.03, "relative": True},
            ],
        )
        result = MonteCarloEngine(config, simulation=small_simulation(), attack=fast_attack()).run()
        assert isinstance(result, FullArrayMonteCarloResult)
        env = result.environment_draw
        assert env is not None
        ambients = env.values["attack.ambient_temperature_k"]
        assert ambients.shape == (4,)
        assert len(np.unique(ambients)) == 4  # one independent draw per array
        # Each valid array's victim lanes sit at (or above) its own sampled
        # ambient, not the nominal one.
        per_lane = result.victim_temperature_k.reshape(4, -1)
        for index in range(4):
            if result.array_valid[index]:
                assert per_lane[index].min() >= ambients[index] - 1e-9

    def test_zero_sigma_environment_matches_unsampled_run(self):
        """A zero-variance environment distribution must not change results."""
        base = dict(n_samples=3, seed=4, mode="full_array", victim_mode="half_selected")
        plain = MonteCarloEngine(
            MonteCarloConfig(**base), simulation=small_simulation(), attack=fast_attack()
        ).run()
        degenerate = MonteCarloEngine(
            MonteCarloConfig(
                **base,
                distributions=[
                    {"path": "attack.ambient_temperature_k", "kind": "normal",
                     "mean": 300.0, "sigma": 0.0},
                ],
            ),
            simulation=small_simulation(),
            attack=fast_attack(),
        ).run()
        np.testing.assert_array_equal(plain.flipped, degenerate.flipped)
        np.testing.assert_array_equal(plain.pulses, degenerate.pulses)

    def test_environment_within_die_is_rejected(self):
        config = MonteCarloConfig(
            n_samples=2,
            mode="full_array",
            distributions=[
                {"path": "attack.ambient_temperature_k", "kind": "normal",
                 "mean": 300.0, "sigma": 10.0, "within_die": 0.5},
            ],
        )
        engine = MonteCarloEngine(config, simulation=small_simulation(), attack=fast_attack())
        with pytest.raises(MonteCarloError, match="per sampled array"):
            engine.run()

    def test_pathological_environment_draw_excludes_only_that_array(self):
        """An ambient draw at/below 0 K invalidates its array, not the run."""
        config = MonteCarloConfig(
            n_samples=6,
            seed=0,
            mode="full_array",
            distributions=[
                {"path": "attack.ambient_temperature_k", "kind": "normal",
                 "mean": 150.0, "sigma": 200.0},
            ],
        )
        result = MonteCarloEngine(
            config, simulation=small_simulation(), attack=fast_attack()
        ).run()
        draws = result.environment_draw.values["attack.ambient_temperature_k"]
        bad = draws <= 0.0
        assert bad.any()  # the scenario actually exercises the guard
        assert not result.array_valid[bad].any()
        assert result.array_valid[~bad].all()

    def test_within_die_rejected_in_anchored_mode(self):
        """Anchored per-victim draws cannot honour within-die correlation; the
        engine must say so instead of silently dropping it."""
        config = MonteCarloConfig(
            n_samples=4,
            distributions=[
                {"path": "device.activation_energy_ev", "kind": "normal",
                 "mean": 1.0, "sigma": 0.02, "relative": True, "within_die": 0.3},
            ],
        )
        engine = MonteCarloEngine(config, simulation=small_simulation(), attack=fast_attack())
        with pytest.raises(MonteCarloError, match="within-die"):
            engine.run()

    def test_full_array_has_no_scalar_path(self):
        engine = MonteCarloEngine(
            MonteCarloConfig(n_samples=1, mode="full_array"),
            simulation=small_simulation(),
            attack=fast_attack(),
        )
        with pytest.raises(MonteCarloError):
            engine.run(vectorized=False)

    def test_mode_validated(self):
        with pytest.raises(MonteCarloError):
            MonteCarloConfig(mode="per_wafer")
        with pytest.raises(MonteCarloError):
            MonteCarloConfig(victim_mode="some")

    def test_json_round_trip_keeps_mode(self):
        config = MonteCarloConfig(n_samples=2, mode="full_array", victim_mode="all")
        rebuilt = MonteCarloConfig.from_dict(config.to_dict())
        assert rebuilt.mode == "full_array"
        assert rebuilt.victim_mode == "all"


class TestFullArrayCampaign:
    def test_full_array_mode_runs_through_the_campaign_runner(self, tmp_path):
        from repro.campaign import CampaignRunner, CampaignSpec, ResultCache

        spec = CampaignSpec(
            name="full-array-mc",
            kind="montecarlo",
            attack={"max_pulses": 200000},
            montecarlo={"n_samples": 2, "seed": 3, "mode": "full_array"},
            axes=[{"path": "attack.pulse.length_s", "values": [2e-8, 5e-8]}],
        )
        report = CampaignRunner(spec, cache=ResultCache(tmp_path / "cache")).run()
        assert report.counts()["ok"] == 2
        for record in report.ok_records:
            assert record.result["mode"] == "full_array"
            assert record.result["n_arrays"] == 2
            assert "array_flip_probability" in record.result

    def test_cli_mc_run_full_array(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            """
            {"name": "fa", "kind": "montecarlo", "mode": "grid",
             "attack": {"max_pulses": 200000},
             "montecarlo": {"n_samples": 2, "seed": 1}}
            """
        )
        code = main(["mc", "run", str(spec_path), "--mode", "full_array", "--rows", "4"])
        captured = capsys.readouterr()
        assert code == 0
        assert "full_array" in captured.out

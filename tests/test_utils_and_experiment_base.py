"""Tests for the reporting utilities and the experiment framework."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentResult,
    decades_spanned,
    monotonically_decreasing,
    monotonically_increasing,
)
from repro.utils import (
    ascii_table,
    configure_console_logging,
    format_value,
    get_logger,
    log_ascii_chart,
    matrix_heatmap,
    to_csv,
)


class TestTables:
    def test_ascii_table_alignment(self):
        table = ascii_table(["name", "value"], [("a", 1), ("long-name", 2.5)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # all lines equal width

    def test_format_value_scientific_for_extremes(self):
        assert "e" in format_value(1.23e-7)
        assert "e" in format_value(4.56e8)
        assert format_value(3.5) == "3.5"
        assert format_value(True) == "yes"

    def test_log_chart_contains_all_labels(self):
        chart = log_ascii_chart(["a", "b", "c"], [10, 1000, 100000], title="demo")
        assert "demo" in chart
        for label in ("a", "b", "c"):
            assert label in chart

    def test_log_chart_handles_non_positive(self):
        chart = log_ascii_chart(["a", "b"], [0, 100])
        assert "n/a" in chart
        assert log_ascii_chart(["a"], [0]) == "(no positive data to chart)"

    def test_log_chart_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            log_ascii_chart(["a"], [1, 2])

    def test_matrix_heatmap_shape(self):
        text = matrix_heatmap([[300.0, 310.0], [320.0, 947.2]])
        assert len(text.splitlines()) == 2
        assert "947.2" in text

    def test_to_csv_escapes_commas(self):
        csv_text = to_csv(["a", "b"], [("x,y", 'quote"d')])
        assert '"x,y"' in csv_text
        assert '"quote""d"' in csv_text


class TestLogging:
    def test_logger_namespace(self):
        assert get_logger().name == "repro"
        assert get_logger("thermal").name == "repro.thermal"
        assert get_logger("repro.attack").name == "repro.attack"

    def test_console_configuration_is_idempotent(self):
        first = configure_console_logging()
        handler_count = len(first.handlers)
        second = configure_console_logging()
        assert len(second.handlers) == handler_count


class TestExperimentResult:
    @pytest.fixture
    def result(self):
        result = ExperimentResult(
            name="demo", description="demo experiment", columns=["x", "y"]
        )
        result.add_row(x=1, y=10.0)
        result.add_row(x=2, y=100.0)
        result.add_row(x=3, y=1000.0, extra="note")
        return result

    def test_add_row_extends_columns(self, result):
        assert result.columns == ["x", "y", "extra"]
        assert len(result.rows) == 3

    def test_column_access(self, result):
        assert result.column("y") == [10.0, 100.0, 1000.0]
        with pytest.raises(ExperimentError):
            result.column("missing")

    def test_table_and_chart_render(self, result):
        assert "demo" not in result.to_table()  # table has no title, only data
        assert "x" in result.to_table()
        chart = result.to_chart("x", "y")
        assert "1" in chart and "#" in chart

    def test_csv_and_json_export(self, result, tmp_path):
        json_path = result.save(tmp_path)
        assert json_path.exists()
        payload = json.loads(json_path.read_text())
        assert payload["name"] == "demo"
        assert len(payload["rows"]) == 3
        csv_text = (tmp_path / "demo.csv").read_text()
        assert csv_text.splitlines()[0] == "x,y,extra"

    def test_shape_helpers(self):
        assert monotonically_decreasing([5, 4, 3])
        assert not monotonically_decreasing([3, 4])
        assert monotonically_increasing([1, 1, 2])
        assert not monotonically_increasing([2, 1])
        assert decades_spanned([10, 1000]) == pytest.approx(2.0)
        assert decades_spanned([]) == 0.0

"""Campaign engine: specs, cache, runner, aggregation.

The fast structural tests use materialisation only; the execution tests run
real (small, 3x3) NeuroHammer jobs so the serial/parallel equivalence and the
cache round-trip are exercised against the genuine simulation path.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.attack.neurohammer import hammer_once
from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    JobRecord,
    ResultCache,
    SweepAxis,
    point_key,
    run_campaign_job,
    summarise,
    to_experiment_result,
)
from repro.campaign.aggregate import ensure_complete, scenario_success_rates
from repro.errors import CampaignError
from repro.experiments import fig3a_campaign_spec, run_fig3a, run_fig3c


def small_spec(**kwargs) -> CampaignSpec:
    """A fast 3x3-crossbar campaign used by the execution tests."""
    defaults = dict(
        name="small",
        mode="grid",
        simulation={"geometry": {"rows": 3, "columns": 3}},
        attack={"aggressors": [[1, 1]], "victim": [1, 2]},
        axes=[{"path": "attack.pulse.length_s", "values": [10e-9, 30e-9, 50e-9, 70e-9]}],
    )
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


class TestCampaignSpec:
    def test_grid_materialises_cartesian_product_first_axis_slowest(self):
        spec = small_spec(
            axes=[
                {"path": "attack.ambient_temperature_k", "values": [298.0, 323.0]},
                {"path": "attack.pulse.length_s", "values": [10e-9, 50e-9, 100e-9]},
            ]
        )
        points = spec.materialise()
        assert spec.point_count() == len(points) == 6
        temps = [p.overrides["attack.ambient_temperature_k"] for p in points]
        assert temps == [298.0, 298.0, 298.0, 323.0, 323.0, 323.0]
        lengths = [p.overrides["attack.pulse.length_s"] for p in points]
        assert lengths[:3] == [10e-9, 50e-9, 100e-9]

    def test_overrides_reach_the_materialised_job(self):
        points = small_spec().materialise()
        assert [p.job["attack"]["pulse"]["length_s"] for p in points] == [10e-9, 30e-9, 50e-9, 70e-9]
        assert all(p.job["simulation"]["geometry"]["rows"] == 3 for p in points)

    def test_zip_mode_iterates_in_lockstep(self):
        spec = small_spec(
            mode="zip",
            axes=[
                {"path": "attack.pulse.length_s", "values": [10e-9, 50e-9]},
                {"path": "attack.ambient_temperature_k", "values": [298.0, 348.0]},
            ],
        )
        points = spec.materialise()
        assert len(points) == 2
        assert points[1].overrides == {
            "attack.pulse.length_s": 50e-9,
            "attack.ambient_temperature_k": 348.0,
        }

    def test_zip_mode_rejects_unequal_lengths(self):
        with pytest.raises(CampaignError):
            small_spec(
                mode="zip",
                axes=[
                    {"path": "attack.pulse.length_s", "values": [10e-9, 50e-9]},
                    {"path": "attack.ambient_temperature_k", "values": [298.0]},
                ],
            )

    def test_no_axes_materialises_the_single_base_point(self):
        spec = small_spec(axes=[])
        points = spec.materialise()
        assert len(points) == 1 and points[0].overrides == {}

    def test_random_mode_is_seed_reproducible(self):
        def build(seed):
            return small_spec(
                mode="random",
                samples=8,
                seed=seed,
                axes=[
                    {"path": "attack.pulse.length_s", "low": 1e-9, "high": 1e-7, "log": True},
                    {"path": "attack.ambient_temperature_k", "low": 273.0, "high": 373.0},
                    {"path": "attack.bias_scheme", "values": ["v_half", "v_third"]},
                ],
            )

        first = build(seed=7).materialise()
        second = build(seed=7).materialise()
        assert [p.overrides for p in first] == [p.overrides for p in second]
        assert [p.key for p in first] == [p.key for p in second]
        other = build(seed=8).materialise()
        assert [p.overrides for p in first] != [p.overrides for p in other]
        for point in first:
            assert 1e-9 <= point.overrides["attack.pulse.length_s"] <= 1e-7
            assert 273.0 <= point.overrides["attack.ambient_temperature_k"] <= 373.0

    def test_random_mode_needs_samples(self):
        with pytest.raises(CampaignError):
            small_spec(mode="random", samples=0)

    def test_unknown_mode_and_duplicate_axes_rejected(self):
        with pytest.raises(CampaignError):
            small_spec(mode="lattice")
        with pytest.raises(CampaignError):
            small_spec(
                axes=[
                    {"path": "attack.pulse.length_s", "values": [10e-9]},
                    {"path": "attack.pulse.length_s", "values": [50e-9]},
                ]
            )

    def test_unknown_sweep_path_rejected_at_materialise(self):
        spec = small_spec(axes=[{"path": "attack.pulse.duty", "values": [0.5]}])
        with pytest.raises(CampaignError, match="unknown configuration field"):
            spec.materialise()

    def test_invalid_point_value_raises_campaign_error(self):
        spec = small_spec(axes=[{"path": "attack.pulse.length_s", "values": [-1.0]}])
        with pytest.raises(CampaignError, match="invalid"):
            spec.materialise()

    def test_axis_path_must_be_rooted(self):
        with pytest.raises(CampaignError):
            SweepAxis(path="pulse.length_s", values=[1e-8])

    def test_axis_over_unconsumed_section_is_rejected(self):
        # simulation.thermal.* is valid config but the attack job never reads
        # it; sweeping it would silently produce N identical points.  The
        # check lives on the spec because consumed paths depend on the kind.
        with pytest.raises(CampaignError, match="not consumed"):
            small_spec(axes=[{"path": "simulation.thermal.ambient_temperature_k", "values": [300.0]}])

    def test_montecarlo_paths_only_consumed_by_montecarlo_kind(self):
        with pytest.raises(CampaignError, match="not consumed"):
            small_spec(axes=[{"path": "montecarlo.n_samples", "values": [8, 16]}])
        spec = small_spec(
            kind="montecarlo",
            axes=[{"path": "montecarlo.n_samples", "values": [8, 16]}],
        )
        assert [p.job["montecarlo"]["n_samples"] for p in spec.materialise()] == [8, 16]

    def test_point_keys_are_stable_and_distinct(self):
        points = small_spec().materialise()
        keys = [p.key for p in points]
        assert len(set(keys)) == len(keys)
        assert keys == [p.key for p in small_spec().materialise()]
        assert point_key(points[0].job) == keys[0]
        assert point_key(points[0].job, version="other") != keys[0]

    def test_spec_json_round_trip(self, tmp_path):
        spec = small_spec(mode="random", samples=3, seed=11,
                          axes=[{"path": "attack.pulse.length_s", "low": 1e-9, "high": 1e-7}])
        path = tmp_path / "spec.json"
        spec.to_json(path)
        loaded = CampaignSpec.from_json(path)
        assert loaded == spec
        assert [p.key for p in loaded.materialise()] == [p.key for p in spec.materialise()]


class TestResultCache:
    def test_miss_put_hit_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "ab" * 32
        assert cache.get(key) is None
        cache.put(key, {"status": "ok", "result": {"pulses": 5}})
        assert cache.get(key) == {"status": "ok", "result": {"pulses": 5}}
        assert key in cache and len(cache) == 1 and cache.keys() == [key]

    def test_corrupt_entry_degrades_to_miss_and_quarantines(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        cache.put(key, {"status": "ok"})
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        # The bad file is renamed aside, not left to poison the next run.
        assert not cache.path_for(key).exists()
        assert cache.path_for(key).with_suffix(".corrupt").exists()
        assert key not in cache
        assert cache.stats()["corrupt"] == 1
        # A recompute can re-populate the same key.
        cache.put(key, {"status": "ok", "result": {"pulses": 9}})
        assert cache.get(key) == {"status": "ok", "result": {"pulses": 9}}

    def test_invalid_key_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(CampaignError):
            cache.put("../escape", {})

    def test_clear_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        for index in range(3):
            cache.put(f"{index:064x}", {"status": "ok"})
        stats = cache.stats()
        assert stats["entries"] == 3 and stats["bytes"] > 0
        assert cache.clear() == 3 and len(cache) == 0

    def test_root_must_be_a_directory(self, tmp_path):
        target = tmp_path / "occupied"
        target.write_text("file", encoding="utf-8")
        with pytest.raises(CampaignError):
            ResultCache(target)


class TestCampaignRunner:
    def test_parallel_results_are_bit_identical_to_serial(self):
        spec = small_spec()
        serial = CampaignRunner(spec, workers=0).run()
        parallel = CampaignRunner(spec, workers=2, chunksize=2).run()
        assert all(record.ok for record in serial.records)
        assert [r.result for r in serial.records] == [r.result for r in parallel.records]
        assert [r.key for r in serial.records] == [r.key for r in parallel.records]

    def test_cache_serves_second_run_and_resumes_partial_campaigns(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path / "cache")
        first = CampaignRunner(spec, cache=cache).run()
        assert first.cached_count == 0 and first.computed_count == 4
        second = CampaignRunner(spec, cache=cache).run()
        assert second.cached_count == 4 and second.computed_count == 0
        assert [r.result for r in first.records] == [r.result for r in second.records]
        # Drop one entry: only that point is recomputed (resume semantics).
        cache.delete(first.records[1].key)
        third = CampaignRunner(spec, cache=cache).run()
        assert third.cached_count == 3 and third.computed_count == 1
        assert [r.result for r in third.records] == [r.result for r in first.records]

    def test_error_in_one_point_is_captured_not_fatal(self):
        record = run_campaign_job((3, "00" * 32, {"simulation": {}, "attack": {"max_pulses": 0}}, {}))
        assert record.status == "error" and record.index == 3
        assert "max_pulses" in record.error
        report_like = type(
            "R", (), {"failed_records": [record], "records": [record], "spec_name": "x"}
        )()
        with pytest.raises(CampaignError, match="point 3"):
            ensure_complete(report_like)

    def test_parallel_timeout_is_recorded_and_queued_jobs_still_run(self):
        spec = small_spec(
            axes=[{"path": "attack.pulse.length_s", "values": [10e-9, 30e-9, 50e-9, 70e-9]}]
        )
        runner = CampaignRunner(spec, workers=2, timeout_s=1.0, job_fn=_sleepy_job)
        report = runner.run()
        by_index = {record.index: record for record in report.records}
        # Only the hung job times out; jobs queued behind it run in a fresh
        # pool instead of being falsely reported as timeouts.
        assert by_index[1].status == "timeout" and "timeout" in by_index[1].error
        assert [by_index[i].status for i in (0, 2, 3)] == ["ok", "ok", "ok"]

    def test_timeout_is_enforced_even_on_a_serial_run(self):
        spec = small_spec(axes=[{"path": "attack.pulse.length_s", "values": [10e-9, 30e-9]}])
        report = CampaignRunner(spec, workers=0, timeout_s=1.0, job_fn=_sleepy_job).run()
        by_index = {record.index: record for record in report.records}
        assert by_index[0].status == "ok"
        assert by_index[1].status == "timeout"

    def test_runner_argument_validation(self):
        spec = small_spec()
        with pytest.raises(CampaignError):
            CampaignRunner(spec, workers=-1)
        with pytest.raises(CampaignError):
            CampaignRunner(spec, timeout_s=0.0)
        with pytest.raises(CampaignError):
            CampaignRunner(spec, chunksize=0)

    def test_status_reports_cache_coverage(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path)
        runner = CampaignRunner(spec, cache=cache)
        before = runner.status()
        assert before["total"] == 4 and before["cached"] == 0 and len(before["missing_points"]) == 4
        runner.run()
        after = runner.status()
        assert after["cached"] == 4 and after["missing"] == 0


def _sleepy_job(payload):
    """Timeout-path stand-in: the second point sleeps past the deadline."""
    index, key, job, overrides = payload
    if index == 1:
        time.sleep(30)
    return JobRecord(index=index, key=key, status="ok", overrides=overrides, result={"pulses": 1})


class TestShardedCampaigns:
    def test_iter_points_matches_materialise(self):
        spec = small_spec()
        lazy = list(spec.iter_points())
        eager = spec.materialise()
        assert [p.key for p in lazy] == [p.key for p in eager]
        assert [p.overrides for p in lazy] == [p.overrides for p in eager]

    def test_iter_shards_partitions_without_reordering(self):
        spec = small_spec(shard_size=3)
        shards = list(spec.iter_shards())
        assert [len(shard) for shard in shards] == [3, 1]
        flattened = [p.index for shard in shards for p in shard]
        assert flattened == list(range(4))

    def test_random_mode_streams_identically(self):
        spec = small_spec(
            mode="random",
            samples=6,
            seed=13,
            axes=[{"path": "attack.pulse.length_s", "low": 10e-9, "high": 90e-9}],
        )
        assert [p.key for p in spec.iter_points()] == [p.key for p in spec.materialise()]

    def test_sharded_run_is_record_identical_to_unsharded(self, tmp_path):
        unsharded = CampaignRunner(small_spec()).run()
        sharded = CampaignRunner(small_spec(shard_size=2)).run()
        assert [r.status for r in sharded.records] == [r.status for r in unsharded.records]
        assert [r.result for r in sharded.records] == [r.result for r in unsharded.records]

    def test_sharded_run_populates_and_reuses_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = CampaignRunner(small_spec(shard_size=2), cache=cache).run()
        assert first.computed_count == 4
        second = CampaignRunner(small_spec(shard_size=3), cache=cache).run()
        assert second.cached_count == 4  # shard size never affects point keys
        assert [r.result for r in second.records] == [r.result for r in first.records]

    def test_negative_shard_size_rejected(self):
        with pytest.raises(CampaignError, match="shard_size"):
            small_spec(shard_size=-1)

    def test_status_streams_over_shards(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = small_spec(shard_size=2)
        CampaignRunner(spec, cache=cache).run()
        status = CampaignRunner(small_spec(shard_size=2), cache=cache).status()
        assert status["total"] == 4
        assert status["cached"] == 4
        assert status["missing"] == 0


class TestAggregation:
    def test_summary_statistics(self):
        spec = small_spec(axes=[{"path": "attack.pulse.length_s", "values": [10e-9, 50e-9]}])
        report = CampaignRunner(spec).run()
        summary = summarise(report)
        assert summary["total"] == summary["ok"] == 2
        assert summary["success_rate"] == 1.0
        assert summary["min_pulses_to_flip"] <= summary["max_pulses_to_flip"]
        assert summary["min_pulses_to_flip"] <= summary["geomean_pulses_to_flip"] <= summary["max_pulses_to_flip"]

    def test_generic_experiment_result_includes_swept_columns(self):
        spec = small_spec(axes=[{"path": "attack.pulse.length_s", "values": [10e-9, 50e-9]}])
        report = CampaignRunner(spec).run()
        result = to_experiment_result(spec, report)
        assert result.name == "small"
        assert len(result.rows) == 2
        assert "length_s" in result.columns and "pulses" in result.columns
        assert result.metadata["campaign"]["points"] == 2

    def test_generic_row_disambiguates_colliding_leaf_names(self):
        record = JobRecord(
            index=0,
            key="ab" * 32,
            status="ok",
            overrides={
                "attack.ambient_temperature_k": 298.0,
                "simulation.thermal.ambient_temperature_k": 300.0,
            },
            result={"pulses": 1, "flipped": True},
        )
        from repro.campaign import generic_row

        row = generic_row(record)
        assert row["attack.ambient_temperature_k"] == 298.0
        assert row["simulation.thermal.ambient_temperature_k"] == 300.0

    def test_scenario_success_rates_group_by_overrides(self):
        spec = small_spec(axes=[{"path": "attack.pulse.length_s", "values": [10e-9, 50e-9]}])
        report = CampaignRunner(spec).run()
        rates = scenario_success_rates(report)
        assert len(rates) == 2
        assert all(entry["success_rate"] == 1.0 for entry in rates.values())


class TestFigureCampaignEquivalence:
    PULSE_LENGTHS = (10e-9, 50e-9)

    def test_fig3a_campaign_matches_seed_serial_loop_row_for_row(self):
        result = run_fig3a(pulse_lengths_s=self.PULSE_LENGTHS)
        assert result.columns[:5] == [
            "pulse_length_ns",
            "pulses_to_flip",
            "stress_time_us",
            "victim_temperature_k",
            "flipped",
        ]
        for row, pulse_length in zip(result.rows, self.PULSE_LENGTHS):
            attack = hammer_once(pulse_length_s=pulse_length)
            assert row == {
                "pulse_length_ns": round(pulse_length * 1e9, 3),
                "pulses_to_flip": attack.pulses,
                "stress_time_us": attack.stress_time_s * 1e6,
                "victim_temperature_k": attack.victim_temperature_k,
                "flipped": attack.flipped,
            }

    def test_fig3a_parallel_and_cached_match_serial(self, tmp_path):
        serial = run_fig3a(pulse_lengths_s=self.PULSE_LENGTHS)
        cache = ResultCache(tmp_path / "cache")
        pooled = run_fig3a(pulse_lengths_s=self.PULSE_LENGTHS, workers=2, cache=cache)
        assert pooled.rows == serial.rows
        cached = run_fig3a(pulse_lengths_s=self.PULSE_LENGTHS, cache=cache)
        assert cached.rows == serial.rows
        assert cached.metadata["campaign"]["cached"] == len(self.PULSE_LENGTHS)

    def test_fig3c_campaign_matches_seed_serial_loop_row_for_row(self):
        temperatures = (298.0, 348.0)
        result = run_fig3c(temperatures_k=temperatures, pulse_lengths_s=(50e-9,))
        assert len(result.rows) == 2
        for row, temperature in zip(result.rows, temperatures):
            attack = hammer_once(pulse_length_s=50e-9, ambient_temperature_k=temperature, max_pulses=50_000_000)
            assert row == {
                "ambient_temperature_k": temperature,
                "pulse_length_ns": 50.0,
                "pulses_to_flip": attack.pulses,
                "victim_temperature_k": attack.victim_temperature_k,
                "flipped": attack.flipped,
            }

    def test_fig3a_spec_is_a_plain_json_document(self, tmp_path):
        spec = fig3a_campaign_spec(pulse_lengths_s=self.PULSE_LENGTHS)
        path = tmp_path / "fig3a.json"
        spec.to_json(path)
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["experiment"] == "fig3a" and data["mode"] == "grid"
        assert CampaignSpec.from_json(path).materialise()[0].job["attack"]["victim"] == [2, 3]

"""Tests for the RowHammer baseline and the Sec. VI attack scenarios."""

from __future__ import annotations

import pytest

from repro.attack import (
    DenialOfServiceScenario,
    DramCellParameters,
    PrivilegeEscalationScenario,
    RowHammerModel,
    compare_attacks,
)
from repro.errors import ConfigurationError
from repro.memory import DisturbanceProfile


class TestRowHammerBaseline:
    def test_double_sided_needs_fewer_activations(self):
        model = RowHammerModel()
        assert model.activations_to_flip(double_sided=True) < model.activations_to_flip(double_sided=False)

    def test_activation_count_in_literature_range(self):
        # RowHammer bit flips are reported from tens of thousands to a few
        # hundred thousand activations.
        activations = RowHammerModel().activations_to_flip(double_sided=True)
        assert 10_000 < activations < 1_000_000

    def test_fits_in_refresh_window(self):
        estimate = RowHammerModel().estimate(double_sided=True)
        assert estimate.fits_in_refresh_window
        assert estimate.attack_time_s < 64e-3

    def test_stronger_disturbance_flips_sooner(self):
        weak = RowHammerModel(DramCellParameters(disturbance_per_activation=1e-6))
        strong = RowHammerModel(DramCellParameters(disturbance_per_activation=1e-5))
        assert strong.activations_to_flip() < weak.activations_to_flip()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            DramCellParameters(disturbance_per_activation=0.0)
        with pytest.raises(ConfigurationError):
            DramCellParameters(sense_threshold_v=2.0)

    def test_comparison_ratios(self):
        comparison = compare_attacks(neurohammer_pulses=5000, neurohammer_time_s=5e-4)
        assert comparison.pulse_ratio > 1.0
        assert comparison.rowhammer_activations > comparison.neurohammer_pulses


class TestPrivilegeEscalation:
    @pytest.fixture(scope="class")
    def outcome(self):
        profile = DisturbanceProfile(same_line_pulses=5000, pulse_period_s=100e-9)
        return PrivilegeEscalationScenario(disturbance=profile).run()

    def test_attack_succeeds(self, outcome):
        assert outcome.success

    def test_isolation_intact_before_and_violated_after(self, outcome):
        assert outcome.isolation_before is not None and outcome.isolation_before.intact
        assert outcome.isolation_after is not None and not outcome.isolation_after.intact
        assert outcome.isolation_after.violations_of("attacker")

    def test_secret_exfiltrated(self, outcome):
        assert outcome.payload == b"TOP-SECRET-KEY!!"

    def test_pulse_accounting(self, outcome):
        assert outcome.total_pulses >= 5000
        assert outcome.attack_time_s == pytest.approx(outcome.total_pulses * 100e-9, rel=1e-6)

    def test_steps_are_narrated(self, outcome):
        assert len(outcome.steps) >= 5
        assert any("hammering" in step.description for step in outcome.steps)

    def test_weak_disturbance_still_models_cost(self):
        profile = DisturbanceProfile(same_line_pulses=123_456, pulse_period_s=100e-9)
        outcome = PrivilegeEscalationScenario(disturbance=profile).run()
        assert outcome.success
        assert outcome.total_pulses >= 123_456


class TestDenialOfService:
    def test_two_flips_defeat_secded(self):
        profile = DisturbanceProfile(same_line_pulses=2000, pulse_period_s=100e-9)
        outcome = DenialOfServiceScenario(disturbance=profile).run()
        assert outcome.success
        assert outcome.total_pulses >= 2 * 2000

    def test_memory_reports_uncorrectable_error(self):
        profile = DisturbanceProfile(same_line_pulses=1000, pulse_period_s=100e-9)
        scenario = DenialOfServiceScenario(disturbance=profile)
        scenario.run()
        assert scenario.memory.ecc_detected_failures >= 1

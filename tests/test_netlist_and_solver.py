"""Tests for the crossbar netlist and the nonlinear nodal solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import (
    BiasPattern,
    CrossbarSolver,
    build_crossbar_netlist,
    write_bias,
)
from repro.config import CrossbarGeometry, WireParameters
from repro.devices import DeviceState, JartVcmModel, LinearIonDriftModel
from repro.errors import GeometryError


class TestNetlist:
    def test_node_and_element_counts(self, small_geometry):
        netlist = build_crossbar_netlist(small_geometry)
        rows, columns = small_geometry.rows, small_geometry.columns
        # One driver node + one crosspoint node per line element.
        assert netlist.node_count == rows * (columns + 1) + columns * (rows + 1)
        assert len(netlist.devices) == rows * columns
        assert len(netlist.resistors) == rows * columns * 2
        assert len(netlist.drivers) == rows + columns

    def test_device_lookup(self, small_geometry):
        netlist = build_crossbar_netlist(small_geometry)
        device = netlist.device_at((1, 2))
        assert device.cell == (1, 2)
        assert device.wordline_node == "wl_1_2"
        assert device.bitline_node == "bl_1_2"

    def test_driver_lookup(self, small_geometry):
        netlist = build_crossbar_netlist(small_geometry)
        driver = netlist.driver_for("row", 1)
        assert driver.node == "row_drv_1"
        with pytest.raises(GeometryError):
            netlist.driver_for("row", 9)

    def test_out_of_range_device_rejected(self, small_geometry):
        netlist = build_crossbar_netlist(small_geometry)
        with pytest.raises(GeometryError):
            netlist.device_at((5, 5))

    def test_wire_parameters_respected(self, small_geometry):
        wires = WireParameters(segment_resistance_ohm=7.0, driver_resistance_ohm=120.0)
        netlist = build_crossbar_netlist(small_geometry, wires)
        assert netlist.resistors[0].resistance_ohm == pytest.approx(7.0)
        assert netlist.drivers[0].series_resistance_ohm == pytest.approx(120.0)

    def test_resistor_conductance(self, small_geometry):
        netlist = build_crossbar_netlist(small_geometry)
        resistor = netlist.resistors[0]
        assert resistor.conductance_s == pytest.approx(1.0 / resistor.resistance_ohm)


class TestSolver:
    @pytest.fixture
    def solver(self, small_geometry):
        netlist = build_crossbar_netlist(small_geometry)
        return CrossbarSolver(netlist, JartVcmModel()), small_geometry

    def _hrs_states(self, geometry):
        model = JartVcmModel()
        return {cell: model.hrs_state() for cell in geometry.iter_cells()}

    def test_selected_cell_sees_nearly_full_voltage(self, solver):
        engine, geometry = solver
        states = self._hrs_states(geometry)
        op = engine.solve(write_bias(geometry, [(1, 1)], 1.05), states)
        assert op.cell_voltage((1, 1)) == pytest.approx(1.05, abs=0.05)

    def test_half_selected_cells_see_half_voltage(self, solver):
        engine, geometry = solver
        states = self._hrs_states(geometry)
        op = engine.solve(write_bias(geometry, [(1, 1)], 1.05), states)
        assert op.cell_voltage((1, 2)) == pytest.approx(0.525, abs=0.05)
        assert op.cell_voltage((0, 1)) == pytest.approx(0.525, abs=0.05)

    def test_unselected_cells_see_no_voltage(self, solver):
        engine, geometry = solver
        states = self._hrs_states(geometry)
        op = engine.solve(write_bias(geometry, [(1, 1)], 1.05), states)
        assert abs(op.cell_voltage((0, 0))) < 0.05

    def test_kcl_residual_small(self, solver):
        engine, geometry = solver
        states = self._hrs_states(geometry)
        op = engine.solve(write_bias(geometry, [(1, 1)], 1.05), states)
        assert op.residual_a < 1e-9

    def test_lrs_aggressor_draws_more_current(self, solver):
        engine, geometry = solver
        states = self._hrs_states(geometry)
        bias = write_bias(geometry, [(1, 1)], 1.05)
        hrs_current = engine.solve(bias, states).cell_current((1, 1))
        states[(1, 1)] = JartVcmModel().lrs_state()
        lrs_current = engine.solve(bias, states).cell_current((1, 1))
        assert lrs_current > 50.0 * hrs_current

    def test_wire_resistance_causes_ir_drop(self, small_geometry):
        lossy = CrossbarSolver(
            build_crossbar_netlist(small_geometry, WireParameters(segment_resistance_ohm=200.0, driver_resistance_ohm=500.0)),
            JartVcmModel(),
        )
        model = JartVcmModel()
        states = {cell: model.lrs_state() for cell in small_geometry.iter_cells()}
        op = lossy.solve(write_bias(small_geometry, [(1, 1)], 1.05), states)
        assert op.cell_voltage((1, 1)) < 1.0

    def test_floating_lines_allowed(self, solver):
        engine, geometry = solver
        states = self._hrs_states(geometry)
        bias = BiasPattern(row_voltages_v={1: 1.0}, column_voltages_v={1: 0.0})
        op = engine.solve(bias, states)
        assert op.cell_voltage((1, 1)) == pytest.approx(1.0, abs=0.05)
        # Cells on floating lines float near the driven potential's divider.
        assert -1.0 <= op.cell_voltage((0, 0)) <= 1.0

    def test_power_is_voltage_times_current(self, solver):
        engine, geometry = solver
        states = self._hrs_states(geometry)
        op = engine.solve(write_bias(geometry, [(1, 1)], 1.05), states)
        assert op.cell_power((1, 1)) == pytest.approx(
            abs(op.cell_voltage((1, 1)) * op.cell_current((1, 1)))
        )
        assert op.total_power_w >= op.cell_power((1, 1))

    def test_works_with_other_device_models(self, small_geometry):
        model = LinearIonDriftModel()
        engine = CrossbarSolver(build_crossbar_netlist(small_geometry), model)
        states = {cell: model.hrs_state() for cell in small_geometry.iter_cells()}
        op = engine.solve(write_bias(small_geometry, [(0, 0)], 1.0), states)
        assert op.cell_voltage((0, 0)) == pytest.approx(1.0, abs=0.05)

    def test_warm_start_reuses_previous_solution(self, solver):
        engine, geometry = solver
        states = self._hrs_states(geometry)
        bias = write_bias(geometry, [(1, 1)], 1.05)
        first = engine.solve(bias, states)
        second = engine.solve(bias, states)
        assert second.iterations <= first.iterations
        assert second.cell_voltage((1, 1)) == pytest.approx(first.cell_voltage((1, 1)), abs=1e-6)

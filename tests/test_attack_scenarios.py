"""Deep coverage of the Sec. VI scenario engines and ScenarioResult invariants.

``test_rowhammer_and_scenarios.py`` checks the headline outcomes (the exploit
succeeds, the secret leaks); this module pins down the *mechanics*: the order
and accounting of narrated steps, the failure paths, and the invariants every
:class:`~repro.attack.scenarios.ScenarioResult` must satisfy regardless of
outcome.
"""

from __future__ import annotations

import pytest

from repro.attack import (
    DenialOfServiceScenario,
    PrivilegeEscalationScenario,
    ScenarioResult,
    ScenarioStep,
)
from repro.errors import AttackError
from repro.memory import AddressMapping, DisturbanceProfile


def assert_result_invariants(result: ScenarioResult) -> None:
    """Invariants every scenario run must satisfy, success or failure."""
    assert isinstance(result.name, str) and result.name
    assert result.steps, "a scenario must narrate at least one step"
    assert all(isinstance(step, ScenarioStep) for step in result.steps)
    assert all(step.description for step in result.steps)
    assert all(step.pulses >= 0 for step in result.steps)
    # total_pulses is exactly the sum of the narrated per-step pulses.
    assert result.total_pulses == sum(step.pulses for step in result.steps)
    assert result.attack_time_s >= 0.0


class TestScenarioResultLog:
    def test_log_appends_and_accumulates(self):
        result = ScenarioResult(name="demo", success=False)
        result.log("first")
        result.log("second", pulses=10)
        result.log("third", pulses=5)
        assert [step.description for step in result.steps] == ["first", "second", "third"]
        assert result.total_pulses == 15
        assert_result_invariants(result)

    def test_stats_default_to_empty_dict_per_instance(self):
        one, two = ScenarioResult(name="a", success=False), ScenarioResult(name="b", success=False)
        one.stats["x"] = 1
        assert two.stats == {}


class TestPrivilegeEscalationSequencing:
    @pytest.fixture(scope="class")
    def outcome(self):
        profile = DisturbanceProfile(same_line_pulses=5000, pulse_period_s=100e-9)
        return PrivilegeEscalationScenario(disturbance=profile).run()

    def test_invariants(self, outcome):
        assert_result_invariants(outcome)

    def test_step_ordering(self, outcome):
        """The narrated chain follows the exploit: setup -> audit -> target ->
        hammer -> flip -> audit -> exfiltrate."""
        descriptions = [step.description for step in outcome.steps]
        order = [
            next(i for i, d in enumerate(descriptions) if d.startswith("setup:")),
            next(i for i, d in enumerate(descriptions) if d.startswith("audit before attack")),
            next(i for i, d in enumerate(descriptions) if "attacker targets PTE" in d),
            next(i for i, d in enumerate(descriptions) if d.startswith("hammering")),
            next(i for i, d in enumerate(descriptions) if "isolation VIOLATED" in d),
            next(i for i, d in enumerate(descriptions) if "exfiltrates" in d),
        ]
        assert order == sorted(order)

    def test_only_hammer_steps_cost_pulses(self, outcome):
        for step in outcome.steps:
            if step.pulses:
                assert "hammering" in step.description

    def test_attack_time_matches_pulse_accounting(self, outcome):
        assert outcome.attack_time_s == pytest.approx(outcome.total_pulses * 100e-9, rel=1e-9)

    def test_failure_path_when_no_flip_lands(self):
        """If the disturbance never crosses the memory's flip threshold the
        scenario must narrate the failure instead of claiming success."""
        profile = DisturbanceProfile(same_line_pulses=5000, pulse_period_s=100e-9)
        scenario = PrivilegeEscalationScenario(disturbance=profile)
        # The scenario plans with the 5000-pulse profile, but the memory
        # itself needs far more accumulated pulses, so no flip ever lands.
        scenario.memory.disturbance = DisturbanceProfile(
            same_line_pulses=10_000_000, pulse_period_s=100e-9
        )
        outcome = scenario.run()
        assert not outcome.success
        assert outcome.payload is None
        assert any("no flip occurred" in step.description for step in outcome.steps)
        assert_result_invariants(outcome)

    def test_page_size_must_align_with_pte_size(self):
        with pytest.raises(AttackError):
            PrivilegeEscalationScenario(page_size=250)


class TestDenialOfServiceSequencing:
    @pytest.fixture(scope="class")
    def outcome(self):
        profile = DisturbanceProfile(same_line_pulses=2000, pulse_period_s=100e-9)
        return DenialOfServiceScenario(disturbance=profile).run()

    def test_invariants(self, outcome):
        assert_result_invariants(outcome)

    def test_step_ordering(self, outcome):
        descriptions = [step.description for step in outcome.steps]
        assert descriptions[0].startswith("victim data word written")
        hammer_indices = [i for i, d in enumerate(descriptions) if d.startswith("hammering")]
        assert hammer_indices, "DoS must narrate its hammer steps"
        uncorrectable = next(i for i, d in enumerate(descriptions) if "uncorrectable" in d)
        assert all(i < uncorrectable for i in hammer_indices)

    def test_needs_at_least_two_flips(self, outcome):
        landed = [step for step in outcome.steps if "flip landed in the victim word" in step.description]
        assert len(landed) >= 2

    def test_every_hammer_step_costs_the_profile_pulses(self, outcome):
        for step in outcome.steps:
            if step.description.startswith("hammering"):
                assert step.pulses == 2000

    def test_failure_path_single_flip_is_corrected(self):
        profile = DisturbanceProfile(same_line_pulses=1500, pulse_period_s=100e-9)
        scenario = DenialOfServiceScenario(disturbance=profile)
        # Make the memory's threshold unreachable so no flip ever lands.
        scenario.memory.disturbance = DisturbanceProfile(
            same_line_pulses=10_000_000, pulse_period_s=100e-9
        )
        outcome = scenario.run()
        assert not outcome.success
        assert any("denial of service failed" in step.description for step in outcome.steps)
        assert_result_invariants(outcome)

    def test_custom_mapping_is_honoured(self):
        mapping = AddressMapping(rows=32, columns=32, tiles_per_bank=2, banks=1)
        profile = DisturbanceProfile(same_line_pulses=100, pulse_period_s=100e-9)
        outcome = DenialOfServiceScenario(disturbance=profile, mapping=mapping).run(victim_address=0x40)
        assert_result_invariants(outcome)
        assert outcome.success

"""Smoke tests for the `repro` command line (`python -m repro`)."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import CampaignSpec, ResultCache
from repro.cli import build_parser, main

#: A 12-point grid (4 pulse lengths x 3 temperatures) on a fast 3x3 crossbar.
TWELVE_POINT_SPEC = dict(
    name="cli-grid",
    mode="grid",
    simulation={"geometry": {"rows": 3, "columns": 3}},
    attack={"aggressors": [[1, 1]], "victim": [1, 2]},
    axes=[
        {"path": "attack.pulse.length_s", "values": [10e-9, 30e-9, 50e-9, 70e-9]},
        {"path": "attack.ambient_temperature_k", "values": [298.0, 323.0, 348.0]},
    ],
)


@pytest.fixture
def spec_path(tmp_path) -> Path:
    path = tmp_path / "spec.json"
    CampaignSpec(**TWELVE_POINT_SPEC).to_json(path)
    return path


#: A small Monte-Carlo spec: two axes, tiny populations, fast 3x3 crossbar.
MC_SPEC = dict(
    name="cli-mc",
    kind="montecarlo",
    experiment="montecarlo",
    mode="grid",
    simulation={"geometry": {"rows": 3, "columns": 3}},
    attack={"aggressors": [[1, 1]], "victim": [1, 2], "max_pulses": 500_000},
    montecarlo={
        "n_samples": 8,
        "seed": 3,
        "distributions": [
            {"path": "device.series_resistance_ohm", "kind": "normal",
             "mean": 1.0, "sigma": 0.05, "relative": True},
        ],
    },
    axes=[
        {"path": "attack.pulse.length_s", "values": [30e-9, 60e-9]},
        {"path": "attack.ambient_temperature_k", "values": [300.0, 325.0]},
    ],
)


@pytest.fixture
def mc_spec_path(tmp_path) -> Path:
    path = tmp_path / "mc_spec.json"
    CampaignSpec(**MC_SPEC).to_json(path)
    return path


class TestParser:
    def test_every_subcommand_is_wired(self):
        parser = build_parser()
        for argv in (
            ["run-fig", "3a"],
            ["campaign", "run", "spec.json"],
            ["campaign", "status", "spec.json"],
            ["mc", "run", "spec.json"],
            ["mc", "map", "spec.json"],
            ["version"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.handler)

    def test_unknown_figure_is_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-fig", "9z"])


class TestCampaignRun:
    def test_twelve_point_grid_through_pool_then_cache(self, spec_path, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        code = main(
            ["campaign", "run", str(spec_path), "--workers", "2", "--cache", str(cache_dir)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "12 points, 12 ok (0 cached)" in out
        assert "success rate 100%" in out

        # Second invocation must be served (>=90%) from the cache.
        code = main(["campaign", "run", str(spec_path), "--workers", "2", "--cache", str(cache_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "12 ok (12 cached)" in out
        assert len(ResultCache(cache_dir)) == 12

    def test_json_report_and_save_exports(self, spec_path, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        save_dir = tmp_path / "out"
        code = main(
            [
                "campaign", "run", str(spec_path),
                "--cache", str(cache_dir), "--save", str(save_dir), "--json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out.split("saved campaign exports")[0])
        assert payload["summary"]["ok"] == 12
        assert payload["summary"]["success_rate"] == 1.0
        assert (save_dir / "cli-grid.csv").exists()
        assert (save_dir / "cli-grid.json").exists()

    def test_no_cache_flag_skips_the_cache(self, spec_path, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["campaign", "run", str(spec_path), "--no-cache"])
        capsys.readouterr()
        assert code == 0
        assert not (tmp_path / ".repro-cache").exists()

    def test_missing_spec_is_a_clean_error(self, tmp_path, capsys):
        code = main(["campaign", "run", str(tmp_path / "nope.json")])
        captured = capsys.readouterr()
        assert code == 1
        assert "does not exist" in captured.err


class TestCampaignStatus:
    def test_status_before_and_after_run(self, spec_path, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["campaign", "status", str(spec_path), "--cache", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "0/12 points cached" in out
        main(["campaign", "run", str(spec_path), "--cache", str(cache_dir)])
        capsys.readouterr()
        assert main(["campaign", "status", str(spec_path), "--cache", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "12/12 points cached" in out


class TestRunFig:
    def test_run_fig_3a_smoke(self, tmp_path, capsys):
        save_dir = tmp_path / "fig"
        code = main(["run-fig", "3a", "--save", str(save_dir), "--chart"])
        out = capsys.readouterr().out
        assert code == 0
        assert "pulse_length_ns" in out
        assert (save_dir / "fig3a.csv").exists()

    def test_run_fig_3a_uses_cache_when_asked(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["run-fig", "3a", "--cache", str(cache_dir)]) == 0
        capsys.readouterr()
        assert len(ResultCache(cache_dir)) == 10
        assert main(["run-fig", "3a", "--workers", "2", "--cache", str(cache_dir)]) == 0
        capsys.readouterr()

    def test_version_command(self, capsys):
        from repro import __version__

        assert main(["version"]) == 0
        assert capsys.readouterr().out.strip() == __version__


class TestMonteCarloCommands:
    def test_mc_run_prints_population_stats(self, mc_spec_path, capsys):
        assert main(["mc", "run", str(mc_spec_path), "--rows", "4"]) == 0
        out = capsys.readouterr().out
        assert "flip probability" in out
        assert "vectorized engine" in out

    def test_mc_run_overrides_and_json(self, mc_spec_path, capsys):
        assert main(["mc", "run", str(mc_spec_path), "--samples", "4", "--seed", "9", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["n_samples"] == 4
        assert payload["summary"]["seed"] == 9
        assert "victim_voltage_v" in payload["conditions"]

    def test_mc_run_scalar_engine_agrees(self, mc_spec_path, capsys):
        assert main(["mc", "run", str(mc_spec_path), "--samples", "4", "--scalar", "--json"]) == 0
        scalar = json.loads(capsys.readouterr().out)["summary"]
        assert main(["mc", "run", str(mc_spec_path), "--samples", "4", "--json"]) == 0
        vectorized = json.loads(capsys.readouterr().out)["summary"]
        assert scalar["engine"] == "scalar" and vectorized["engine"] == "vectorized"
        assert scalar["flipped"] == vectorized["flipped"]
        assert scalar["min_pulses_to_flip"] == vectorized["min_pulses_to_flip"]

    def test_mc_map_prints_heatmap_and_caches(self, mc_spec_path, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        save_dir = tmp_path / "out"
        code = main([
            "mc", "map", str(mc_spec_path),
            "--cache", str(cache_dir), "--save", str(save_dir),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "flip probability" in out
        assert len(ResultCache(cache_dir)) == 4
        assert (save_dir / "montecarlo.json").exists()
        # Second run is served from the cache.
        assert main(["mc", "map", str(mc_spec_path), "--cache", str(cache_dir)]) == 0
        capsys.readouterr()

    def test_mc_run_export_cells_writes_npz(self, mc_spec_path, tmp_path, capsys):
        import numpy as np

        out_path = tmp_path / "cells.npz"
        assert main([
            "mc", "run", str(mc_spec_path), "--samples", "6",
            "--export-cells", str(out_path),
        ]) == 0
        assert "exported per-cell arrays" in capsys.readouterr().out
        data = np.load(out_path)
        assert data["flipped"].shape == (6,)
        assert data["pulses"].shape == (6,)
        assert data["param.device.series_resistance_ohm"].shape == (6,)
        assert data["valid"].dtype == bool

    def test_mc_run_export_cells_full_array_carries_victims(self, mc_spec_path, tmp_path, capsys):
        import numpy as np

        out_path = tmp_path / "arrays.npz"
        assert main([
            "mc", "run", str(mc_spec_path), "--samples", "2", "--mode", "full_array",
            "--export-cells", str(out_path),
        ]) == 0
        capsys.readouterr()
        data = np.load(out_path)
        assert int(data["n_arrays"]) == 2
        assert data["victims"].shape[1] == 2
        assert data["array_valid"].shape == (2,)
        cells = data["param.device.series_resistance_ohm"]
        assert cells.shape == (2, 9)  # per-cell draws of the 3x3 arrays

    def test_mc_run_show_distributions(self, mc_spec_path, capsys):
        assert main(["mc", "run", str(mc_spec_path), "--show-distributions"]) == 0
        out = capsys.readouterr().out
        assert "source" in out
        assert "placeholder" in out

    def test_mc_map_adaptive_refinement(self, mc_spec_path, capsys):
        assert main([
            "mc", "map", str(mc_spec_path), "--adaptive",
            "--target-ci", "0.2", "--batch-size", "8", "--point-max", "64",
        ]) == 0
        out = capsys.readouterr().out
        assert "samples per point" in out
        assert "fewer than the fixed-n equivalent" in out

    def test_campaign_run_shard_size_override(self, spec_path, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main([
            "campaign", "run", str(spec_path),
            "--cache", str(cache_dir), "--shard-size", "2",
        ]) == 0
        assert "12 points" in capsys.readouterr().out
        assert len(ResultCache(cache_dir)) == 12

    def test_mc_commands_reject_attack_kind_specs(self, spec_path, capsys):
        assert main(["mc", "run", str(spec_path)]) == 1
        assert "kind='montecarlo'" in capsys.readouterr().err

    def test_mc_map_needs_two_axes(self, tmp_path, capsys):
        spec = dict(MC_SPEC)
        spec["axes"] = [spec["axes"][0]]
        path = tmp_path / "one_axis.json"
        CampaignSpec(**spec).to_json(path)
        assert main(["mc", "map", str(path)]) == 1
        assert "two" in capsys.readouterr().err


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "version"],
            capture_output=True,
            text=True,
            cwd=tmp_path,
            env={"PYTHONPATH": str(Path(__file__).resolve().parents[1] / "src"), "PATH": "/usr/bin:/bin"},
        )
        from repro import __version__

        assert proc.returncode == 0
        assert proc.stdout.strip() == __version__

"""Equivalence suite for the structured crosstalk operator.

The FFT and stencil operators must reproduce the dense alpha-table path
element for element (<= 1e-12) for every shipped coupling model, including
edge/corner cells and non-square geometries, and the crosstalk hub must be
invariant to the backend choice.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import CrosstalkHub
from repro.config import CrossbarGeometry
from repro.errors import ConfigurationError
from repro.thermal import (
    AlphaExtractionResult,
    AnalyticCouplingModel,
    CouplingModel,
    DenseCrosstalkOperator,
    ExtractedCouplingModel,
    FftCrosstalkOperator,
    StencilCrosstalkOperator,
    UniformCouplingModel,
    make_crosstalk_operator,
)

#: Equivalence budget of the suite (relative; victims receiving exactly zero
#: coupling are compared against a matching absolute floor).
RTOL = 1e-12
ATOL = 1e-12

GEOMETRIES = [
    (5, 5),  # the paper's square array
    (3, 7),  # wide non-square
    (6, 2),  # tall non-square
    (1, 8),  # single row (degenerate kernel axis)
]


def synthetic_extraction(rows: int, columns: int, selected=(1, 1), seed: int = 0):
    """A translation-invariant extraction window with known values."""
    rng = np.random.default_rng(seed)
    alpha = rng.uniform(0.01, 0.4, size=(rows, columns))
    alpha[selected] = 1.0
    return AlphaExtractionResult(
        selected_cell=tuple(selected),
        thermal_resistance_k_per_w=2e6,
        fitted_ambient_k=300.0,
        alpha=alpha,
        r_squared=1.0,
        neighbour_r_squared=np.ones((rows, columns)),
        sweep_powers_w=np.array([1e-6, 2e-6]),
        sweep_temperatures_k=[np.full((rows, columns), 300.0)] * 2,
    )


def coupling_models(rows: int, columns: int):
    geometry = CrossbarGeometry(rows=rows, columns=columns)
    selected = (min(1, rows - 1), min(1, columns - 1))
    return [
        AnalyticCouplingModel(geometry),
        ExtractedCouplingModel(geometry, synthetic_extraction(rows, columns, selected)),
        UniformCouplingModel(geometry, alpha=0.17),
    ]


def rise_maps(rows: int, columns: int, seed: int = 1):
    """Rise maps exercising hot corners, hot edges and dense random fields."""
    rng = np.random.default_rng(seed)
    maps = [rng.uniform(0.0, 650.0, size=(rows, columns))]
    corner = np.zeros((rows, columns))
    corner[0, 0] = 650.0
    corner[-1, -1] = 420.0
    maps.append(corner)
    edge = np.zeros((rows, columns))
    edge[0, :] = 300.0
    maps.append(edge)
    return maps


class NonStationaryCoupling(CouplingModel):
    """A coupling that depends on absolute position (no offset kernel)."""

    def alpha_between(self, aggressor, victim):
        if tuple(aggressor) == tuple(victim):
            return 1.0
        return 0.01 * (aggressor[0] + 1) / (1 + abs(victim[1] - aggressor[1]))


class TestOperatorEquivalence:
    @pytest.mark.parametrize("rows,columns", GEOMETRIES)
    def test_structured_backends_match_dense_elementwise(self, rows, columns):
        for coupling in coupling_models(rows, columns):
            dense = DenseCrosstalkOperator(coupling)
            kernel = coupling.kernel()
            assert kernel is not None, type(coupling).__name__
            structured = [
                FftCrosstalkOperator(coupling, kernel),
                StencilCrosstalkOperator(coupling, kernel),
            ]
            for rises in rise_maps(rows, columns):
                reference = dense.apply(rises)
                for operator in structured:
                    np.testing.assert_allclose(
                        operator.apply(rises),
                        reference,
                        rtol=RTOL,
                        atol=ATOL * max(1.0, float(np.abs(reference).max())),
                        err_msg=f"{type(coupling).__name__} via {operator.backend}",
                    )

    @pytest.mark.parametrize("rows,columns", GEOMETRIES)
    def test_single_victim_fast_path_matches_full_apply(self, rows, columns):
        corners_and_edges = {
            (0, 0),
            (0, columns - 1),
            (rows - 1, 0),
            (rows - 1, columns - 1),
            (rows // 2, 0),
            (0, columns // 2),
            (rows // 2, columns // 2),
        }
        for coupling in coupling_models(rows, columns):
            operator = make_crosstalk_operator(coupling)
            rises = rise_maps(rows, columns, seed=2)[0]
            full = operator.apply(rises)
            for victim in corners_and_edges:
                assert operator.apply_single(victim, rises) == pytest.approx(
                    full[victim], rel=RTOL, abs=ATOL * max(1.0, abs(float(full[victim])))
                )

    @pytest.mark.parametrize("rows,columns", GEOMETRIES)
    def test_alpha_between_matches_coupling_model(self, rows, columns):
        for coupling in coupling_models(rows, columns):
            operator = make_crosstalk_operator(coupling)
            for aggressor in [(0, 0), (rows - 1, columns - 1), (rows // 2, columns // 2)]:
                for victim in [(0, columns - 1), (rows - 1, 0), (rows // 2, columns // 2)]:
                    if aggressor == victim:
                        assert operator.alpha_between(aggressor, victim) == 0.0
                    else:
                        assert operator.alpha_between(aggressor, victim) == pytest.approx(
                            coupling.alpha_between(aggressor, victim), rel=RTOL
                        )

    def test_kernel_alpha_table_matches_pairwise_scalar(self):
        geometry = CrossbarGeometry(rows=4, columns=3)
        for coupling in coupling_models(4, 3):
            table = coupling.alpha_table()
            cells = list(geometry.iter_cells())
            for a, aggressor in enumerate(cells):
                for v, victim in enumerate(cells):
                    expected = 1.0 if a == v else coupling.alpha_between(aggressor, victim)
                    assert table[a, v] == pytest.approx(expected, rel=RTOL, abs=1e-15)


class TestBackendSelection:
    def test_uniform_coupling_selects_the_stencil(self):
        geometry = CrossbarGeometry(rows=8, columns=8)
        operator = make_crosstalk_operator(UniformCouplingModel(geometry, 0.1))
        assert operator.backend == "stencil"
        assert operator.taps == 4

    def test_analytic_coupling_selects_fft(self):
        geometry = CrossbarGeometry(rows=8, columns=8)
        operator = make_crosstalk_operator(AnalyticCouplingModel(geometry))
        assert operator.backend == "fft"

    def test_non_stationary_model_falls_back_to_dense(self):
        geometry = CrossbarGeometry(rows=4, columns=4)
        coupling = NonStationaryCoupling(geometry)
        assert coupling.kernel() is None
        operator = make_crosstalk_operator(coupling)
        assert operator.backend == "dense"
        # The dense fallback is still the exact pairwise answer.
        rises = rise_maps(4, 4)[0]
        out = operator.apply(rises)
        victim = (2, 3)
        expected = sum(
            coupling.alpha_between(a, victim) * rises[a]
            for a in geometry.iter_cells()
            if a != victim
        )
        assert out[victim] == pytest.approx(expected, rel=1e-12)

    def test_structured_backend_on_non_stationary_model_rejected(self):
        coupling = NonStationaryCoupling(CrossbarGeometry(rows=3, columns=3))
        with pytest.raises(ConfigurationError):
            make_crosstalk_operator(coupling, backend="fft")
        with pytest.raises(ConfigurationError):
            make_crosstalk_operator(coupling, backend="stencil")

    def test_unknown_backend_rejected(self):
        coupling = AnalyticCouplingModel(CrossbarGeometry())
        with pytest.raises(ConfigurationError):
            make_crosstalk_operator(coupling, backend="quantum")

    def test_large_array_constructs_without_dense_table(self):
        # The acceptance bar of the PR: a 256x256 hub must hold only O(N)
        # alpha state (the dense table would be ~34 GB and would not build).
        geometry = CrossbarGeometry(rows=256, columns=256)
        hub = CrosstalkHub(AnalyticCouplingModel(geometry), 300.0)
        assert hub.operator_backend == "fft"
        assert hub.alpha_state_bytes <= 4.5 * 1024 * 1024
        rises = np.zeros((256, 256))
        rises[128, 128] = 650.0
        additional = hub.additional_temperatures(300.0 + rises)
        assert additional[128, 129] > additional[100, 100] >= 0.0
        assert additional[128, 128] == pytest.approx(0.0)


class TestHubBackendInvariance:
    @pytest.mark.parametrize("rows,columns", [(5, 5), (3, 7)])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_hub_results_invariant_to_backend(self, rows, columns, seed):
        """Property: the hub's answers do not depend on the backend choice."""
        geometry = CrossbarGeometry(rows=rows, columns=columns)
        rng = np.random.default_rng(seed)
        temperatures = 300.0 + rng.uniform(-30.0, 650.0, size=(rows, columns))
        victim = (int(rng.integers(rows)), int(rng.integers(columns)))
        for coupling in coupling_models(rows, columns):
            kernel_backends = ("fft", "stencil", "dense")
            hubs = [CrosstalkHub(coupling, 300.0, backend=b) for b in kernel_backends]
            reference = hubs[-1].additional_temperatures(temperatures)
            for hub in hubs[:-1]:
                np.testing.assert_allclose(
                    hub.additional_temperatures(temperatures),
                    reference,
                    rtol=RTOL,
                    atol=ATOL * max(1.0, float(np.abs(reference).max())),
                )
                assert hub.additional_temperature_for(victim, temperatures) == pytest.approx(
                    float(reference[victim]),
                    rel=RTOL,
                    abs=ATOL * max(1.0, abs(float(reference[victim]))),
                )

    def test_hub_keeps_seed_semantics(self):
        """Rises are clamped at ambient and the diagonal contributes nothing."""
        hub = CrosstalkHub(AnalyticCouplingModel(CrossbarGeometry()), 300.0)
        cold = np.full((5, 5), 280.0)
        assert np.allclose(hub.additional_temperatures(cold), 0.0)
        with pytest.raises(ConfigurationError):
            hub.additional_temperatures(np.full((3, 3), 300.0))


class TestVectorizedSatellites:
    def test_matrix_for_slices_match_the_loop(self):
        geometry = CrossbarGeometry(rows=4, columns=6)
        for coupling in coupling_models(4, 6):
            for aggressor in [(0, 0), (3, 5), (2, 1)]:
                matrix = coupling.matrix_for(aggressor)
                assert matrix.values[aggressor] == 1.0
                for victim in geometry.iter_cells():
                    if victim == aggressor:
                        continue
                    assert matrix.values[victim] == pytest.approx(
                        coupling.alpha_between(aggressor, victim), rel=RTOL, abs=1e-15
                    )

    def test_hottest_neighbours_argpartition_matches_full_sort(self):
        coupling = AnalyticCouplingModel(CrossbarGeometry(rows=6, columns=6))
        matrix = coupling.matrix_for((3, 3))
        hottest = matrix.hottest_neighbours(5)
        assert len(hottest) == 5
        reference = sorted(
            (
                (float(matrix.values[cell]), cell)
                for cell in coupling.geometry.iter_cells()
                if cell != (3, 3)
            ),
            reverse=True,
        )
        assert sorted(hottest.values(), reverse=True) == [v for v, _ in reference[:5]]
        # Order inside the dict is descending, like the seed full sort.
        assert list(hottest.values()) == sorted(hottest.values(), reverse=True)

    def test_hottest_neighbours_count_exceeding_cells(self):
        coupling = UniformCouplingModel(CrossbarGeometry(rows=2, columns=2), 0.3)
        matrix = coupling.matrix_for((0, 0))
        hottest = matrix.hottest_neighbours(99)
        assert len(hottest) == 3  # everything but the aggressor
        assert (0, 0) not in hottest

    def test_extracted_coupling_offset_array_lookup(self):
        geometry = CrossbarGeometry(rows=3, columns=3)
        extraction = synthetic_extraction(3, 3, selected=(1, 1), seed=5)
        coupling = ExtractedCouplingModel(geometry, extraction)
        # In-window offsets read the extraction matrix directly.
        assert coupling.alpha_between((1, 1), (0, 2)) == pytest.approx(extraction.alpha[0, 2])
        # Translation invariance of the lookup.
        assert coupling.alpha_between((0, 0), (0, 1)) == pytest.approx(
            coupling.alpha_between((1, 1), (1, 2))
        )
        # Offsets outside the window fall back to the most distant value.
        assert coupling.alpha_between((0, 0), (2, 2)) == pytest.approx(
            float(extraction.alpha.min())
        )

    def test_extracted_kernel_with_offcentre_selected_cell(self):
        geometry = CrossbarGeometry(rows=4, columns=4)
        extraction = synthetic_extraction(4, 4, selected=(0, 0), seed=6)
        coupling = ExtractedCouplingModel(geometry, extraction)
        operator = make_crosstalk_operator(coupling)
        dense = DenseCrosstalkOperator(coupling)
        rises = rise_maps(4, 4, seed=7)[0]
        np.testing.assert_allclose(operator.apply(rises), dense.apply(rises), rtol=RTOL, atol=1e-9)

"""Tests for the NeuroHammer attack engine (fast path and analysis helpers)."""

from __future__ import annotations

import math

import pytest

from repro.attack import (
    NeuroHammer,
    hammer_once,
    minimum_alpha_to_flip,
    narrate_attack,
    single_aggressor,
    switching_rate,
    thermal_acceleration_factor,
)
from repro.attack.patterns import double_sided_row
from repro.circuit import CrossbarArray
from repro.config import AttackConfig, CrossbarGeometry, PulseConfig
from repro.devices import JartVcmModel
from repro.errors import AttackError, ConfigurationError


class TestHammerOnce:
    def test_default_operating_point_flips(self):
        result = hammer_once(pulse_length_s=50e-9)
        assert result.flipped
        assert 1_000 <= result.pulses <= 50_000
        assert result.victim == (2, 3)
        assert result.aggressors == ((2, 2),)
        assert result.victim_final_x >= 0.5

    def test_longer_pulses_need_fewer_pulses(self):
        short = hammer_once(pulse_length_s=10e-9)
        long = hammer_once(pulse_length_s=100e-9)
        assert short.pulses > long.pulses
        # ...but about the same cumulative stress time.
        assert short.stress_time_s == pytest.approx(long.stress_time_s, rel=0.2)

    def test_tight_spacing_is_more_vulnerable(self):
        dense = hammer_once(pulse_length_s=50e-9, electrode_spacing_m=10e-9)
        sparse = hammer_once(pulse_length_s=50e-9, electrode_spacing_m=90e-9)
        assert dense.pulses < sparse.pulses / 5

    def test_hot_ambient_is_more_vulnerable(self):
        cold = hammer_once(pulse_length_s=50e-9, ambient_temperature_k=273.0)
        hot = hammer_once(pulse_length_s=50e-9, ambient_temperature_k=373.0)
        assert hot.pulses < cold.pulses / 100

    def test_v_third_scheme_mitigates(self):
        v_half = hammer_once(pulse_length_s=50e-9, bias_scheme="v_half")
        v_third = hammer_once(pulse_length_s=50e-9, bias_scheme="v_third", max_pulses=1_000_000)
        assert v_third.pulses > 5 * v_half.pulses

    def test_budget_exhaustion_reports_no_flip(self):
        result = hammer_once(pulse_length_s=50e-9, max_pulses=10)
        assert not result.flipped
        assert result.pulses <= 10

    def test_result_bookkeeping(self):
        result = hammer_once(pulse_length_s=50e-9)
        assert result.pulse_length_s == pytest.approx(50e-9)
        assert result.wall_clock_s >= result.stress_time_s
        assert result.hammer_energy_j > 0.0
        assert result.pulses_per_aggressor == pytest.approx(result.pulses)
        assert len(result.phase_points) == 1
        point = result.phase_points[0]
        assert 0.4 < point.victim_voltage_v < 0.6
        assert point.victim_crosstalk_k > 40.0
        assert point.aggressor_temperature_k > 800.0


class TestNeuroHammerEngine:
    def test_prepare_sets_aggressors_lrs_victim_hrs(self, paper_crossbar):
        attack = NeuroHammer(paper_crossbar)
        pattern = single_aggressor(paper_crossbar.geometry)
        attack.prepare(pattern)
        assert paper_crossbar.get_state(pattern.aggressors[0]).x == 1.0
        assert paper_crossbar.get_state(pattern.victim).x == 0.0

    def test_double_sided_pattern_stronger_than_single(self, paper_geometry):
        single_result = hammer_once(pulse_length_s=50e-9)
        crossbar = CrossbarArray(geometry=paper_geometry)
        attack = NeuroHammer(crossbar)
        pattern = double_sided_row(paper_geometry)
        config = AttackConfig(
            aggressors=list(pattern.aggressors),
            victim=pattern.victim,
            pulse=PulseConfig(length_s=50e-9),
        )
        double_result = attack.run(pattern=pattern, config=config)
        assert double_result.flipped
        assert double_result.pulses < single_result.pulses

    def test_ambient_mismatch_rejected(self, paper_crossbar):
        attack = NeuroHammer(paper_crossbar)
        config = AttackConfig(ambient_temperature_k=350.0)
        with pytest.raises(ConfigurationError):
            attack.run(config=config)

    def test_multi_aggressor_config_needs_victim(self, paper_crossbar):
        attack = NeuroHammer(paper_crossbar)
        config = AttackConfig(aggressors=[(2, 1), (2, 3)])
        with pytest.raises(AttackError):
            attack.run(config=config)

    def test_custom_config_pattern(self, paper_crossbar):
        attack = NeuroHammer(paper_crossbar)
        config = AttackConfig(
            aggressors=[(1, 1)], victim=(1, 2), pulse=PulseConfig(length_s=50e-9)
        )
        result = attack.run(config=config)
        assert result.flipped
        assert result.victim == (1, 2)


class TestAnalysisHelpers:
    def test_switching_rate_monotone_in_temperature(self, jart_model):
        assert switching_rate(jart_model, 0.525, 400.0) > switching_rate(jart_model, 0.525, 320.0)

    def test_acceleration_factor_large_at_victim_temperature(self, jart_model):
        factor = thermal_acceleration_factor(jart_model, 0.525, hot_temperature_k=375.0)
        assert factor > 100.0

    def test_acceleration_factor_is_one_without_heating(self, jart_model):
        assert thermal_acceleration_factor(jart_model, 0.525, hot_temperature_k=300.0) == pytest.approx(1.0)

    def test_minimum_alpha_bisects(self, jart_model):
        alpha = minimum_alpha_to_flip(
            jart_model, pulse_length_s=50e-9, pulse_budget=10_000, aggressor_rise_k=650.0
        )
        assert alpha is not None
        assert 0.0 < alpha < 0.5
        # A bigger budget needs less coupling.
        relaxed = minimum_alpha_to_flip(
            jart_model, pulse_length_s=50e-9, pulse_budget=1_000_000, aggressor_rise_k=650.0
        )
        assert relaxed < alpha

    def test_minimum_alpha_rejects_bad_budget(self, jart_model):
        with pytest.raises(AttackError):
            minimum_alpha_to_flip(jart_model, 50e-9, 0, 650.0)

    def test_narrative_is_consistent(self):
        narrative = narrate_attack(pulse_length_s=50e-9)
        assert narrative.aggressor_temperature_k > 800.0
        assert narrative.victim_crosstalk_k > 40.0
        assert narrative.acceleration_factor > 100.0
        assert narrative.pulses_to_flip * narrative.pulse_length_s == pytest.approx(
            narrative.time_to_flip_s, rel=0.05
        )
        assert len(narrative.as_lines()) == 4

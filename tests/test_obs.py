"""Tests of the opt-in observability subsystem (:mod:`repro.obs`).

Covers the telemetry registry itself (counters/gauges/histograms/events,
span nesting and the exclusive-time invariant, snapshot merging across a
process boundary), the disabled-path overhead contract, the instrumentation
wired through the solver / Monte-Carlo / campaign layers, the console-logging
idempotence fix, cached-job duration preservation, and the ``repro profile``
/ ``--telemetry`` CLI surface.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from pathlib import Path

import numpy as np
import pytest

import repro.utils.logging as repro_logging
from repro.campaign import CampaignRunner, CampaignSpec, ResultCache
from repro.campaign.cli import main
from repro.circuit import BiasPattern, CrossbarSolver, build_crossbar_netlist
from repro.config import CrossbarGeometry, WireParameters
from repro.devices import DeviceStateArrays, JartVcmModel
from repro.obs import (
    MAX_EVENTS_PER_NAME,
    LogHistogram,
    NullTelemetry,
    SpanRecord,
    Telemetry,
    aggregate_spans,
    build_manifest,
    disable_telemetry,
    find_span,
    get_telemetry,
    render_report,
    spans_from_snapshot,
    telemetry_capture,
    telemetry_enabled,
    total_wall_s,
    write_snapshot,
)
from repro.utils.logging import configure_console_logging, get_logger


@pytest.fixture(autouse=True)
def _telemetry_off_after_each_test():
    yield
    disable_telemetry()


#: A 4-point attack campaign on a fast 3x3 crossbar.
CAMPAIGN_SPEC = dict(
    name="obs-campaign",
    simulation={"geometry": {"rows": 3, "columns": 3}},
    attack={"aggressors": [[1, 1]], "victim": [1, 2]},
    axes=[{"path": "attack.pulse.length_s", "values": [30e-9, 50e-9, 70e-9, 90e-9]}],
)

#: A tiny Monte-Carlo spec (8-cell population, 3x3 crossbar).
MC_SPEC = dict(
    name="obs-mc",
    kind="montecarlo",
    experiment="montecarlo",
    mode="grid",
    simulation={"geometry": {"rows": 3, "columns": 3}},
    attack={"aggressors": [[1, 1]], "victim": [1, 2], "max_pulses": 500_000},
    montecarlo={
        "n_samples": 8,
        "seed": 3,
        "distributions": [
            {"path": "device.series_resistance_ohm", "kind": "normal",
             "mean": 1.0, "sigma": 0.05, "relative": True},
        ],
    },
    axes=[
        {"path": "attack.pulse.length_s", "values": [30e-9, 60e-9]},
        {"path": "attack.ambient_temperature_k", "values": [300.0, 325.0]},
    ],
)


@pytest.fixture
def mc_spec_path(tmp_path) -> Path:
    path = tmp_path / "mc_spec.json"
    CampaignSpec(**MC_SPEC).to_json(path)
    return path


class TestTelemetryRegistry:
    def test_disabled_by_default(self):
        tel = get_telemetry()
        assert isinstance(tel, NullTelemetry)
        assert tel.enabled is False
        assert telemetry_enabled() is False
        # Every operation is callable and harmless on the null instance.
        tel.count("x")
        tel.gauge("x", 1.0)
        tel.observe("x", 1.0)
        tel.event("x", a=1)
        with tel.span("x"):
            pass

    def test_counters_gauges_histograms_events(self):
        tel = Telemetry()
        tel.count("solves")
        tel.count("solves", 4)
        tel.gauge("taps", 24.0)
        tel.gauge("taps", 8.0)
        tel.observe("dt", 1e-9)
        tel.observe("dt", 1e-6)
        tel.event("batch", index=0, n=64)
        snapshot = tel.snapshot()
        assert snapshot["counters"]["solves"] == 5.0
        assert snapshot["gauges"]["taps"] == {"value": 8.0, "min": 8.0, "max": 24.0, "n": 2}
        assert snapshot["histograms"]["dt"]["count"] == 2
        assert snapshot["events"]["batch"] == [{"index": 0, "n": 64}]
        # Snapshots are values, decoupled from later mutation.
        tel.count("solves")
        assert snapshot["counters"]["solves"] == 5.0

    def test_event_series_is_bounded(self):
        tel = Telemetry()
        for index in range(MAX_EVENTS_PER_NAME + 100):
            tel.event("batch", index=index)
        series = tel.events["batch"]
        assert len(series) == MAX_EVENTS_PER_NAME
        assert series[0]["index"] == 100  # oldest entries dropped first

    def test_capture_nests_and_restores(self):
        assert telemetry_enabled() is False
        with telemetry_capture() as outer:
            assert get_telemetry() is outer
            with telemetry_capture(Telemetry()) as inner:
                assert get_telemetry() is inner
                inner.count("inner.only")
            assert get_telemetry() is outer
            assert "inner.only" not in outer.counters
        assert telemetry_enabled() is False

    def test_snapshot_is_json_serialisable(self):
        with telemetry_capture() as tel:
            with tel.span("root", kind="test"):
                tel.count("c")
                tel.observe("h", 0.5)
                tel.gauge("g", 2.0)
                tel.event("e", x=1)
        json.dumps(tel.snapshot())  # must not raise


class TestLogHistogram:
    def test_binning_spans_decades(self):
        hist = LogHistogram()
        for value in (1e-9, 2e-9, 1e-3, 5.0, 0.0, -1.0):
            hist.observe(value)
        payload = hist.to_dict()
        assert payload["count"] == 6
        assert payload["nonpositive"] == 2
        assert payload["min"] == -1.0
        assert payload["max"] == 5.0
        assert sum(count for _low, _high, count in payload["bins"]) == 4
        for low, high, _count in payload["bins"]:
            assert low < high

    def test_merge_is_bin_exact(self):
        first, second = LogHistogram(), LogHistogram()
        for value in (1e-9, 3e-9, 2e-3):
            first.observe(value)
        for value in (1e-9, 7.0, 0.0):
            second.observe(value)
        merged = LogHistogram()
        merged.merge_dict(first.to_dict())
        merged.merge_dict(second.to_dict())
        reference = LogHistogram()
        for value in (1e-9, 3e-9, 2e-3, 1e-9, 7.0, 0.0):
            reference.observe(value)
        assert merged.to_dict() == reference.to_dict()


class TestSpans:
    def test_nesting_and_exclusive_time(self):
        tel = Telemetry()
        with tel.span("root"):
            time.sleep(0.01)
            with tel.span("child.a"):
                time.sleep(0.01)
                with tel.span("grandchild"):
                    time.sleep(0.005)
            with tel.span("child.b"):
                time.sleep(0.01)
        assert tel.open_span_count == 0
        (root,) = tel.spans
        assert root.name == "root"
        assert [child.name for child in root.children] == ["child.a", "child.b"]
        (grandchild,) = root.children[0].children
        assert grandchild.name == "grandchild"
        # The invariant the profile table is built on: exclusive times over
        # the whole tree sum back to the root's wall time exactly.
        exclusive_sum = sum(span.exclusive_s for span in root.walk())
        assert exclusive_sum == pytest.approx(root.duration_s, rel=1e-9)
        assert root.exclusive_s == pytest.approx(
            root.duration_s - sum(c.duration_s for c in root.children)
        )

    def test_exception_seals_span_and_records_error(self):
        tel = Telemetry()
        with pytest.raises(ValueError):
            with tel.span("root"):
                with tel.span("failing"):
                    raise ValueError("boom")
        assert tel.open_span_count == 0
        (root,) = tel.spans
        failing = root.children[0]
        assert failing.attrs["error"] == "ValueError"
        assert root.attrs["error"] == "ValueError"
        assert failing.duration_s >= 0.0

    def test_span_record_dict_round_trip(self):
        record = SpanRecord(name="a", attrs={"k": 1}, start_s=0.5, duration_s=2.0)
        record.children.append(SpanRecord(name="b", duration_s=0.5, remote=True))
        record.children.append(SpanRecord(name="c", duration_s=0.25))
        rebuilt = SpanRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert rebuilt.name == "a"
        assert rebuilt.attrs == {"k": 1}
        assert [child.name for child in rebuilt.children] == ["b", "c"]
        assert rebuilt.children[0].remote is True
        # Remote children do not consume the parent's exclusive time.
        assert rebuilt.exclusive_s == pytest.approx(2.0 - 0.25)

    def test_aggregate_and_find(self):
        tel = Telemetry()
        for _ in range(3):
            with tel.span("outer"):
                with tel.span("inner"):
                    pass
        aggregates = {a.name: a for a in aggregate_spans(tel.spans)}
        assert aggregates["outer"].calls == 3
        assert aggregates["inner"].calls == 3
        assert find_span(tel.spans, "inner").name == "inner"
        assert find_span(tel.spans, "missing") is None
        assert total_wall_s(tel.spans) == pytest.approx(
            sum(span.duration_s for span in tel.spans)
        )


class TestMergeSnapshot:
    def test_merge_round_trip_through_json(self):
        worker = Telemetry()
        with worker.span("campaign.job", index=0):
            worker.count("solver.solves", 5)
            worker.observe("solver.residual_a", 1e-12)
            worker.gauge("crosstalk.fft_size", 64.0)
            worker.event("adaptive.batch", index=0)
        wire = json.loads(json.dumps(worker.snapshot()))

        host = Telemetry()
        host.count("solver.solves", 2)
        with host.span("campaign.run") as run_span:
            host.merge_snapshot(wire, remote=True)
        assert host.counters["solver.solves"] == 7.0
        assert host.histograms["solver.residual_a"].count == 1
        assert host.events["adaptive.batch"] == [{"index": 0}]
        (job,) = run_span.children
        assert job.name == "campaign.job"
        assert job.remote is True
        # A concurrent remote child never eats the host's exclusive time.
        assert run_span.exclusive_s == pytest.approx(run_span.duration_s)

    def test_serial_merge_consumes_exclusive_time(self):
        worker = Telemetry()
        with worker.span("campaign.job"):
            time.sleep(0.005)
        host = Telemetry()
        with host.span("campaign.run") as run_span:
            # Sleep well past the worker's span: exclusive_s clamps at zero,
            # so the host span must outlast the merged child even when the
            # worker's sleep overshoots under scheduler load.
            time.sleep(0.02)
            host.merge_snapshot(worker.snapshot(), remote=False)
        (job,) = run_span.children
        assert job.remote is False
        assert run_span.exclusive_s == pytest.approx(
            run_span.duration_s - job.duration_s
        )

    def test_merge_path_respects_event_cap_dropping_oldest(self):
        """Merging a large remote event series keeps only the newest entries."""
        remote = Telemetry()
        for index in range(MAX_EVENTS_PER_NAME):
            remote.event("adaptive.batch", index=index)
        wire = json.loads(json.dumps(remote.snapshot()))

        host = Telemetry()
        for index in range(100):
            host.event("adaptive.batch", index=-1 - index)
        host.merge_snapshot(wire, remote=True)
        series = host.events["adaptive.batch"]
        assert len(series) == MAX_EVENTS_PER_NAME
        # The host's 100 pre-merge events were the oldest, so the cap dropped
        # them (plus none of the remote tail): the merged series is exactly
        # the remote run's events, newest-aligned.
        assert series[0]["index"] == 0
        assert series[-1]["index"] == MAX_EVENTS_PER_NAME - 1

    def test_multiprocessing_campaign_merge(self, tmp_path):
        """Pool workers' span trees and counters fold back into the parent."""
        spec = CampaignSpec(**CAMPAIGN_SPEC)
        runner = CampaignRunner(spec, cache=None, workers=2)
        with telemetry_capture() as tel:
            report = runner.run()
        assert report.counts()["ok"] == 4
        snapshot = tel.snapshot()
        assert snapshot["open_spans"] == 0
        # Worker-side physics counters crossed the process boundary.
        assert snapshot["counters"]["solver.solves"] > 0
        assert snapshot["counters"]["campaign.cache.misses"] == 4.0
        roots = spans_from_snapshot(snapshot)
        run_span = find_span(roots, "campaign.run")
        jobs = [span for span in run_span.walk() if span.name == "campaign.job"]
        assert len(jobs) == 4
        assert all(job.remote for job in jobs)
        assert {job.attrs["index"] for job in jobs} == {0, 1, 2, 3}
        assert "campaign.worker_utilization" in snapshot["gauges"]


class TestDisabledOverhead:
    def test_disabled_guard_cost_is_under_two_percent_of_a_solve(self):
        """The opt-out contract: telemetry off must cost <2% of a 64x64 solve.

        The per-solve instrumentation is a handful of guard sequences
        (``get_telemetry()`` + one attribute check); measure the guard cost
        directly and bound a generous 100-guards-per-solve budget against
        the measured solve time.
        """
        disable_telemetry()
        geometry = CrossbarGeometry(rows=64, columns=64)
        netlist = build_crossbar_netlist(geometry, WireParameters())
        states = DeviceStateArrays(geometry.rows, geometry.columns)
        states.x[...] = 0.5
        states.temperature_k[...] = 300.0
        bias = BiasPattern(
            row_voltages_v={i: (0.6 if i == 1 else 0.0) for i in range(geometry.rows)},
            column_voltages_v={j: 0.0 for j in range(geometry.columns)},
            label="overhead",
        )
        solver = CrossbarSolver(netlist, JartVcmModel())
        solver.solve(bias, states)  # warm-up: structure + first factorisation

        loops = 3
        start = time.perf_counter()
        for _ in range(loops):
            solver.solve(bias, states)
        solve_s = (time.perf_counter() - start) / loops

        guards = 10_000
        start = time.perf_counter()
        for _ in range(guards):
            tel = get_telemetry()
            if tel.enabled:  # pragma: no cover - telemetry is off here
                tel.count("never")
        guard_s = (time.perf_counter() - start) / guards

        overhead = (100 * guard_s) / solve_s
        assert overhead < 0.02, (
            f"disabled-telemetry guard overhead {overhead:.2%} of a "
            f"{solve_s * 1e3:.1f}ms solve exceeds the 2% budget"
        )


class TestInstrumentation:
    def test_solver_counters_and_residual_histogram(self):
        geometry = CrossbarGeometry(rows=3, columns=3)
        netlist = build_crossbar_netlist(geometry, WireParameters())
        states = DeviceStateArrays(geometry.rows, geometry.columns)
        states.x[...] = 0.5
        states.temperature_k[...] = 300.0
        bias = BiasPattern(
            row_voltages_v={0: 0.6, 1: 0.0, 2: 0.0},
            column_voltages_v={0: 0.0, 1: 0.0, 2: 0.0},
            label="unit",
        )
        with telemetry_capture() as tel:
            solver = CrossbarSolver(netlist, JartVcmModel())
            solver.solve(bias, states)
            solver.solve(bias, states)
        snapshot = tel.snapshot()
        counters = snapshot["counters"]
        assert counters["solver.solves"] == 2.0
        assert counters["solver.iterations"] >= 2.0
        assert counters["solver.jacobian.structure_builds"] == 1.0
        assert counters[f"solver.linear.{solver.last_backend}"] == counters["solver.iterations"]
        assert counters["solver.warm_starts"] == 1.0
        assert snapshot["histograms"]["solver.residual_a"]["count"] == 2

    def test_montecarlo_engine_counters_and_manifest(self):
        from repro.config import AttackConfig, SimulationConfig
        from repro.montecarlo import MonteCarloConfig, MonteCarloEngine

        engine = MonteCarloEngine(
            MonteCarloConfig(n_samples=4, seed=7, distributions=MC_SPEC["montecarlo"]["distributions"]),
            simulation=SimulationConfig.from_dict(MC_SPEC["simulation"]),
            attack=AttackConfig.from_dict(MC_SPEC["attack"]),
        )
        with telemetry_capture() as tel:
            result = engine.run()
        snapshot = tel.snapshot()
        assert snapshot["counters"]["mc.runs"] == 1.0
        assert snapshot["counters"]["mc.samples"] == 4.0
        assert find_span(spans_from_snapshot(snapshot), "mc.run") is not None
        manifest = engine.manifest(telemetry_snapshot=snapshot)
        assert manifest["kind"] == "montecarlo"
        assert manifest["seed"] == 7
        assert manifest["telemetry"]["counters"]["mc.runs"] == 1.0
        table = result.to_experiment_result(max_rows=2)
        assert table.metadata["manifest"]["kind"] == "montecarlo"

    def test_adaptive_sampler_batches_and_stop_reason(self):
        from repro.montecarlo import AdaptiveConfig, AdaptiveSampler

        rng = np.random.default_rng(0)

        def evaluate(index, n):
            return rng.uniform(size=n) < 0.5, None

        config = AdaptiveConfig(batch_size=32, n_max=64, target_half_width=1e-4)
        with telemetry_capture() as tel:
            outcome = AdaptiveSampler(config, evaluate).run()
        assert outcome.stop_reason == "n_max"
        counters = tel.snapshot()["counters"]
        assert counters["adaptive.batches"] == 2.0
        assert counters["adaptive.samples"] == 64.0
        assert counters["adaptive.stops.n_max"] == 1.0
        assert len(tel.events["adaptive.batch"]) == 2


class TestLoggingIdempotence:
    @pytest.fixture(autouse=True)
    def _clean_library_logger(self):
        logger = get_logger()
        saved = list(logger.handlers)
        saved_level = logger.level
        for handler in saved:
            logger.removeHandler(handler)
        repro_logging._console_handler = None
        yield
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
        repro_logging._console_handler = None
        for handler in saved:
            logger.addHandler(handler)
        logger.setLevel(saved_level)

    def test_repeated_configuration_keeps_one_handler(self):
        first = configure_console_logging(logging.INFO)
        assert len(first.handlers) == 1
        second = configure_console_logging(logging.DEBUG)
        third = configure_console_logging(logging.WARNING)
        assert second is third is first
        assert len(first.handlers) == 1
        # The managed handler retunes instead of stacking.
        assert first.handlers[0].level == logging.WARNING
        assert first.level == logging.WARNING

    def test_adopts_a_preexisting_stream_handler(self):
        logger = get_logger()
        existing = logging.StreamHandler()
        logger.addHandler(existing)
        configured = configure_console_logging(logging.DEBUG)
        assert configured.handlers == [existing]
        assert existing.level == logging.DEBUG

    def test_namespaced_child_loggers(self):
        assert get_logger("campaign.runner").name == "repro.campaign.runner"
        assert get_logger("montecarlo.engine").name == "repro.montecarlo.engine"


class TestDurationPreservation:
    def test_cached_campaign_records_keep_original_durations(self, tmp_path):
        spec = CampaignSpec(**CAMPAIGN_SPEC)
        cache = ResultCache(tmp_path / "cache")
        first = CampaignRunner(spec, cache=cache).run()
        originals = {record.index: record.duration_s for record in first.records}
        assert all(duration > 0.0 for duration in originals.values())
        assert first.compute_duration_s == pytest.approx(sum(originals.values()))

        second = CampaignRunner(spec, cache=cache).run()
        assert second.cached_count == 4
        for record in second.records:
            assert record.duration_s == pytest.approx(originals[record.index])
        assert second.compute_duration_s == pytest.approx(first.compute_duration_s)
        assert second.to_dict()["compute_duration_s"] == pytest.approx(
            first.compute_duration_s
        )

        status = CampaignRunner(spec, cache=cache).status()
        assert status["cached"] == 4
        assert status["cached_duration_s"] == pytest.approx(first.compute_duration_s)

    def test_montecarlo_points_preserve_engine_duration(self, tmp_path):
        spec = CampaignSpec(**MC_SPEC)
        cache = ResultCache(tmp_path / "cache")
        first = CampaignRunner(spec, cache=cache).run()
        for record in first.records:
            assert record.result["engine_duration_s"] > 0.0
        second = CampaignRunner(spec, cache=cache).run()
        assert second.cached_count == len(second.records)
        for before, after in zip(first.records, second.records):
            assert after.duration_s == pytest.approx(before.duration_s)


class TestManifest:
    def test_manifest_contents(self):
        with telemetry_capture() as tel:
            tel.count("solver.solves", 3)
            with tel.span("root"):
                pass
        manifest = build_manifest(
            seed=42,
            backends={"solver": "sparse"},
            telemetry_snapshot=tel.snapshot(),
            extra={"kind": "unit"},
        )
        assert manifest["schema"] == 1
        assert manifest["seed"] == 42
        assert manifest["backends"] == {"solver": "sparse"}
        assert manifest["versions"]["repro"]
        assert manifest["versions"]["numpy"]
        assert manifest["python"]
        assert manifest["platform"]
        assert manifest["telemetry"]["counters"]["solver.solves"] == 3.0
        assert manifest["telemetry"]["open_spans"] == 0
        assert manifest["telemetry"]["root_spans"] == ["root"]
        json.dumps(manifest)  # must serialise

    def test_manifest_without_scipy(self, monkeypatch):
        """A scipy-less install still builds a full manifest (scipy: null)."""
        monkeypatch.setitem(sys.modules, "scipy", None)
        manifest = build_manifest(seed=1)
        assert manifest["versions"]["scipy"] is None
        assert manifest["versions"]["numpy"]
        assert manifest["versions"]["repro"]
        json.dumps(manifest)  # must serialise with the null version


class TestCliSurface:
    def test_profile_requires_a_command(self, capsys):
        assert main(["profile"]) == 1
        assert "needs a command" in capsys.readouterr().err

    def test_profile_rejects_itself(self, capsys):
        assert main(["profile", "profile", "version"]) == 1
        assert "cannot profile itself" in capsys.readouterr().err

    def test_profile_mc_run_prints_report_and_writes_snapshot(
        self, mc_spec_path, tmp_path, capsys
    ):
        out = tmp_path / "telemetry.json"
        code = main([
            "profile", "--output", str(out),
            "mc", "run", str(mc_spec_path), "--mode", "full_array", "--rows", "2",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "cli.mc.run" in text
        assert "mc.run" in text
        assert "%wall" in text
        assert "solver.solves" in text

        snapshot = json.loads(out.read_text())
        assert snapshot["open_spans"] == 0
        assert snapshot["counters"]["solver.iterations"] > 0
        assert snapshot["counters"]["mc.batches"] >= 1
        assert snapshot["manifest"]["schema"] == 1
        # Acceptance criterion: per-phase exclusive times sum back to the
        # total wall time within 5%.
        roots = spans_from_snapshot(snapshot)
        wall = total_wall_s(roots)
        exclusive = sum(
            span.exclusive_s
            for root in roots
            for span in root.walk()
            if not span.remote
        )
        assert exclusive == pytest.approx(wall, rel=0.05)
        # Telemetry deactivates again once the profiled command finishes.
        assert telemetry_enabled() is False

    def test_telemetry_flag_on_campaign_run(self, tmp_path, capsys):
        spec_path = tmp_path / "campaign.json"
        CampaignSpec(**CAMPAIGN_SPEC).to_json(spec_path)
        out = tmp_path / "telemetry.json"
        code = main([
            "campaign", "run", str(spec_path), "--no-cache", "--telemetry", str(out),
        ])
        assert code == 0
        assert f"wrote telemetry snapshot to {out}" in capsys.readouterr().out
        snapshot = json.loads(out.read_text())
        assert snapshot["counters"]["campaign.points"] == 4.0
        assert snapshot["counters"]["solver.solves"] > 0
        assert snapshot["open_spans"] == 0
        assert snapshot["manifest"]["versions"]["repro"]
        roots = spans_from_snapshot(snapshot)
        assert find_span(roots, "cli.campaign.run") is not None
        assert find_span(roots, "campaign.job") is not None

    def test_render_report_flags_open_spans(self):
        tel = Telemetry()
        span = tel.span("leaky")
        span.__enter__()
        report = render_report(tel.snapshot())
        assert "still open" in report

    def test_write_snapshot_creates_parent_directories(self, tmp_path):
        target = tmp_path / "nested" / "deep" / "snap.json"
        write_snapshot(target, {"counters": {}})
        assert json.loads(target.read_text()) == {"counters": {}}

"""Tests for the finite-volume heat and current-continuity solvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CrossbarGeometry, ThermalSolverConfig
from repro.errors import GeometryError
from repro.thermal import HeatSolver, build_voxel_model


@pytest.fixture(scope="module")
def solver():
    geometry = CrossbarGeometry(
        rows=3, columns=3, substrate_thickness_m=80e-9, insulator_thickness_m=40e-9
    )
    config = ThermalSolverConfig(lateral_resolution_m=30e-9, vertical_resolution_m=30e-9)
    model = build_voxel_model(geometry, config)
    return HeatSolver(model, ambient_temperature_k=300.0)


class TestHeatSolve:
    def test_no_power_means_ambient_everywhere(self, solver):
        field = solver.solve({})
        assert np.allclose(field.values_k, 300.0, atol=1e-6)

    def test_heated_cell_is_hottest(self, solver):
        field = solver.solve({(1, 1): 100e-6})
        temperature_map = field.cell_temperature_map()
        assert temperature_map[1, 1] == temperature_map.max()
        assert field.cell_temperature((1, 1)) > 320.0

    def test_all_cells_above_ambient(self, solver):
        field = solver.solve({(1, 1): 100e-6})
        assert np.all(field.rise_map() > 0.0)

    def test_linearity_in_power(self, solver):
        low = solver.solve({(1, 1): 50e-6}).rise_map()
        high = solver.solve({(1, 1): 100e-6}).rise_map()
        assert np.allclose(high, 2.0 * low, rtol=1e-6)

    def test_superposition_of_two_sources(self, solver):
        combined = solver.solve({(0, 0): 60e-6, (2, 2): 60e-6}).rise_map()
        first = solver.solve({(0, 0): 60e-6}).rise_map()
        second = solver.solve({(2, 2): 60e-6}).rise_map()
        assert np.allclose(combined, first + second, rtol=1e-6)

    def test_symmetry_of_centre_source(self, solver):
        temperature_map = solver.solve({(1, 1): 100e-6}).cell_temperature_map()
        assert temperature_map[1, 0] == pytest.approx(temperature_map[1, 2], rel=0.02)
        assert temperature_map[0, 1] == pytest.approx(temperature_map[2, 1], rel=0.02)

    def test_negative_power_rejected(self, solver):
        with pytest.raises(GeometryError):
            solver.solve({(1, 1): -1e-6})

    def test_unknown_cell_rejected(self, solver):
        with pytest.raises(GeometryError):
            solver.solve({(7, 7): 1e-6})

    def test_same_line_neighbour_hotter_than_diagonal(self, solver):
        temperature_map = solver.solve({(1, 1): 100e-6}).cell_temperature_map()
        same_line = temperature_map[1, 2]
        diagonal = temperature_map[2, 2]
        assert same_line > diagonal

    def test_max_temperature_at_least_cell_probe(self, solver):
        field = solver.solve({(1, 1): 100e-6})
        assert field.max_temperature_k >= field.cell_temperature((1, 1))


class TestPotentialSolve:
    def test_contact_current_matches_power(self, solver):
        solution = solver.solve_potential((1, 1), 1.0)
        assert solution.total_current_a > 0.0
        assert solution.total_power_w == pytest.approx(
            solution.total_current_a * 1.0, rel=0.05
        )

    def test_potential_bounded_by_contacts(self, solver):
        solution = solver.solve_potential((1, 1), 1.0)
        active = solver.model.sigma > 0
        assert solution.potential_v[active].max() <= 1.0 + 1e-6
        assert solution.potential_v[active].min() >= -1e-6

    def test_joule_heating_non_negative(self, solver):
        solution = solver.solve_potential((1, 1), 1.0)
        assert np.all(solution.joule_heating_w >= -1e-18)

    def test_electrothermal_couples_heating_to_temperature(self, solver):
        temperature, potential = solver.solve_electrothermal((1, 1), 1.0)
        assert temperature.cell_temperature((1, 1)) > 310.0
        assert potential.total_power_w > 0.0

    def test_current_scales_with_voltage(self, solver):
        low = solver.solve_potential((1, 1), 0.5).total_current_a
        high = solver.solve_potential((1, 1), 1.0).total_current_a
        assert high == pytest.approx(2.0 * low, rel=1e-3)

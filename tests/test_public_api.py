"""Tests of the top-level public API surface.

A downstream user should be able to rely on `repro`'s top-level exports and
on every subpackage re-exporting the names listed in its ``__all__``.
"""

from __future__ import annotations

import importlib

import pytest

import repro


SUBPACKAGES = [
    "repro.devices",
    "repro.thermal",
    "repro.circuit",
    "repro.attack",
    "repro.memory",
    "repro.defense",
    "repro.experiments",
    "repro.utils",
    "repro.obs",
    "repro.faults",
]


def test_version_is_exposed():
    assert repro.__version__ == "1.9.0"


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists {name} but it is not importable"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_all_entries_resolve(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} needs a module docstring"
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists {name} but it is missing"


def test_headline_entry_point_signature():
    from repro import hammer_once

    result = hammer_once(pulse_length_s=100e-9, max_pulses=100_000)
    assert result.flipped
    assert result.pattern_name == "single"


def test_every_public_class_has_docstrings():
    from repro.attack.neurohammer import NeuroHammer
    from repro.circuit.crossbar import CrossbarArray
    from repro.devices.jart_vcm import JartVcmModel
    from repro.thermal.fdm import HeatSolver

    for cls in (NeuroHammer, CrossbarArray, JartVcmModel, HeatSolver):
        assert cls.__doc__
        public_methods = [
            getattr(cls, name)
            for name in dir(cls)
            if not name.startswith("_") and callable(getattr(cls, name))
        ]
        undocumented = [m for m in public_methods if not getattr(m, "__doc__", None)]
        assert not undocumented, f"{cls.__name__} has undocumented public methods: {undocumented}"


def test_error_hierarchy():
    from repro.errors import (
        AddressingError,
        AttackError,
        ConfigurationError,
        ConvergenceError,
        DeviceModelError,
        EccError,
        ExperimentError,
        GeometryError,
        ReproError,
    )

    for exc in (
        ConfigurationError,
        DeviceModelError,
        ConvergenceError,
        GeometryError,
        AttackError,
        AddressingError,
        EccError,
        ExperimentError,
    ):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` works in fully offline environments where the
``wheel`` package (needed for PEP 660 editable installs) is unavailable.
"""

from setuptools import setup

setup()

"""Packaging for the NeuroHammer reproduction library.

Kept as a classic ``setup.py`` (rather than ``pyproject.toml``) so that
``pip install -e .`` works in fully offline environments where the ``wheel``
package (needed for PEP 660 editable installs) is unavailable.
"""

from pathlib import Path

from setuptools import find_packages, setup

README = Path(__file__).with_name("README.md")

setup(
    name="neurohammer-repro",
    version="1.9.0",
    description=(
        "Reproduction of 'NeuroHammer: Inducing Bit-Flips in Memristive "
        "Crossbar Memories' (DATE 2022): electro-thermal crossbar simulation, "
        "attack engine, campaign runner and figure regeneration."
    ),
    long_description=README.read_text(encoding="utf-8") if README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    # scipy powers the sparse nodal solver; the solver degrades gracefully to
    # its dense backend when scipy is unavailable.
    install_requires=["numpy>=1.20", "scipy>=1.8"],
    extras_require={
        "test": ["pytest>=7", "pytest-benchmark>=4", "hypothesis>=6"],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3 :: Only",
        "Topic :: Scientific/Engineering",
        "Topic :: Security",
    ],
)

"""Console entry point for the ``repro`` script.

The implementation lives in :mod:`repro.campaign.cli`; this module only
anchors the ``repro = repro.cli:main`` console-script declared in
``setup.py`` and the ``python -m repro`` runner.
"""

from .campaign.cli import build_parser, main

__all__ = ["build_parser", "main"]

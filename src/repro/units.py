"""Small unit-conversion helpers.

The simulator works internally in SI units (metres, seconds, volts, amperes,
kelvin).  The paper, however, quotes most quantities in engineering units
(nanometres, nanoseconds, micro-amperes).  These helpers keep conversions
explicit and readable at call sites, e.g. ``pulse_length=ns(50)``.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Length
# ---------------------------------------------------------------------------


def nm(value: float) -> float:
    """Convert nanometres to metres."""
    return value * 1e-9


def um(value: float) -> float:
    """Convert micrometres to metres."""
    return value * 1e-6


def to_nm(value_m: float) -> float:
    """Convert metres to nanometres."""
    return value_m * 1e9


# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------


def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * 1e-9


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * 1e-6


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * 1e-3


def to_ns(value_s: float) -> float:
    """Convert seconds to nanoseconds."""
    return value_s * 1e9


def to_us(value_s: float) -> float:
    """Convert seconds to microseconds."""
    return value_s * 1e6


# ---------------------------------------------------------------------------
# Current / power
# ---------------------------------------------------------------------------


def uA(value: float) -> float:
    """Convert micro-amperes to amperes."""
    return value * 1e-6


def to_uA(value_a: float) -> float:
    """Convert amperes to micro-amperes."""
    return value_a * 1e6


def uW(value: float) -> float:
    """Convert micro-watts to watts."""
    return value * 1e-6


def to_uW(value_w: float) -> float:
    """Convert watts to micro-watts."""
    return value_w * 1e6


# ---------------------------------------------------------------------------
# Temperature
# ---------------------------------------------------------------------------


def celsius_to_kelvin(value_c: float) -> float:
    """Convert degrees Celsius to kelvin."""
    return value_c + 273.15


def kelvin_to_celsius(value_k: float) -> float:
    """Convert kelvin to degrees Celsius."""
    return value_k - 273.15

"""Thermal resistance-network model of the crossbar (fast mid-fidelity path).

Between the calibrated analytic kernel and the full finite-volume solver sits
a classic compact thermal model: every cell is a node, connected to its
same-line neighbours through the electrode metal, to its diagonal neighbours
through the oxide, and to the heat-sinking substrate through a vertical
resistance.  Injecting the aggressor's dissipated power and solving the
linear network yields the temperature rise of every cell, from which alpha
values follow directly.

This model is useful for large arrays where voxelising the full stack would
be wasteful, and as an independent cross-check of the other two paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from ..config import CrossbarGeometry
from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K
from ..errors import ConfigurationError
from .alpha import AlphaExtractionResult

Cell = Tuple[int, int]


@dataclass
class ThermalNetworkParameters:
    """Lumped thermal conductances of the crossbar network.

    The defaults are chosen so that the network reproduces the same headline
    operating point as the calibrated analytic kernel: a centre cell
    dissipating ≈300 uW rises by ≈650 K and its same-line neighbours receive
    roughly 11-12 % of that rise.
    """

    #: Conductance from each cell to the substrate heat sink [W/K].
    sink_conductance_w_per_k: float = 4.6e-7
    #: Conductance between neighbouring cells sharing an electrode line [W/K].
    line_conductance_w_per_k: float = 6.0e-8
    #: Conductance between diagonal neighbours through the oxide [W/K].
    oxide_conductance_w_per_k: float = 3.6e-8
    #: Reference pitch at which the lateral conductances are specified [m].
    reference_pitch_m: float = 100e-9

    def __post_init__(self) -> None:
        for name in ("sink_conductance_w_per_k", "line_conductance_w_per_k", "oxide_conductance_w_per_k"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.reference_pitch_m <= 0:
            raise ConfigurationError("reference_pitch_m must be positive")

    def scaled_line_conductance(self, pitch_m: float) -> float:
        """Lateral line conductance scaled inversely with the pitch."""
        return self.line_conductance_w_per_k * self.reference_pitch_m / pitch_m

    def scaled_oxide_conductance(self, pitch_m: float) -> float:
        """Lateral oxide conductance scaled inversely with the pitch."""
        return self.oxide_conductance_w_per_k * self.reference_pitch_m / pitch_m


class ThermalResistanceNetwork:
    """Linear thermal network over the crossbar cells."""

    def __init__(
        self,
        geometry: CrossbarGeometry = None,
        parameters: ThermalNetworkParameters = None,
        ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    ):
        self.geometry = geometry if geometry is not None else CrossbarGeometry()
        self.parameters = parameters if parameters is not None else ThermalNetworkParameters()
        self.ambient_temperature_k = ambient_temperature_k
        self._conductance_matrix = self._build_matrix()

    # -- assembly ------------------------------------------------------------

    def _index(self, cell: Cell) -> int:
        return cell[0] * self.geometry.columns + cell[1]

    def _build_matrix(self) -> np.ndarray:
        g = self.geometry
        p = self.parameters
        n = g.cell_count
        matrix = np.zeros((n, n))
        pitch = g.pitch_m
        g_line = p.scaled_line_conductance(pitch)
        g_oxide = p.scaled_oxide_conductance(pitch)
        for row, column in g.iter_cells():
            i = self._index((row, column))
            matrix[i, i] += p.sink_conductance_w_per_k
            neighbours = (
                ((row, column + 1), g_line),
                ((row + 1, column), g_line),
                ((row + 1, column + 1), g_oxide),
                ((row + 1, column - 1), g_oxide),
            )
            for (nr, nc), conductance in neighbours:
                if 0 <= nr < g.rows and 0 <= nc < g.columns:
                    j = self._index((nr, nc))
                    matrix[i, i] += conductance
                    matrix[j, j] += conductance
                    matrix[i, j] -= conductance
                    matrix[j, i] -= conductance
        return matrix

    # -- solving ---------------------------------------------------------------

    def temperature_rises(self, power_sources_w: Mapping[Cell, float]) -> np.ndarray:
        """Solve for per-cell temperature rises above ambient [K]."""
        g = self.geometry
        rhs = np.zeros(g.cell_count)
        for cell, power in power_sources_w.items():
            g.validate_cell(*cell)
            if power < 0:
                raise ConfigurationError("power injections must be non-negative")
            rhs[self._index(tuple(cell))] += power
        rises = np.linalg.solve(self._conductance_matrix, rhs)
        return rises.reshape(g.rows, g.columns)

    def temperature_map(self, power_sources_w: Mapping[Cell, float]) -> np.ndarray:
        """Absolute cell temperatures [K]."""
        return self.temperature_rises(power_sources_w) + self.ambient_temperature_k

    def extract_alpha_values(
        self,
        selected_cell: Cell = None,
        powers_w: Tuple[float, ...] = (60e-6, 120e-6, 180e-6, 240e-6, 300e-6),
    ) -> AlphaExtractionResult:
        """Alpha extraction identical in structure to the finite-volume path."""
        g = self.geometry
        if selected_cell is None:
            selected_cell = g.centre_cell()
        g.validate_cell(*selected_cell)
        maps = [self.temperature_map({selected_cell: p}) for p in powers_w]
        powers = np.asarray(powers_w)
        stacked = np.stack(maps)
        selected_series = stacked[:, selected_cell[0], selected_cell[1]]
        slope, offset = np.polyfit(powers, selected_series, 1)
        alpha = np.zeros((g.rows, g.columns))
        neighbour_r2 = np.ones((g.rows, g.columns))
        for row, column in g.iter_cells():
            cell_slope, _ = np.polyfit(powers, stacked[:, row, column], 1)
            alpha[row, column] = cell_slope / slope
        alpha[selected_cell[0], selected_cell[1]] = 1.0
        return AlphaExtractionResult(
            selected_cell=tuple(selected_cell),
            thermal_resistance_k_per_w=float(slope),
            fitted_ambient_k=float(offset),
            alpha=alpha,
            r_squared=1.0,
            neighbour_r_squared=neighbour_r2,
            sweep_powers_w=powers,
            sweep_temperatures_k=maps,
        )

    def effective_thermal_resistance(self, cell: Cell = None) -> float:
        """R_th seen by a single cell injecting power into the network [K/W]."""
        g = self.geometry
        if cell is None:
            cell = g.centre_cell()
        rises = self.temperature_rises({cell: 1.0})
        return float(rises[cell[0], cell[1]])

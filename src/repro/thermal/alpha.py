"""Extraction of thermal-crosstalk coefficients (alpha values).

The paper characterises thermal crosstalk by sweeping the dissipated power of
the selected cell and fitting, per cell, the linear relations

    T(P_LRS)    = T0 + Rth * P_LRS                 (Eq. 3, selected cell)
    T_ij(P_LRS) = T0 + Rth * P_LRS * alpha_ij      (Eq. 4, neighbours)

This module performs that sweep on top of :class:`repro.thermal.fdm.HeatSolver`
and returns the fitted thermal resistance and the alpha matrix that the
circuit-level crosstalk hub consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExperimentError
from .fdm import HeatSolver, TemperatureField

Cell = Tuple[int, int]


@dataclass
class LinearFit:
    """Least-squares fit of T = offset + slope * P."""

    slope: float
    offset: float
    r_squared: float


def _linear_fit(power_w: np.ndarray, temperature_k: np.ndarray) -> LinearFit:
    if len(power_w) < 2:
        raise ExperimentError("alpha extraction needs at least two sweep points")
    slope, offset = np.polyfit(power_w, temperature_k, 1)
    predicted = offset + slope * power_w
    residual = np.sum((temperature_k - predicted) ** 2)
    total = np.sum((temperature_k - temperature_k.mean()) ** 2)
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return LinearFit(float(slope), float(offset), float(r_squared))


@dataclass
class AlphaExtractionResult:
    """Result of an alpha-value extraction sweep for one selected cell."""

    selected_cell: Cell
    #: Thermal resistance of the selected cell [K/W] (Eq. 3 fit).
    thermal_resistance_k_per_w: float
    #: Ambient temperature recovered from the Eq. 3 fit intercept [K].
    fitted_ambient_k: float
    #: (rows x columns) matrix of alpha values; the selected cell holds 1.0.
    alpha: np.ndarray
    #: Goodness-of-fit of the selected-cell regression.
    r_squared: float
    #: Goodness-of-fit per neighbouring cell.
    neighbour_r_squared: np.ndarray
    #: Power values of the sweep [W].
    sweep_powers_w: np.ndarray
    #: Cell temperature maps of the sweep, one per power point.
    sweep_temperatures_k: List[np.ndarray]

    def alpha_of(self, cell: Cell) -> float:
        """Alpha value of a specific cell."""
        return float(self.alpha[cell[0], cell[1]])


def extract_alpha_values(
    solver: HeatSolver,
    selected_cell: Optional[Cell] = None,
    powers_w: Optional[Sequence[float]] = None,
    max_power_w: float = 320e-6,
    points: int = 5,
) -> AlphaExtractionResult:
    """Run the power sweep of Sec. IV-A and fit Rth and the alpha values.

    Args:
        solver: Heat solver built on the crossbar voxel model.
        selected_cell: Cell whose dissipation is swept; defaults to the centre
            cell as in the paper.
        powers_w: Explicit sweep powers; if omitted a linear sweep from
            ``max_power_w / points`` to ``max_power_w`` is used (the paper
            realises this as a V_SET sweep of the LRS cell).
        max_power_w: Maximum dissipated power of the sweep.
        points: Number of sweep points.
    """
    geometry = solver.model.geometry
    if selected_cell is None:
        selected_cell = geometry.centre_cell()
    geometry.validate_cell(*selected_cell)

    if powers_w is None:
        if points < 2:
            raise ExperimentError("power sweep needs at least two points")
        powers_w = np.linspace(max_power_w / points, max_power_w, points)
    powers = np.asarray(list(powers_w), dtype=float)
    if np.any(powers <= 0):
        raise ExperimentError("sweep powers must be positive")

    maps: List[np.ndarray] = []
    for power in powers:
        field: TemperatureField = solver.solve({selected_cell: float(power)})
        maps.append(field.cell_temperature_map())

    stacked = np.stack(maps)  # (points, rows, columns)
    selected_series = stacked[:, selected_cell[0], selected_cell[1]]
    selected_fit = _linear_fit(powers, selected_series)
    if selected_fit.slope <= 0:
        raise ExperimentError("selected-cell temperature does not increase with power")

    rows, columns = geometry.rows, geometry.columns
    alpha = np.zeros((rows, columns))
    neighbour_r2 = np.zeros((rows, columns))
    for row in range(rows):
        for column in range(columns):
            series = stacked[:, row, column]
            fit = _linear_fit(powers, series)
            alpha[row, column] = fit.slope / selected_fit.slope
            neighbour_r2[row, column] = fit.r_squared
    alpha[selected_cell[0], selected_cell[1]] = 1.0

    return AlphaExtractionResult(
        selected_cell=tuple(selected_cell),
        thermal_resistance_k_per_w=selected_fit.slope,
        fitted_ambient_k=selected_fit.offset,
        alpha=alpha,
        r_squared=selected_fit.r_squared,
        neighbour_r_squared=neighbour_r2,
        sweep_powers_w=powers,
        sweep_temperatures_k=maps,
    )


def alpha_dictionary(result: AlphaExtractionResult) -> Dict[Cell, float]:
    """Flatten an extraction result into a {cell: alpha} dictionary."""
    out: Dict[Cell, float] = {}
    rows, columns = result.alpha.shape
    for row in range(rows):
        for column in range(columns):
            if (row, column) == result.selected_cell:
                continue
            out[(row, column)] = float(result.alpha[row, column])
    return out

"""Structured application of the crosstalk coupling (paper Eq. 5).

The crosstalk hub needs, per electrical solve, the map

    T_in(v) = sum_a alpha(a, v) * rise(a)

over every victim cell ``v``.  The seed implementation materialised the full
``(cells, cells)`` alpha table and computed a dense matvec — O(cells^2) memory
and time, which is 134 MB at 64x64 and a prohibitive ~34 GB at 256x256.  All
shipped coupling models are translation-invariant by construction, so the
table row for any aggressor is one fixed 2-D *kernel* shifted to the
aggressor's position and clipped at the array edges.  The sum above is then a
2-D convolution of the rise map with that kernel, which this module applies in

* O(N log N) time / O(N) memory through FFT convolution with a precomputed
  kernel spectrum and transform shape (:class:`FftCrosstalkOperator`),
* O(taps * N) time through direct shifted adds when the kernel is compact
  (:class:`StencilCrosstalkOperator`, e.g. the nearest-neighbour
  :class:`~repro.thermal.coupling.UniformCouplingModel`),
* the original dense matvec for genuinely non-stationary custom models
  (:class:`DenseCrosstalkOperator`), kept as an automatic fallback.

Edge clipping is exact, not approximate: the convolution zero-pads outside
the array, which is precisely the dense table's behaviour (cells outside the
array do not exist, and edge victims simply sum over fewer aggressors).

:func:`make_crosstalk_operator` selects the backend through the
:meth:`~repro.thermal.coupling.CouplingModel.kernel` capability probe: models
that can state their coupling as an offset kernel get the structured path,
anything else falls back to the dense table.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np

try:  # SciPy's pocketfft is faster and pads to 5-smooth sizes; optional.
    from scipy import fft as _fft_module

    _next_fast_len = _fft_module.next_fast_len
except Exception:  # pragma: no cover - exercised only on scipy-less installs
    _fft_module = np.fft

    def _next_fast_len(target: int, real: bool = True) -> int:
        return int(target)

from ..config import CrossbarGeometry
from ..errors import ConfigurationError
from ..obs import get_telemetry
from .coupling import CouplingModel

Cell = Tuple[int, int]

#: Kernels with at most this many non-zero taps are applied as a direct
#: stencil; larger kernels go through the FFT path.
STENCIL_MAX_TAPS = 32

#: Backend names accepted by :func:`make_crosstalk_operator`.
OPERATOR_BACKENDS = ("auto", "fft", "stencil", "dense")


class CrosstalkOperator(abc.ABC):
    """Applies the aggressor->victim coupling to a map of temperature rises."""

    #: Backend identifier ("fft", "stencil" or "dense").
    backend: str = "abstract"

    def __init__(self, coupling: CouplingModel):
        self.coupling = coupling
        self.geometry: CrossbarGeometry = coupling.geometry

    @abc.abstractmethod
    def apply(self, rises_k: np.ndarray) -> np.ndarray:
        """Per-victim additional temperature for a (rows, cols) rise map [K]."""

    @abc.abstractmethod
    def apply_single(self, victim: Cell, rises_k: np.ndarray) -> float:
        """Additional temperature of one victim cell [K] — O(cells), never
        materialises the full output map."""

    @abc.abstractmethod
    def alpha_between(self, aggressor: Cell, victim: Cell) -> float:
        """Coupling coefficient from aggressor to victim (0.0 on the diagonal,
        matching the zero-diagonal the hub historically applied)."""

    @property
    @abc.abstractmethod
    def state_bytes(self) -> int:
        """Memory held by the operator's alpha state (kernel or table)."""


class KernelCrosstalkOperator(CrosstalkOperator):
    """Base for operators backed by a full offset kernel.

    ``kernel[dr + rows - 1, dc + cols - 1]`` is the alpha value a victim at
    relative offset ``(dr, dc)`` receives; the centre (zero offset) is 0.0.
    """

    def __init__(self, coupling: CouplingModel, kernel: np.ndarray):
        super().__init__(coupling)
        rows, cols = self.geometry.rows, self.geometry.columns
        kernel = np.asarray(kernel, dtype=np.float64)
        if kernel.shape != (2 * rows - 1, 2 * cols - 1):
            raise ConfigurationError(
                f"offset kernel shape {kernel.shape} does not match the "
                f"{rows}x{cols} geometry (expected {(2 * rows - 1, 2 * cols - 1)})"
            )
        self.kernel = kernel.copy()
        self.kernel[rows - 1, cols - 1] = 0.0

    def alpha_between(self, aggressor: Cell, victim: Cell) -> float:
        rows, cols = self.geometry.rows, self.geometry.columns
        dr = victim[0] - aggressor[0]
        dc = victim[1] - aggressor[1]
        return float(self.kernel[dr + rows - 1, dc + cols - 1])

    def apply_single(self, victim: Cell, rises_k: np.ndarray) -> float:
        rows, cols = self.geometry.rows, self.geometry.columns
        vr, vc = victim
        # T_in(v) = sum_a K[v - a] * rise[a]; the kernel slice below holds
        # K[(vr - ar, vc - ac)] for ar, ac descending, hence the double flip.
        window = self.kernel[vr : vr + rows, vc : vc + cols][::-1, ::-1]
        return float(np.sum(window * rises_k))

    @property
    def state_bytes(self) -> int:
        return int(self.kernel.nbytes)


class FftCrosstalkOperator(KernelCrosstalkOperator):
    """O(N log N) convolution through precomputed rfft2 state.

    The kernel spectrum and the padded FFT shape are computed once at
    construction; each :meth:`apply` performs one forward and one inverse
    real FFT of the rise map.
    """

    backend = "fft"

    def __init__(self, coupling: CouplingModel, kernel: np.ndarray):
        super().__init__(coupling, kernel)
        rows, cols = self.geometry.rows, self.geometry.columns
        # A circular convolution of length >= 2N-1 per axis is exact for the
        # central (rows, cols) output block: the victim indices live at
        # n = v + (N-1) in [N-1, 2N-2] of the full linear convolution (support
        # [0, 3N-3]), and with L >= 2N-1 every alias n +- L falls outside
        # that support.  This halves the padded transform size versus the
        # full-linear (3N-2) padding.
        self._fft_shape = (_next_fast_len(2 * rows - 1), _next_fast_len(2 * cols - 1))
        self._kernel_fft = _fft_module.rfft2(self.kernel, s=self._fft_shape)
        self._out_slice = (slice(rows - 1, 2 * rows - 1), slice(cols - 1, 2 * cols - 1))

    def apply(self, rises_k: np.ndarray) -> np.ndarray:
        spectrum = _fft_module.rfft2(rises_k, s=self._fft_shape)
        spectrum *= self._kernel_fft
        full = _fft_module.irfft2(spectrum, s=self._fft_shape)
        return np.ascontiguousarray(full[self._out_slice])

    @property
    def state_bytes(self) -> int:
        return int(self.kernel.nbytes + self._kernel_fft.nbytes)


class StencilCrosstalkOperator(KernelCrosstalkOperator):
    """Direct shifted-add convolution for compact (few-tap) kernels.

    O(taps * N) with pure array slicing — for the four-tap nearest-neighbour
    kernel this beats the FFT path by a wide margin and allocates nothing
    beyond the output map.
    """

    backend = "stencil"

    def __init__(self, coupling: CouplingModel, kernel: np.ndarray):
        super().__init__(coupling, kernel)
        rows, cols = self.geometry.rows, self.geometry.columns
        taps_r, taps_c = np.nonzero(self.kernel)
        self._taps = [
            (int(tr) - (rows - 1), int(tc) - (cols - 1), float(self.kernel[tr, tc]))
            for tr, tc in zip(taps_r, taps_c)
        ]

    @property
    def taps(self) -> int:
        """Number of non-zero kernel entries."""
        return len(self._taps)

    def apply(self, rises_k: np.ndarray) -> np.ndarray:
        rows, cols = self.geometry.rows, self.geometry.columns
        out = np.zeros((rows, cols))
        for dr, dc, weight in self._taps:
            # Victim v receives weight * rise[v - (dr, dc)] wherever the
            # shifted source cell exists inside the array.
            src_r = slice(max(0, -dr), rows - max(0, dr))
            src_c = slice(max(0, -dc), cols - max(0, dc))
            dst_r = slice(max(0, dr), rows - max(0, -dr))
            dst_c = slice(max(0, dc), cols - max(0, -dc))
            out[dst_r, dst_c] += weight * rises_k[src_r, src_c]
        return out


class DenseCrosstalkOperator(CrosstalkOperator):
    """The seed dense alpha-table matvec, kept for non-stationary models.

    Custom :class:`~repro.thermal.coupling.CouplingModel` subclasses whose
    coupling genuinely depends on absolute position (``kernel()`` returns
    None) still get exact results at the original O(cells^2) cost.
    """

    backend = "dense"

    def __init__(self, coupling: CouplingModel):
        super().__init__(coupling)
        self._alpha = np.array(coupling.alpha_table(), dtype=np.float64)
        np.fill_diagonal(self._alpha, 0.0)
        self._columns = self.geometry.columns

    def apply(self, rises_k: np.ndarray) -> np.ndarray:
        shape = (self.geometry.rows, self.geometry.columns)
        return (self._alpha.T @ rises_k.ravel()).reshape(shape)

    def apply_single(self, victim: Cell, rises_k: np.ndarray) -> float:
        column = victim[0] * self._columns + victim[1]
        return float(self._alpha[:, column] @ rises_k.ravel())

    def alpha_between(self, aggressor: Cell, victim: Cell) -> float:
        a = aggressor[0] * self._columns + aggressor[1]
        v = victim[0] * self._columns + victim[1]
        return float(self._alpha[a, v])

    @property
    def state_bytes(self) -> int:
        return int(self._alpha.nbytes)


def make_crosstalk_operator(
    coupling: CouplingModel,
    backend: str = "auto",
    stencil_max_taps: int = STENCIL_MAX_TAPS,
) -> CrosstalkOperator:
    """Build the cheapest exact operator the coupling model supports.

    ``backend="auto"`` probes :meth:`CouplingModel.kernel`: stationary models
    get the stencil path when the kernel has at most ``stencil_max_taps``
    non-zero taps and the FFT path otherwise; models without a kernel fall
    back to the dense table.  Explicit ``"fft"``/``"stencil"`` backends raise
    if the model cannot state a kernel; ``"dense"`` always works.
    """
    operator = _build_crosstalk_operator(coupling, backend, stencil_max_taps)
    tel = get_telemetry()
    if tel.enabled:
        tel.count(f"crosstalk.operator.built.{operator.backend}")
        if isinstance(operator, FftCrosstalkOperator):
            tel.gauge("crosstalk.fft_size", float(np.prod(operator._fft_shape)))
        elif isinstance(operator, StencilCrosstalkOperator):
            tel.gauge("crosstalk.stencil_taps", float(operator.taps))
    return operator


def _build_crosstalk_operator(
    coupling: CouplingModel,
    backend: str,
    stencil_max_taps: int,
) -> CrosstalkOperator:
    if backend not in OPERATOR_BACKENDS:
        raise ConfigurationError(
            f"unknown crosstalk backend {backend!r}; expected one of {OPERATOR_BACKENDS}"
        )
    if backend == "dense":
        return DenseCrosstalkOperator(coupling)
    kernel = coupling.kernel()
    if kernel is None:
        if backend in ("fft", "stencil"):
            raise ConfigurationError(
                f"coupling model {type(coupling).__name__} does not provide an offset "
                f"kernel; the {backend!r} backend needs a translation-invariant model"
            )
        return DenseCrosstalkOperator(coupling)
    if backend == "fft":
        return FftCrosstalkOperator(coupling, kernel)
    if backend == "stencil":
        return StencilCrosstalkOperator(coupling, kernel)
    rows, cols = coupling.geometry.rows, coupling.geometry.columns
    centre_zeroed = np.asarray(kernel, dtype=np.float64).copy()
    centre_zeroed[rows - 1, cols - 1] = 0.0
    if np.count_nonzero(centre_zeroed) <= stencil_max_taps:
        return StencilCrosstalkOperator(coupling, kernel)
    return FftCrosstalkOperator(coupling, kernel)

"""Thermal substrate: crossbar electro-thermal simulation and crosstalk coefficients.

This package replaces the paper's COMSOL Multiphysics step.  It voxelises the
crossbar stack, solves the static heat-transfer and current-continuity
equations, extracts the thermal-crosstalk coefficients (alpha values,
Eq. 3/4) and packages them into coupling models consumed by the circuit-level
crosstalk hub (Eq. 5).
"""

from .alpha import AlphaExtractionResult, LinearFit, alpha_dictionary, extract_alpha_values
from .coupling import (
    AlphaMatrix,
    AnalyticCouplingModel,
    AnalyticCouplingParameters,
    CouplingModel,
    ExtractedCouplingModel,
    UniformCouplingModel,
    coupling_from_extraction,
)
from .fdm import HeatSolver, PotentialSolution, TemperatureField
from .geometry import (
    REGION_BOTTOM_ELECTRODE,
    REGION_FILAMENT,
    REGION_INSULATOR,
    REGION_NAMES,
    REGION_OXIDE,
    REGION_SUBSTRATE,
    REGION_TOP_ELECTRODE,
    CrossbarVoxelModel,
    GridAxis,
    build_voxel_model,
)
from .materials import (
    DEFAULT_STACK,
    HAFNIUM_OXIDE,
    PLATINUM,
    SILICON,
    SILICON_DIOXIDE,
    TITANIUM,
    TITANIUM_OXIDE,
    Material,
    MaterialStack,
    filament_material,
)
from .network import ThermalNetworkParameters, ThermalResistanceNetwork
from .operator import (
    OPERATOR_BACKENDS,
    STENCIL_MAX_TAPS,
    CrosstalkOperator,
    DenseCrosstalkOperator,
    FftCrosstalkOperator,
    KernelCrosstalkOperator,
    StencilCrosstalkOperator,
    make_crosstalk_operator,
)

__all__ = [
    "AlphaExtractionResult",
    "LinearFit",
    "alpha_dictionary",
    "extract_alpha_values",
    "AlphaMatrix",
    "AnalyticCouplingModel",
    "AnalyticCouplingParameters",
    "CouplingModel",
    "ExtractedCouplingModel",
    "UniformCouplingModel",
    "coupling_from_extraction",
    "HeatSolver",
    "PotentialSolution",
    "TemperatureField",
    "CrossbarVoxelModel",
    "GridAxis",
    "build_voxel_model",
    "REGION_SUBSTRATE",
    "REGION_INSULATOR",
    "REGION_BOTTOM_ELECTRODE",
    "REGION_OXIDE",
    "REGION_FILAMENT",
    "REGION_TOP_ELECTRODE",
    "REGION_NAMES",
    "Material",
    "MaterialStack",
    "MaterialStack",
    "DEFAULT_STACK",
    "filament_material",
    "SILICON",
    "SILICON_DIOXIDE",
    "HAFNIUM_OXIDE",
    "TITANIUM",
    "TITANIUM_OXIDE",
    "PLATINUM",
    "ThermalNetworkParameters",
    "ThermalResistanceNetwork",
    "CrosstalkOperator",
    "KernelCrosstalkOperator",
    "FftCrosstalkOperator",
    "StencilCrosstalkOperator",
    "DenseCrosstalkOperator",
    "make_crosstalk_operator",
    "OPERATOR_BACKENDS",
    "STENCIL_MAX_TAPS",
]

"""Thermal-crosstalk coefficient containers and the calibrated analytic model.

The circuit-level simulation consumes thermal crosstalk as *alpha values*: the
fraction of the aggressor's filament temperature rise that appears at a
neighbouring cell (paper Eq. 4).  This module provides

* :class:`CouplingModel` — an abstract source of alpha values,
* :class:`AnalyticCouplingModel` — a distance-decay kernel calibrated against
  the paper's Fig. 2a temperature matrix (fast default path),
* :class:`ExtractedCouplingModel` — alpha values taken from the finite-volume
  solver sweep (:mod:`repro.thermal.alpha`) or from the resistance-network
  model, assuming translation invariance of the kernel,
* :class:`AlphaMatrix` — a dense per-aggressor matrix view used by the
  crosstalk hub.

The analytic model captures the two features visible in Fig. 2a: cells that
share an electrode line with the aggressor couple more strongly (the metal
line is a good heat conductor) than diagonal cells that couple only through
the oxide/insulator, and the coupling decays with the centre-to-centre
distance.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..config import CrossbarGeometry
from ..errors import ConfigurationError, GeometryError
from .alpha import AlphaExtractionResult

Cell = Tuple[int, int]


class CouplingModel(abc.ABC):
    """Source of thermal-crosstalk coefficients for a crossbar geometry."""

    def __init__(self, geometry: CrossbarGeometry):
        self.geometry = geometry

    @abc.abstractmethod
    def alpha_between(self, aggressor: Cell, victim: Cell) -> float:
        """Alpha value describing how strongly ``aggressor`` heats ``victim``."""

    def alpha_table(self) -> np.ndarray:
        """Full ``(cells, cells)`` alpha table in row-major cell order.

        ``table[a, v]`` is ``alpha_between(cell_a, cell_v)`` (1.0 on the
        diagonal).  The default evaluates the scalar kernel pairwise; models
        with a closed-form kernel override this with a vectorized build —
        the crosstalk hub calls it once per crossbar, and the pairwise loop
        is the dominant construction cost for large arrays.
        """
        cells = list(self.geometry.iter_cells())
        count = len(cells)
        table = np.ones((count, count))
        for a_index, aggressor in enumerate(cells):
            for v_index, victim in enumerate(cells):
                if a_index != v_index:
                    table[a_index, v_index] = self.alpha_between(aggressor, victim)
        return table

    def matrix_for(self, aggressor: Cell) -> "AlphaMatrix":
        """Dense (rows x columns) alpha matrix for one aggressor cell."""
        g = self.geometry
        g.validate_cell(*aggressor)
        values = np.zeros((g.rows, g.columns))
        for cell in g.iter_cells():
            if cell == tuple(aggressor):
                values[cell] = 1.0
            else:
                values[cell] = self.alpha_between(aggressor, cell)
        return AlphaMatrix(aggressor=tuple(aggressor), values=values, geometry=g)


@dataclass
class AlphaMatrix:
    """Alpha values of every cell with respect to one aggressor."""

    aggressor: Cell
    values: np.ndarray
    geometry: CrossbarGeometry

    def alpha_of(self, victim: Cell) -> float:
        """Alpha value of a victim cell."""
        self.geometry.validate_cell(*victim)
        return float(self.values[victim[0], victim[1]])

    def hottest_neighbours(self, count: int = 4) -> Dict[Cell, float]:
        """The ``count`` most strongly coupled cells (excluding the aggressor)."""
        flat = []
        for cell in self.geometry.iter_cells():
            if cell == self.aggressor:
                continue
            flat.append((cell, float(self.values[cell])))
        flat.sort(key=lambda item: item[1], reverse=True)
        return dict(flat[:count])


@dataclass
class AnalyticCouplingParameters:
    """Parameters of the calibrated distance-decay coupling kernel.

    The defaults are calibrated so that, for the paper's 50 nm spacing
    (100 nm pitch), the cells sharing an electrode line with the aggressor
    receive ~11.5 % of its temperature rise and the diagonal cells ~7 %,
    matching the Fig. 2a temperature matrix (aggressor ≈947 K, same-line
    neighbours ≈373-375 K, diagonal neighbours ≈345-354 K at 300 K ambient).
    """

    #: Amplitude of the coupling along a shared electrode line.
    line_amplitude: float = 0.285
    #: Amplitude of the coupling through the oxide/insulator (no shared line).
    oxide_amplitude: float = 0.256
    #: Exponential decay length of the coupling [m].
    decay_length_m: float = 110e-9
    #: Hard upper bound keeping alpha physical even for extreme geometries.
    max_alpha: float = 0.95

    def __post_init__(self) -> None:
        if self.line_amplitude <= 0 or self.oxide_amplitude <= 0:
            raise ConfigurationError("coupling amplitudes must be positive")
        if self.decay_length_m <= 0:
            raise ConfigurationError("decay length must be positive")
        if not 0 < self.max_alpha < 1:
            raise ConfigurationError("max_alpha must be in (0, 1)")


class AnalyticCouplingModel(CouplingModel):
    """Calibrated exponential distance-decay crosstalk kernel."""

    def __init__(
        self,
        geometry: CrossbarGeometry = None,
        parameters: AnalyticCouplingParameters = None,
    ):
        super().__init__(geometry if geometry is not None else CrossbarGeometry())
        self.parameters = parameters if parameters is not None else AnalyticCouplingParameters()

    def alpha_between(self, aggressor: Cell, victim: Cell) -> float:
        if tuple(aggressor) == tuple(victim):
            return 1.0
        g = self.geometry
        g.validate_cell(*aggressor)
        g.validate_cell(*victim)
        p = self.parameters
        distance = g.cell_distance(tuple(aggressor), tuple(victim))
        shares_line = aggressor[0] == victim[0] or aggressor[1] == victim[1]
        amplitude = p.line_amplitude if shares_line else p.oxide_amplitude
        alpha = amplitude * float(np.exp(-distance / p.decay_length_m))
        return min(alpha, p.max_alpha)

    def alpha_table(self) -> np.ndarray:
        """Vectorized pairwise build of the full alpha table.

        Element-for-element identical to :meth:`alpha_between` but built from
        broadcast distance arithmetic, which turns the O(cells^2) Python loop
        of the generic fallback into a handful of array operations.
        """
        g = self.geometry
        p = self.parameters
        rows = np.arange(g.rows)
        cols = np.arange(g.columns)
        cell_rows = np.repeat(rows, g.columns)
        cell_cols = np.tile(cols, g.rows)
        dy = (cell_rows[:, None] - cell_rows[None, :]) * g.pitch_m
        dx = (cell_cols[:, None] - cell_cols[None, :]) * g.pitch_m
        distance = np.sqrt(dx * dx + dy * dy)
        shares_line = (cell_rows[:, None] == cell_rows[None, :]) | (
            cell_cols[:, None] == cell_cols[None, :]
        )
        amplitude = np.where(shares_line, p.line_amplitude, p.oxide_amplitude)
        table = np.minimum(amplitude * np.exp(-distance / p.decay_length_m), p.max_alpha)
        np.fill_diagonal(table, 1.0)
        return table


class ExtractedCouplingModel(CouplingModel):
    """Coupling model backed by a finite-volume alpha extraction.

    The extraction yields alpha values of every cell with respect to *one*
    selected aggressor.  Assuming translation invariance of the kernel (valid
    away from the array edges), the value for an arbitrary aggressor/victim
    pair is looked up by relative offset; offsets that fall outside the
    extracted window fall back to the most distant extracted value.
    """

    def __init__(self, geometry: CrossbarGeometry, extraction: AlphaExtractionResult):
        super().__init__(geometry)
        self.extraction = extraction
        self._by_offset: Dict[Tuple[int, int], float] = {}
        selected = extraction.selected_cell
        rows, columns = extraction.alpha.shape
        for row in range(rows):
            for column in range(columns):
                offset = (row - selected[0], column - selected[1])
                self._by_offset[offset] = float(extraction.alpha[row, column])
        self._fallback = min(self._by_offset.values())

    def alpha_between(self, aggressor: Cell, victim: Cell) -> float:
        if tuple(aggressor) == tuple(victim):
            return 1.0
        self.geometry.validate_cell(*aggressor)
        self.geometry.validate_cell(*victim)
        offset = (victim[0] - aggressor[0], victim[1] - aggressor[1])
        return self._by_offset.get(offset, self._fallback)


class UniformCouplingModel(CouplingModel):
    """Constant-alpha coupling to the four nearest neighbours only.

    Mainly used in tests and as a pedagogical worst-case/best-case bound.
    """

    def __init__(self, geometry: CrossbarGeometry, alpha: float = 0.1):
        super().__init__(geometry)
        if not 0 <= alpha < 1:
            raise ConfigurationError("alpha must be in [0, 1)")
        self.alpha = alpha

    def alpha_between(self, aggressor: Cell, victim: Cell) -> float:
        if tuple(aggressor) == tuple(victim):
            return 1.0
        dr = abs(aggressor[0] - victim[0])
        dc = abs(aggressor[1] - victim[1])
        return self.alpha if dr + dc == 1 else 0.0


def coupling_from_extraction(
    geometry: CrossbarGeometry, extraction: AlphaExtractionResult
) -> ExtractedCouplingModel:
    """Convenience constructor mirroring :class:`AnalyticCouplingModel`'s API."""
    if extraction.alpha.shape != (geometry.rows, geometry.columns):
        raise GeometryError("extraction result does not match the crossbar geometry")
    return ExtractedCouplingModel(geometry, extraction)

"""Thermal-crosstalk coefficient containers and the calibrated analytic model.

The circuit-level simulation consumes thermal crosstalk as *alpha values*: the
fraction of the aggressor's filament temperature rise that appears at a
neighbouring cell (paper Eq. 4).  This module provides

* :class:`CouplingModel` — an abstract source of alpha values,
* :class:`AnalyticCouplingModel` — a distance-decay kernel calibrated against
  the paper's Fig. 2a temperature matrix (fast default path),
* :class:`ExtractedCouplingModel` — alpha values taken from the finite-volume
  solver sweep (:mod:`repro.thermal.alpha`) or from the resistance-network
  model, assuming translation invariance of the kernel,
* :class:`AlphaMatrix` — a dense per-aggressor matrix view used by the
  crosstalk hub.

The analytic model captures the two features visible in Fig. 2a: cells that
share an electrode line with the aggressor couple more strongly (the metal
line is a good heat conductor) than diagonal cells that couple only through
the oxide/insulator, and the coupling decays with the centre-to-centre
distance.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..config import CrossbarGeometry
from ..errors import ConfigurationError, GeometryError
from .alpha import AlphaExtractionResult

Cell = Tuple[int, int]


class CouplingModel(abc.ABC):
    """Source of thermal-crosstalk coefficients for a crossbar geometry."""

    def __init__(self, geometry: CrossbarGeometry):
        self.geometry = geometry

    @abc.abstractmethod
    def alpha_between(self, aggressor: Cell, victim: Cell) -> float:
        """Alpha value describing how strongly ``aggressor`` heats ``victim``."""

    def kernel(self) -> Optional[np.ndarray]:
        """Offset kernel of a translation-invariant model, or None.

        A stationary model returns the full ``(2*rows - 1, 2*cols - 1)``
        array with ``kernel[dr + rows - 1, dc + cols - 1] ==
        alpha_between(a, a + (dr, dc))`` for every offset two in-array cells
        can realise; the centre entry (zero offset, the 1.0 self-coupling) is
        ignored by consumers and should be 0.0.  This is the capability probe
        of :func:`repro.thermal.operator.make_crosstalk_operator`: models
        returning None (the default, for couplings that depend on absolute
        position) are applied through the dense alpha table instead.
        """
        return None

    def alpha_table(self) -> np.ndarray:
        """Full ``(cells, cells)`` alpha table in row-major cell order.

        ``table[a, v]`` is ``alpha_between(cell_a, cell_v)`` (1.0 on the
        diagonal).  Stationary models are expanded from their offset
        :meth:`kernel` with one gather; only kernel-less custom models pay
        the pairwise Python loop.  Note the quadratic memory: the structured
        operator path never calls this for stationary models — it exists for
        the dense fallback and the equivalence test suite.
        """
        g = self.geometry
        kernel = self.kernel()
        if kernel is not None:
            cell_rows = np.repeat(np.arange(g.rows), g.columns)
            cell_cols = np.tile(np.arange(g.columns), g.rows)
            dr = cell_rows[None, :] - cell_rows[:, None] + g.rows - 1
            dc = cell_cols[None, :] - cell_cols[:, None] + g.columns - 1
            table = kernel[dr, dc]
            np.fill_diagonal(table, 1.0)
            return table
        cells = list(g.iter_cells())
        count = len(cells)
        table = np.ones((count, count))
        for a_index, aggressor in enumerate(cells):
            for v_index, victim in enumerate(cells):
                if a_index != v_index:
                    table[a_index, v_index] = self.alpha_between(aggressor, victim)
        return table

    def matrix_for(self, aggressor: Cell) -> "AlphaMatrix":
        """Dense (rows x columns) alpha matrix for one aggressor cell.

        Stationary models slice their offset kernel (one O(cells) copy);
        kernel-less models fall back to the per-cell loop.
        """
        g = self.geometry
        g.validate_cell(*aggressor)
        aggressor = tuple(aggressor)
        kernel = self.kernel()
        if kernel is not None:
            ar, ac = aggressor
            values = kernel[
                g.rows - 1 - ar : 2 * g.rows - 1 - ar,
                g.columns - 1 - ac : 2 * g.columns - 1 - ac,
            ].copy()
        else:
            values = np.zeros((g.rows, g.columns))
            for cell in g.iter_cells():
                if cell != aggressor:
                    values[cell] = self.alpha_between(aggressor, cell)
        values[aggressor] = 1.0
        return AlphaMatrix(aggressor=aggressor, values=values, geometry=g)


@dataclass
class AlphaMatrix:
    """Alpha values of every cell with respect to one aggressor."""

    aggressor: Cell
    values: np.ndarray
    geometry: CrossbarGeometry

    def alpha_of(self, victim: Cell) -> float:
        """Alpha value of a victim cell."""
        self.geometry.validate_cell(*victim)
        return float(self.values[victim[0], victim[1]])

    def hottest_neighbours(self, count: int = 4) -> Dict[Cell, float]:
        """The ``count`` most strongly coupled cells (excluding the aggressor).

        Selects with :func:`numpy.argpartition` (O(cells) instead of a full
        Python sort) and orders only the selected ``count`` entries.
        """
        columns = self.values.shape[1]
        flat = self.values.ravel().astype(float, copy=True)
        flat[self.aggressor[0] * columns + self.aggressor[1]] = -np.inf
        count = min(count, flat.size - 1)
        if count <= 0:
            return {}
        top = np.argpartition(flat, -count)[-count:]
        top = top[np.argsort(flat[top])[::-1]]
        return {
            (int(index // columns), int(index % columns)): float(flat[index]) for index in top
        }


@dataclass
class AnalyticCouplingParameters:
    """Parameters of the calibrated distance-decay coupling kernel.

    The defaults are calibrated so that, for the paper's 50 nm spacing
    (100 nm pitch), the cells sharing an electrode line with the aggressor
    receive ~11.5 % of its temperature rise and the diagonal cells ~7 %,
    matching the Fig. 2a temperature matrix (aggressor ≈947 K, same-line
    neighbours ≈373-375 K, diagonal neighbours ≈345-354 K at 300 K ambient).
    """

    #: Amplitude of the coupling along a shared electrode line.
    line_amplitude: float = 0.285
    #: Amplitude of the coupling through the oxide/insulator (no shared line).
    oxide_amplitude: float = 0.256
    #: Exponential decay length of the coupling [m].
    decay_length_m: float = 110e-9
    #: Hard upper bound keeping alpha physical even for extreme geometries.
    max_alpha: float = 0.95

    def __post_init__(self) -> None:
        if self.line_amplitude <= 0 or self.oxide_amplitude <= 0:
            raise ConfigurationError("coupling amplitudes must be positive")
        if self.decay_length_m <= 0:
            raise ConfigurationError("decay length must be positive")
        if not 0 < self.max_alpha < 1:
            raise ConfigurationError("max_alpha must be in (0, 1)")


class AnalyticCouplingModel(CouplingModel):
    """Calibrated exponential distance-decay crosstalk kernel."""

    def __init__(
        self,
        geometry: CrossbarGeometry = None,
        parameters: AnalyticCouplingParameters = None,
    ):
        super().__init__(geometry if geometry is not None else CrossbarGeometry())
        self.parameters = parameters if parameters is not None else AnalyticCouplingParameters()

    def alpha_between(self, aggressor: Cell, victim: Cell) -> float:
        if tuple(aggressor) == tuple(victim):
            return 1.0
        g = self.geometry
        g.validate_cell(*aggressor)
        g.validate_cell(*victim)
        p = self.parameters
        distance = g.cell_distance(tuple(aggressor), tuple(victim))
        shares_line = aggressor[0] == victim[0] or aggressor[1] == victim[1]
        amplitude = p.line_amplitude if shares_line else p.oxide_amplitude
        alpha = amplitude * float(np.exp(-distance / p.decay_length_m))
        return min(alpha, p.max_alpha)

    def kernel(self) -> np.ndarray:
        """The closed-form exponential-decay kernel over all cell offsets.

        Built from broadcast distance arithmetic — O(cells) memory, a handful
        of array operations — and consumed by the structured crosstalk
        operator (and by the base-class :meth:`alpha_table`/:meth:`matrix_for`
        expansions).
        """
        g = self.geometry
        p = self.parameters
        dr = np.arange(-(g.rows - 1), g.rows)[:, None]
        dc = np.arange(-(g.columns - 1), g.columns)[None, :]
        dy = dr * g.pitch_m
        dx = dc * g.pitch_m
        distance = np.sqrt(dx * dx + dy * dy)
        shares_line = (dr == 0) | (dc == 0)
        amplitude = np.where(shares_line, p.line_amplitude, p.oxide_amplitude)
        kernel = np.minimum(amplitude * np.exp(-distance / p.decay_length_m), p.max_alpha)
        kernel[g.rows - 1, g.columns - 1] = 0.0
        return kernel


class ExtractedCouplingModel(CouplingModel):
    """Coupling model backed by a finite-volume alpha extraction.

    The extraction yields alpha values of every cell with respect to *one*
    selected aggressor.  Assuming translation invariance of the kernel (valid
    away from the array edges), the value for an arbitrary aggressor/victim
    pair is looked up by relative offset; offsets that fall outside the
    extracted window fall back to the most distant extracted value.
    """

    def __init__(self, geometry: CrossbarGeometry, extraction: AlphaExtractionResult):
        super().__init__(geometry)
        self.extraction = extraction
        # The extraction's alpha matrix *is* the offset-indexed window: entry
        # (row, col) holds the alpha at offset (row, col) - selected_cell, so
        # lookups are plain array indexing shifted by the selected cell — no
        # per-offset dict, no double Python loop.
        self._window = np.asarray(extraction.alpha, dtype=np.float64)
        self._centre = tuple(extraction.selected_cell)
        self._fallback = float(self._window.min())

    def alpha_between(self, aggressor: Cell, victim: Cell) -> float:
        if tuple(aggressor) == tuple(victim):
            return 1.0
        self.geometry.validate_cell(*aggressor)
        self.geometry.validate_cell(*victim)
        row = victim[0] - aggressor[0] + self._centre[0]
        column = victim[1] - aggressor[1] + self._centre[1]
        if 0 <= row < self._window.shape[0] and 0 <= column < self._window.shape[1]:
            return float(self._window[row, column])
        return self._fallback

    def kernel(self) -> np.ndarray:
        """Offset kernel: the extraction window pasted over the fallback.

        Offsets the extraction did not cover carry the most distant extracted
        value, exactly as the scalar lookup falls back.
        """
        g = self.geometry
        kernel = np.full((2 * g.rows - 1, 2 * g.columns - 1), self._fallback)
        window_rows, window_cols = self._window.shape
        # Window index (row, col) is offset (row, col) - centre, which lands
        # at kernel index offset + (rows - 1, cols - 1); paste the overlap.
        row_shift = g.rows - 1 - self._centre[0]
        col_shift = g.columns - 1 - self._centre[1]
        src_r = slice(max(0, -row_shift), min(window_rows, kernel.shape[0] - row_shift))
        src_c = slice(max(0, -col_shift), min(window_cols, kernel.shape[1] - col_shift))
        if src_r.start < src_r.stop and src_c.start < src_c.stop:
            kernel[
                src_r.start + row_shift : src_r.stop + row_shift,
                src_c.start + col_shift : src_c.stop + col_shift,
            ] = self._window[src_r, src_c]
        kernel[g.rows - 1, g.columns - 1] = 0.0
        return kernel


class UniformCouplingModel(CouplingModel):
    """Constant-alpha coupling to the four nearest neighbours only.

    Mainly used in tests and as a pedagogical worst-case/best-case bound.
    """

    def __init__(self, geometry: CrossbarGeometry, alpha: float = 0.1):
        super().__init__(geometry)
        if not 0 <= alpha < 1:
            raise ConfigurationError("alpha must be in [0, 1)")
        self.alpha = alpha

    def alpha_between(self, aggressor: Cell, victim: Cell) -> float:
        if tuple(aggressor) == tuple(victim):
            return 1.0
        dr = abs(aggressor[0] - victim[0])
        dc = abs(aggressor[1] - victim[1])
        return self.alpha if dr + dc == 1 else 0.0

    def kernel(self) -> np.ndarray:
        """Compact four-tap nearest-neighbour kernel (stencil-path bait)."""
        g = self.geometry
        kernel = np.zeros((2 * g.rows - 1, 2 * g.columns - 1))
        centre = (g.rows - 1, g.columns - 1)
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            row, column = centre[0] + dr, centre[1] + dc
            if 0 <= row < kernel.shape[0] and 0 <= column < kernel.shape[1]:
                kernel[row, column] = self.alpha
        return kernel


def coupling_from_extraction(
    geometry: CrossbarGeometry, extraction: AlphaExtractionResult
) -> ExtractedCouplingModel:
    """Convenience constructor mirroring :class:`AnalyticCouplingModel`'s API."""
    if extraction.alpha.shape != (geometry.rows, geometry.columns):
        raise GeometryError("extraction result does not match the crossbar geometry")
    return ExtractedCouplingModel(geometry, extraction)

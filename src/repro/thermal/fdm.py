"""Finite-volume electro-thermal solver for the crossbar stack.

This module replaces the paper's COMSOL Multiphysics step.  It solves, on the
voxel model built by :mod:`repro.thermal.geometry`,

* the static heat-transfer equation  ``-div(kappa grad T) = q``   (paper Eq. 1)
* the current-continuity equation    ``div(sigma grad phi) = 0``  (paper Eq. 2)

with the paper's boundary conditions: the substrate base is an isothermal
heat sink at the ambient temperature and every other surface is thermally and
electrically insulated.

Two usage modes are supported:

* **Power injection** (:meth:`HeatSolver.solve`): the dissipated power of the
  selected cell is deposited uniformly in its filament voxels.  This is the
  fast path used for the alpha-value extraction sweep.
* **Electro-thermal** (:meth:`HeatSolver.solve_electrothermal`): the potential
  field is solved first, the local Joule heating ``j . E`` becomes the heat
  source, exactly as in the paper's coupled simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K
from ..errors import ConvergenceError, GeometryError
from .geometry import CrossbarVoxelModel

Cell = Tuple[int, int]


@dataclass
class TemperatureField:
    """Steady-state temperature solution on the voxel grid."""

    model: CrossbarVoxelModel
    values_k: np.ndarray
    ambient_temperature_k: float

    def cell_temperature(self, cell: Cell) -> float:
        """Filament temperature of a cell, probed at the filament centre [K]."""
        return float(self.values_k[self.model.probe_index(cell)])

    def cell_temperature_map(self) -> np.ndarray:
        """(rows x columns) matrix of filament temperatures — the paper's Fig. 2a."""
        g = self.model.geometry
        out = np.zeros((g.rows, g.columns))
        for row, column in g.iter_cells():
            out[row, column] = self.cell_temperature((row, column))
        return out

    @property
    def max_temperature_k(self) -> float:
        """Hottest voxel temperature [K]."""
        return float(self.values_k.max())

    def rise_map(self) -> np.ndarray:
        """Cell temperature rises above ambient [K]."""
        return self.cell_temperature_map() - self.ambient_temperature_k


@dataclass
class PotentialSolution:
    """Solution of the current-continuity equation."""

    model: CrossbarVoxelModel
    potential_v: np.ndarray
    joule_heating_w: np.ndarray
    total_current_a: float
    applied_voltage_v: float

    @property
    def total_power_w(self) -> float:
        """Total dissipated power [W]."""
        return float(self.joule_heating_w.sum())


class _FiniteVolumeAssembler:
    """Shared finite-volume assembly for diffusion-type operators."""

    def __init__(self, model: CrossbarVoxelModel):
        self.model = model
        self.shape = model.shape
        self.size = int(np.prod(self.shape))
        self.dx = model.x_axis.widths_m
        self.dy = model.y_axis.widths_m
        self.dz = model.z_axis.widths_m

    def flat(self, ix: np.ndarray, iy: np.ndarray, iz: np.ndarray) -> np.ndarray:
        return np.ravel_multi_index((ix, iy, iz), self.shape)

    def face_conductances(self, conductivity: np.ndarray, axis: int) -> np.ndarray:
        """Conductances [W/K or S] across every interior face along ``axis``."""
        nx, ny, nz = self.shape
        if axis == 0:
            widths = self.dx
            area = np.multiply.outer(self.dy, self.dz)[np.newaxis, :, :]
        elif axis == 1:
            widths = self.dy
            area = np.multiply.outer(self.dx, self.dz)[:, np.newaxis, :]
        else:
            widths = self.dz
            area = np.multiply.outer(self.dx, self.dy)[:, :, np.newaxis]

        lower = [slice(None)] * 3
        upper = [slice(None)] * 3
        lower[axis] = slice(0, -1)
        upper[axis] = slice(1, None)
        k_lower = conductivity[tuple(lower)]
        k_upper = conductivity[tuple(upper)]

        w = widths.reshape([-1 if i == axis else 1 for i in range(3)])
        w_lower = np.broadcast_to(w[tuple(lower)] if w.shape[axis] > 1 else w, k_lower.shape)
        w_upper = np.broadcast_to(w[tuple(upper)] if w.shape[axis] > 1 else w, k_upper.shape)

        with np.errstate(divide="ignore", invalid="ignore"):
            resist_lower = np.where(k_lower > 0, 0.5 * w_lower / np.maximum(k_lower, 1e-300), np.inf)
            resist_upper = np.where(k_upper > 0, 0.5 * w_upper / np.maximum(k_upper, 1e-300), np.inf)
            resist = resist_lower + resist_upper
            conduct = np.where(np.isfinite(resist) & (resist > 0), 1.0 / resist, 0.0)
        return conduct * np.broadcast_to(area, conduct.shape)

    def assemble_laplacian(
        self, conductivity: np.ndarray, active: Optional[np.ndarray] = None
    ) -> sparse.csr_matrix:
        """Assemble the (negative-definite-free) diffusion operator matrix.

        Rows/columns corresponding to inactive voxels are left empty; callers
        handle them separately (Dirichlet or excluded).
        """
        rows = []
        cols = []
        vals = []
        diag = np.zeros(self.size)
        nx, ny, nz = self.shape
        for axis in range(3):
            g = self.face_conductances(conductivity, axis)
            idx_lower = np.indices(g.shape)
            lower_flat = self.flat(*idx_lower)
            shift = np.zeros(3, dtype=int)
            shift[axis] = 1
            upper_flat = self.flat(
                idx_lower[0] + shift[0], idx_lower[1] + shift[1], idx_lower[2] + shift[2]
            )
            g_flat = g.ravel()
            lower_flat = lower_flat.ravel()
            upper_flat = upper_flat.ravel()
            if active is not None:
                act = active.ravel()
                keep = act[lower_flat] & act[upper_flat]
                g_flat = g_flat[keep]
                lower_flat = lower_flat[keep]
                upper_flat = upper_flat[keep]
            keep = g_flat > 0
            g_flat = g_flat[keep]
            lower_flat = lower_flat[keep]
            upper_flat = upper_flat[keep]
            rows.extend([lower_flat, upper_flat])
            cols.extend([upper_flat, lower_flat])
            vals.extend([-g_flat, -g_flat])
            np.add.at(diag, lower_flat, g_flat)
            np.add.at(diag, upper_flat, g_flat)

        all_rows = np.concatenate(rows + [np.arange(self.size)])
        all_cols = np.concatenate(cols + [np.arange(self.size)])
        all_vals = np.concatenate(vals + [diag])
        return sparse.csr_matrix((all_vals, (all_rows, all_cols)), shape=(self.size, self.size))


class HeatSolver:
    """Steady-state heat solver on the crossbar voxel model."""

    def __init__(
        self,
        model: CrossbarVoxelModel,
        ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    ):
        if ambient_temperature_k <= 0:
            raise GeometryError("ambient temperature must be positive")
        self.model = model
        self.ambient_temperature_k = ambient_temperature_k
        self._assembler = _FiniteVolumeAssembler(model)
        self._matrix: Optional[sparse.csr_matrix] = None
        self._sink_rhs: Optional[np.ndarray] = None

    # -- assembly (cached) --------------------------------------------------

    def _build_system(self) -> Tuple[sparse.csr_matrix, np.ndarray]:
        if self._matrix is not None:
            return self._matrix, self._sink_rhs
        asm = self._assembler
        matrix = asm.assemble_laplacian(self.model.kappa).tolil()
        sink_rhs = np.zeros(asm.size)
        # Dirichlet heat sink at the substrate base (z = 0 face) via ghost
        # conductances to the ambient temperature.
        nx, ny, _ = self.model.shape
        dz0 = self.model.z_axis.widths_m[0]
        kappa0 = self.model.kappa[:, :, 0]
        area = np.multiply.outer(self.model.x_axis.widths_m, self.model.y_axis.widths_m)
        ghost = np.where(kappa0 > 0, kappa0 / (0.5 * dz0), 0.0) * area
        ix, iy = np.indices((nx, ny))
        flat = asm.flat(ix, iy, np.zeros_like(ix))
        flat = flat.ravel()
        ghost_flat = ghost.ravel()
        diag = matrix.diagonal()
        diag[flat] += ghost_flat
        matrix.setdiag(diag)
        sink_rhs[flat] += ghost_flat * self.ambient_temperature_k
        self._matrix = matrix.tocsr()
        self._sink_rhs = sink_rhs
        return self._matrix, self._sink_rhs

    # -- public API ----------------------------------------------------------

    def solve(self, power_sources_w: Mapping[Cell, float]) -> TemperatureField:
        """Solve for the temperature field with per-cell filament power injection."""
        matrix, sink_rhs = self._build_system()
        rhs = sink_rhs.copy()
        for cell, power_w in power_sources_w.items():
            if power_w < 0:
                raise GeometryError(f"negative power for cell {cell!r}")
            if power_w == 0:
                continue
            mask = self.model.filament_masks.get(tuple(cell))
            if mask is None:
                raise GeometryError(f"cell {cell!r} not present in the voxel model")
            indices = np.flatnonzero(mask.ravel())
            rhs[indices] += power_w / len(indices)
        values = sparse_linalg.spsolve(matrix, rhs)
        if not np.all(np.isfinite(values)):
            raise ConvergenceError("heat solve produced non-finite temperatures")
        field = values.reshape(self.model.shape)
        return TemperatureField(self.model, field, self.ambient_temperature_k)

    def solve_from_joule_field(self, joule_heating_w: np.ndarray) -> TemperatureField:
        """Solve for the temperature field given a per-voxel heat source [W]."""
        if joule_heating_w.shape != self.model.shape:
            raise GeometryError("joule heating field shape does not match the voxel model")
        matrix, sink_rhs = self._build_system()
        rhs = sink_rhs + joule_heating_w.ravel()
        values = sparse_linalg.spsolve(matrix, rhs)
        if not np.all(np.isfinite(values)):
            raise ConvergenceError("heat solve produced non-finite temperatures")
        return TemperatureField(self.model, values.reshape(self.model.shape), self.ambient_temperature_k)

    def solve_potential(self, cell: Cell, voltage_v: float) -> PotentialSolution:
        """Solve the current-continuity equation for a selected cell.

        The selected cell's top (column) line is driven at ``voltage_v`` at
        its boundary end face, the selected bottom (row) line is grounded at
        its end face, every other conductor floats, reproducing the paper's
        crossbar selection for the COMSOL step.
        """
        row, column = cell
        self.model.geometry.validate_cell(row, column)
        asm = self._assembler
        active = self.model.sigma > 0
        matrix = asm.assemble_laplacian(self.model.sigma, active=active).tolil()

        top_mask = self.model.top_line_mask(column) & active
        bottom_mask = self.model.bottom_line_mask(row) & active
        drive_mask = np.zeros(self.model.shape, dtype=bool)
        ground_mask = np.zeros(self.model.shape, dtype=bool)
        # Contact faces: the y = 0 end of the driven column line and the
        # x = 0 end of the grounded row line.
        drive_mask[:, 0, :] = top_mask[:, 0, :]
        ground_mask[0, :, :] = bottom_mask[0, :, :]
        if not drive_mask.any() or not ground_mask.any():
            raise GeometryError("could not locate electrode contact faces for the potential solve")

        fixed = drive_mask | ground_mask
        fixed_values = np.where(drive_mask, voltage_v, 0.0)

        size = asm.size
        fixed_flat = np.flatnonzero(fixed.ravel())
        fixed_vals_flat = fixed_values.ravel()[fixed_flat]
        csr = matrix.tocsr()
        # Standard Dirichlet elimination: move the fixed columns to the RHS,
        # blank the fixed and electrically inactive rows/columns and pin them
        # with identity entries.  A tiny diagonal regularisation keeps any
        # floating conductor island (pure-Neumann sub-network) non-singular.
        keep = np.ones(size)
        keep[fixed_flat] = 0.0
        keep[~active.ravel()] = 0.0
        keep_diag = sparse.diags(keep)
        rhs = keep_diag @ (-(csr[:, fixed_flat] @ fixed_vals_flat))
        rhs[fixed_flat] = fixed_vals_flat
        system = keep_diag @ csr @ keep_diag + sparse.diags(1.0 - keep) + 1e-12 * keep_diag
        solution = sparse_linalg.spsolve(system.tocsr(), rhs)
        if not np.all(np.isfinite(solution)):
            raise ConvergenceError("potential solve produced non-finite values")
        potential = solution.reshape(self.model.shape)

        joule = self._joule_heating(potential, active)
        # Total current through the driven contact.
        total_current = self._contact_current(potential, drive_mask, voltage_v)
        return PotentialSolution(
            model=self.model,
            potential_v=potential,
            joule_heating_w=joule,
            total_current_a=total_current,
            applied_voltage_v=voltage_v,
        )

    def solve_electrothermal(self, cell: Cell, voltage_v: float) -> Tuple[TemperatureField, PotentialSolution]:
        """Coupled solve: potential -> Joule heating -> temperature field."""
        potential = self.solve_potential(cell, voltage_v)
        temperature = self.solve_from_joule_field(potential.joule_heating_w)
        return temperature, potential

    # -- internals -----------------------------------------------------------

    def _joule_heating(self, potential: np.ndarray, active: np.ndarray) -> np.ndarray:
        """Per-voxel Joule heating [W] from the potential solution."""
        asm = self._assembler
        heating = np.zeros(self.model.shape)
        for axis in range(3):
            g = asm.face_conductances(self.model.sigma, axis)
            lower = [slice(None)] * 3
            upper = [slice(None)] * 3
            lower[axis] = slice(0, -1)
            upper[axis] = slice(1, None)
            dphi = potential[tuple(lower)] - potential[tuple(upper)]
            act = active[tuple(lower)] & active[tuple(upper)]
            face_power = np.where(act, g * dphi ** 2, 0.0)
            heating[tuple(lower)] += 0.5 * face_power
            heating[tuple(upper)] += 0.5 * face_power
        return heating

    def _contact_current(self, potential: np.ndarray, drive_mask: np.ndarray, voltage_v: float) -> float:
        """Net current leaving the driven contact voxels [A]."""
        asm = self._assembler
        active = self.model.sigma > 0
        total = 0.0
        for axis in range(3):
            g = asm.face_conductances(self.model.sigma, axis)
            lower = [slice(None)] * 3
            upper = [slice(None)] * 3
            lower[axis] = slice(0, -1)
            upper[axis] = slice(1, None)
            dphi = potential[tuple(lower)] - potential[tuple(upper)]
            act = active[tuple(lower)] & active[tuple(upper)]
            from_lower = act & drive_mask[tuple(lower)] & ~drive_mask[tuple(upper)]
            from_upper = act & drive_mask[tuple(upper)] & ~drive_mask[tuple(lower)]
            total += float(np.sum(np.where(from_lower, g * dphi, 0.0)))
            total -= float(np.sum(np.where(from_upper, g * dphi, 0.0)))
        return total

"""Voxelisation of the crossbar stack for the finite-volume solver.

The paper's low-level simulation (Fig. 2b) models a memristive crossbar of
electrodes on a Si/SiO2 substrate with a conductive filament at every
crosspoint.  This module turns a :class:`repro.config.CrossbarGeometry` into
a 3-D voxel model carrying per-voxel thermal and electrical conductivities,
which :mod:`repro.thermal.fdm` then discretises.

Conventions:

* ``x`` runs along the bottom-electrode (word line / row) direction, so a row
  line spans all columns.
* ``y`` runs along the top-electrode (bit line / column) direction.
* ``z`` points upwards through the stack: substrate, SiO2 insulator, bottom
  electrode layer, switching oxide (with filaments), top electrode layer.
* Arrays are indexed ``[ix, iy, iz]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..config import CrossbarGeometry, ThermalSolverConfig
from ..errors import GeometryError
from .materials import DEFAULT_STACK, Material, MaterialStack, filament_material

# Region codes stored in the voxel model for introspection and tests.
REGION_SUBSTRATE = 0
REGION_INSULATOR = 1
REGION_BOTTOM_ELECTRODE = 2
REGION_OXIDE = 3
REGION_FILAMENT = 4
REGION_TOP_ELECTRODE = 5
REGION_FILL = 6

REGION_NAMES = {
    REGION_SUBSTRATE: "substrate",
    REGION_INSULATOR: "insulator",
    REGION_BOTTOM_ELECTRODE: "bottom_electrode",
    REGION_OXIDE: "oxide",
    REGION_FILAMENT: "filament",
    REGION_TOP_ELECTRODE: "top_electrode",
    REGION_FILL: "fill",
}


@dataclass
class GridAxis:
    """One axis of the finite-volume grid."""

    edges_m: np.ndarray

    @property
    def centres_m(self) -> np.ndarray:
        """Voxel centre coordinates [m]."""
        return 0.5 * (self.edges_m[1:] + self.edges_m[:-1])

    @property
    def widths_m(self) -> np.ndarray:
        """Voxel widths [m]."""
        return np.diff(self.edges_m)

    @property
    def count(self) -> int:
        """Number of voxels along the axis."""
        return len(self.edges_m) - 1

    @property
    def length_m(self) -> float:
        """Total axis extent [m]."""
        return float(self.edges_m[-1] - self.edges_m[0])

    def locate(self, coordinate_m: float) -> int:
        """Index of the voxel containing the coordinate."""
        index = int(np.searchsorted(self.edges_m, coordinate_m, side="right") - 1)
        return min(max(index, 0), self.count - 1)


def _uniform_axis(length_m: float, resolution_m: float) -> GridAxis:
    """Build a uniform axis with spacing as close to the resolution as possible."""
    count = max(2, int(round(length_m / resolution_m)))
    return GridAxis(np.linspace(0.0, length_m, count + 1))


def _layered_axis(layers_m: List[Tuple[str, float]], resolution_m: float) -> Tuple[GridAxis, Dict[str, Tuple[int, int]]]:
    """Build the vertical axis so that every layer boundary lies on an edge.

    Returns the axis and a mapping from layer name to the half-open voxel
    index range [start, stop) occupied by the layer.
    """
    edges = [0.0]
    spans: Dict[str, Tuple[int, int]] = {}
    for name, thickness in layers_m:
        if thickness <= 0:
            raise GeometryError(f"layer {name!r} must have positive thickness")
        slabs = max(1, int(round(thickness / resolution_m)))
        start = len(edges) - 1
        base = edges[-1]
        for k in range(1, slabs + 1):
            edges.append(base + thickness * k / slabs)
        spans[name] = (start, len(edges) - 1)
    return GridAxis(np.asarray(edges)), spans


@dataclass
class CrossbarVoxelModel:
    """Voxelised crossbar stack ready for the finite-volume solver."""

    geometry: CrossbarGeometry
    stack: MaterialStack
    x_axis: GridAxis
    y_axis: GridAxis
    z_axis: GridAxis
    #: Thermal conductivity per voxel [W/(m K)].
    kappa: np.ndarray
    #: Electrical conductivity per voxel [S/m].
    sigma: np.ndarray
    #: Region code per voxel (see REGION_* constants).
    region: np.ndarray
    #: Layer name -> vertical index span.
    layer_spans: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: (row, column) -> boolean mask of the cell's filament voxels.
    filament_masks: Dict[Tuple[int, int], np.ndarray] = field(default_factory=dict)

    @property
    def shape(self) -> Tuple[int, int, int]:
        """Voxel grid shape (nx, ny, nz)."""
        return self.kappa.shape  # type: ignore[return-value]

    @property
    def voxel_count(self) -> int:
        """Total number of voxels."""
        return int(np.prod(self.shape))

    def voxel_volume_m3(self, ix: int, iy: int, iz: int) -> float:
        """Volume of one voxel [m^3]."""
        return float(
            self.x_axis.widths_m[ix] * self.y_axis.widths_m[iy] * self.z_axis.widths_m[iz]
        )

    def filament_indices(self, cell: Tuple[int, int]) -> np.ndarray:
        """Return an (n, 3) array of voxel indices of the cell's filament."""
        mask = self.filament_masks.get(tuple(cell))
        if mask is None:
            raise GeometryError(f"cell {cell!r} has no filament in this model")
        return np.argwhere(mask)

    def probe_index(self, cell: Tuple[int, int]) -> Tuple[int, int, int]:
        """Voxel used to probe the filament temperature of a cell."""
        indices = self.filament_indices(cell)
        centroid = indices.mean(axis=0)
        best = int(np.argmin(((indices - centroid) ** 2).sum(axis=1)))
        return tuple(int(v) for v in indices[best])  # type: ignore[return-value]

    def bottom_line_mask(self, row: int) -> np.ndarray:
        """Boolean mask of the bottom-electrode voxels belonging to one row line."""
        self.geometry.validate_cell(row, 0)
        mask = np.zeros(self.shape, dtype=bool)
        start, stop = self.layer_spans["bottom_electrode"]
        y_lo, y_hi = self._line_extent(row)
        for iy, yc in enumerate(self.y_axis.centres_m):
            if y_lo <= yc <= y_hi:
                mask[:, iy, start:stop] = self.region[:, iy, start:stop] == REGION_BOTTOM_ELECTRODE
        return mask

    def top_line_mask(self, column: int) -> np.ndarray:
        """Boolean mask of the top-electrode voxels belonging to one column line."""
        self.geometry.validate_cell(0, column)
        mask = np.zeros(self.shape, dtype=bool)
        start, stop = self.layer_spans["top_electrode"]
        x_lo, x_hi = self._line_extent(column)
        for ix, xc in enumerate(self.x_axis.centres_m):
            if x_lo <= xc <= x_hi:
                mask[ix, :, start:stop] = self.region[ix, :, start:stop] == REGION_TOP_ELECTRODE
        return mask

    def _line_extent(self, line_index: int) -> Tuple[float, float]:
        """In-plane extent of an electrode line perpendicular to its run direction."""
        g = self.geometry
        lo = line_index * g.pitch_m + 0.5 * g.electrode_spacing_m
        return lo, lo + g.electrode_width_m

    def region_fraction(self, code: int) -> float:
        """Fraction of voxels assigned to a region (diagnostic)."""
        return float(np.mean(self.region == code))


def build_voxel_model(
    geometry: CrossbarGeometry = None,
    thermal: ThermalSolverConfig = None,
    stack: MaterialStack = None,
    filament: Material = None,
    lrs_current_a: float = 290e-6,
    set_voltage_v: float = 1.05,
    lrs_cells: Optional[Iterable[Tuple[int, int]]] = None,
    hrs_conductivity_ratio: float = 1e-3,
) -> CrossbarVoxelModel:
    """Voxelise the crossbar stack.

    Args:
        geometry: Crossbar geometry; defaults to the paper's 5x5 / 50 nm setup.
        thermal: Solver configuration controlling the grid resolution.
        stack: Material assignment of the stack layers.
        filament: Filament material; if omitted it is derived with
            :func:`repro.thermal.materials.filament_material` so the LRS
            current at V_SET matches the device compact model.
        lrs_current_a: LRS current used to size the filament conductivity.
        set_voltage_v: Voltage used to size the filament conductivity.
        lrs_cells: Cells whose filament is in the low-resistive state.  When
            ``None`` every filament uses the LRS material (sufficient for the
            power-injection mode); for the coupled electro-thermal mode pass
            the selected cell(s) so the remaining filaments are HRS-like and
            sneak currents stay realistic.
        hrs_conductivity_ratio: Electrical conductivity of HRS filaments
            relative to the LRS filament material.
    """
    geometry = geometry if geometry is not None else CrossbarGeometry()
    thermal = thermal if thermal is not None else ThermalSolverConfig()
    stack = stack if stack is not None else DEFAULT_STACK
    if filament is None:
        filament = filament_material(
            target_current_a=lrs_current_a,
            voltage_v=set_voltage_v,
            filament_radius_m=geometry.filament_radius_m,
            filament_height_m=geometry.filament_height_m,
        )

    width_x = geometry.columns * geometry.pitch_m
    width_y = geometry.rows * geometry.pitch_m
    x_axis = _uniform_axis(width_x, thermal.lateral_resolution_m)
    y_axis = _uniform_axis(width_y, thermal.lateral_resolution_m)
    z_axis, layer_spans = _layered_axis(
        [
            ("substrate", geometry.substrate_thickness_m),
            ("insulator", geometry.insulator_thickness_m),
            ("bottom_electrode", geometry.electrode_thickness_m),
            ("oxide", geometry.oxide_thickness_m),
            ("top_electrode", geometry.electrode_thickness_m),
        ],
        thermal.vertical_resolution_m,
    )

    nx, ny, nz = x_axis.count, y_axis.count, z_axis.count
    kappa = np.zeros((nx, ny, nz))
    sigma = np.zeros((nx, ny, nz))
    region = np.full((nx, ny, nz), REGION_FILL, dtype=np.uint8)

    def assign(mask_3d: np.ndarray, material: Material, code: int) -> None:
        kappa[mask_3d] = material.thermal_conductivity_w_per_mk
        sigma[mask_3d] = material.electrical_conductivity_s_per_m
        region[mask_3d] = code

    def layer_mask(name: str) -> np.ndarray:
        start, stop = layer_spans[name]
        mask = np.zeros((nx, ny, nz), dtype=bool)
        mask[:, :, start:stop] = True
        return mask

    # Continuous layers.
    assign(layer_mask("substrate"), stack.substrate, REGION_SUBSTRATE)
    assign(layer_mask("insulator"), stack.insulator, REGION_INSULATOR)
    assign(layer_mask("oxide"), stack.oxide, REGION_OXIDE)

    x_centres = x_axis.centres_m
    y_centres = y_axis.centres_m

    # Bottom electrodes: one line per row, running along x.
    bottom = layer_mask("bottom_electrode")
    assign(bottom, stack.insulator, REGION_INSULATOR)  # inter-line fill
    for row in range(geometry.rows):
        lo = row * geometry.pitch_m + 0.5 * geometry.electrode_spacing_m
        hi = lo + geometry.electrode_width_m
        in_line = (y_centres >= lo) & (y_centres <= hi)
        line_mask = bottom & in_line[np.newaxis, :, np.newaxis]
        assign(line_mask, stack.bottom_electrode, REGION_BOTTOM_ELECTRODE)

    # Top electrodes: one line per column, running along y.
    top = layer_mask("top_electrode")
    assign(top, stack.insulator, REGION_INSULATOR)
    for column in range(geometry.columns):
        lo = column * geometry.pitch_m + 0.5 * geometry.electrode_spacing_m
        hi = lo + geometry.electrode_width_m
        in_line = (x_centres >= lo) & (x_centres <= hi)
        line_mask = top & in_line[:, np.newaxis, np.newaxis]
        assign(line_mask, stack.top_electrode, REGION_TOP_ELECTRODE)

    # Filaments: cylinders through the oxide at every crosspoint.
    oxide_start, oxide_stop = layer_spans["oxide"]
    filament_masks: Dict[Tuple[int, int], np.ndarray] = {}
    radius_sq = geometry.filament_radius_m ** 2
    lrs_set = None if lrs_cells is None else {tuple(cell) for cell in lrs_cells}
    hrs_filament = Material(
        "filament_hrs",
        thermal_conductivity_w_per_mk=stack.oxide.thermal_conductivity_w_per_mk,
        electrical_conductivity_s_per_m=filament.electrical_conductivity_s_per_m * hrs_conductivity_ratio,
    )
    for row, column in geometry.iter_cells():
        cx, cy = geometry.cell_centre(row, column)
        in_circle = (
            (x_centres[:, np.newaxis] - cx) ** 2 + (y_centres[np.newaxis, :] - cy) ** 2
        ) <= radius_sq
        if not in_circle.any():
            # Coarse grids may miss the circle entirely; fall back to the
            # voxel containing the cell centre so every cell stays probe-able.
            in_circle = np.zeros((nx, ny), dtype=bool)
            in_circle[x_axis.locate(cx), y_axis.locate(cy)] = True
        mask = np.zeros((nx, ny, nz), dtype=bool)
        mask[:, :, oxide_start:oxide_stop] = in_circle[:, :, np.newaxis]
        cell_material = filament
        if lrs_set is not None and (row, column) not in lrs_set:
            cell_material = hrs_filament
        assign(mask, cell_material, REGION_FILAMENT)
        filament_masks[(row, column)] = mask

    return CrossbarVoxelModel(
        geometry=geometry,
        stack=stack,
        x_axis=x_axis,
        y_axis=y_axis,
        z_axis=z_axis,
        kappa=kappa,
        sigma=sigma,
        region=region,
        layer_spans=layer_spans,
        filament_masks=filament_masks,
    )

"""Material properties for the electro-thermal crossbar simulation.

The values are standard thin-film literature numbers for the material stack
of the paper's device (Pt / HfO2 / TiOx / Ti on a Si/SiO2 substrate).  Thin
films conduct heat noticeably worse than bulk, so the defaults use reduced
thin-film conductivities where established.

The filament's electrical conductivity is not a fixed material constant: the
paper adjusts it "so that a certain current flows through the device"
(Sec. IV-A); :func:`filament_material` implements exactly that adjustment and
derives the thermal conductivity from the Wiedemann-Franz law, as the paper
prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..constants import LORENZ_NUMBER_W_OHM_PER_K2
from ..errors import ConfigurationError


@dataclass(frozen=True)
class Material:
    """Thermal and electrical properties of one material in the stack."""

    name: str
    #: Thermal conductivity [W/(m K)].
    thermal_conductivity_w_per_mk: float
    #: Electrical conductivity [S/m]; 0 for insulators.
    electrical_conductivity_s_per_m: float = 0.0

    def __post_init__(self) -> None:
        if self.thermal_conductivity_w_per_mk <= 0:
            raise ConfigurationError(f"{self.name}: thermal conductivity must be positive")
        if self.electrical_conductivity_s_per_m < 0:
            raise ConfigurationError(f"{self.name}: electrical conductivity must be non-negative")

    @property
    def is_conductor(self) -> bool:
        """True if the material carries electrical current in the simulation."""
        return self.electrical_conductivity_s_per_m > 0.0


# ---------------------------------------------------------------------------
# Stack materials (thin-film values)
# ---------------------------------------------------------------------------

SILICON = Material("silicon", thermal_conductivity_w_per_mk=120.0)
SILICON_DIOXIDE = Material("sio2", thermal_conductivity_w_per_mk=1.3)
HAFNIUM_OXIDE = Material("hfo2", thermal_conductivity_w_per_mk=0.9)
TITANIUM_OXIDE = Material("tiox", thermal_conductivity_w_per_mk=3.0, electrical_conductivity_s_per_m=1.0e3)
PLATINUM = Material("platinum", thermal_conductivity_w_per_mk=45.0, electrical_conductivity_s_per_m=5.0e6)
TITANIUM = Material("titanium", thermal_conductivity_w_per_mk=15.0, electrical_conductivity_s_per_m=1.5e6)
AIR = Material("air", thermal_conductivity_w_per_mk=0.026)


def filament_material(
    target_current_a: float,
    voltage_v: float,
    filament_radius_m: float,
    filament_height_m: float,
    temperature_k: float = 300.0,
) -> Material:
    """Build the filament material tuned to carry ``target_current_a``.

    The paper adjusts the filament's electrical conductivity so that the
    desired LRS current flows at the applied SET voltage, and couples the
    thermal conductivity through the Wiedemann-Franz law
    ``kappa = L * sigma * T``.
    """
    if target_current_a <= 0 or voltage_v <= 0:
        raise ConfigurationError("target current and voltage must be positive")
    if filament_radius_m <= 0 or filament_height_m <= 0:
        raise ConfigurationError("filament geometry must be positive")
    import math

    area = math.pi * filament_radius_m ** 2
    resistance = voltage_v / target_current_a
    sigma = filament_height_m / (resistance * area)
    kappa = LORENZ_NUMBER_W_OHM_PER_K2 * sigma * temperature_k
    # The electronic contribution alone underestimates thin-film oxide
    # filaments slightly; keep a phonon floor comparable to the host oxide.
    kappa = max(kappa, HAFNIUM_OXIDE.thermal_conductivity_w_per_mk)
    return Material("filament", thermal_conductivity_w_per_mk=kappa, electrical_conductivity_s_per_m=sigma)


@dataclass(frozen=True)
class MaterialStack:
    """The full material assignment of the crossbar model."""

    substrate: Material = SILICON
    insulator: Material = SILICON_DIOXIDE
    bottom_electrode: Material = PLATINUM
    oxide: Material = HAFNIUM_OXIDE
    top_electrode: Material = TITANIUM
    ambient: Material = AIR

    def as_dict(self) -> Dict[str, Material]:
        """Return the stack as a role -> material mapping."""
        return {
            "substrate": self.substrate,
            "insulator": self.insulator,
            "bottom_electrode": self.bottom_electrode,
            "oxide": self.oxide,
            "top_electrode": self.top_electrode,
            "ambient": self.ambient,
        }


DEFAULT_STACK = MaterialStack()

"""The Monte-Carlo population engine.

:class:`MonteCarloEngine` answers the statistical question behind the paper's
single-trajectory figures: across device-to-device and cycle-to-cycle
variation, *what fraction* of victim cells flips under a given pulse budget,
and how are the pulses-to-flip distributed?

The engine anchors every population to the circuit-level physics: the victim
bias and the aggressor→victim thermal coupling are extracted once from the
nominal crossbar solve (the same nodal + crosstalk-hub path the
:class:`~repro.attack.neurohammer.NeuroHammer` engine uses), then the sampled
population is propagated through the vectorized device model —

1. each sampled cell's aggressor operating point is re-solved (hotter or
   cooler aggressors deliver more or less crosstalk),
2. the victim crosstalk is scaled through the nominal coupling ratio,
3. the batched switching-kinetics integrator counts pulses to flip.

A scalar reference path (``vectorized=False``) runs the identical physics one
cell at a time through :mod:`repro.devices`; it backs the agreement tests and
the throughput benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..attack.neurohammer import NeuroHammer
from ..attack.patterns import AttackPattern
from ..circuit.crossbar import CrossbarArray
from ..config import AttackConfig, JsonConfig, SimulationConfig
from ..devices.jart_vcm import JartVcmModel
from ..devices.kinetics import pulses_to_switch
from ..devices.thermal import solve_operating_point
from ..errors import ConvergenceError, DeviceModelError, MonteCarloError
from ..circuit.drivers import write_bias
from ..obs import build_manifest, get_audit, get_heartbeat, get_telemetry, get_watchdog, spawn_digest
from ..utils.logging import get_logger
from .adaptive import AdaptiveConfig, AdaptiveOutcome, AdaptiveSampler
from .estimators import (
    ClusteredBinomialEstimator,
    EstimatorState,
    ImportanceEstimator,
    StreamingBinomialEstimator,
)
from .sampling import (
    ArrayPopulationDraw,
    ImportanceSettings,
    ParameterDistribution,
    PopulationDraw,
    PopulationSampler,
)
from .vectorized import (
    SampledArrayJartModel,
    VectorizedJartVcm,
    pulses_to_switch_batch,
    solve_operating_point_batch,
)


#: Evaluation modes of :class:`MonteCarloEngine`.
MONTECARLO_MODES = ("anchored", "full_array")

logger = get_logger("montecarlo.engine")


def _concat_draws(draws: List[Optional[Any]]):
    """Concatenate per-batch population draws along the sample axis."""
    draws = [draw for draw in draws if draw is not None]
    if not draws:
        return None
    if len(draws) == 1:
        return draws[0]
    first = draws[0]
    values = {
        path: np.concatenate([draw.values[path] for draw in draws], axis=0)
        for path in first.values
    }
    if isinstance(first, ArrayPopulationDraw):
        return ArrayPopulationDraw(
            n_arrays=sum(draw.n_arrays for draw in draws),
            cells=first.cells,
            seed=first.seed,
            values=values,
        )
    log_weights = None
    if first.log_weights is not None:
        log_weights = np.concatenate([draw.log_weights for draw in draws])
    return PopulationDraw(
        n_samples=sum(draw.n_samples for draw in draws),
        seed=first.seed,
        values=values,
        log_weights=log_weights,
    )

#: Victim selections of the full-array mode.
VICTIM_MODES = ("half_selected", "all")


@dataclass
class MonteCarloConfig(JsonConfig):
    """Configuration of a Monte-Carlo population run."""

    #: Number of sampled victim cells (``anchored``) or sampled whole arrays
    #: (``full_array``).
    n_samples: int = 256
    #: Root seed of the population (see :mod:`repro.utils.rng`).
    seed: int = 0
    #: Sampled parameter distributions.
    distributions: List[ParameterDistribution] = field(default_factory=list)
    #: Initial normalised state of every victim.
    x_start: float = 0.0
    #: ``"anchored"`` — every sample is one victim cell anchored to the
    #: nominal circuit solve; ``"full_array"`` — every sample is a whole
    #: crossbar with per-cell device draws whose nodal operating point is
    #: re-solved, with multiple victims evaluated per array.
    mode: str = "anchored"
    #: Victims evaluated per sampled array (``full_array`` only):
    #: ``"half_selected"`` — cells sharing a word/bit line with an aggressor,
    #: ``"all"`` — every non-aggressor cell.
    victim_mode: str = "half_selected"
    #: Sequential stopping rule; when set, ``n_samples`` is ignored and the
    #: run draws batches until the flip-probability CI meets the target (see
    #: :class:`~repro.montecarlo.adaptive.AdaptiveConfig`).
    adaptive: Optional[AdaptiveConfig] = None
    #: Importance-sampling tilt towards the flip boundary (anchored mode
    #: only); estimates are reweighted by self-normalized likelihood ratios.
    importance: Optional[ImportanceSettings] = None

    def __post_init__(self) -> None:
        if self.n_samples < 1:
            raise MonteCarloError("n_samples must be at least 1")
        if not 0.0 <= self.x_start <= 1.0:
            raise MonteCarloError("x_start must lie in [0, 1]")
        if self.mode not in MONTECARLO_MODES:
            raise MonteCarloError(
                f"unknown Monte-Carlo mode {self.mode!r}; expected one of {MONTECARLO_MODES}"
            )
        if self.victim_mode not in VICTIM_MODES:
            raise MonteCarloError(
                f"unknown victim mode {self.victim_mode!r}; expected one of {VICTIM_MODES}"
            )
        self.distributions = [
            dist if isinstance(dist, ParameterDistribution) else ParameterDistribution.from_dict(dist)
            for dist in self.distributions
        ]
        if isinstance(self.adaptive, dict):
            self.adaptive = AdaptiveConfig.from_dict(self.adaptive)
        if isinstance(self.importance, dict):
            self.importance = ImportanceSettings.from_dict(self.importance)
        if self.importance is not None and self.mode == "full_array":
            raise MonteCarloError(
                "importance sampling tilts per-victim populations; it is only "
                "defined for mode='anchored'"
            )


@dataclass
class NominalConditions:
    """Circuit-level anchor of a population: the nominal operating point."""

    pattern_name: str
    #: Voltage across the victim during the hammer phase [V].
    victim_voltage_v: float
    #: Crosstalk temperature the victim receives at the nominal point [K].
    crosstalk_temperature_k: float
    #: Cell voltage of the hottest aggressor [V].
    aggressor_voltage_v: float
    #: Self-heating rise of that aggressor above ambient [K].
    aggressor_rise_k: float
    #: Victim crosstalk per kelvin of aggressor self-heating rise.
    coupling_ratio: float
    ambient_temperature_k: float
    amplitude_v: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "pattern_name": self.pattern_name,
            "victim_voltage_v": self.victim_voltage_v,
            "crosstalk_temperature_k": self.crosstalk_temperature_k,
            "aggressor_voltage_v": self.aggressor_voltage_v,
            "aggressor_rise_k": self.aggressor_rise_k,
            "coupling_ratio": self.coupling_ratio,
            "ambient_temperature_k": self.ambient_temperature_k,
            "amplitude_v": self.amplitude_v,
        }


@dataclass
class MonteCarloResult:
    """Per-cell outcomes and summary statistics of one population run."""

    n_samples: int
    seed: int
    engine: str  # "vectorized" | "scalar"
    conditions: NominalConditions
    flipped: np.ndarray
    pulses: np.ndarray
    stress_time_s: np.ndarray
    wall_clock_s: np.ndarray
    final_x: np.ndarray
    victim_temperature_k: np.ndarray
    #: False in lanes whose electro-thermal solve diverged (excluded).
    valid: np.ndarray
    duration_s: float = 0.0
    #: Likelihood-ratio weights of an importance-sampled population (None
    #: for plain draws); flip probability is then the self-normalized
    #: reweighted estimate.
    weights: Optional[np.ndarray] = None
    #: The sampled parameter draw behind this population (kept for npz
    #: export and offline analysis).
    draw: Optional[Any] = None
    #: Trace of the sequential run when adaptive stopping was active.
    adaptive: Optional[AdaptiveOutcome] = None
    #: Interval settings used by :meth:`estimator` (overridden by the
    #: adaptive config when one drove the run).
    ci_confidence: float = 0.95
    ci_method: str = "wilson"

    # ------------------------------------------------------------------

    @property
    def valid_count(self) -> int:
        return int(self.valid.sum())

    @property
    def flipped_count(self) -> int:
        return int((self.flipped & self.valid).sum())

    @property
    def flip_probability(self) -> float:
        """Flip probability over the valid cells.

        Plain populations report the raw flipped fraction; importance-sampled
        populations report the self-normalized likelihood-ratio estimate
        (the raw fraction would estimate the *proposal* flip rate, not the
        nominal one).
        """
        if self.weights is not None:
            total = float(self.weights[self.valid].sum())
            if total <= 0.0:
                return 0.0
            return float(self.weights[self.flipped & self.valid].sum() / total)
        valid = self.valid_count
        return self.flipped_count / valid if valid else 0.0

    def event_estimator(self, event: Optional[np.ndarray] = None):
        """Fold an arbitrary per-lane event into the matching estimator.

        ``event`` is a boolean lane array (default: the flip flag); invalid
        lanes are always excluded.  This is the one place that knows whether
        the population is importance-weighted, so every consumer that scores
        a derived event (flip within a pulse budget, refresh survival, ...)
        gets the correct self-normalized estimate and interval for free.
        """
        event = (self.flipped if event is None else np.asarray(event, dtype=bool))
        masked = (event & self.valid)[self.valid]
        if self.weights is not None:
            estimator = ImportanceEstimator(confidence=self.ci_confidence)
            estimator.update(masked, self.weights[self.valid])
            return estimator
        estimator = StreamingBinomialEstimator(
            confidence=self.ci_confidence, method=self.ci_method
        )
        estimator.update(masked)
        return estimator

    def estimator(self):
        """The population folded into the matching streaming estimator."""
        return self.event_estimator()

    def interval(self) -> tuple:
        """Confidence interval on the flip probability."""
        return self.estimator().interval()

    @property
    def effective_sample_size(self) -> float:
        """Kish ESS under importance sampling; the valid count otherwise."""
        return float(self.estimator().effective_sample_size)

    def pulses_to_flip(self) -> np.ndarray:
        """Pulse counts of the cells that actually flipped."""
        return self.pulses[self.flipped & self.valid]

    def quantiles(self, fractions=(0.1, 0.5, 0.9)) -> Dict[str, Optional[float]]:
        """Pulses-to-flip quantiles over the flipped sub-population."""
        flipped = self.pulses_to_flip()
        if flipped.size == 0:
            return {f"p{int(fraction * 100)}": None for fraction in fractions}
        return {
            f"p{int(fraction * 100)}": float(np.quantile(flipped, fraction))
            for fraction in fractions
        }

    def summary(self) -> Dict[str, Any]:
        """The headline statistics of the population."""
        flipped = self.pulses_to_flip()
        valid = self.valid
        summary: Dict[str, Any] = {
            "engine": self.engine,
            "n_samples": self.n_samples,
            "seed": self.seed,
            "valid": self.valid_count,
            "failed": self.n_samples - self.valid_count,
            "flipped": self.flipped_count,
            "flip_probability": self.flip_probability,
            "min_pulses_to_flip": int(flipped.min()) if flipped.size else None,
            "max_pulses_to_flip": int(flipped.max()) if flipped.size else None,
            "geomean_pulses_to_flip": (
                float(np.exp(np.mean(np.log(flipped)))) if flipped.size else None
            ),
            "mean_victim_temperature_k": (
                float(self.victim_temperature_k[valid].mean()) if valid.any() else None
            ),
            "duration_s": self.duration_s,
        }
        summary.update(self.quantiles())
        state = EstimatorState.capture(self.estimator())
        summary["ci_low"] = state.ci_low
        summary["ci_high"] = state.ci_high
        summary["ci_half_width"] = state.half_width
        summary["ci_method"] = state.method
        if self.weights is not None:
            summary["effective_sample_size"] = state.effective_sample_size
        if self.adaptive is not None:
            summary["adaptive"] = self.adaptive.to_dict()
        return summary

    def to_experiment_result(self, max_rows: Optional[int] = 64):
        """Per-cell table (first ``max_rows`` cells) with the summary attached."""
        from ..experiments.base import ExperimentResult

        result = ExperimentResult(
            name="montecarlo",
            description=(
                f"Monte-Carlo population of {self.n_samples} victim cells "
                f"({self.engine} engine, seed {self.seed})"
            ),
            columns=["cell", "flipped", "pulses", "final_x", "victim_temperature_k", "valid"],
            metadata={
                "summary": self.summary(),
                "conditions": self.conditions.to_dict(),
                "manifest": build_manifest(
                    seed=self.seed, extra={"kind": "montecarlo", "engine": self.engine}
                ),
            },
        )
        count = self.n_samples if max_rows is None else min(self.n_samples, max_rows)
        for index in range(count):
            result.add_row(
                cell=index,
                flipped=bool(self.flipped[index]),
                pulses=int(self.pulses[index]),
                final_x=float(self.final_x[index]),
                victim_temperature_k=float(self.victim_temperature_k[index]),
                valid=bool(self.valid[index]),
            )
        return result


@dataclass
class FullArrayMonteCarloResult(MonteCarloResult):
    """Outcomes of a full-array population.

    Lanes are ``(array, victim)`` pairs in array-major order: lane
    ``k * victims_per_array + j`` is victim ``victims[j]`` of sampled array
    ``k``.  All the per-lane statistics of :class:`MonteCarloResult` apply;
    the additional fields slice them per array.
    """

    n_arrays: int = 0
    #: Victim cells evaluated in every sampled array (row-major order).
    victims: List[tuple] = field(default_factory=list)
    #: False where a sampled array's nodal solve failed entirely.
    array_valid: np.ndarray = None
    #: Per-array draws of the attack environment (ambient, amplitude, ...)
    #: when the population samples it; ``None`` otherwise.
    environment_draw: Optional[PopulationDraw] = None

    def event_estimator(self, event: Optional[np.ndarray] = None):
        """Cluster-robust estimator over a per-lane event.

        The victim lanes of one sampled array share its per-cell draws,
        environment draw and nodal solve, so each array is one cluster of
        correlated lanes: the point estimate is the pooled lane fraction, but
        the interval comes from the between-array spread — treating the lanes
        as iid trials (the anchored-mode estimator) would overstate the
        precision by up to a factor of ``sqrt(victims_per_array)``.
        """
        event = self.flipped if event is None else np.asarray(event, dtype=bool)
        masked = (event & self.valid).reshape(self.n_arrays, -1)
        valid = self.valid.reshape(self.n_arrays, -1)
        estimator = ClusteredBinomialEstimator(confidence=self.ci_confidence)
        estimator.update_counts(
            masked.sum(axis=1).astype(np.float64), valid.sum(axis=1).astype(np.float64)
        )
        return estimator

    @property
    def victims_per_array(self) -> int:
        return len(self.victims)

    @property
    def array_flips(self) -> np.ndarray:
        """Per-array count of flipped victims, shape (n_arrays,)."""
        return (self.flipped & self.valid).reshape(self.n_arrays, -1).sum(axis=1)

    @property
    def array_flip_probability(self) -> float:
        """Fraction of valid sampled arrays with at least one flipped victim."""
        valid = int(self.array_valid.sum())
        if not valid:
            return 0.0
        return float((self.array_flips[self.array_valid] > 0).sum() / valid)

    def victim_lane(self, victim) -> int:
        """Lane offset of one victim cell within each array's block."""
        return self.victims.index(tuple(victim))

    def summary(self) -> Dict[str, Any]:
        summary = super().summary()
        summary.update(
            {
                "mode": "full_array",
                "n_arrays": self.n_arrays,
                "victims_per_array": self.victims_per_array,
                "valid_arrays": int(self.array_valid.sum()),
                "array_flip_probability": self.array_flip_probability,
            }
        )
        return summary


class MonteCarloEngine:
    """Evaluates flip statistics over sampled victim-cell populations."""

    def __init__(
        self,
        montecarlo: Optional[MonteCarloConfig] = None,
        simulation: Optional[SimulationConfig] = None,
        attack: Optional[AttackConfig] = None,
        pattern: Optional[AttackPattern] = None,
    ):
        self.montecarlo = montecarlo if montecarlo is not None else MonteCarloConfig()
        self.simulation = simulation if simulation is not None else SimulationConfig()
        self.attack = attack if attack is not None else AttackConfig()
        self._pattern = pattern
        self._conditions: Optional[NominalConditions] = None
        self.sampler = PopulationSampler(self.montecarlo.distributions, seed=self.montecarlo.seed)

    # ------------------------------------------------------------------
    # nominal circuit anchor
    # ------------------------------------------------------------------

    def _single_phase_pattern(self, hammer: NeuroHammer) -> AttackPattern:
        """Resolve and validate the attack pattern both modes evaluate."""
        pattern = self._pattern if self._pattern is not None else hammer._pattern_from_config(self.attack)
        pattern.validate(hammer.crossbar.geometry)
        if len(pattern.phases) != 1:
            raise MonteCarloError(
                f"pattern {pattern.name!r} hammers in {len(pattern.phases)} interleaved phases; "
                "the Monte-Carlo engine models single-phase (simultaneous) patterns"
            )
        return pattern

    def nominal_conditions(self) -> NominalConditions:
        """Solve (once) the nominal crossbar operating point of the attack."""
        if self._conditions is not None:
            return self._conditions
        with get_telemetry().span("mc.nominal_conditions"):
            return self._solve_nominal_conditions()

    def _solve_nominal_conditions(self) -> NominalConditions:
        crossbar = CrossbarArray(
            geometry=self.simulation.geometry,
            wires=self.simulation.wires,
            ambient_temperature_k=self.attack.ambient_temperature_k,
        )
        hammer = NeuroHammer(crossbar)
        pattern = self._single_phase_pattern(hammer)
        hammer.prepare(pattern)
        point = hammer.phase_operating_point(
            pattern, pattern.phases[0], self.attack.pulse.amplitude_v, self.attack.bias_scheme
        )
        # The max-current aggressor's cell voltage anchors the vectorized
        # aggressor re-solve; its nominal self-heating rise calibrates the
        # effective coupling ratio (crosstalk per kelvin of aggressor rise).
        aggressor_voltage = point.aggressor_voltage_v
        nominal_aggressor = solve_operating_point(
            crossbar.model,
            aggressor_voltage,
            1.0,
            ambient_temperature_k=self.attack.ambient_temperature_k,
        )
        rise = nominal_aggressor.filament_temperature_k - self.attack.ambient_temperature_k
        coupling_ratio = point.victim_crosstalk_k / rise if rise > 0 else 0.0
        self._conditions = NominalConditions(
            pattern_name=pattern.name,
            victim_voltage_v=point.victim_voltage_v,
            crosstalk_temperature_k=point.victim_crosstalk_k,
            aggressor_voltage_v=aggressor_voltage,
            aggressor_rise_k=rise,
            coupling_ratio=coupling_ratio,
            ambient_temperature_k=self.attack.ambient_temperature_k,
            amplitude_v=self.attack.pulse.amplitude_v,
        )
        return self._conditions

    def set_nominal_conditions(self, conditions: NominalConditions) -> None:
        """Pin the circuit anchor explicitly instead of solving for it.

        What-if studies (e.g. a thermal guard throttling the sustained
        crosstalk) evaluate the same population under modified operating
        conditions; this is the supported way to install them — build a
        modified copy with :func:`dataclasses.replace` and set it before
        :meth:`run`.
        """
        self._conditions = conditions

    # ------------------------------------------------------------------
    # population evaluation
    # ------------------------------------------------------------------

    def _nominals(self, conditions: NominalConditions) -> Dict[str, float]:
        """Nominal value per sampleable path (consumed by relative draws).

        Derived from the sampler's own path registry, so a path added to
        :mod:`repro.montecarlo.sampling` automatically gains its nominal here
        (the attribute chain mirrors the dotted path; ``operating.*`` leaves
        are attributes of :class:`NominalConditions`).
        """
        from .sampling import ATTACK_PATHS, OPERATING_PATHS

        nominals = self._device_nominals()
        roots = {"attack": self.attack, "operating": conditions}
        for path in ATTACK_PATHS + OPERATING_PATHS:
            root, rest = path.split(".", 1)
            value = roots[root]
            for part in rest.split("."):
                value = getattr(value, part)
            nominals[path] = float(value)
        return nominals

    def _device_base(self):
        """The nominal device parameter set of the population."""
        return JartVcmModel().parameters

    def _device_nominals(self) -> Dict[str, float]:
        """``{device.<field>: nominal}`` for every sampleable device path."""
        from dataclasses import fields as dc_fields

        device = self._device_base()
        return {
            f"device.{f.name}": float(getattr(device, f.name)) for f in dc_fields(type(device))
        }

    def sample(self, n_samples: Optional[int] = None, spawn=()) -> PopulationDraw:
        """Draw the (seeded) anchored population this engine will evaluate.

        ``spawn`` inserts extra spawn-key elements into the draw streams; the
        adaptive loop keys its batches as ``("batch", index)`` so batch draws
        are reproducible independent of the stopping decisions.  When the
        engine carries importance settings, the draw comes from the tilted
        proposals and carries per-sample log likelihood ratios.
        """
        for dist in self.sampler.distributions:
            if dist.within_die > 0.0:
                raise MonteCarloError(
                    f"distribution {dist.path!r} requests within-die correlation "
                    f"(within_die={dist.within_die}), which anchored per-victim draws cannot "
                    "honour — evaluate it through mode='full_array'"
                )
        n = n_samples if n_samples is not None else self.montecarlo.n_samples
        conditions = self.nominal_conditions()
        return self.sampler.sample(
            n, self._nominals(conditions), spawn=spawn, importance=self.montecarlo.importance
        )

    def _ci_settings(self) -> tuple:
        """(confidence, method) the result's interval reporting should use."""
        if self.montecarlo.adaptive is not None:
            return self.montecarlo.adaptive.confidence, self.montecarlo.adaptive.method
        return 0.95, "wilson"

    def run(self, n_samples: Optional[int] = None, vectorized: bool = True) -> MonteCarloResult:
        """Evaluate the population and return per-cell outcomes plus stats.

        With ``mode="full_array"`` each sample is a whole sampled crossbar
        (``n_samples`` arrays) whose nodal operating point is re-solved; the
        returned :class:`FullArrayMonteCarloResult` carries one lane per
        ``(array, victim)`` pair.  With an ``adaptive`` stopping rule
        configured, ``n_samples`` is ignored and samples are drawn in batches
        until the flip-probability interval meets the target (see
        :class:`~repro.montecarlo.adaptive.AdaptiveConfig`).
        """
        start = time.perf_counter()
        tel = get_telemetry()
        with tel.span("mc.run", mode=self.montecarlo.mode):
            conditions = self.nominal_conditions()
            if self.montecarlo.adaptive is not None:
                result = self._run_adaptive(conditions, vectorized)
            else:
                n = n_samples if n_samples is not None else self.montecarlo.n_samples
                result = self._run_fixed(n, conditions, vectorized)
        result.duration_s = time.perf_counter() - start
        if tel.enabled:
            tel.count("mc.runs")
            if result.weights is not None:
                tel.gauge("mc.effective_sample_size", result.effective_sample_size)
        logger.debug(
            "mc run finished: mode=%s n=%d flipped=%d duration=%.3fs",
            self.montecarlo.mode,
            result.n_samples,
            result.flipped_count,
            result.duration_s,
        )
        return result

    def run_batch(self, n: int, batch_index: int, vectorized: bool = True) -> MonteCarloResult:
        """Evaluate one seeded batch of ``n`` samples.

        Batch ``i`` always draws the same population for a given seed,
        independent of any other batches evaluated — this is the unit of work
        behind adaptive stopping and CI-driven map refinement.
        """
        start = time.perf_counter()
        conditions = self.nominal_conditions()
        result = self._run_fixed(n, conditions, vectorized, spawn=("batch", batch_index))
        result.duration_s = time.perf_counter() - start
        return result

    def manifest(self, telemetry_snapshot: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Reproducibility manifest of this engine's configuration."""
        extra: Dict[str, Any] = {
            "kind": "montecarlo",
            "mode": self.montecarlo.mode,
            "adaptive": self.montecarlo.adaptive is not None,
            "importance": self.montecarlo.importance is not None,
        }
        if self.montecarlo.adaptive is None:
            extra["n_samples"] = self.montecarlo.n_samples
        return build_manifest(
            seed=self.montecarlo.seed,
            backends={"mode": self.montecarlo.mode},
            telemetry_snapshot=telemetry_snapshot,
            extra=extra,
        )

    def _run_fixed(
        self, n: int, conditions: NominalConditions, vectorized: bool, spawn=()
    ) -> MonteCarloResult:
        """One fixed-size evaluation through the configured mode."""
        tel = get_telemetry()
        if tel.enabled:
            tel.count("mc.batches")
            tel.count("mc.samples", n)
        if self.montecarlo.mode == "full_array":
            if not vectorized:
                raise MonteCarloError(
                    "full_array mode runs through the batched solver kernel only; "
                    "it has no scalar reference path"
                )
            result = self._run_full_array(n, conditions, spawn=spawn)
        else:
            draw = self.sample(n, spawn=spawn)
            if vectorized:
                result = self._run_vectorized(n, draw, conditions)
            else:
                result = self._run_scalar(n, draw, conditions)
        self._observe_batch(result, spawn)
        return result

    def _observe_batch(self, result: MonteCarloResult, spawn: Sequence) -> None:
        """Audit/watchdog hook at one batch boundary (fixed runs included)."""
        watchdog = get_watchdog()
        if watchdog.enabled:
            watchdog.check_array("mc.batch", "final_x", result.final_x)
            watchdog.check_array(
                "mc.batch", "victim_temperature_k", result.victim_temperature_k
            )
        audit = get_audit()
        if audit.enabled:
            # Keyed by the batch's RNG spawn path, so the record's identity
            # is execution-invariant (batch i is batch i whatever drew it).
            audit.record(
                "mc.batch_result",
                key=spawn_digest(self.montecarlo.seed, "montecarlo", *spawn),
                arrays={
                    "flipped": result.flipped,
                    "pulses": result.pulses,
                    "valid": result.valid,
                    "final_x": result.final_x,
                    "stress_time_s": result.stress_time_s,
                },
                meta={
                    "n_samples": int(result.n_samples),
                    "engine": result.engine,
                    "spawn": [str(s) for s in spawn],
                    "flipped_count": int(result.flipped_count),
                },
            )

    # -- adaptive (sequential) path ----------------------------------------

    def _run_adaptive(self, conditions: NominalConditions, vectorized: bool) -> MonteCarloResult:
        """Draw batches until the flip-probability CI meets the target.

        Both modes target the per-lane flip probability.  Full-array mode
        folds each batch through the cluster-robust estimator (one cluster
        per sampled array — the victim lanes of one array share its per-cell
        draws, environment draw and nodal solve), so the interval honours the
        within-array correlation instead of stopping too early on
        pseudo-independent lanes; the same estimator backs the result's
        :meth:`~FullArrayMonteCarloResult.event_estimator`.
        """
        config = self.montecarlo.adaptive
        batch_results: List[MonteCarloResult] = []

        def evaluate(index: int, n: int):
            result = self._run_fixed(n, conditions, vectorized, spawn=("batch", index))
            batch_results.append(result)
            if isinstance(result, FullArrayMonteCarloResult):
                # Per-cluster (flips, valid lanes) pairs; invalid arrays
                # contribute empty clusters, which the estimator drops.
                flips = (result.flipped & result.valid).reshape(result.n_arrays, -1)
                valid = result.valid.reshape(result.n_arrays, -1)
                counts = (
                    flips.sum(axis=1).astype(np.float64),
                    valid.sum(axis=1).astype(np.float64),
                )
                return counts, None
            mask = result.valid
            outcomes = (result.flipped & mask)[mask]
            weights = result.weights[mask] if result.weights is not None else None
            return outcomes, weights

        if self.montecarlo.mode == "full_array":
            estimator = ClusteredBinomialEstimator(confidence=config.confidence)
        else:
            estimator = config.make_estimator(weighted=self.montecarlo.importance is not None)
        outcome = AdaptiveSampler(config, evaluate, estimator=estimator).run()
        result = self._concat_results(batch_results)
        result.adaptive = outcome
        return result

    def _concat_results(self, results: List[MonteCarloResult]) -> MonteCarloResult:
        """Merge per-batch results into one population result (lane order =
        batch order, matching the estimator's stream order)."""
        first = results[0]
        if len(results) == 1:
            return first

        def cat(name):
            return np.concatenate([getattr(r, name) for r in results])

        common = dict(
            n_samples=sum(r.n_samples for r in results),
            seed=first.seed,
            engine=first.engine,
            conditions=first.conditions,
            flipped=cat("flipped"),
            pulses=cat("pulses"),
            stress_time_s=cat("stress_time_s"),
            wall_clock_s=cat("wall_clock_s"),
            final_x=cat("final_x"),
            victim_temperature_k=cat("victim_temperature_k"),
            valid=cat("valid"),
            weights=cat("weights") if first.weights is not None else None,
            draw=_concat_draws([r.draw for r in results]),
            ci_confidence=first.ci_confidence,
            ci_method=first.ci_method,
        )
        if isinstance(first, FullArrayMonteCarloResult):
            return FullArrayMonteCarloResult(
                **common,
                n_arrays=sum(r.n_arrays for r in results),
                victims=first.victims,
                array_valid=cat("array_valid"),
                environment_draw=_concat_draws([r.environment_draw for r in results]),
            )
        return MonteCarloResult(**common)

    # -- vectorized path ---------------------------------------------------

    def _run_vectorized(
        self, n: int, draw: PopulationDraw, conditions: NominalConditions
    ) -> MonteCarloResult:
        base = self._device_base()
        device_overrides = {
            path.split(".", 1)[1]: values
            for path, values in draw.values.items()
            if path.startswith("device.")
        }
        model = VectorizedJartVcm(n, base=base, overrides=device_overrides)

        amplitude = draw.get("attack.pulse.amplitude_v", self.attack.pulse.amplitude_v)
        scale = amplitude / conditions.amplitude_v
        ambient = draw.get("attack.ambient_temperature_k", self.attack.ambient_temperature_k)
        aggressor_voltage = conditions.aggressor_voltage_v * scale
        if "operating.victim_voltage_v" in draw.values:
            victim_voltage = draw.values["operating.victim_voltage_v"]
        else:
            victim_voltage = conditions.victim_voltage_v * scale
        pulse_length = draw.get("attack.pulse.length_s", self.attack.pulse.length_s)
        x_target = draw.get("attack.flip_threshold", self.attack.flip_threshold)
        duty = draw.get("attack.pulse.duty_cycle", self.attack.pulse.duty_cycle)

        # Lanes whose draws fall outside the device model's validity guards
        # (the conditions the scalar path raises DeviceModelError on) are
        # excluded up front, so one pathological sample cannot abort the
        # whole population.
        usable = (
            (np.abs(aggressor_voltage) <= 10.0)
            & (np.abs(victim_voltage) <= 10.0)
            & (pulse_length > 0.0)
            & (x_target >= 0.0)
            & (x_target <= 1.0)
            & (duty > 0.0)
            & (duty <= 1.0)
        )

        flipped = np.zeros(n, dtype=bool)
        pulses = np.full(n, self.attack.max_pulses, dtype=np.int64)
        stress = np.zeros(n)
        wall = np.zeros(n)
        final_x = np.full(n, self.montecarlo.x_start)
        temperature = np.asarray(ambient, dtype=np.float64).copy()
        valid = np.zeros(n, dtype=bool)

        lanes = np.flatnonzero(usable)
        if lanes.size:
            sub = model.take(lanes)
            # Aggressor→victim coupling, re-solved per sampled cell: a sampled
            # device that runs hotter under the aggressor bias delivers
            # proportionally more crosstalk to its victim.
            aggressor = solve_operating_point_batch(
                sub,
                aggressor_voltage[lanes],
                np.ones(lanes.size),
                ambient_temperature_k=ambient[lanes],
                raise_on_failure=False,
            )
            rise = aggressor.filament_temperature_k - ambient[lanes]
            if "operating.crosstalk_temperature_k" in draw.values:
                crosstalk = draw.values["operating.crosstalk_temperature_k"][lanes]
            else:
                crosstalk = conditions.coupling_ratio * rise
            outcome = pulses_to_switch_batch(
                sub,
                victim_voltage[lanes],
                pulse_length[lanes],
                np.full(lanes.size, self.montecarlo.x_start),
                x_target[lanes],
                duty_cycle=duty[lanes],
                ambient_temperature_k=ambient[lanes],
                crosstalk_temperature_k=crosstalk,
                max_pulses=self.attack.max_pulses,
                raise_on_failure=False,
            )
            lane_valid = outcome.converged & aggressor.converged
            flipped[lanes] = outcome.flipped & lane_valid
            pulses[lanes] = outcome.pulses
            stress[lanes] = outcome.stress_time_s
            wall[lanes] = outcome.wall_clock_s
            final_x[lanes] = outcome.final_x
            temperature[lanes] = outcome.final_temperature_k
            valid[lanes] = lane_valid

        confidence, method = self._ci_settings()
        return MonteCarloResult(
            n_samples=n,
            seed=self.montecarlo.seed,
            engine="vectorized",
            conditions=conditions,
            flipped=flipped,
            pulses=pulses,
            stress_time_s=stress,
            wall_clock_s=wall,
            final_x=final_x,
            victim_temperature_k=temperature,
            valid=valid,
            weights=draw.weights(),
            draw=draw,
            ci_confidence=confidence,
            ci_method=method,
        )

    # -- full-array path ---------------------------------------------------

    def _victim_cells(self, pattern: AttackPattern) -> List[tuple]:
        """Victim cells evaluated per sampled array, in row-major lane order."""
        geometry = self.simulation.geometry
        aggressors = {tuple(cell) for cell in pattern.aggressors}
        if self.montecarlo.victim_mode == "all":
            selected = [cell for cell in geometry.iter_cells() if cell not in aggressors]
        else:
            agg_rows = {cell[0] for cell in aggressors}
            agg_cols = {cell[1] for cell in aggressors}
            selected = [
                cell
                for cell in geometry.iter_cells()
                if cell not in aggressors and (cell[0] in agg_rows or cell[1] in agg_cols)
            ]
        victim = tuple(pattern.victim)
        if victim not in selected:
            selected = sorted(selected + [victim])
        return selected

    def _run_full_array(
        self, n_arrays: int, conditions: NominalConditions, spawn=()
    ) -> FullArrayMonteCarloResult:
        """Re-solve the nodal operating point per sampled array.

        Every sampled array gets per-cell device draws (optionally correlated
        within the die), its own electro-thermal crossbar solve through the
        batched solver kernel, and a vectorized kinetics integration over all
        victims at once.  The crossbar, netlist and Jacobian structure are
        built once and reused across arrays (the sampled parameters are
        swapped into the solver's batched model in place).

        ``attack.*`` distributions are honoured with one draw per sampled
        array (the attack environment — ambient temperature, pulse amplitude,
        length, duty cycle, flip threshold — varies between arrays, not
        between the cells of one array); ``operating.*`` paths remain
        anchored-mode-only because full-array mode derives the operating
        point from each array's own nodal solve.
        """
        cell_paths: List[str] = []
        env_paths: List[str] = []
        for dist in self.sampler.distributions:
            if dist.path.startswith("device."):
                cell_paths.append(dist.path)
            elif dist.path.startswith("attack."):
                if dist.within_die > 0.0:
                    raise MonteCarloError(
                        f"distribution {dist.path!r}: the attack environment is drawn once "
                        "per sampled array; within_die correlation is not applicable"
                    )
                env_paths.append(dist.path)
            else:
                raise MonteCarloError(
                    f"full_array mode derives the operating point from each array's own "
                    f"nodal solve; distribution {dist.path!r} can only be perturbed "
                    "directly through the anchored mode"
                )

        geometry = self.simulation.geometry
        rows, columns = geometry.rows, geometry.columns
        cells = rows * columns
        base = self._device_base()
        nominals = self._nominals(conditions)
        draw = self.sampler.sample_cells(n_arrays, cells, nominals, spawn=spawn, paths=cell_paths)
        env = (
            self.sampler.sample(
                n_arrays, nominals, spawn=(*spawn, "full-array-env"), paths=env_paths
            )
            if env_paths
            else None
        )

        model = SampledArrayJartModel(
            VectorizedJartVcm(cells, base=base, overrides=draw.array_overrides(0)),
            (rows, columns),
        )
        crossbar = CrossbarArray(
            geometry=geometry,
            model=model,
            wires=self.simulation.wires,
            ambient_temperature_k=self.attack.ambient_temperature_k,
        )
        pattern = self._single_phase_pattern(NeuroHammer(crossbar))
        victims = self._victim_cells(pattern)
        n_victims = len(victims)
        victim_rows = np.array([cell[0] for cell in victims])
        victim_cols = np.array([cell[1] for cell in victims])
        lanes = victim_rows * columns + victim_cols
        aggressor_cells = pattern.phases[0].aggressors
        nominal_bias = write_bias(
            geometry,
            aggressor_cells,
            self.attack.pulse.amplitude_v,
            scheme=self.attack.bias_scheme,
        )

        ambient_default = self.attack.ambient_temperature_k
        total = n_arrays * n_victims
        flipped = np.zeros((n_arrays, n_victims), dtype=bool)
        pulses = np.full((n_arrays, n_victims), self.attack.max_pulses, dtype=np.int64)
        stress = np.zeros((n_arrays, n_victims))
        wall = np.zeros((n_arrays, n_victims))
        final_x = np.full((n_arrays, n_victims), self.montecarlo.x_start)
        temperature = np.full((n_arrays, n_victims), float(ambient_default))
        valid = np.zeros((n_arrays, n_victims), dtype=bool)
        array_valid = np.ones(n_arrays, dtype=bool)

        def env_scalar(path: str, index: int, nominal: float) -> float:
            return env.scalar(path, index, nominal) if env is not None else float(nominal)

        tel = get_telemetry()
        hb = get_heartbeat()
        with tel.span("mc.full_array.arrays", n_arrays=n_arrays):
            for index in range(n_arrays):
                if hb.enabled:
                    # Array boundary: each iteration is one whole-array
                    # re-solve, the natural progress unit of this mode.
                    hb.update(arrays_done=index, samples=index * n_victims)
                if index:  # array 0's population is already bound from construction
                    model.set_population(
                        VectorizedJartVcm(cells, base=base, overrides=draw.array_overrides(index))
                    )
                # This array's attack environment (one draw per sampled array).
                ambient = env_scalar("attack.ambient_temperature_k", index, ambient_default)
                amplitude = env_scalar(
                    "attack.pulse.amplitude_v", index, self.attack.pulse.amplitude_v
                )
                pulse_length = env_scalar("attack.pulse.length_s", index, self.attack.pulse.length_s)
                duty = env_scalar("attack.pulse.duty_cycle", index, self.attack.pulse.duty_cycle)
                threshold = env_scalar("attack.flip_threshold", index, self.attack.flip_threshold)
                if (
                    ambient <= 0.0
                    or pulse_length <= 0.0
                    or not 0.0 < duty <= 1.0
                    or not 0.0 <= threshold <= 1.0
                    or abs(amplitude) > 10.0
                ):
                    # A draw outside the model's validity guards excludes the
                    # array, never the population (mirrors the anchored lanes).
                    array_valid[index] = False
                    continue
                temperature[index] = ambient
                crossbar.ambient_temperature_k = ambient
                crossbar.hub.ambient_temperature_k = ambient
                crossbar.initialise_states(default_x=0.0)
                for aggressor in pattern.aggressors:
                    crossbar.set_state(aggressor, 1.0)
                if env is not None and "attack.pulse.amplitude_v" in env.values:
                    bias = write_bias(
                        geometry, aggressor_cells, amplitude, scheme=self.attack.bias_scheme
                    )
                else:
                    bias = nominal_bias
                try:
                    snapshot = crossbar.thermal_snapshot(bias)
                except (ConvergenceError, DeviceModelError):
                    # A pathological sampled array must not abort the population.
                    array_valid[index] = False
                    continue
                victim_voltage = snapshot.operating_point.device_voltages_v[victim_rows, victim_cols]
                crosstalk = snapshot.crosstalk_temperatures_k[victim_rows, victim_cols]
                outcome = pulses_to_switch_batch(
                    model.kernel.take(lanes),
                    victim_voltage,
                    pulse_length,
                    np.full(n_victims, self.montecarlo.x_start),
                    threshold,
                    duty_cycle=duty,
                    ambient_temperature_k=ambient,
                    crosstalk_temperature_k=crosstalk,
                    max_pulses=self.attack.max_pulses,
                    raise_on_failure=False,
                )
                flipped[index] = outcome.flipped & outcome.converged
                pulses[index] = outcome.pulses
                stress[index] = outcome.stress_time_s
                wall[index] = outcome.wall_clock_s
                final_x[index] = outcome.final_x
                temperature[index] = outcome.final_temperature_k
                valid[index] = outcome.converged

        if tel.enabled:
            tel.count("mc.arrays", n_arrays)
            tel.count("mc.invalid_arrays", n_arrays - int(array_valid.sum()))
        if hb.enabled:
            hb.update(arrays_done=n_arrays, samples=total)

        confidence, method = self._ci_settings()
        return FullArrayMonteCarloResult(
            n_samples=total,
            seed=self.montecarlo.seed,
            engine="full_array",
            conditions=conditions,
            flipped=flipped.reshape(total),
            pulses=pulses.reshape(total),
            stress_time_s=stress.reshape(total),
            wall_clock_s=wall.reshape(total),
            final_x=final_x.reshape(total),
            victim_temperature_k=temperature.reshape(total),
            valid=valid.reshape(total),
            draw=draw,
            ci_confidence=confidence,
            ci_method=method,
            n_arrays=n_arrays,
            victims=victims,
            array_valid=array_valid,
            environment_draw=env,
        )

    # -- scalar reference path --------------------------------------------

    def _run_scalar(
        self, n: int, draw: PopulationDraw, conditions: NominalConditions
    ) -> MonteCarloResult:
        """The identical physics, one cell at a time through repro.devices.

        This is the pre-vectorization baseline: it exists to validate the
        batched path element-for-element and to quantify the speedup.
        """
        from dataclasses import fields as dc_fields

        from ..devices.jart_vcm import JartVcmParameters

        base = self._device_base()
        flipped = np.zeros(n, dtype=bool)
        pulses = np.full(n, self.attack.max_pulses, dtype=np.int64)
        stress = np.zeros(n)
        wall = np.zeros(n)
        final_x = np.full(n, self.montecarlo.x_start)
        temperature = np.zeros(n)
        valid = np.ones(n, dtype=bool)

        for index in range(n):
            values = {
                f.name: draw.scalar(f"device.{f.name}", index, getattr(base, f.name))
                for f in dc_fields(JartVcmParameters)
                if f.name != "charge_number"
            }
            model = JartVcmModel(JartVcmParameters(charge_number=base.charge_number, **values))
            amplitude = draw.scalar("attack.pulse.amplitude_v", index, self.attack.pulse.amplitude_v)
            scale = amplitude / conditions.amplitude_v
            ambient = draw.scalar(
                "attack.ambient_temperature_k", index, self.attack.ambient_temperature_k
            )
            temperature[index] = ambient
            try:
                aggressor = solve_operating_point(
                    model,
                    conditions.aggressor_voltage_v * scale,
                    1.0,
                    ambient_temperature_k=ambient,
                )
                if "operating.crosstalk_temperature_k" in draw.values:
                    crosstalk = draw.scalar("operating.crosstalk_temperature_k", index, 0.0)
                else:
                    rise = aggressor.filament_temperature_k - ambient
                    crosstalk = conditions.coupling_ratio * rise
                if "operating.victim_voltage_v" in draw.values:
                    victim_voltage = draw.scalar("operating.victim_voltage_v", index, 0.0)
                else:
                    victim_voltage = conditions.victim_voltage_v * scale
                outcome = pulses_to_switch(
                    model,
                    victim_voltage,
                    draw.scalar("attack.pulse.length_s", index, self.attack.pulse.length_s),
                    self.montecarlo.x_start,
                    draw.scalar("attack.flip_threshold", index, self.attack.flip_threshold),
                    duty_cycle=draw.scalar(
                        "attack.pulse.duty_cycle", index, self.attack.pulse.duty_cycle
                    ),
                    ambient_temperature_k=ambient,
                    crosstalk_temperature_k=crosstalk,
                    max_pulses=self.attack.max_pulses,
                )
            except (ConvergenceError, DeviceModelError):
                # Thermal runaway or a draw outside the model's validity
                # guards: the cell is excluded, never the whole population.
                valid[index] = False
                continue
            flipped[index] = outcome.flipped
            pulses[index] = outcome.pulses
            stress[index] = outcome.stress_time_s
            wall[index] = outcome.wall_clock_s
            final_x[index] = outcome.final_x
            temperature[index] = outcome.final_temperature_k

        confidence, method = self._ci_settings()
        return MonteCarloResult(
            n_samples=n,
            seed=self.montecarlo.seed,
            engine="scalar",
            conditions=conditions,
            flipped=flipped & valid,
            pulses=pulses,
            stress_time_s=stress,
            wall_clock_s=wall,
            final_x=final_x,
            victim_temperature_k=temperature,
            valid=valid,
            weights=draw.weights(),
            draw=draw,
            ci_confidence=confidence,
            ci_method=method,
        )

"""Flip-probability and bit-error-rate maps over 2-D parameter planes.

A map evaluates one Monte-Carlo population per grid point of a 2-D plane
(e.g. pulse length × ambient temperature) and reports the flip probability —
the raw bit-error rate of the disturbance attack — at every point.  The grid
is expressed as a ``kind="montecarlo"`` :class:`~repro.campaign.spec.CampaignSpec`
and executed through the campaign runner, so maps inherit the worker pool,
the content-addressed result cache and the
:class:`~repro.experiments.base.ExperimentResult` export path for free.

Every grid point reuses the same population seed (common random numbers), so
the map surface varies only with the swept parameters, not with sampling
noise between points.

Two evaluation strategies are available.  :func:`flip_probability_map` spends
a fixed ``n_samples`` on every point.  :func:`refine_flip_probability_map`
instead allocates a global sample budget adaptively: every point gets one
seed batch, then further batches go to the points whose confidence interval
is still wider than the target — prioritising those whose interval straddles
a decision threshold (the flip boundary), which is where the map's
information actually lives.  Deep inside the P≈0 / P≈1 plateaus a single
batch already pins the interval, so the refined map reaches the same target
CI half-width with a fraction of the fixed-n circuit solves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..config import AttackConfig, JsonConfig, SimulationConfig
from ..errors import MonteCarloError
from ..obs import get_telemetry
from ..utils.tables import matrix_heatmap
from .adaptive import AdaptiveConfig
from .estimators import StreamingMeanEstimator, fixed_sample_size
from .engine import MonteCarloConfig, MonteCarloEngine


@dataclass
class MapAxis(JsonConfig):
    """One axis of a 2-D map: a swept dotted path plus its grid values."""

    path: str
    values: List[float]
    #: Display label; defaults to the path leaf.
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.values:
            raise MonteCarloError(f"map axis {self.path!r} needs at least one value")
        self.values = [float(value) for value in self.values]
        if self.label is None:
            self.label = self.path.rsplit(".", 1)[-1]


@dataclass
class FlipProbabilityMap:
    """The evaluated map: per-point probabilities plus the result table."""

    x_axis: MapAxis
    y_axis: MapAxis
    #: Flip probability, shape (len(x_axis.values), len(y_axis.values)).
    probabilities: np.ndarray
    #: Geometric-mean pulses to flip per point (NaN where nothing flipped).
    geomean_pulses: np.ndarray
    #: The flat per-point table (one row per grid point).
    result: Any  # ExperimentResult
    n_samples: int = 0

    def bit_error_rate(self) -> float:
        """Mean flip probability over the whole plane."""
        return float(self.probabilities.mean())

    def to_heatmap(self, precision: int = 3) -> str:
        """ASCII heatmap of the flip probabilities (x rows, y columns)."""
        header = (
            f"flip probability; rows: {self.x_axis.label} "
            f"({self.x_axis.values[0]:g}..{self.x_axis.values[-1]:g}), "
            f"columns: {self.y_axis.label} "
            f"({self.y_axis.values[0]:g}..{self.y_axis.values[-1]:g})"
        )
        return header + "\n" + matrix_heatmap(self.probabilities, precision=precision)


def montecarlo_map_spec(
    x_axis: MapAxis,
    y_axis: MapAxis,
    name: str = "mc-map",
    simulation: Optional[Dict[str, Any]] = None,
    attack: Optional[Dict[str, Any]] = None,
    montecarlo: Optional[Dict[str, Any]] = None,
):
    """The map as a declarative ``kind="montecarlo"`` campaign spec."""
    from ..campaign.spec import CampaignSpec

    if x_axis.path == y_axis.path:
        raise MonteCarloError("map axes must sweep two different paths")
    return CampaignSpec(
        name=name,
        experiment="montecarlo",
        kind="montecarlo",
        mode="grid",
        simulation=dict(simulation or {}),
        attack=dict(attack or {}),
        montecarlo=dict(montecarlo or {}),
        axes=[
            {"path": x_axis.path, "values": list(x_axis.values)},
            {"path": y_axis.path, "values": list(y_axis.values)},
        ],
    )


def flip_probability_map(
    x_axis: MapAxis,
    y_axis: MapAxis,
    simulation: Optional[Dict[str, Any]] = None,
    attack: Optional[Dict[str, Any]] = None,
    montecarlo: Optional[Dict[str, Any]] = None,
    name: str = "mc-map",
    workers: int = 0,
    cache=None,
) -> FlipProbabilityMap:
    """Evaluate a flip-probability map over the given 2-D parameter plane.

    ``workers``/``cache`` are forwarded to the campaign runner, so large maps
    fan out over processes and re-runs are incremental.
    """
    from ..campaign.aggregate import to_experiment_result
    from ..campaign.runner import CampaignRunner

    x_axis = x_axis if isinstance(x_axis, MapAxis) else MapAxis.from_dict(x_axis)
    y_axis = y_axis if isinstance(y_axis, MapAxis) else MapAxis.from_dict(y_axis)
    spec = montecarlo_map_spec(
        x_axis, y_axis, name=name, simulation=simulation, attack=attack, montecarlo=montecarlo
    )
    report = CampaignRunner(spec, cache=cache, workers=workers).run()
    tel = get_telemetry()
    if tel.enabled:
        tel.count("map.points", len(x_axis.values) * len(y_axis.values))
    result = to_experiment_result(
        spec,
        report,
        description=(
            f"Flip-probability map over {x_axis.label} x {y_axis.label} "
            f"({len(x_axis.values)}x{len(y_axis.values)} points)"
        ),
    )

    shape = (len(x_axis.values), len(y_axis.values))
    probabilities = np.zeros(shape)
    geomean = np.full(shape, np.nan)
    # Grid mode materialises the first axis slowest, so point index maps to
    # (x, y) in row-major order.
    for record in report.ok_records:
        row, column = divmod(record.index, shape[1])
        probabilities[row, column] = record.result["flip_probability"]
        if record.result.get("geomean_pulses_to_flip") is not None:
            geomean[row, column] = record.result["geomean_pulses_to_flip"]
    n_samples = MonteCarloConfig.from_dict(dict(montecarlo or {})).n_samples
    return FlipProbabilityMap(
        x_axis=x_axis,
        y_axis=y_axis,
        probabilities=probabilities,
        geomean_pulses=geomean,
        result=result,
        n_samples=n_samples,
    )


# ----------------------------------------------------------------------
# CI-driven refinement
# ----------------------------------------------------------------------


@dataclass
class AdaptiveFlipProbabilityMap(FlipProbabilityMap):
    """A refined map: per-point estimates plus the allocation diagnostics."""

    #: Samples actually drawn per point.
    samples_used: np.ndarray = None
    #: Final CI half-width per point.
    half_widths: np.ndarray = None
    ci_low: np.ndarray = None
    ci_high: np.ndarray = None
    #: True where the interval met the target half-width.
    converged: np.ndarray = None
    #: True where the final interval still straddles the decision threshold.
    straddling: np.ndarray = None
    target_half_width: float = 0.02
    threshold: float = 0.5
    confidence: float = 0.95
    #: Global sample budget the refinement ran under (0 = unbounded).
    budget: int = 0
    #: Total samples drawn over the whole plane.
    total_samples: int = 0
    #: Samples a fixed-n map needs for the same worst-case target
    #: (``fixed_sample_size(target) * points``) — the comparator the
    #: adaptive benchmarks report against.
    fixed_n_equivalent: int = 0

    @property
    def solve_ratio(self) -> float:
        """Fixed-n solves per adaptive solve at the same target (> 1 = win)."""
        return self.fixed_n_equivalent / self.total_samples if self.total_samples else 0.0

    def bit_error_rate(self) -> float:
        """Mean flip probability over the *sampled* points.

        Points the budget never reached are NaN and excluded; NaN is returned
        only when no point was sampled at all.
        """
        return float(np.nanmean(self.probabilities)) if np.isfinite(self.probabilities).any() else float("nan")

    def allocation_heatmap(self) -> str:
        """ASCII heatmap of the samples spent per map point."""
        header = (
            f"samples per point (total {self.total_samples}, "
            f"fixed-n equivalent {self.fixed_n_equivalent}, "
            f"{self.solve_ratio:.1f}x fewer solves)"
        )
        return header + "\n" + matrix_heatmap(self.samples_used.astype(float), precision=0)


@dataclass
class _PointState:
    """Refinement bookkeeping of one map point."""

    index: int
    engine: MonteCarloEngine
    sampler: Any  # AdaptiveSampler
    log_pulses: StreamingMeanEstimator = field(default_factory=StreamingMeanEstimator)
    flip_count: int = 0

    def interval(self):
        if self.sampler.estimator is None:
            return 0.0, 1.0
        return self.sampler.estimator.interval()

    def half_width(self) -> float:
        if self.sampler.estimator is None:
            return float("inf")
        return float(self.sampler.estimator.half_width())

    def straddles(self, threshold: float) -> bool:
        low, high = self.interval()
        return low < threshold < high

    def estimate(self) -> float:
        """NaN until the point receives its first batch: an unsampled point
        must never masquerade as a measured P = 0 plateau."""
        if self.sampler.estimator is None:
            return float("nan")
        return float(self.sampler.estimator.estimate)


def refine_flip_probability_map(
    x_axis: MapAxis,
    y_axis: MapAxis,
    simulation: Optional[Dict[str, Any]] = None,
    attack: Optional[Dict[str, Any]] = None,
    montecarlo: Optional[Dict[str, Any]] = None,
    name: str = "mc-map",
    target_half_width: float = 0.02,
    budget: int = 0,
    threshold: float = 0.5,
    batch_size: int = 64,
    point_n_max: int = 16384,
    confidence: float = 0.95,
    method: str = "wilson",
) -> AdaptiveFlipProbabilityMap:
    """Evaluate a flip-probability map under a CI-driven sample allocation.

    Every grid point starts with one batch; afterwards each round allocates
    one more batch to every point whose interval is still wider than
    ``target_half_width``, ordered so that points whose interval straddles
    ``threshold`` (the undecided flip boundary) come first.  The loop stops
    when every point converged, hit ``point_n_max``, or the global ``budget``
    (total samples across the plane; 0 = unbounded) ran out.

    Reproducibility: points share the population seed and batch ``i`` of any
    point draws through spawn key ``("batch", i)``, so the refined map is a
    pure function of the spec — the allocation order never changes the draws.
    """
    from ..experiments.base import ExperimentResult
    from .adaptive import AdaptiveSampler

    x_axis = x_axis if isinstance(x_axis, MapAxis) else MapAxis.from_dict(x_axis)
    y_axis = y_axis if isinstance(y_axis, MapAxis) else MapAxis.from_dict(y_axis)
    if not 0.0 < threshold < 1.0:
        raise MonteCarloError("refinement threshold must be in (0, 1)")
    if budget < 0:
        raise MonteCarloError("budget must be non-negative (0 = unbounded)")
    spec = montecarlo_map_spec(
        x_axis, y_axis, name=name, simulation=simulation, attack=attack, montecarlo=montecarlo
    )
    points = spec.materialise()
    adaptive = AdaptiveConfig(
        batch_size=batch_size,
        n_max=point_n_max,
        target_half_width=target_half_width,
        confidence=confidence,
        method=method,
    )

    states: List[_PointState] = []
    for point in points:
        config = MonteCarloConfig.from_dict(point.job["montecarlo"])
        config.adaptive = None  # the refiner owns the stopping decisions
        engine = MonteCarloEngine(
            config,
            simulation=SimulationConfig.from_dict(point.job["simulation"]),
            attack=AttackConfig.from_dict(point.job["attack"]),
        )
        state = _PointState(index=point.index, engine=engine, sampler=None)

        def evaluate(batch_index: int, n: int, state: "_PointState" = state):
            result = state.engine.run_batch(n, batch_index)
            mask = result.valid
            flipped = result.flipped & mask
            pulses = result.pulses[flipped]
            if pulses.size:
                state.log_pulses.update(np.log(pulses))
                state.flip_count += int(pulses.size)
            weights = result.weights[mask] if result.weights is not None else None
            return flipped[mask], weights

        state.sampler = AdaptiveSampler(adaptive, evaluate)
        states.append(state)

    total = 0
    exhausted_budget = False
    tel = get_telemetry()
    with tel.span("mc.map.refine", points=len(states)):
        while not exhausted_budget:
            pending = [
                state
                for state in states
                if not state.sampler.satisfied and not state.sampler.exhausted
            ]
            if not pending:
                break
            if tel.enabled:
                tel.count("map.refine.rounds")
            # The flip boundary first: undecided (straddling) points carry the
            # map's information; plateaus only polish an already-decided answer.
            pending.sort(
                key=lambda state: (
                    not state.straddles(threshold),
                    -state.half_width(),
                    state.index,
                )
            )
            for state in pending:
                next_n = min(adaptive.batch_size, adaptive.n_max - state.sampler.n_drawn)
                if budget and total + next_n > budget:
                    # The budget is a hard ceiling: never start a batch that
                    # would cross it.
                    exhausted_budget = True
                    break
                record = state.sampler.step()
                total += record.n_drawn
    if tel.enabled:
        tel.count("map.refine.samples", total)

    shape = (len(x_axis.values), len(y_axis.values))
    # NaN marks points the budget never reached (no batch drawn).
    probabilities = np.full(shape, np.nan)
    geomean = np.full(shape, np.nan)
    samples_used = np.zeros(shape, dtype=np.int64)
    half_widths = np.full(shape, np.inf)
    ci_low = np.zeros(shape)
    ci_high = np.ones(shape)
    converged = np.zeros(shape, dtype=bool)
    straddling = np.zeros(shape, dtype=bool)

    result = ExperimentResult(
        name=name,
        description=(
            f"CI-refined flip-probability map over {x_axis.label} x {y_axis.label} "
            f"({shape[0]}x{shape[1]} points, target half-width {target_half_width:g})"
        ),
        columns=[
            x_axis.label,
            y_axis.label,
            "flip_probability",
            "ci_low",
            "ci_high",
            "half_width",
            "n_samples",
            "converged",
            "straddling",
        ],
    )
    for state in states:
        row, column = divmod(state.index, shape[1])
        low, high = state.interval()
        probabilities[row, column] = state.estimate()
        samples_used[row, column] = state.sampler.n_drawn
        half_widths[row, column] = state.half_width()
        ci_low[row, column] = low
        ci_high[row, column] = high
        converged[row, column] = state.sampler.satisfied
        straddling[row, column] = state.straddles(threshold)
        if state.flip_count:
            geomean[row, column] = float(np.exp(state.log_pulses.mean))
        result.add_row(
            **{
                x_axis.label: x_axis.values[row],
                y_axis.label: y_axis.values[column],
                "flip_probability": probabilities[row, column],
                "ci_low": low,
                "ci_high": high,
                "half_width": half_widths[row, column],
                "n_samples": int(samples_used[row, column]),
                "converged": bool(converged[row, column]),
                "straddling": bool(straddling[row, column]),
            }
        )

    fixed_equivalent = fixed_sample_size(target_half_width, confidence) * len(states)
    result.metadata.update(
        {
            "target_half_width": target_half_width,
            "threshold": threshold,
            "confidence": confidence,
            "budget": budget,
            "total_samples": int(total),
            "fixed_n_equivalent": int(fixed_equivalent),
            "points_converged": int(converged.sum()),
            "points_straddling": int(straddling.sum()),
            "points_unsampled": int((samples_used == 0).sum()),
        }
    )
    return AdaptiveFlipProbabilityMap(
        x_axis=x_axis,
        y_axis=y_axis,
        probabilities=probabilities,
        geomean_pulses=geomean,
        result=result,
        n_samples=0,
        samples_used=samples_used,
        half_widths=half_widths,
        ci_low=ci_low,
        ci_high=ci_high,
        converged=converged,
        straddling=straddling,
        target_half_width=target_half_width,
        threshold=threshold,
        confidence=confidence,
        budget=budget,
        total_samples=int(total),
        fixed_n_equivalent=int(fixed_equivalent),
    )

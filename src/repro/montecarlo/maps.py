"""Flip-probability and bit-error-rate maps over 2-D parameter planes.

A map evaluates one Monte-Carlo population per grid point of a 2-D plane
(e.g. pulse length × ambient temperature) and reports the flip probability —
the raw bit-error rate of the disturbance attack — at every point.  The grid
is expressed as a ``kind="montecarlo"`` :class:`~repro.campaign.spec.CampaignSpec`
and executed through the campaign runner, so maps inherit the worker pool,
the content-addressed result cache and the
:class:`~repro.experiments.base.ExperimentResult` export path for free.

Every grid point reuses the same population seed (common random numbers), so
the map surface varies only with the swept parameters, not with sampling
noise between points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from ..config import JsonConfig
from ..errors import MonteCarloError
from ..utils.tables import matrix_heatmap
from .engine import MonteCarloConfig


@dataclass
class MapAxis(JsonConfig):
    """One axis of a 2-D map: a swept dotted path plus its grid values."""

    path: str
    values: List[float]
    #: Display label; defaults to the path leaf.
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.values:
            raise MonteCarloError(f"map axis {self.path!r} needs at least one value")
        self.values = [float(value) for value in self.values]
        if self.label is None:
            self.label = self.path.rsplit(".", 1)[-1]


@dataclass
class FlipProbabilityMap:
    """The evaluated map: per-point probabilities plus the result table."""

    x_axis: MapAxis
    y_axis: MapAxis
    #: Flip probability, shape (len(x_axis.values), len(y_axis.values)).
    probabilities: np.ndarray
    #: Geometric-mean pulses to flip per point (NaN where nothing flipped).
    geomean_pulses: np.ndarray
    #: The flat per-point table (one row per grid point).
    result: Any  # ExperimentResult
    n_samples: int = 0

    def bit_error_rate(self) -> float:
        """Mean flip probability over the whole plane."""
        return float(self.probabilities.mean())

    def to_heatmap(self, precision: int = 3) -> str:
        """ASCII heatmap of the flip probabilities (x rows, y columns)."""
        header = (
            f"flip probability; rows: {self.x_axis.label} "
            f"({self.x_axis.values[0]:g}..{self.x_axis.values[-1]:g}), "
            f"columns: {self.y_axis.label} "
            f"({self.y_axis.values[0]:g}..{self.y_axis.values[-1]:g})"
        )
        return header + "\n" + matrix_heatmap(self.probabilities, precision=precision)


def montecarlo_map_spec(
    x_axis: MapAxis,
    y_axis: MapAxis,
    name: str = "mc-map",
    simulation: Optional[Dict[str, Any]] = None,
    attack: Optional[Dict[str, Any]] = None,
    montecarlo: Optional[Dict[str, Any]] = None,
):
    """The map as a declarative ``kind="montecarlo"`` campaign spec."""
    from ..campaign.spec import CampaignSpec

    if x_axis.path == y_axis.path:
        raise MonteCarloError("map axes must sweep two different paths")
    return CampaignSpec(
        name=name,
        experiment="montecarlo",
        kind="montecarlo",
        mode="grid",
        simulation=dict(simulation or {}),
        attack=dict(attack or {}),
        montecarlo=dict(montecarlo or {}),
        axes=[
            {"path": x_axis.path, "values": list(x_axis.values)},
            {"path": y_axis.path, "values": list(y_axis.values)},
        ],
    )


def flip_probability_map(
    x_axis: MapAxis,
    y_axis: MapAxis,
    simulation: Optional[Dict[str, Any]] = None,
    attack: Optional[Dict[str, Any]] = None,
    montecarlo: Optional[Dict[str, Any]] = None,
    name: str = "mc-map",
    workers: int = 0,
    cache=None,
) -> FlipProbabilityMap:
    """Evaluate a flip-probability map over the given 2-D parameter plane.

    ``workers``/``cache`` are forwarded to the campaign runner, so large maps
    fan out over processes and re-runs are incremental.
    """
    from ..campaign.aggregate import to_experiment_result
    from ..campaign.runner import CampaignRunner

    x_axis = x_axis if isinstance(x_axis, MapAxis) else MapAxis.from_dict(x_axis)
    y_axis = y_axis if isinstance(y_axis, MapAxis) else MapAxis.from_dict(y_axis)
    spec = montecarlo_map_spec(
        x_axis, y_axis, name=name, simulation=simulation, attack=attack, montecarlo=montecarlo
    )
    report = CampaignRunner(spec, cache=cache, workers=workers).run()
    result = to_experiment_result(
        spec,
        report,
        description=(
            f"Flip-probability map over {x_axis.label} x {y_axis.label} "
            f"({len(x_axis.values)}x{len(y_axis.values)} points)"
        ),
    )

    shape = (len(x_axis.values), len(y_axis.values))
    probabilities = np.zeros(shape)
    geomean = np.full(shape, np.nan)
    # Grid mode materialises the first axis slowest, so point index maps to
    # (x, y) in row-major order.
    for record in report.ok_records:
        row, column = divmod(record.index, shape[1])
        probabilities[row, column] = record.result["flip_probability"]
        if record.result.get("geomean_pulses_to_flip") is not None:
            geomean[row, column] = record.result["geomean_pulses_to_flip"]
    n_samples = MonteCarloConfig.from_dict(dict(montecarlo or {})).n_samples
    return FlipProbabilityMap(
        x_axis=x_axis,
        y_axis=y_axis,
        probabilities=probabilities,
        geomean_pulses=geomean,
        result=result,
        n_samples=n_samples,
    )

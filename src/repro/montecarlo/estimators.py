"""Streaming statistical estimators for Monte-Carlo flip probabilities.

The Monte-Carlo engine reports flip probabilities — Bernoulli proportions
estimated from sampled populations.  This module provides the estimator layer
every statistical workload shares:

* :class:`StreamingBinomialEstimator` — a streaming success/trial counter with
  Wilson-score and Jeffreys (Beta posterior) confidence intervals.  Batched
  updates are exact: feeding one stream in any batching yields identical
  state, which is what makes adaptive (sequential) sampling reproducible.
* :class:`StreamingMeanEstimator` — a numerically stable (Welford/Chan)
  streaming mean/variance with a normal-approximation interval, used for
  pulses-to-flip statistics accumulated across batches.
* :class:`ImportanceEstimator` — the self-normalized likelihood-ratio
  estimator for populations drawn from a tilted proposal distribution, with
  a delta-method interval and the effective-sample-size diagnostic.

The special functions needed for the intervals (inverse normal CDF,
regularized incomplete beta and its inverse) are implemented here with
library-grade algorithms (Acklam's rational approximation; the Lentz
continued fraction), so the estimator layer has no dependency beyond NumPy —
SciPy, where installed, is only used by the tests to cross-check them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import MonteCarloError

#: Interval methods understood by :class:`StreamingBinomialEstimator`.
INTERVAL_METHODS = ("wilson", "jeffreys")


# ----------------------------------------------------------------------
# special functions (NumPy/stdlib only)
# ----------------------------------------------------------------------


def normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's algorithm, |rel err| < 1.2e-9)."""
    if not 0.0 < p < 1.0:
        raise MonteCarloError(f"normal quantile needs p in (0, 1), got {p}")
    # Coefficients of Acklam's rational approximation.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low, p_high = 0.02425, 1.0 - 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    elif p <= p_high:
        q = p - 0.5
        r = q * q
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        )
    else:
        q = math.sqrt(-2.0 * math.log1p(-p))
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    # One Halley refinement step against the exact CDF (erfc is in math).
    err = 0.5 * math.erfc(-x / math.sqrt(2.0)) - p
    u = err * math.sqrt(2.0 * math.pi) * math.exp(0.5 * x * x)
    return x - u / (1.0 + 0.5 * x * u)


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction of the incomplete beta function (Lentz's method)."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 300):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            return h
    return h  # converged to double precision long before 300 terms in practice


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """``I_x(a, b)``, the CDF of the Beta(a, b) distribution at ``x``."""
    if a <= 0.0 or b <= 0.0:
        raise MonteCarloError("beta parameters must be positive")
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
        + a * math.log(x) + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    # The continued fraction converges fast for x < (a + 1) / (a + b + 2);
    # use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) otherwise.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def beta_quantile(q: float, a: float, b: float) -> float:
    """Inverse CDF of Beta(a, b) by bisection on the regularized beta."""
    if not 0.0 <= q <= 1.0:
        raise MonteCarloError(f"beta quantile needs q in [0, 1], got {q}")
    if q == 0.0:
        return 0.0
    if q == 1.0:
        return 1.0
    low, high = 0.0, 1.0
    for _ in range(200):
        mid = 0.5 * (low + high)
        if regularized_incomplete_beta(a, b, mid) < q:
            low = mid
        else:
            high = mid
        if high - low < 1e-14:
            break
    return 0.5 * (low + high)


def wilson_interval(successes: float, trials: float, confidence: float = 0.95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        return 0.0, 1.0
    z = normal_quantile(0.5 + 0.5 * confidence)
    p = successes / trials
    z2 = z * z
    denominator = 1.0 + z2 / trials
    centre = (p + z2 / (2.0 * trials)) / denominator
    margin = (z / denominator) * math.sqrt(p * (1.0 - p) / trials + z2 / (4.0 * trials * trials))
    return max(0.0, centre - margin), min(1.0, centre + margin)


def jeffreys_interval(successes: float, trials: float, confidence: float = 0.95) -> Tuple[float, float]:
    """Jeffreys (Beta(1/2, 1/2) posterior) equal-tailed credible interval.

    Follows the standard convention: the lower bound is 0 when no successes
    were observed and the upper bound is 1 when no failures were, so the
    interval never excludes a boundary the data cannot rule out.
    """
    if trials <= 0:
        return 0.0, 1.0
    alpha = 1.0 - confidence
    a = successes + 0.5
    b = trials - successes + 0.5
    low = 0.0 if successes <= 0 else beta_quantile(alpha / 2.0, a, b)
    high = 1.0 if successes >= trials else beta_quantile(1.0 - alpha / 2.0, a, b)
    return low, high


def fixed_sample_size(target_half_width: float, confidence: float = 0.95) -> int:
    """Samples a fixed-n run needs so the worst-case (p = 1/2) Wilson interval
    half-width meets ``target_half_width``.

    At p = 1/2 the Wilson half-width is exactly ``z / (2 sqrt(n + z^2))``, so
    the bound inverts in closed form.  This is the fixed-n comparator the
    adaptive benchmarks measure against.
    """
    if target_half_width <= 0.0:
        raise MonteCarloError("target_half_width must be positive")
    z = normal_quantile(0.5 + 0.5 * confidence)
    n = z * z / (4.0 * target_half_width * target_half_width) - z * z
    return max(1, int(math.ceil(n)))


# ----------------------------------------------------------------------
# streaming estimators
# ----------------------------------------------------------------------


class StreamingBinomialEstimator:
    """Streaming Bernoulli-proportion estimator with Wilson/Jeffreys intervals.

    Updates are batched and associative: any partition of the same outcome
    stream produces the identical (successes, trials) state, so sequential
    (adaptive) runs match their one-shot equivalents exactly.
    """

    def __init__(self, confidence: float = 0.95, method: str = "wilson"):
        if not 0.0 < confidence < 1.0:
            raise MonteCarloError("confidence must be in (0, 1)")
        if method not in INTERVAL_METHODS:
            raise MonteCarloError(
                f"unknown interval method {method!r}; expected one of {INTERVAL_METHODS}"
            )
        self.confidence = float(confidence)
        self.method = method
        self.trials = 0
        self.successes = 0

    def update(self, outcomes: np.ndarray) -> None:
        """Fold one batch of boolean outcomes into the stream."""
        outcomes = np.asarray(outcomes)
        self.trials += int(outcomes.size)
        self.successes += int(np.count_nonzero(outcomes))

    def update_counts(self, successes: int, trials: int) -> None:
        """Fold pre-counted successes/trials (e.g. from a cached record)."""
        if trials < 0 or successes < 0 or successes > trials:
            raise MonteCarloError("need 0 <= successes <= trials")
        self.trials += int(trials)
        self.successes += int(successes)

    @property
    def estimate(self) -> float:
        """The point estimate p-hat (0 while the stream is empty)."""
        return self.successes / self.trials if self.trials else 0.0

    def interval(self) -> Tuple[float, float]:
        """The configured confidence interval at the current state."""
        if self.method == "jeffreys":
            return jeffreys_interval(self.successes, self.trials, self.confidence)
        return wilson_interval(self.successes, self.trials, self.confidence)

    def half_width(self) -> float:
        """Half the current interval width (inf while the stream is empty)."""
        if not self.trials:
            return float("inf")
        low, high = self.interval()
        return 0.5 * (high - low)

    @property
    def effective_sample_size(self) -> float:
        """Trials seen (uniform weights); mirrors :class:`ImportanceEstimator`."""
        return float(self.trials)


class ClusteredBinomialEstimator:
    """Streaming proportion estimator for cluster-sampled Bernoulli lanes.

    Full-array Monte-Carlo draws whole arrays: the victim lanes of one array
    share its per-cell draws, environment draw and nodal solve, so they are
    one *cluster*, not independent trials.  The point estimate is still the
    pooled lane fraction ``sum(x_a) / sum(m_a)``, but the interval uses the
    cluster-robust (ratio-estimator) variance over arrays::

        se^2 = A/(A-1) * sum_a (x_a - p m_a)^2 / (sum_a m_a)^2

    which is exact for any within-cluster correlation structure and reduces
    to the iid width when lanes are actually independent.  Updates stream
    per batch of clusters via sufficient statistics, so batching is exact.
    """

    method = "cluster"

    def __init__(self, confidence: float = 0.95):
        if not 0.0 < confidence < 1.0:
            raise MonteCarloError("confidence must be in (0, 1)")
        self.confidence = float(confidence)
        self.clusters = 0
        self.trials = 0
        self.successes = 0
        self._sum_x2 = 0.0
        self._sum_xm = 0.0
        self._sum_m2 = 0.0

    def update(self, outcomes) -> None:
        """Fold a batch of clusters.

        Accepts either a 2-D bool array (one row per cluster, every lane
        counted) or a ``(successes, sizes)`` pair of per-cluster arrays for
        clusters with excluded lanes.
        """
        if isinstance(outcomes, tuple):
            successes, sizes = outcomes
            self.update_counts(successes, sizes)
            return
        outcomes = np.asarray(outcomes, dtype=bool)
        if outcomes.ndim != 2:
            raise MonteCarloError("clustered updates need a (clusters, lanes) bool array")
        sizes = np.full(outcomes.shape[0], outcomes.shape[1], dtype=np.float64)
        self.update_counts(outcomes.sum(axis=1).astype(np.float64), sizes)

    def update_counts(self, successes: np.ndarray, sizes: np.ndarray) -> None:
        """Fold per-cluster (successes, lane count) pairs; empty clusters are
        dropped (an array whose every lane was excluded carries no data)."""
        successes = np.asarray(successes, dtype=np.float64).ravel()
        sizes = np.asarray(sizes, dtype=np.float64).ravel()
        if successes.shape != sizes.shape:
            raise MonteCarloError("successes and sizes must have the same length")
        keep = sizes > 0
        successes, sizes = successes[keep], sizes[keep]
        self.clusters += int(successes.size)
        self.trials += int(sizes.sum())
        self.successes += int(successes.sum())
        self._sum_x2 += float((successes * successes).sum())
        self._sum_xm += float((successes * sizes).sum())
        self._sum_m2 += float((sizes * sizes).sum())

    @property
    def estimate(self) -> float:
        """Pooled lane-level proportion."""
        return self.successes / self.trials if self.trials else 0.0

    @property
    def effective_sample_size(self) -> float:
        """Number of independent clusters behind the interval."""
        return float(self.clusters)

    def standard_error(self) -> float:
        if self.clusters < 2 or self.trials <= 0:
            return float("inf")
        p = self.estimate
        # sum (x_a - p m_a)^2 expanded into the streaming accumulators.
        spread = self._sum_x2 - 2.0 * p * self._sum_xm + p * p * self._sum_m2
        factor = self.clusters / (self.clusters - 1.0)
        return math.sqrt(max(factor * spread, 0.0)) / self.trials

    def interval(self) -> Tuple[float, float]:
        """Cluster-robust normal interval, clipped to [0, 1].

        At the all-zero / all-one boundaries the spread (and thus the normal
        width) degenerates; those states fall back to a Wilson bound at the
        cluster count, the number of genuinely independent observations.
        """
        if not self.clusters:
            return 0.0, 1.0
        if self.successes <= 0 or self.successes >= self.trials:
            boundary = 0 if self.successes <= 0 else self.clusters
            return wilson_interval(boundary, self.clusters, self.confidence)
        se = self.standard_error()
        if not math.isfinite(se):
            return 0.0, 1.0
        z = normal_quantile(0.5 + 0.5 * self.confidence)
        p = self.estimate
        return max(0.0, p - z * se), min(1.0, p + z * se)

    def half_width(self) -> float:
        if not self.clusters:
            return float("inf")
        low, high = self.interval()
        return 0.5 * (high - low)


class StreamingMeanEstimator:
    """Streaming mean/variance (Chan's parallel Welford) with a normal CI."""

    def __init__(self, confidence: float = 0.95):
        if not 0.0 < confidence < 1.0:
            raise MonteCarloError("confidence must be in (0, 1)")
        self.confidence = float(confidence)
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def update(self, values: np.ndarray) -> None:
        """Fold one batch of values into the stream."""
        values = np.asarray(values, dtype=np.float64).ravel()
        n = int(values.size)
        if n == 0:
            return
        batch_mean = float(values.mean())
        batch_m2 = float(((values - batch_mean) ** 2).sum())
        total = self.count + n
        delta = batch_mean - self._mean
        self._m2 += batch_m2 + delta * delta * self.count * n / total
        self._mean += delta * n / total
        self.count = total

    @property
    def mean(self) -> float:
        return self._mean if self.count else float("nan")

    @property
    def variance(self) -> float:
        """Unbiased sample variance of the stream."""
        return self._m2 / (self.count - 1) if self.count > 1 else float("nan")

    def interval(self) -> Tuple[float, float]:
        """Normal-approximation interval on the mean."""
        if self.count < 2:
            return float("-inf"), float("inf")
        z = normal_quantile(0.5 + 0.5 * self.confidence)
        half = z * math.sqrt(self.variance / self.count)
        return self._mean - half, self._mean + half

    def half_width(self) -> float:
        low, high = self.interval()
        return 0.5 * (high - low)


class ImportanceEstimator:
    """Self-normalized importance-sampling estimator of a Bernoulli mean.

    The population is drawn from a tilted proposal ``g``; each sample carries
    the likelihood ratio ``w = f/g`` against the nominal distribution ``f``
    (any constant factor cancels).  The estimate is the ratio estimator
    ``p = sum(w f) / sum(w)`` with the standard delta-method variance, and
    :attr:`effective_sample_size` quantifies how much of the sample budget the
    weight spread wastes — an ESS far below the sample count means the tilt
    overshot the important region.
    """

    def __init__(self, confidence: float = 0.95):
        if not 0.0 < confidence < 1.0:
            raise MonteCarloError("confidence must be in (0, 1)")
        self.confidence = float(confidence)
        self.trials = 0
        self._sum_w = 0.0
        self._sum_w2 = 0.0
        self._sum_wf = 0.0
        self._sum_w2f = 0.0

    def update(self, outcomes: np.ndarray, weights: np.ndarray) -> None:
        """Fold one batch of boolean outcomes and their likelihood ratios."""
        outcomes = np.asarray(outcomes, dtype=bool).ravel()
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if outcomes.shape != weights.shape:
            raise MonteCarloError("outcomes and weights must have the same length")
        if np.any(weights < 0.0) or not np.all(np.isfinite(weights)):
            raise MonteCarloError("importance weights must be finite and non-negative")
        self.trials += int(outcomes.size)
        self._sum_w += float(weights.sum())
        self._sum_w2 += float((weights * weights).sum())
        flipped = weights[outcomes]
        self._sum_wf += float(flipped.sum())
        self._sum_w2f += float((flipped * flipped).sum())

    @property
    def estimate(self) -> float:
        """The self-normalized estimate sum(w f)/sum(w)."""
        return self._sum_wf / self._sum_w if self._sum_w > 0.0 else 0.0

    @property
    def effective_sample_size(self) -> float:
        """Kish effective sample size ``(sum w)^2 / sum w^2``."""
        return self._sum_w * self._sum_w / self._sum_w2 if self._sum_w2 > 0.0 else 0.0

    def standard_error(self) -> float:
        """Delta-method standard error of the ratio estimate."""
        if self.trials < 2 or self._sum_w <= 0.0:
            return float("inf")
        p = self.estimate
        # sum of w^2 (f - p)^2 with boolean f: f^2 = f.
        numerator = (1.0 - 2.0 * p) * self._sum_w2f + p * p * self._sum_w2
        return math.sqrt(max(numerator, 0.0)) / self._sum_w

    def interval(self) -> Tuple[float, float]:
        """Normal-approximation interval, clipped to [0, 1].

        With no observed successes (or no failures) the delta-method variance
        degenerates to zero, which would collapse the interval and fool a
        sequential stopping rule into instant "convergence"; those boundary
        states fall back to a Wilson bound at the Kish effective sample size,
        mirroring how the plain binomial estimator keeps nonzero width at
        k = 0 and k = n.
        """
        se = self.standard_error()
        if not math.isfinite(se):
            return 0.0, 1.0
        if self._sum_wf <= 0.0 or self._sum_wf >= self._sum_w:
            ess = self.effective_sample_size
            successes = 0.0 if self._sum_wf <= 0.0 else ess
            return wilson_interval(successes, ess, self.confidence)
        z = normal_quantile(0.5 + 0.5 * self.confidence)
        p = self.estimate
        return max(0.0, p - z * se), min(1.0, p + z * se)

    def half_width(self) -> float:
        if not self.trials:
            return float("inf")
        low, high = self.interval()
        return 0.5 * (high - low)


@dataclass
class EstimatorState:
    """Snapshot of an estimator, serialisable into result summaries."""

    estimate: float
    ci_low: float
    ci_high: float
    half_width: float
    confidence: float
    method: str
    trials: int
    effective_sample_size: Optional[float] = None

    @classmethod
    def capture(cls, estimator) -> "EstimatorState":
        low, high = estimator.interval()
        method = getattr(estimator, "method", "importance")
        ess = estimator.effective_sample_size
        return cls(
            estimate=float(estimator.estimate),
            ci_low=float(low),
            ci_high=float(high),
            half_width=float(estimator.half_width()),
            confidence=float(estimator.confidence),
            method=method,
            trials=int(estimator.trials),
            effective_sample_size=float(ess) if ess is not None else None,
        )

    def to_dict(self) -> dict:
        return {
            "estimate": self.estimate,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "half_width": self.half_width,
            "confidence": self.confidence,
            "method": self.method,
            "trials": self.trials,
            "effective_sample_size": self.effective_sample_size,
        }

"""Seeded parameter distributions for Monte-Carlo cell populations.

Device-to-device and cycle-to-cycle variation is described as a list of
:class:`ParameterDistribution` objects.  Each distribution addresses one
scalar through a dotted path — the same addressing scheme the campaign
engine's sweep axes use — rooted at one of:

``device``
    A field of :class:`~repro.devices.jart_vcm.JartVcmParameters`
    (e.g. ``device.activation_energy_ev``, ``device.series_resistance_ohm``).
``attack``
    A numeric field of :class:`~repro.config.AttackConfig`
    (e.g. ``attack.pulse.length_s``, ``attack.ambient_temperature_k``).
``operating``
    A victim operating-point input normally derived from the circuit solve
    (``operating.victim_voltage_v``, ``operating.crosstalk_temperature_k``),
    for studies that perturb the electrical environment directly.

Distributions draw either absolute values or, with ``relative=True``,
multiplicative factors applied to the nominal value — the natural idiom for
"±5 % sigma around nominal" process variation.  Every distribution owns an
independent child stream of the population seed (see :mod:`repro.utils.rng`),
so adding or removing one distribution never changes the draws of the others.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..config import JsonConfig
from ..devices.jart_vcm import JartVcmParameters
from ..errors import MonteCarloError
from ..utils.rng import child_rng

#: Distribution families understood by the sampler.
DISTRIBUTION_KINDS = ("normal", "lognormal", "uniform")

#: Path roots a distribution may address.
PATH_ROOTS = ("device", "attack", "operating")

#: Device-model fields that may vary per cell (every float field of the
#: JART parameter set).
DEVICE_FIELDS = tuple(
    f.name for f in fields(JartVcmParameters) if f.name != "charge_number"
)

#: Attack-config paths the engine consumes per cell.
ATTACK_PATHS = (
    "attack.pulse.length_s",
    "attack.pulse.amplitude_v",
    "attack.pulse.duty_cycle",
    "attack.ambient_temperature_k",
    "attack.flip_threshold",
)

#: Operating-point inputs that may be perturbed directly.
OPERATING_PATHS = (
    "operating.victim_voltage_v",
    "operating.crosstalk_temperature_k",
)

#: Number of truncation resampling rounds before giving up.
_MAX_TRUNCATION_ROUNDS = 64


def known_paths() -> List[str]:
    """Every dotted path the sampler accepts, for error messages and docs."""
    return [f"device.{name}" for name in DEVICE_FIELDS] + list(ATTACK_PATHS) + list(OPERATING_PATHS)


@dataclass
class ParameterDistribution(JsonConfig):
    """One sampled parameter of the cell population.

    ``normal`` draws from N(``mean``, ``sigma``); ``lognormal`` draws
    ``exp(N(log(mean), sigma))`` so ``mean`` is the median of the samples;
    ``uniform`` draws from [``low``, ``high``].  ``truncate_low`` /
    ``truncate_high`` clip the support by resampling (not clamping, which
    would pile probability mass onto the bounds).  With ``relative=True`` the
    draws multiply the nominal value instead of replacing it.
    """

    path: str
    kind: str = "normal"
    mean: Optional[float] = None
    sigma: Optional[float] = None
    low: Optional[float] = None
    high: Optional[float] = None
    relative: bool = False
    truncate_low: Optional[float] = None
    truncate_high: Optional[float] = None
    #: Fraction of the (log-)normal variance shared by every cell of one die
    #: (full-array mode): 0 = fully independent cells, 1 = every cell of an
    #: array draws the same value.  Only consumed by per-cell draws.
    within_die: float = 0.0

    def __post_init__(self) -> None:
        root = self.path.split(".", 1)[0] if "." in self.path else ""
        if root not in PATH_ROOTS:
            raise MonteCarloError(
                f"distribution path {self.path!r} must be a dotted path rooted at one of {PATH_ROOTS}"
            )
        if self.path not in known_paths():
            raise MonteCarloError(
                f"distribution path {self.path!r} is not a sampleable parameter; "
                f"known paths: {', '.join(known_paths())}"
            )
        if self.kind not in DISTRIBUTION_KINDS:
            raise MonteCarloError(
                f"distribution {self.path!r}: unknown kind {self.kind!r}; expected one of {DISTRIBUTION_KINDS}"
            )
        if self.kind in ("normal", "lognormal"):
            if self.mean is None or self.sigma is None:
                raise MonteCarloError(f"distribution {self.path!r}: {self.kind} needs mean and sigma")
            if self.sigma < 0:
                raise MonteCarloError(f"distribution {self.path!r}: sigma must be non-negative")
            if self.kind == "lognormal" and self.mean <= 0:
                raise MonteCarloError(f"distribution {self.path!r}: lognormal needs a positive mean")
            if self.low is not None or self.high is not None:
                raise MonteCarloError(
                    f"distribution {self.path!r}: low/high belong to uniform; use truncate_low/high"
                )
        else:
            if self.low is None or self.high is None:
                raise MonteCarloError(f"distribution {self.path!r}: uniform needs low and high")
            if not self.high > self.low:
                raise MonteCarloError(f"distribution {self.path!r}: high must exceed low")
            if self.mean is not None or self.sigma is not None:
                raise MonteCarloError(f"distribution {self.path!r}: mean/sigma belong to normal/lognormal")
        if (
            self.truncate_low is not None
            and self.truncate_high is not None
            and not self.truncate_high > self.truncate_low
        ):
            raise MonteCarloError(f"distribution {self.path!r}: truncate_high must exceed truncate_low")
        if not 0.0 <= self.within_die <= 1.0:
            raise MonteCarloError(f"distribution {self.path!r}: within_die must lie in [0, 1]")
        if self.within_die > 0.0 and self.kind == "uniform":
            raise MonteCarloError(
                f"distribution {self.path!r}: within_die correlation is only defined for "
                "normal/lognormal distributions"
            )

    # ------------------------------------------------------------------

    def _draw(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.kind == "normal":
            return rng.normal(self.mean, self.sigma, size=n)
        if self.kind == "lognormal":
            return np.exp(rng.normal(np.log(self.mean), self.sigma, size=n))
        return rng.uniform(self.low, self.high, size=n)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` values, resampling any that violate the truncation."""
        values = self._draw(rng, n)
        if self.truncate_low is None and self.truncate_high is None:
            return values
        for _ in range(_MAX_TRUNCATION_ROUNDS):
            bad = np.zeros(n, dtype=bool)
            if self.truncate_low is not None:
                bad |= values < self.truncate_low
            if self.truncate_high is not None:
                bad |= values > self.truncate_high
            count = int(bad.sum())
            if count == 0:
                return values
            values[bad] = self._draw(rng, count)
        raise MonteCarloError(
            f"distribution {self.path!r}: truncation bounds reject nearly all samples "
            f"({count}/{n} still outside after {_MAX_TRUNCATION_ROUNDS} resampling rounds)"
        )

    # ------------------------------------------------------------------
    # per-cell (full-array) draws
    # ------------------------------------------------------------------

    def _outside_truncation(self, values: np.ndarray) -> np.ndarray:
        bad = np.zeros(values.shape, dtype=bool)
        if self.truncate_low is not None:
            bad |= values < self.truncate_low
        if self.truncate_high is not None:
            bad |= values > self.truncate_high
        return bad

    def sample_cells(self, rng: np.random.Generator, n_arrays: int, cells: int) -> np.ndarray:
        """Per-cell draws for ``n_arrays`` sampled arrays, shape (n_arrays, cells).

        For normal/lognormal the (log-)variance splits into a within-die
        component shared by every cell of one array (fraction
        :attr:`within_die`) and an independent cell-to-cell component — the
        standard separation of die-to-die and local process variation.
        Truncation resamples the cell component only (the die keeps its
        shared draw); with ``within_die == 1`` the shared draw itself is
        resampled for offending arrays.
        """
        if self.kind == "uniform":
            values = rng.uniform(self.low, self.high, size=(n_arrays, cells))
            for _ in range(_MAX_TRUNCATION_ROUNDS):
                bad = self._outside_truncation(values)
                count = int(bad.sum())
                if count == 0:
                    return values
                values[bad] = rng.uniform(self.low, self.high, size=count)
            raise MonteCarloError(
                f"distribution {self.path!r}: truncation bounds reject nearly all samples"
            )

        location = self.mean if self.kind == "normal" else np.log(self.mean)
        die_scale = float(np.sqrt(self.within_die))
        cell_scale = float(np.sqrt(1.0 - self.within_die))

        def realise(z: np.ndarray) -> np.ndarray:
            if self.kind == "normal":
                return location + self.sigma * z
            return np.exp(location + self.sigma * z)

        z_die = rng.normal(0.0, 1.0, size=(n_arrays, 1))
        z_cell = rng.normal(0.0, 1.0, size=(n_arrays, cells))
        values = realise(die_scale * z_die + cell_scale * z_cell)
        if self.truncate_low is None and self.truncate_high is None:
            return values
        for _ in range(_MAX_TRUNCATION_ROUNDS):
            bad = self._outside_truncation(values)
            count = int(bad.sum())
            if count == 0:
                return values
            if cell_scale > 0.0:
                z_cell[bad] = rng.normal(0.0, 1.0, size=count)
            else:
                bad_arrays = bad.any(axis=1)
                z_die[bad_arrays] = rng.normal(0.0, 1.0, size=(int(bad_arrays.sum()), 1))
            values = realise(die_scale * z_die + cell_scale * z_cell)
        raise MonteCarloError(
            f"distribution {self.path!r}: truncation bounds reject nearly all samples "
            f"({count}/{n_arrays * cells} still outside after {_MAX_TRUNCATION_ROUNDS} rounds)"
        )


@dataclass
class PopulationDraw:
    """The sampled population: one value array per addressed path."""

    n_samples: int
    seed: int
    #: path -> float64 array of shape (n_samples,).
    values: Dict[str, np.ndarray] = field(default_factory=dict)

    def get(self, path: str, nominal: float) -> np.ndarray:
        """Values for ``path``, falling back to the broadcast nominal value."""
        if path in self.values:
            return self.values[path]
        return np.full(self.n_samples, float(nominal))

    def scalar(self, path: str, index: int, nominal: float) -> float:
        """The value one cell sees — the scalar-path counterpart of :meth:`get`."""
        if path in self.values:
            return float(self.values[path][index])
        return float(nominal)


@dataclass
class ArrayPopulationDraw:
    """A full-array population: one value per path per cell per sampled array."""

    n_arrays: int
    cells: int
    seed: int
    #: path -> float64 array of shape (n_arrays, cells).
    values: Dict[str, np.ndarray] = field(default_factory=dict)

    def get(self, path: str, nominal: float) -> np.ndarray:
        """Values for ``path``, falling back to the broadcast nominal value."""
        if path in self.values:
            return self.values[path]
        return np.full((self.n_arrays, self.cells), float(nominal))

    def array_overrides(self, index: int) -> Dict[str, np.ndarray]:
        """``{field: (cells,) array}`` device overrides of one sampled array."""
        return {
            path.split(".", 1)[1]: values[index]
            for path, values in self.values.items()
            if path.startswith("device.")
        }


class PopulationSampler:
    """Draws seeded cell populations from a list of distributions.

    Each distribution samples from its own spawn-key child stream
    (``child_rng(seed, "montecarlo", path)``), so the draw for a given
    ``(seed, path)`` pair is independent of which other parameters are
    sampled — populations stay comparable across studies.
    """

    def __init__(self, distributions: Sequence[ParameterDistribution], seed: int = 0):
        self.distributions = [
            dist if isinstance(dist, ParameterDistribution) else ParameterDistribution.from_dict(dist)
            for dist in distributions
        ]
        seen = set()
        for dist in self.distributions:
            if dist.path in seen:
                raise MonteCarloError(f"duplicate distribution for path {dist.path!r}")
            seen.add(dist.path)
        self.seed = int(seed)

    def sample(self, n_samples: int, nominals: Mapping[str, float]) -> PopulationDraw:
        """Draw a population of ``n_samples`` cells.

        ``nominals`` provides the nominal value per path, consumed by
        ``relative`` distributions (absolute ones ignore it).
        """
        if n_samples < 1:
            raise MonteCarloError("n_samples must be at least 1")
        draw = PopulationDraw(n_samples=n_samples, seed=self.seed)
        for dist in self.distributions:
            rng = child_rng(self.seed, "montecarlo", dist.path)
            values = dist.sample(rng, n_samples)
            if dist.relative:
                if dist.path not in nominals:
                    raise MonteCarloError(
                        f"distribution {dist.path!r} is relative but no nominal value is available"
                    )
                values = values * float(nominals[dist.path])
            draw.values[dist.path] = np.asarray(values, dtype=np.float64)
        return draw

    def sample_cells(
        self, n_arrays: int, cells: int, nominals: Mapping[str, float]
    ) -> ArrayPopulationDraw:
        """Draw ``n_arrays`` whole-array populations of ``cells`` cells each.

        The per-cell mode behind ``MonteCarloEngine(mode="full_array")``: every
        cell of every sampled array carries its own draw, with the optional
        :attr:`ParameterDistribution.within_die` fraction of the variance
        shared across one array's cells (correlated within-die variation).
        Each distribution samples from its own spawn-key child stream
        (``child_rng(seed, "montecarlo", "full-array", path)``), independent
        of the anchored per-victim streams.
        """
        if n_arrays < 1:
            raise MonteCarloError("n_arrays must be at least 1")
        if cells < 1:
            raise MonteCarloError("cells must be at least 1")
        draw = ArrayPopulationDraw(n_arrays=n_arrays, cells=cells, seed=self.seed)
        for dist in self.distributions:
            rng = child_rng(self.seed, "montecarlo", "full-array", dist.path)
            values = dist.sample_cells(rng, n_arrays, cells)
            if dist.relative:
                if dist.path not in nominals:
                    raise MonteCarloError(
                        f"distribution {dist.path!r} is relative but no nominal value is available"
                    )
                values = values * float(nominals[dist.path])
            draw.values[dist.path] = np.asarray(values, dtype=np.float64)
        return draw

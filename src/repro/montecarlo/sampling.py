"""Seeded parameter distributions for Monte-Carlo cell populations.

Device-to-device and cycle-to-cycle variation is described as a list of
:class:`ParameterDistribution` objects.  Each distribution addresses one
scalar through a dotted path — the same addressing scheme the campaign
engine's sweep axes use — rooted at one of:

``device``
    A field of :class:`~repro.devices.jart_vcm.JartVcmParameters`
    (e.g. ``device.activation_energy_ev``, ``device.series_resistance_ohm``).
``attack``
    A numeric field of :class:`~repro.config.AttackConfig`
    (e.g. ``attack.pulse.length_s``, ``attack.ambient_temperature_k``).
``operating``
    A victim operating-point input normally derived from the circuit solve
    (``operating.victim_voltage_v``, ``operating.crosstalk_temperature_k``),
    for studies that perturb the electrical environment directly.

Distributions draw either absolute values or, with ``relative=True``,
multiplicative factors applied to the nominal value — the natural idiom for
"±5 % sigma around nominal" process variation.  Every distribution owns an
independent child stream of the population seed (see :mod:`repro.utils.rng`),
so adding or removing one distribution never changes the draws of the others.

For rare-event studies the sampler can draw from *tilted* proposals instead:
:class:`ImportanceSettings` shifts the mean (in sigmas) and/or inflates the
sigma of selected normal/lognormal distributions, and every sample carries
the summed log likelihood ratio of nominal over proposal densities
(:attr:`PopulationDraw.log_weights`).  Truncation bounds are preserved on the
proposal, and because the downstream estimator is self-normalized, the
truncation normalisation constants — like every other constant factor —
cancel out of the weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..config import JsonConfig
from ..devices.jart_vcm import JartVcmParameters
from ..errors import MonteCarloError
from ..obs import get_audit, get_watchdog, spawn_digest
from ..utils.rng import child_rng

#: Distribution families understood by the sampler.
DISTRIBUTION_KINDS = ("normal", "lognormal", "uniform")

#: Path roots a distribution may address.
PATH_ROOTS = ("device", "attack", "operating")

#: Device-model fields that may vary per cell (every float field of the
#: JART parameter set).
DEVICE_FIELDS = tuple(
    f.name for f in fields(JartVcmParameters) if f.name != "charge_number"
)

#: Attack-config paths the engine consumes per cell.
ATTACK_PATHS = (
    "attack.pulse.length_s",
    "attack.pulse.amplitude_v",
    "attack.pulse.duty_cycle",
    "attack.ambient_temperature_k",
    "attack.flip_threshold",
)

#: Operating-point inputs that may be perturbed directly.
OPERATING_PATHS = (
    "operating.victim_voltage_v",
    "operating.crosstalk_temperature_k",
)

#: Number of truncation resampling rounds before giving up.
_MAX_TRUNCATION_ROUNDS = 64


def known_paths() -> List[str]:
    """Every dotted path the sampler accepts, for error messages and docs."""
    return [f"device.{name}" for name in DEVICE_FIELDS] + list(ATTACK_PATHS) + list(OPERATING_PATHS)


@dataclass
class ParameterDistribution(JsonConfig):
    """One sampled parameter of the cell population.

    ``normal`` draws from N(``mean``, ``sigma``); ``lognormal`` draws
    ``exp(N(log(mean), sigma))`` so ``mean`` is the median of the samples;
    ``uniform`` draws from [``low``, ``high``].  ``truncate_low`` /
    ``truncate_high`` clip the support by resampling (not clamping, which
    would pile probability mass onto the bounds).  With ``relative=True`` the
    draws multiply the nominal value instead of replacing it.
    """

    path: str
    kind: str = "normal"
    mean: Optional[float] = None
    sigma: Optional[float] = None
    low: Optional[float] = None
    high: Optional[float] = None
    relative: bool = False
    truncate_low: Optional[float] = None
    truncate_high: Optional[float] = None
    #: Fraction of the (log-)normal variance shared by every cell of one die
    #: (full-array mode): 0 = fully independent cells, 1 = every cell of an
    #: array draws the same value.  Only consumed by per-cell draws.
    within_die: float = 0.0

    def __post_init__(self) -> None:
        root = self.path.split(".", 1)[0] if "." in self.path else ""
        if root not in PATH_ROOTS:
            raise MonteCarloError(
                f"distribution path {self.path!r} must be a dotted path rooted at one of {PATH_ROOTS}"
            )
        if self.path not in known_paths():
            raise MonteCarloError(
                f"distribution path {self.path!r} is not a sampleable parameter; "
                f"known paths: {', '.join(known_paths())}"
            )
        if self.kind not in DISTRIBUTION_KINDS:
            raise MonteCarloError(
                f"distribution {self.path!r}: unknown kind {self.kind!r}; expected one of {DISTRIBUTION_KINDS}"
            )
        if self.kind in ("normal", "lognormal"):
            if self.mean is None or self.sigma is None:
                raise MonteCarloError(f"distribution {self.path!r}: {self.kind} needs mean and sigma")
            if self.sigma < 0:
                raise MonteCarloError(f"distribution {self.path!r}: sigma must be non-negative")
            if self.kind == "lognormal" and self.mean <= 0:
                raise MonteCarloError(f"distribution {self.path!r}: lognormal needs a positive mean")
            if self.low is not None or self.high is not None:
                raise MonteCarloError(
                    f"distribution {self.path!r}: low/high belong to uniform; use truncate_low/high"
                )
        else:
            if self.low is None or self.high is None:
                raise MonteCarloError(f"distribution {self.path!r}: uniform needs low and high")
            if not self.high > self.low:
                raise MonteCarloError(f"distribution {self.path!r}: high must exceed low")
            if self.mean is not None or self.sigma is not None:
                raise MonteCarloError(f"distribution {self.path!r}: mean/sigma belong to normal/lognormal")
        if (
            self.truncate_low is not None
            and self.truncate_high is not None
            and not self.truncate_high > self.truncate_low
        ):
            raise MonteCarloError(f"distribution {self.path!r}: truncate_high must exceed truncate_low")
        if not 0.0 <= self.within_die <= 1.0:
            raise MonteCarloError(f"distribution {self.path!r}: within_die must lie in [0, 1]")
        if self.within_die > 0.0 and self.kind == "uniform":
            raise MonteCarloError(
                f"distribution {self.path!r}: within_die correlation is only defined for "
                "normal/lognormal distributions"
            )

    # ------------------------------------------------------------------

    def _draw(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.kind == "normal":
            return rng.normal(self.mean, self.sigma, size=n)
        if self.kind == "lognormal":
            return np.exp(rng.normal(np.log(self.mean), self.sigma, size=n))
        return rng.uniform(self.low, self.high, size=n)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` values, resampling any that violate the truncation."""
        values = self._draw(rng, n)
        if self.truncate_low is None and self.truncate_high is None:
            return values
        for _ in range(_MAX_TRUNCATION_ROUNDS):
            bad = np.zeros(n, dtype=bool)
            if self.truncate_low is not None:
                bad |= values < self.truncate_low
            if self.truncate_high is not None:
                bad |= values > self.truncate_high
            count = int(bad.sum())
            if count == 0:
                return values
            values[bad] = self._draw(rng, count)
        raise MonteCarloError(
            f"distribution {self.path!r}: truncation bounds reject nearly all samples "
            f"({count}/{n} still outside after {_MAX_TRUNCATION_ROUNDS} resampling rounds)"
        )

    # ------------------------------------------------------------------
    # importance tilts
    # ------------------------------------------------------------------

    def tilted(self, shift_sigmas: float = 0.0, scale: float = 1.0) -> "ParameterDistribution":
        """The importance-sampling proposal: mean shifted by ``shift_sigmas``
        standard deviations and/or sigma inflated by ``scale``.

        For ``lognormal`` the tilt acts in log space (the median moves by
        ``exp(shift * sigma)``), keeping the proposal in the same family.
        Truncation bounds carry over unchanged so the proposal's support never
        exceeds the nominal one.
        """
        if self.kind == "uniform":
            raise MonteCarloError(
                f"distribution {self.path!r}: importance tilts are only defined for "
                "normal/lognormal distributions"
            )
        if self.sigma <= 0.0:
            raise MonteCarloError(
                f"distribution {self.path!r}: importance tilts need a positive sigma"
            )
        if scale <= 0.0:
            raise MonteCarloError(f"distribution {self.path!r}: tilt scale must be positive")
        if self.kind == "normal":
            mean = self.mean + shift_sigmas * self.sigma
        else:
            mean = float(np.exp(np.log(self.mean) + shift_sigmas * self.sigma))
        return replace(self, mean=mean, sigma=self.sigma * scale)

    def log_density(self, values: np.ndarray) -> np.ndarray:
        """Log density of raw draws, up to an additive constant.

        Defined for the tiltable families only (uniform cannot be tilted, so
        its density is never needed in a likelihood ratio).  Truncation
        renormalisation is deliberately omitted: likelihood-ratio weights are
        consumed by a self-normalized estimator, where constant factors
        cancel (the proposal keeps the same truncation region).
        """
        values = np.asarray(values, dtype=np.float64)
        if self.kind == "normal":
            z = (values - self.mean) / self.sigma
            return -0.5 * z * z - np.log(self.sigma)
        if self.kind == "lognormal":
            z = (np.log(values) - np.log(self.mean)) / self.sigma
            return -0.5 * z * z - np.log(self.sigma) - np.log(values)
        raise MonteCarloError(
            f"distribution {self.path!r}: log_density is only defined for "
            "normal/lognormal distributions"
        )

    # ------------------------------------------------------------------
    # per-cell (full-array) draws
    # ------------------------------------------------------------------

    def _outside_truncation(self, values: np.ndarray) -> np.ndarray:
        bad = np.zeros(values.shape, dtype=bool)
        if self.truncate_low is not None:
            bad |= values < self.truncate_low
        if self.truncate_high is not None:
            bad |= values > self.truncate_high
        return bad

    def sample_cells(self, rng: np.random.Generator, n_arrays: int, cells: int) -> np.ndarray:
        """Per-cell draws for ``n_arrays`` sampled arrays, shape (n_arrays, cells).

        For normal/lognormal the (log-)variance splits into a within-die
        component shared by every cell of one array (fraction
        :attr:`within_die`) and an independent cell-to-cell component — the
        standard separation of die-to-die and local process variation.
        Truncation resamples the cell component only (the die keeps its
        shared draw); with ``within_die == 1`` the shared draw itself is
        resampled for offending arrays.
        """
        if self.kind == "uniform":
            values = rng.uniform(self.low, self.high, size=(n_arrays, cells))
            for _ in range(_MAX_TRUNCATION_ROUNDS):
                bad = self._outside_truncation(values)
                count = int(bad.sum())
                if count == 0:
                    return values
                values[bad] = rng.uniform(self.low, self.high, size=count)
            raise MonteCarloError(
                f"distribution {self.path!r}: truncation bounds reject nearly all samples"
            )

        location = self.mean if self.kind == "normal" else np.log(self.mean)
        die_scale = float(np.sqrt(self.within_die))
        cell_scale = float(np.sqrt(1.0 - self.within_die))

        def realise(z: np.ndarray) -> np.ndarray:
            if self.kind == "normal":
                return location + self.sigma * z
            return np.exp(location + self.sigma * z)

        z_die = rng.normal(0.0, 1.0, size=(n_arrays, 1))
        z_cell = rng.normal(0.0, 1.0, size=(n_arrays, cells))
        values = realise(die_scale * z_die + cell_scale * z_cell)
        if self.truncate_low is None and self.truncate_high is None:
            return values
        for _ in range(_MAX_TRUNCATION_ROUNDS):
            bad = self._outside_truncation(values)
            count = int(bad.sum())
            if count == 0:
                return values
            if cell_scale > 0.0:
                z_cell[bad] = rng.normal(0.0, 1.0, size=count)
            else:
                bad_arrays = bad.any(axis=1)
                z_die[bad_arrays] = rng.normal(0.0, 1.0, size=(int(bad_arrays.sum()), 1))
            values = realise(die_scale * z_die + cell_scale * z_cell)
        raise MonteCarloError(
            f"distribution {self.path!r}: truncation bounds reject nearly all samples "
            f"({count}/{n_arrays * cells} still outside after {_MAX_TRUNCATION_ROUNDS} rounds)"
        )


@dataclass
class ImportanceSettings(JsonConfig):
    """Importance-sampling tilt of a population's distributions.

    ``shift_sigmas`` moves the mean of the named path's distribution by the
    given number of standard deviations (towards the flip boundary, in a rare
    flip study); ``scale`` inflates its sigma.  Paths not named keep their
    nominal distribution (and contribute nothing to the weights).  Only
    normal/lognormal distributions can be tilted.
    """

    #: path -> mean shift in units of the distribution's sigma.
    shift_sigmas: Dict[str, float] = field(default_factory=dict)
    #: path -> multiplicative sigma inflation (> 0).
    scale: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for path, factor in self.scale.items():
            if factor <= 0.0:
                raise MonteCarloError(
                    f"importance scale for {path!r} must be positive, got {factor}"
                )
        if not self.shift_sigmas and not self.scale:
            raise MonteCarloError("importance settings need at least one shift or scale tilt")

    def paths(self) -> List[str]:
        """Every path this tilt touches."""
        return sorted(set(self.shift_sigmas) | set(self.scale))

    def tilts(self, path: str) -> Tuple[float, float]:
        """(shift_sigmas, scale) applied to one path (identity if untouched)."""
        return float(self.shift_sigmas.get(path, 0.0)), float(self.scale.get(path, 1.0))

    def proposal_for(self, dist: ParameterDistribution) -> ParameterDistribution:
        """The tilted proposal distribution for one nominal distribution."""
        shift, scale = self.tilts(dist.path)
        return dist.tilted(shift_sigmas=shift, scale=scale)

    def validate_against(self, distributions: Sequence[ParameterDistribution]) -> None:
        """Reject tilts that address paths the population does not sample."""
        known = {dist.path for dist in distributions}
        for path in self.paths():
            if path not in known:
                raise MonteCarloError(
                    f"importance tilt addresses {path!r}, which is not among the sampled "
                    f"distributions ({sorted(known) or 'none'})"
                )


@dataclass
class PopulationDraw:
    """The sampled population: one value array per addressed path."""

    n_samples: int
    seed: int
    #: path -> float64 array of shape (n_samples,).
    values: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Summed log likelihood ratios (nominal over proposal) per sample when
    #: the draw came from tilted proposals; ``None`` for plain draws.
    log_weights: Optional[np.ndarray] = None

    def weights(self) -> Optional[np.ndarray]:
        """Likelihood-ratio weights (un-normalised), or ``None`` if untilted."""
        if self.log_weights is None:
            return None
        return np.exp(self.log_weights)

    def get(self, path: str, nominal: float) -> np.ndarray:
        """Values for ``path``, falling back to the broadcast nominal value."""
        if path in self.values:
            return self.values[path]
        return np.full(self.n_samples, float(nominal))

    def scalar(self, path: str, index: int, nominal: float) -> float:
        """The value one cell sees — the scalar-path counterpart of :meth:`get`."""
        if path in self.values:
            return float(self.values[path][index])
        return float(nominal)


@dataclass
class ArrayPopulationDraw:
    """A full-array population: one value per path per cell per sampled array."""

    n_arrays: int
    cells: int
    seed: int
    #: path -> float64 array of shape (n_arrays, cells).
    values: Dict[str, np.ndarray] = field(default_factory=dict)

    def get(self, path: str, nominal: float) -> np.ndarray:
        """Values for ``path``, falling back to the broadcast nominal value."""
        if path in self.values:
            return self.values[path]
        return np.full((self.n_arrays, self.cells), float(nominal))

    def array_overrides(self, index: int) -> Dict[str, np.ndarray]:
        """``{field: (cells,) array}`` device overrides of one sampled array."""
        return {
            path.split(".", 1)[1]: values[index]
            for path, values in self.values.items()
            if path.startswith("device.")
        }


class PopulationSampler:
    """Draws seeded cell populations from a list of distributions.

    Each distribution samples from its own spawn-key child stream
    (``child_rng(seed, "montecarlo", path)``), so the draw for a given
    ``(seed, path)`` pair is independent of which other parameters are
    sampled — populations stay comparable across studies.
    """

    def __init__(self, distributions: Sequence[ParameterDistribution], seed: int = 0):
        self.distributions = [
            dist if isinstance(dist, ParameterDistribution) else ParameterDistribution.from_dict(dist)
            for dist in distributions
        ]
        seen = set()
        for dist in self.distributions:
            if dist.path in seen:
                raise MonteCarloError(f"duplicate distribution for path {dist.path!r}")
            seen.add(dist.path)
        self.seed = int(seed)

    def sample(
        self,
        n_samples: int,
        nominals: Mapping[str, float],
        spawn: Sequence = (),
        paths: Optional[Sequence[str]] = None,
        importance: Optional[ImportanceSettings] = None,
    ) -> PopulationDraw:
        """Draw a population of ``n_samples`` cells.

        ``nominals`` provides the nominal value per path, consumed by
        ``relative`` distributions (absolute ones ignore it).  ``spawn``
        inserts extra spawn-key elements into each distribution's child
        stream (``child_rng(seed, "montecarlo", *spawn, path)``) — the
        adaptive engine keys its batches this way, so batch ``i`` draws the
        same values regardless of how many batches preceded it.  ``paths``
        restricts the draw to a subset of the sampled paths (used to split
        per-cell device draws from per-array environment draws).  With
        ``importance`` set, the named distributions draw from their tilted
        proposals and the draw carries per-sample log likelihood ratios.
        """
        if n_samples < 1:
            raise MonteCarloError("n_samples must be at least 1")
        selected = self.distributions
        if paths is not None:
            wanted = set(paths)
            selected = [dist for dist in self.distributions if dist.path in wanted]
        if importance is not None:
            importance.validate_against(selected)
        draw = PopulationDraw(n_samples=n_samples, seed=self.seed)
        log_weights: Optional[np.ndarray] = None
        for dist in selected:
            rng = child_rng(self.seed, "montecarlo", *spawn, dist.path)
            tilt = (
                importance is not None
                and dist.path in importance.paths()
            )
            proposal = importance.proposal_for(dist) if tilt else dist
            values = proposal.sample(rng, n_samples)
            if tilt:
                if log_weights is None:
                    log_weights = np.zeros(n_samples)
                log_weights += dist.log_density(values) - proposal.log_density(values)
            if dist.relative:
                if dist.path not in nominals:
                    raise MonteCarloError(
                        f"distribution {dist.path!r} is relative but no nominal value is available"
                    )
                values = values * float(nominals[dist.path])
            draw.values[dist.path] = np.asarray(values, dtype=np.float64)
        draw.log_weights = log_weights
        watchdog = get_watchdog()
        if watchdog.enabled:
            for path, values in draw.values.items():
                watchdog.check_array("mc.population_draw", path, values)
        audit = get_audit()
        if audit.enabled:
            audit.record(
                "mc.population_draw",
                key=spawn_digest(self.seed, "montecarlo", *spawn),
                arrays=draw.values,
                meta={"n_samples": n_samples, "spawn": [str(s) for s in spawn]},
            )
        return draw

    def sample_cells(
        self,
        n_arrays: int,
        cells: int,
        nominals: Mapping[str, float],
        spawn: Sequence = (),
        paths: Optional[Sequence[str]] = None,
    ) -> ArrayPopulationDraw:
        """Draw ``n_arrays`` whole-array populations of ``cells`` cells each.

        The per-cell mode behind ``MonteCarloEngine(mode="full_array")``: every
        cell of every sampled array carries its own draw, with the optional
        :attr:`ParameterDistribution.within_die` fraction of the variance
        shared across one array's cells (correlated within-die variation).
        Each distribution samples from its own spawn-key child stream
        (``child_rng(seed, "montecarlo", "full-array", path)``), independent
        of the anchored per-victim streams.
        """
        if n_arrays < 1:
            raise MonteCarloError("n_arrays must be at least 1")
        if cells < 1:
            raise MonteCarloError("cells must be at least 1")
        selected = self.distributions
        if paths is not None:
            wanted = set(paths)
            selected = [dist for dist in self.distributions if dist.path in wanted]
        draw = ArrayPopulationDraw(n_arrays=n_arrays, cells=cells, seed=self.seed)
        for dist in selected:
            rng = child_rng(self.seed, "montecarlo", *spawn, "full-array", dist.path)
            values = dist.sample_cells(rng, n_arrays, cells)
            if dist.relative:
                if dist.path not in nominals:
                    raise MonteCarloError(
                        f"distribution {dist.path!r} is relative but no nominal value is available"
                    )
                values = values * float(nominals[dist.path])
            draw.values[dist.path] = np.asarray(values, dtype=np.float64)
        audit = get_audit()
        if audit.enabled:
            audit.record(
                "mc.population_draw",
                key=spawn_digest(self.seed, "montecarlo", *spawn, "full-array"),
                arrays=draw.values,
                meta={
                    "n_arrays": n_arrays,
                    "cells": cells,
                    "spawn": [str(s) for s in spawn],
                },
            )
        return draw

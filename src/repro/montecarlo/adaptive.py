"""Sequential (CI-driven) sample allocation for Monte-Carlo populations.

A fixed-n Monte-Carlo run spends the same budget on every question, whether
the answer is an obvious plateau (flip probability pinned at 0 or 1, where a
handful of samples already yields a tight interval) or sits right on the flip
threshold (where the binomial variance peaks).  :class:`AdaptiveSampler`
replaces the fixed budget with a stopping rule: draw samples in batches and
stop as soon as the confidence interval on the flip probability is tighter
than a target half-width, with a hard ``n_max`` ceiling.

Reproducibility: the sampler never draws randomness itself — it asks its
``evaluate`` callback for one batch at a time, identified by a deterministic
batch index.  The Monte-Carlo engine maps that index into the spawn-key RNG
tree (``child_rng(seed, "montecarlo", "batch", index, path)``), so an
adaptive run is bit-reproducible from the root seed alone: the stopping
decisions are a pure function of the draws, and the draws are a pure function
of ``(seed, batch index, path)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from ..config import JsonConfig
from ..errors import MonteCarloError
from ..obs import get_audit, get_heartbeat, get_telemetry, get_watchdog
from .estimators import (
    INTERVAL_METHODS,
    EstimatorState,
    ImportanceEstimator,
    StreamingBinomialEstimator,
)

#: A batch evaluation: ``evaluate(batch_index, n)`` returns the boolean flip
#: outcomes of the batch's valid lanes plus their importance weights (or
#: ``None`` for plain Monte-Carlo).
BatchEvaluator = Callable[[int, int], Tuple[np.ndarray, Optional[np.ndarray]]]


@dataclass
class AdaptiveConfig(JsonConfig):
    """Stopping rule of a sequential Monte-Carlo run."""

    #: Samples (anchored: victim cells; full-array: whole arrays) per batch.
    batch_size: int = 64
    #: Hard ceiling on drawn samples; the run stops here even unconverged.
    n_max: int = 16384
    #: Target confidence-interval half-width on the flip probability.
    target_half_width: float = 0.02
    #: Interpret ``target_half_width`` relative to the current estimate
    #: (``half_width <= target * p_hat``) instead of absolutely.  A stream
    #: with no observed flips then runs to ``n_max``.
    relative: bool = False
    #: Confidence level of the interval.
    confidence: float = 0.95
    #: Interval method: ``"wilson"`` or ``"jeffreys"`` (ignored under
    #: importance sampling, which uses the delta-method interval).
    method: str = "wilson"

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise MonteCarloError("adaptive batch_size must be at least 1")
        if self.n_max < self.batch_size:
            raise MonteCarloError("adaptive n_max must be at least one batch")
        if self.target_half_width <= 0.0:
            raise MonteCarloError("adaptive target_half_width must be positive")
        if not 0.0 < self.confidence < 1.0:
            raise MonteCarloError("adaptive confidence must be in (0, 1)")
        if self.method not in INTERVAL_METHODS:
            raise MonteCarloError(
                f"unknown adaptive interval method {self.method!r}; "
                f"expected one of {INTERVAL_METHODS}"
            )

    def make_estimator(
        self, weighted: bool = False
    ) -> Union[StreamingBinomialEstimator, ImportanceEstimator]:
        """The estimator matching this rule (importance or plain binomial)."""
        if weighted:
            return ImportanceEstimator(confidence=self.confidence)
        return StreamingBinomialEstimator(confidence=self.confidence, method=self.method)

    def target_for(self, estimate: float) -> float:
        """The effective half-width target at the current estimate."""
        if self.relative:
            return self.target_half_width * estimate
        return self.target_half_width


@dataclass
class AdaptiveBatchRecord:
    """Per-batch trace of one adaptive run (for audits and tests)."""

    index: int
    n_drawn: int
    estimate: float
    half_width: float


@dataclass
class AdaptiveOutcome:
    """Result of one adaptive run: final estimator state plus the trace."""

    state: EstimatorState
    #: Samples drawn (including lanes later excluded as invalid).
    n_drawn: int
    batches: List[AdaptiveBatchRecord] = field(default_factory=list)
    #: ``"target"`` when the CI converged, ``"n_max"`` at the ceiling.
    stop_reason: str = "target"

    @property
    def converged(self) -> bool:
        return self.stop_reason == "target"

    def to_dict(self) -> dict:
        return {
            **self.state.to_dict(),
            "n_drawn": self.n_drawn,
            "batches": len(self.batches),
            "stop_reason": self.stop_reason,
            "converged": self.converged,
        }


class AdaptiveSampler:
    """Drives batched sampling until the CI meets the target (or ``n_max``).

    The sampler owns the stopping logic only; drawing and evaluating samples
    belongs to the ``evaluate`` callback, which receives ``(batch_index, n)``
    and returns the batch's outcomes plus optional importance weights — a
    boolean lane array for iid populations, or whatever the injected
    estimator's ``update`` accepts (the engine's full-array mode passes
    per-array cluster counts to a cluster-robust estimator this way).  By
    default an estimator is built from the config on the first batch.
    """

    def __init__(
        self,
        config: AdaptiveConfig,
        evaluate: BatchEvaluator,
        estimator: Optional[Union[StreamingBinomialEstimator, ImportanceEstimator]] = None,
        first_batch_index: int = 0,
        already_drawn: int = 0,
    ):
        self.config = config
        self.evaluate = evaluate
        self.estimator = estimator
        self.next_batch_index = int(first_batch_index)
        self.n_drawn = int(already_drawn)

    # ------------------------------------------------------------------

    def step(self) -> AdaptiveBatchRecord:
        """Draw and fold exactly one batch, returning its trace record."""
        n = min(self.config.batch_size, self.config.n_max - self.n_drawn)
        if n <= 0:
            raise MonteCarloError("adaptive sampler has exhausted n_max")
        index = self.next_batch_index
        outcomes, weights = self.evaluate(index, n)
        if self.estimator is None:
            self.estimator = self.config.make_estimator(weighted=weights is not None)
        if weights is not None:
            if not isinstance(self.estimator, ImportanceEstimator):
                raise MonteCarloError("weighted batches need an ImportanceEstimator")
            self.estimator.update(outcomes, weights)
        else:
            if isinstance(self.estimator, ImportanceEstimator):
                raise MonteCarloError("ImportanceEstimator batches must carry weights")
            self.estimator.update(outcomes)
        self.next_batch_index = index + 1
        self.n_drawn += n
        record = AdaptiveBatchRecord(
            index=index,
            n_drawn=n,
            estimate=float(self.estimator.estimate),
            half_width=float(self.estimator.half_width()),
        )
        tel = get_telemetry()
        if tel.enabled:
            tel.count("adaptive.batches")
            tel.count("adaptive.samples", n)
            tel.event(
                "adaptive.batch",
                index=record.index,
                n=record.n_drawn,
                estimate=record.estimate,
                half_width=record.half_width,
            )
        watchdog = get_watchdog()
        if watchdog.enabled:
            watchdog.check_array(
                "adaptive.batch", "estimate", [record.estimate, record.half_width]
            )
        audit = get_audit()
        if audit.enabled:
            # Batch i's estimate is a pure function of (seed, batch index),
            # so keying by index keeps the stream identical however many
            # batches the stopping rule ends up drawing before it.
            audit.record(
                "mc.batch_estimate",
                key=record.index,
                arrays={"estimate": [record.estimate, record.half_width]},
                meta={"n": record.n_drawn, "n_total": self.n_drawn},
            )
        hb = get_heartbeat()
        if hb.enabled:
            # Batch boundary: enough for a concurrent `status --follow` /
            # `obs top` reader to see convergence progress live.
            hb.update(
                samples=self.n_drawn,
                batches=self.next_batch_index,
                estimate=record.estimate,
                ci_half_width=record.half_width,
            )
        return record

    @property
    def satisfied(self) -> bool:
        """True once the interval meets the (possibly relative) target."""
        if self.estimator is None or self.n_drawn == 0:
            return False
        return self.estimator.half_width() <= self.config.target_for(self.estimator.estimate)

    @property
    def exhausted(self) -> bool:
        return self.n_drawn >= self.config.n_max

    def run(self) -> AdaptiveOutcome:
        """Loop :meth:`step` until the target or the ``n_max`` ceiling."""
        batches: List[AdaptiveBatchRecord] = []
        while True:
            batches.append(self.step())
            if self.satisfied:
                reason = "target"
                break
            if self.exhausted:
                reason = "n_max"
                break
        tel = get_telemetry()
        if tel.enabled:
            tel.count(f"adaptive.stops.{reason}")
        return AdaptiveOutcome(
            state=EstimatorState.capture(self.estimator),
            n_drawn=self.n_drawn,
            batches=batches,
            stop_reason=reason,
        )

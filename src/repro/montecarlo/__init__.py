"""Monte-Carlo variability engine: vectorized cell populations and yield maps.

The paper's figures follow one nominal device; this subsystem asks the
statistical question that decides real-world severity — across
device-to-device and cycle-to-cycle variation, what fraction of victim cells
flips under a given pulse budget?

* :mod:`~repro.montecarlo.sampling` — seeded parameter distributions over
  dotted config paths (``device.activation_energy_ev``,
  ``attack.pulse.length_s``, ...), with importance-sampling tilts,
* :mod:`~repro.montecarlo.vectorized` — NumPy-batched counterparts of the
  scalar device model, electro-thermal solve and switching kinetics,
* :mod:`~repro.montecarlo.estimators` — streaming Wilson/Jeffreys binomial
  estimators, mean estimators and the self-normalized importance estimator,
* :mod:`~repro.montecarlo.adaptive` — sequential (CI-driven) stopping rules,
* :mod:`~repro.montecarlo.engine` — :class:`MonteCarloEngine`, evaluating
  whole sampled populations at once (with a scalar reference path),
* :mod:`~repro.montecarlo.maps` — flip-probability / bit-error-rate maps over
  2-D parameter planes: fixed-n through the campaign runner, or CI-driven
  refinement that spends a global budget along the flip boundary.

Typical use::

    from repro.montecarlo import MonteCarloConfig, MonteCarloEngine

    config = MonteCarloConfig(
        seed=7,
        distributions=[
            {"path": "device.activation_energy_ev", "kind": "normal",
             "mean": 1.0, "sigma": 0.02, "relative": True},
            {"path": "device.series_resistance_ohm", "kind": "normal",
             "mean": 1.0, "sigma": 0.05, "relative": True},
        ],
        adaptive={"target_half_width": 0.02, "batch_size": 128},
    )
    result = MonteCarloEngine(config).run()
    print(result.flip_probability, result.interval(), result.summary())
"""

from .adaptive import AdaptiveConfig, AdaptiveOutcome, AdaptiveSampler
from .engine import (
    FullArrayMonteCarloResult,
    MonteCarloConfig,
    MonteCarloEngine,
    MonteCarloResult,
    NominalConditions,
)
from .estimators import (
    ClusteredBinomialEstimator,
    EstimatorState,
    ImportanceEstimator,
    StreamingBinomialEstimator,
    StreamingMeanEstimator,
    fixed_sample_size,
    jeffreys_interval,
    wilson_interval,
)
from .maps import (
    AdaptiveFlipProbabilityMap,
    FlipProbabilityMap,
    MapAxis,
    flip_probability_map,
    refine_flip_probability_map,
)
from .sampling import (
    ArrayPopulationDraw,
    ImportanceSettings,
    ParameterDistribution,
    PopulationDraw,
    PopulationSampler,
)
from .vectorized import (
    JartArrayModel,
    BatchOperatingPoint,
    BatchPulseCountResult,
    BatchSwitchingResult,
    SampledArrayJartModel,
    VectorizedJartVcm,
    pulses_to_switch_batch,
    solve_operating_point_batch,
    time_to_switch_batch,
)

__all__ = [
    "JartArrayModel",
    "SampledArrayJartModel",
    "FullArrayMonteCarloResult",
    "ArrayPopulationDraw",
    "MonteCarloConfig",
    "MonteCarloEngine",
    "MonteCarloResult",
    "NominalConditions",
    "ParameterDistribution",
    "ImportanceSettings",
    "PopulationDraw",
    "PopulationSampler",
    "VectorizedJartVcm",
    "BatchOperatingPoint",
    "BatchSwitchingResult",
    "BatchPulseCountResult",
    "solve_operating_point_batch",
    "time_to_switch_batch",
    "pulses_to_switch_batch",
    "AdaptiveConfig",
    "AdaptiveOutcome",
    "AdaptiveSampler",
    "ClusteredBinomialEstimator",
    "EstimatorState",
    "ImportanceEstimator",
    "StreamingBinomialEstimator",
    "StreamingMeanEstimator",
    "fixed_sample_size",
    "wilson_interval",
    "jeffreys_interval",
    "MapAxis",
    "FlipProbabilityMap",
    "AdaptiveFlipProbabilityMap",
    "flip_probability_map",
    "refine_flip_probability_map",
]

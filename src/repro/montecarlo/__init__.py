"""Monte-Carlo variability engine: vectorized cell populations and yield maps.

The paper's figures follow one nominal device; this subsystem asks the
statistical question that decides real-world severity — across
device-to-device and cycle-to-cycle variation, what fraction of victim cells
flips under a given pulse budget?

* :mod:`~repro.montecarlo.sampling` — seeded parameter distributions over
  dotted config paths (``device.activation_energy_ev``,
  ``attack.pulse.length_s``, ...),
* :mod:`~repro.montecarlo.vectorized` — NumPy-batched counterparts of the
  scalar device model, electro-thermal solve and switching kinetics,
* :mod:`~repro.montecarlo.engine` — :class:`MonteCarloEngine`, evaluating
  whole sampled populations at once (with a scalar reference path),
* :mod:`~repro.montecarlo.maps` — flip-probability / bit-error-rate maps over
  2-D parameter planes, executed through the campaign runner.

Typical use::

    from repro.montecarlo import MonteCarloConfig, MonteCarloEngine

    config = MonteCarloConfig(
        n_samples=2000,
        seed=7,
        distributions=[
            {"path": "device.activation_energy_ev", "kind": "normal",
             "mean": 1.0, "sigma": 0.02, "relative": True},
            {"path": "device.series_resistance_ohm", "kind": "normal",
             "mean": 1.0, "sigma": 0.05, "relative": True},
        ],
    )
    result = MonteCarloEngine(config).run()
    print(result.flip_probability, result.summary())
"""

from .engine import (
    FullArrayMonteCarloResult,
    MonteCarloConfig,
    MonteCarloEngine,
    MonteCarloResult,
    NominalConditions,
)
from .maps import FlipProbabilityMap, MapAxis, flip_probability_map
from .sampling import ArrayPopulationDraw, ParameterDistribution, PopulationDraw, PopulationSampler
from .vectorized import (
    JartArrayModel,
    BatchOperatingPoint,
    BatchPulseCountResult,
    BatchSwitchingResult,
    SampledArrayJartModel,
    VectorizedJartVcm,
    pulses_to_switch_batch,
    solve_operating_point_batch,
    time_to_switch_batch,
)

__all__ = [
    "JartArrayModel",
    "SampledArrayJartModel",
    "FullArrayMonteCarloResult",
    "ArrayPopulationDraw",
    "MonteCarloConfig",
    "MonteCarloEngine",
    "MonteCarloResult",
    "NominalConditions",
    "ParameterDistribution",
    "PopulationDraw",
    "PopulationSampler",
    "VectorizedJartVcm",
    "BatchOperatingPoint",
    "BatchSwitchingResult",
    "BatchPulseCountResult",
    "solve_operating_point_batch",
    "time_to_switch_batch",
    "pulses_to_switch_batch",
    "MapAxis",
    "FlipProbabilityMap",
    "flip_probability_map",
]

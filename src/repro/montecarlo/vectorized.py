"""NumPy-vectorized counterparts of the scalar device physics.

The scalar stack (:mod:`repro.devices.jart_vcm`, :mod:`repro.devices.thermal`,
:mod:`repro.devices.kinetics`) evaluates one cell at a time in pure Python —
perfect for a single trajectory, hopeless for a 10^4-cell Monte-Carlo
population.  This module re-implements the same algorithms over whole lanes of
cells at once:

* :class:`VectorizedJartVcm` — the JART-style VCM compact model with one
  parameter *array* per physical parameter, so every cell of the population
  can carry its own sampled activation energy, series resistance, ...;
* :func:`solve_operating_point_batch` — the damped fixed-point electro-thermal
  solve of :func:`repro.devices.thermal.solve_operating_point`;
* :func:`time_to_switch_batch` / :func:`pulses_to_switch_batch` — the adaptive
  state-ODE integrators of :mod:`repro.devices.kinetics`.

The batched functions follow the scalar control flow *per lane* (same step
sizes, same thermal-refresh policy, same fixed-point damping and termination
rules); only the innermost interface-current root solve swaps the scalar's
bisection for an equally-precise Newton descent.  Each lane therefore
reproduces the scalar trajectory to floating-point noise; the test suite
validates element-for-element agreement within 1e-9 relative tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Mapping, Optional, Union

import numpy as np

from ..constants import (
    BOLTZMANN_EV_PER_K,
    BOLTZMANN_J_PER_K,
    DEFAULT_AMBIENT_TEMPERATURE_K,
    ELEMENTARY_CHARGE_C,
    RICHARDSON_A_PER_M2K2,
)
from ..devices.base import BatchedDeviceModel, MemristorModel
from ..devices.jart_vcm import JartVcmParameters
from ..errors import ConvergenceError, DeviceModelError
from ..utils.logging import get_logger

logger = get_logger("montecarlo.vectorized")

ArrayLike = Union[float, np.ndarray]

#: Iteration cap of the Newton interface-current solve; the monotone convex
#: residual converges in ~5 iterations, the cap is a backstop only.
_MAX_NEWTON_STEPS = 80

#: Newton termination: no lane moved by more than ~1 ulp of its coordinate.
_NEWTON_RTOL = 4e-16
_NEWTON_ATOL = 1e-300

#: Overflow guard of the sinh field term (matches the scalar model).
_MAX_FIELD_ARGUMENT = 50.0


def _lanes(value: ArrayLike, n: int, name: str) -> np.ndarray:
    """Broadcast a scalar or (n,)-array to a float64 lane array."""
    array = np.asarray(value, dtype=np.float64)
    if array.ndim == 0:
        return np.full(n, float(array))
    if array.shape != (n,):
        raise DeviceModelError(f"{name} must be a scalar or shape ({n},), got {array.shape}")
    return array.copy()


class VectorizedJartVcm:
    """The JART-style VCM model over a population of cells.

    Every physical parameter is a lane array of shape ``(n,)``; lanes are
    fully independent, so one call evaluates ``n`` distinct sampled devices.
    Built from a nominal :class:`~repro.devices.jart_vcm.JartVcmParameters`
    plus per-field override arrays (sampled values).
    """

    def __init__(
        self,
        n: int,
        base: Optional[JartVcmParameters] = None,
        overrides: Optional[Mapping[str, ArrayLike]] = None,
    ):
        if n < 1:
            raise DeviceModelError("population size must be at least 1")
        self.n = int(n)
        base = base if base is not None else JartVcmParameters()
        names = {f.name for f in fields(JartVcmParameters)}
        overrides = dict(overrides or {})
        unknown = set(overrides) - names
        if unknown:
            raise DeviceModelError(f"unknown device parameter overrides {sorted(unknown)}")
        for name in names:
            value = overrides.get(name, getattr(base, name))
            setattr(self, name, _lanes(value, self.n, f"device.{name}"))
        self._validate()

    def _validate(self) -> None:
        """Element-wise mirror of ``JartVcmParameters.__post_init__``."""
        if np.any(self.n_disc_min_per_m3 <= 0) or np.any(self.n_disc_max_per_m3 <= self.n_disc_min_per_m3):
            raise DeviceModelError("need 0 < n_disc_min < n_disc_max in every lane")
        for name in ("filament_radius_m", "disc_length_m", "plug_length_m"):
            if np.any(getattr(self, name) <= 0):
                raise DeviceModelError(f"{name} must be positive in every lane")
        if np.any(self.interface_voltage_v <= 0):
            raise DeviceModelError("interface_voltage_v must be positive in every lane")
        if np.any(self.barrier_lowering_ev >= self.barrier_height_ev):
            raise DeviceModelError("barrier lowering must be smaller than the barrier height in every lane")
        if np.any(self.rth_eff_k_per_w < 0):
            raise DeviceModelError("rth_eff_k_per_w must be non-negative in every lane")
        if np.any(self.activation_energy_ev <= 0) or np.any(self.reset_activation_energy_ev <= 0):
            raise DeviceModelError("activation energies must be positive in every lane")
        if np.any(self.set_rate_prefactor_per_s <= 0) or np.any(self.reset_rate_prefactor_per_s <= 0):
            raise DeviceModelError("kinetic prefactors must be positive in every lane")

    # ------------------------------------------------------------------
    # lane management
    # ------------------------------------------------------------------

    def take(self, indices: np.ndarray) -> "VectorizedJartVcm":
        """The population restricted to the given lanes (ascending indices)."""
        if len(indices) == self.n:
            # Ascending unique indices covering every lane are the identity.
            return self
        subset = object.__new__(VectorizedJartVcm)
        subset.n = int(len(indices))
        for f in fields(JartVcmParameters):
            setattr(subset, f.name, getattr(self, f.name)[indices])
        return subset

    def scalar_parameters(self, index: int) -> JartVcmParameters:
        """The exact parameter set one lane carries, as a scalar object.

        Used by the validation tests and the scalar reference path to build
        a :class:`~repro.devices.jart_vcm.JartVcmModel` per cell.
        """
        values = {}
        for f in fields(JartVcmParameters):
            value = getattr(self, f.name)[index]
            values[f.name] = int(value) if f.name == "charge_number" else float(value)
        return JartVcmParameters(**values)

    # ------------------------------------------------------------------
    # derived quantities (mirroring JartVcmModel)
    # ------------------------------------------------------------------

    @staticmethod
    def clamp_state(x: np.ndarray) -> np.ndarray:
        return np.clip(x, 0.0, 1.0)

    @property
    def filament_area_m2(self) -> np.ndarray:
        return np.pi * self.filament_radius_m**2

    @property
    def field_coefficient_k_per_v(self) -> np.ndarray:
        return (
            self.hop_distance_m
            * self.charge_number
            * ELEMENTARY_CHARGE_C
            / (2.0 * BOLTZMANN_J_PER_K * self.disc_length_m)
        )

    def disc_concentration(self, x: np.ndarray) -> np.ndarray:
        x = self.clamp_state(x)
        return self.n_disc_min_per_m3 + x * (self.n_disc_max_per_m3 - self.n_disc_min_per_m3)

    def disc_resistance(self, x: np.ndarray) -> np.ndarray:
        sigma = (
            self.charge_number
            * ELEMENTARY_CHARGE_C
            * self.electron_mobility_m2_per_vs
            * self.disc_concentration(x)
        )
        return self.disc_length_m / (sigma * self.filament_area_m2)

    def plug_resistance(self) -> np.ndarray:
        sigma = (
            self.charge_number * ELEMENTARY_CHARGE_C * self.electron_mobility_m2_per_vs * self.n_plug_per_m3
        )
        return self.plug_length_m / (sigma * self.filament_area_m2)

    def ohmic_resistance(self, x: np.ndarray) -> np.ndarray:
        return self.disc_resistance(x) + self.plug_resistance() + self.series_resistance_ohm

    def interface_saturation_current(self, x: np.ndarray, temperature_k: np.ndarray) -> np.ndarray:
        barrier_ev = self.barrier_height_ev - self.barrier_lowering_ev * self.clamp_state(x)
        thermionic = RICHARDSON_A_PER_M2K2 * temperature_k**2 * self.filament_area_m2
        return thermionic * np.exp(-barrier_ev / (BOLTZMANN_EV_PER_K * temperature_k))

    # ------------------------------------------------------------------
    # electrical characteristic
    # ------------------------------------------------------------------

    def current(self, voltage_v: np.ndarray, x: np.ndarray, temperature_k: np.ndarray) -> np.ndarray:
        """Lane currents [A]: the scalar model's root equation, solved batched.

        The per-lane root equation is identical to ``JartVcmModel.current``
        (``v_nl * asinh(I / i_sat) + I * r_ohmic = magnitude``), but instead
        of sixty bisection steps the root is located by Newton iteration in
        the interface coordinate ``w = asinh(I / i_sat)``, where the residual

            f(w) = v_nl * w + r_ohmic * i_sat * sinh(w) - magnitude

        is strictly increasing and *convex* for w >= 0.  Both ``magnitude /
        v_nl`` and ``asinh(magnitude / (r_ohmic * i_sat))`` over-estimate the
        root (each drops one of the two positive terms), so starting from
        their minimum puts Newton on the convex side: the iteration descends
        monotonically onto the root — globally convergent without
        safeguarding — and stalls at ~1 ulp within a handful of steps.  Both
        solvers resolve the root orders of magnitude beyond the 1e-9
        agreement budget of this module (the scalar bracket ends 2^-60 wide).
        """
        if np.any(np.abs(voltage_v) > 10.0):
            raise DeviceModelError("cell voltage outside the model validity range [-10, 10] V in a lane")
        sign = np.where(voltage_v > 0.0, 1.0, -1.0)
        magnitude = np.abs(voltage_v)
        x = self.clamp_state(x)
        temperature = np.maximum(temperature_k, 1.0)
        r_ohmic = self.ohmic_resistance(x)
        i_sat = self.interface_saturation_current(x, temperature)
        v_nl = self.interface_voltage_v

        ohmic_sat = r_ohmic * i_sat
        w = np.minimum(magnitude / v_nl, np.arcsinh(magnitude / ohmic_sat))
        sinh_w = np.empty_like(w)
        cosh_w = np.empty_like(w)
        residual = np.empty_like(w)
        slope = np.empty_like(w)
        step = np.empty_like(w)
        for _ in range(_MAX_NEWTON_STEPS):
            np.sinh(w, out=sinh_w)
            np.cosh(w, out=cosh_w)
            # f(w) = v_nl * w + ohmic_sat * sinh(w) - magnitude
            np.multiply(ohmic_sat, sinh_w, out=residual)
            residual += v_nl * w
            residual -= magnitude
            # f'(w) = v_nl + ohmic_sat * cosh(w)
            np.multiply(ohmic_sat, cosh_w, out=slope)
            slope += v_nl
            np.divide(residual, slope, out=step)
            w -= step
            # Converged once no lane moved by more than ~1 ulp (zero-bias
            # lanes start exactly at w = 0 with zero residual).
            if not np.any(step > _NEWTON_RTOL * w + _NEWTON_ATOL):
                break
        return sign * i_sat * np.sinh(w)

    def driving_voltage(
        self, voltage_v: np.ndarray, x: np.ndarray, temperature_k: np.ndarray
    ) -> np.ndarray:
        """Voltage available to drive ion migration [V] (signed), per lane."""
        current_a = self.current(voltage_v, x, temperature_k)
        series = self.plug_resistance() + self.series_resistance_ohm
        return voltage_v - current_a * series

    # ------------------------------------------------------------------
    # switching kinetics
    # ------------------------------------------------------------------

    def state_derivative(
        self, voltage_v: np.ndarray, x: np.ndarray, temperature_k: np.ndarray
    ) -> np.ndarray:
        """dx/dt per lane — thermally activated, field-accelerated hopping."""
        temperature = np.maximum(temperature_k, 1.0)
        v_drive = self.driving_voltage(voltage_v, x, temperature)
        field_argument = np.minimum(
            self.field_coefficient_k_per_v * np.abs(v_drive) / temperature, _MAX_FIELD_ARGUMENT
        )
        field_term = np.sinh(field_argument)
        set_rate = (
            self.set_rate_prefactor_per_s
            * np.exp(-self.activation_energy_ev / (BOLTZMANN_EV_PER_K * temperature))
            * field_term
        )
        reset_rate = (
            self.reset_rate_prefactor_per_s
            * np.exp(-self.reset_activation_energy_ev / (BOLTZMANN_EV_PER_K * temperature))
            * field_term
        )
        rate = np.where(voltage_v > 0.0, set_rate, -reset_rate)
        # Saturation at the state bounds and the zero-bias dead zone, exactly
        # as the scalar model reports them.
        rate = np.where((voltage_v > 0.0) & (x >= 1.0), 0.0, rate)
        rate = np.where((voltage_v < 0.0) & (x <= 0.0), 0.0, rate)
        rate = np.where(voltage_v == 0.0, 0.0, rate)
        return rate


# ----------------------------------------------------------------------
# array-wide batched kernel (single parameter set, arbitrary input shape)
# ----------------------------------------------------------------------


class JartArrayModel(BatchedDeviceModel):
    """The JART VCM kernel as an array-wide :class:`BatchedDeviceModel`.

    Where :class:`VectorizedJartVcm` carries one *sampled* parameter set per
    lane (a Monte-Carlo population), this adapter maps arbitrary-shaped
    array inputs onto kernel lanes — exactly what the crossbar nodal solver
    and the transient engine need to evaluate all ``rows x columns`` devices
    of an array in one call.  Two lane layouts are supported:

    * a single-lane kernel (the default, one nominal parameter set) is
      broadcast against inputs of any shape;
    * a multi-lane kernel (one lane per *cell*, the full-array Monte-Carlo
      path) remaps flattened inputs lane-for-lane: input element ``k`` of the
      raveled array evaluates through kernel lane ``k``.  The crossbar
      netlist enumerates devices in row-major cell order, so lane
      ``row * columns + column`` carries cell ``(row, column)`` both for the
      solver's flat device vectors and for ``(rows, columns)`` maps.

    Conductance uses the inherited finite-difference rule, which mirrors the
    scalar :meth:`~repro.devices.base.MemristorModel.conductance` default
    step-for-step; agreement with the scalar stamp loop is therefore limited
    only by the ~1e-15 current-solve agreement established by this module's
    property tests.
    """

    def __init__(
        self,
        parameters: Optional[JartVcmParameters] = None,
        kernel: Optional[VectorizedJartVcm] = None,
    ):
        if kernel is not None and parameters is not None:
            raise DeviceModelError("give either nominal parameters or a population kernel")
        self._kernel = kernel if kernel is not None else VectorizedJartVcm(1, base=parameters)

    @property
    def kernel(self) -> VectorizedJartVcm:
        """The underlying population kernel."""
        return self._kernel

    def rebind(self, kernel: VectorizedJartVcm) -> None:
        """Swap in a new population kernel (same lane count).

        Lets one solver/crossbar instance be reused across sampled arrays —
        the expensive netlist and Jacobian-structure setup happens once.
        """
        if kernel.n != self._kernel.n:
            raise DeviceModelError(
                f"replacement kernel has {kernel.n} lanes, expected {self._kernel.n}"
            )
        self._kernel = kernel

    def _evaluate(self, fn_name: str, voltage_v, x, temperature_k) -> np.ndarray:
        voltage_v = np.asarray(voltage_v, dtype=np.float64)
        x = np.asarray(x, dtype=np.float64)
        temperature_k = np.asarray(temperature_k, dtype=np.float64)
        fn = getattr(self._kernel, fn_name)
        if self._kernel.n == 1:
            return fn(voltage_v, x, temperature_k)
        voltage_v, x, temperature_k = np.broadcast_arrays(voltage_v, x, temperature_k)
        if voltage_v.size != self._kernel.n:
            raise DeviceModelError(
                f"input of {voltage_v.size} devices does not match the "
                f"{self._kernel.n}-lane per-cell kernel"
            )
        return fn(
            voltage_v.reshape(-1), x.reshape(-1), temperature_k.reshape(-1)
        ).reshape(voltage_v.shape)

    def current(self, voltage_v, x, temperature_k) -> np.ndarray:
        return self._evaluate("current", voltage_v, x, temperature_k)

    def state_derivative(self, voltage_v, x, temperature_k) -> np.ndarray:
        return self._evaluate("state_derivative", voltage_v, x, temperature_k)


class SampledArrayJartModel(MemristorModel):
    """A crossbar whose every cell carries its own sampled JART parameters.

    The parameter-override path of the full-array Monte-Carlo mode: a
    :class:`VectorizedJartVcm` with one lane per cell (row-major) plugs into
    the batched :class:`~repro.circuit.solver.CrossbarSolver` kernel through a
    lane-remapped :class:`JartArrayModel`, so the nodal operating point of a
    *sampled* array is solved with exactly the machinery of the nominal one.
    :meth:`set_population` swaps the sampled lanes in place, letting one
    crossbar/solver (netlist, Jacobian structure, warm start) be reused
    across every sampled array of a population.

    The scalar :class:`~repro.devices.base.MemristorModel` entry points are
    deliberately unavailable — a per-cell model has no single parameter set a
    scalar call could refer to; array consumers go through :meth:`batched`.
    """

    name = "jart_vcm_sampled_array"

    def __init__(self, kernel: VectorizedJartVcm, shape):
        rows, columns = int(shape[0]), int(shape[1])
        if kernel.n != rows * columns:
            raise DeviceModelError(
                f"kernel has {kernel.n} lanes but the {rows}x{columns} array has "
                f"{rows * columns} cells"
            )
        self.shape = (rows, columns)
        self._kernel = kernel

    @property
    def kernel(self) -> VectorizedJartVcm:
        """The per-cell population kernel (lane = row * columns + column)."""
        return self._kernel

    def set_population(self, kernel: VectorizedJartVcm) -> None:
        """Swap the sampled per-cell parameters (same geometry)."""
        rows, columns = self.shape
        if kernel.n != rows * columns:
            raise DeviceModelError(
                f"kernel has {kernel.n} lanes but the {rows}x{columns} array has "
                f"{rows * columns} cells"
            )
        self._kernel = kernel
        self.batched().rebind(kernel)

    def _make_batched(self) -> JartArrayModel:
        return JartArrayModel(kernel=self._kernel)

    def thermal_resistance_k_per_w(self) -> np.ndarray:
        """Per-cell effective thermal resistance map [K/W] (broadcastable)."""
        return self._kernel.rth_eff_k_per_w.reshape(self.shape)

    def current(self, voltage_v: float, state) -> float:
        raise DeviceModelError(
            "SampledArrayJartModel has no scalar current; every cell carries its own "
            "parameters — evaluate through batched()"
        )

    def state_derivative(self, voltage_v: float, state) -> float:
        raise DeviceModelError(
            "SampledArrayJartModel has no scalar state_derivative; evaluate through batched()"
        )


# ----------------------------------------------------------------------
# electro-thermal operating point
# ----------------------------------------------------------------------


@dataclass
class BatchOperatingPoint:
    """Self-consistent electro-thermal operating points of a population."""

    voltage_v: np.ndarray
    current_a: np.ndarray
    power_w: np.ndarray
    filament_temperature_k: np.ndarray
    ambient_temperature_k: np.ndarray
    crosstalk_temperature_k: np.ndarray
    #: False in lanes whose fixed point failed to settle (thermal runaway).
    converged: np.ndarray

    @property
    def temperature_rise_k(self) -> np.ndarray:
        return self.filament_temperature_k - self.ambient_temperature_k

    @property
    def self_heating_k(self) -> np.ndarray:
        return self.temperature_rise_k - self.crosstalk_temperature_k


def solve_operating_point_batch(
    model: VectorizedJartVcm,
    voltage_v: ArrayLike,
    x: ArrayLike,
    ambient_temperature_k: ArrayLike = DEFAULT_AMBIENT_TEMPERATURE_K,
    crosstalk_temperature_k: ArrayLike = 0.0,
    tolerance_k: float = 0.05,
    max_iterations: int = 200,
    raise_on_failure: bool = True,
) -> BatchOperatingPoint:
    """Batched mirror of :func:`repro.devices.thermal.solve_operating_point`.

    Each lane runs the same damped fixed-point iteration as the scalar solver
    and freezes as soon as its own convergence test passes, so iteration
    counts (and therefore results) match the scalar path lane-for-lane.  With
    ``raise_on_failure=False`` runaway lanes are reported through the
    ``converged`` mask instead of raising, letting population studies keep
    the healthy lanes.
    """
    n = model.n
    voltage = _lanes(voltage_v, n, "voltage_v")
    x = _lanes(x, n, "x")
    ambient = _lanes(ambient_temperature_k, n, "ambient_temperature_k")
    crosstalk = _lanes(crosstalk_temperature_k, n, "crosstalk_temperature_k")

    temperature = ambient + crosstalk
    rth = model.rth_eff_k_per_w
    damping = 0.6
    done = np.zeros(n, dtype=bool)
    for _ in range(max_iterations):
        if not done.any():
            # Fast path while every lane is still iterating (the common case:
            # similar devices converge after similar iteration counts).
            sub, active = model, slice(None)
        else:
            lanes = np.flatnonzero(~done)
            if lanes.size == 0:
                break
            sub, active = model.take(lanes), lanes
        current = sub.current(voltage[active], x[active], temperature[active])
        power = np.abs(voltage[active] * current)
        target = ambient[active] + crosstalk[active] + rth[active] * power
        new_temperature = temperature[active] + damping * (target - temperature[active])
        converged_now = np.abs(new_temperature - temperature[active]) < tolerance_k
        temperature[active] = new_temperature
        done[active] = converged_now

    if not done.all():
        failed = np.flatnonzero(~done)
        if raise_on_failure:
            lane = int(failed[0])
            raise ConvergenceError(
                f"filament temperature did not converge for V={voltage[lane]} V, x={x[lane]} "
                f"(last T={temperature[lane]:.1f} K) in {failed.size} of {n} lanes; "
                "the bias point is likely in thermal runaway"
            )
        logger.debug("operating-point solve left %d of %d lanes unconverged", failed.size, n)

    # Final recompute at the settled temperature, as the scalar solver does on
    # its converged return.
    current = model.current(voltage, x, temperature)
    power = np.abs(voltage * current)
    return BatchOperatingPoint(
        voltage_v=voltage,
        current_a=current,
        power_w=power,
        filament_temperature_k=temperature,
        ambient_temperature_k=ambient,
        crosstalk_temperature_k=crosstalk,
        converged=done,
    )


# ----------------------------------------------------------------------
# switching kinetics
# ----------------------------------------------------------------------


@dataclass
class BatchSwitchingResult:
    """Outcome of a batched constant-bias switching-time integration."""

    switched: np.ndarray
    time_s: np.ndarray
    final_x: np.ndarray
    final_temperature_k: np.ndarray
    steps: np.ndarray
    #: False in lanes whose electro-thermal solve failed (excluded lanes).
    converged: np.ndarray


def time_to_switch_batch(
    model: VectorizedJartVcm,
    voltage_v: ArrayLike,
    x_start: ArrayLike,
    x_target: ArrayLike,
    ambient_temperature_k: ArrayLike = DEFAULT_AMBIENT_TEMPERATURE_K,
    crosstalk_temperature_k: ArrayLike = 0.0,
    max_time_s: ArrayLike = 10.0,
    max_dx_per_step: float = 0.02,
    raise_on_failure: bool = True,
) -> BatchSwitchingResult:
    """Batched mirror of :func:`repro.devices.kinetics.time_to_switch`.

    Every lane follows the scalar integrator's control flow: the same
    adaptive step bound, the same lazy thermal refresh (re-solve once the
    state moved by a quarter step bound), the same termination rules.  Lanes
    retire independently; the loop runs until the last lane finishes.
    """
    n = model.n
    voltage = _lanes(voltage_v, n, "voltage_v")
    x = _lanes(x_start, n, "x_start")
    target = _lanes(x_target, n, "x_target")
    ambient = _lanes(ambient_temperature_k, n, "ambient_temperature_k")
    crosstalk = _lanes(crosstalk_temperature_k, n, "crosstalk_temperature_k")
    max_time = _lanes(max_time_s, n, "max_time_s")

    if np.any((x < 0.0) | (x > 1.0)) or np.any((target < 0.0) | (target > 1.0)):
        raise DeviceModelError("states must lie in [0, 1] in every lane")
    if np.any(max_time <= 0):
        raise DeviceModelError("max_time_s must be positive in every lane")

    towards_set = target >= x
    time_s = np.zeros(n)
    steps = np.zeros(n, dtype=np.int64)
    stuck = np.zeros(n, dtype=bool)

    initial = solve_operating_point_batch(
        model, voltage, x, ambient, crosstalk, raise_on_failure=raise_on_failure
    )
    temperature = initial.filament_temperature_k.copy()
    converged = initial.converged.copy()
    x_at_last_thermal_solve = x.copy()

    # Lanes whose operating point never settles cannot be integrated; retire
    # them immediately (they stay flagged through the `converged` mask).
    active = converged.copy()

    while True:
        idx = np.flatnonzero(active)
        if idx.size == 0:
            break
        steps[idx] += 1

        refresh = idx[np.abs(x[idx] - x_at_last_thermal_solve[idx]) > 0.25 * max_dx_per_step]
        if refresh.size:
            solved = solve_operating_point_batch(
                model.take(refresh),
                voltage[refresh],
                x[refresh],
                ambient[refresh],
                crosstalk[refresh],
                raise_on_failure=raise_on_failure,
            )
            temperature[refresh] = solved.filament_temperature_k
            x_at_last_thermal_solve[refresh] = x[refresh]
            lost = refresh[~solved.converged]
            if lost.size:
                converged[lost] = False
                active[lost] = False
                idx = np.flatnonzero(active)
                if idx.size == 0:
                    break

        sub = model.take(idx)
        rate = sub.state_derivative(voltage[idx], x[idx], temperature[idx])
        moving = ((rate > 0.0) & towards_set[idx]) | ((rate < 0.0) & ~towards_set[idx])
        blocked = (rate == 0.0) | ~moving
        # The bias cannot move these lanes towards the target at all: the
        # scalar path reports them unswitched with the full time budget.
        lanes_stuck = idx[blocked]
        if lanes_stuck.size:
            stuck[lanes_stuck] = True
            time_s[lanes_stuck] = max_time[lanes_stuck]
            active[lanes_stuck] = False

        go = idx[~blocked]
        if go.size == 0:
            continue
        go_rate = rate[~blocked]
        remaining = np.abs(target[go] - x[go])
        at_target = remaining <= 0.0
        active[go[at_target]] = False

        go = go[~at_target]
        if go.size == 0:
            continue
        go_rate = go_rate[~at_target]
        remaining = remaining[~at_target]
        dt = np.minimum(max_dx_per_step, remaining) / np.abs(go_rate)
        overtime = time_s[go] + dt >= max_time[go]

        over = go[overtime]
        if over.size:
            dt_over = max_time[over] - time_s[over]
            x[over] = x[over] + np.copysign(
                np.minimum(np.abs(go_rate[overtime]) * dt_over, remaining[overtime]),
                target[over] - x[over],
            )
            time_s[over] = max_time[over]
            active[over] = False

        step = go[~overtime]
        if step.size:
            x[step] = x[step] + np.copysign(
                np.minimum(np.abs(go_rate[~overtime]) * dt[~overtime], remaining[~overtime]),
                target[step] - x[step],
            )
            time_s[step] = time_s[step] + dt[~overtime]
            crossed = (towards_set[step] & (x[step] >= target[step])) | (
                ~towards_set[step] & (x[step] <= target[step])
            )
            active[step[crossed]] = False

    switched = (towards_set & (x >= target)) | (~towards_set & (x <= target))
    switched &= ~stuck
    switched &= converged
    return BatchSwitchingResult(
        switched=switched,
        time_s=time_s,
        final_x=x,
        final_temperature_k=temperature,
        steps=steps,
        converged=converged,
    )


@dataclass
class BatchPulseCountResult:
    """Outcome of a batched pulsed switching estimation."""

    flipped: np.ndarray
    pulses: np.ndarray
    stress_time_s: np.ndarray
    wall_clock_s: np.ndarray
    final_x: np.ndarray
    final_temperature_k: np.ndarray
    converged: np.ndarray


def pulses_to_switch_batch(
    model: VectorizedJartVcm,
    voltage_v: ArrayLike,
    pulse_length_s: ArrayLike,
    x_start: ArrayLike,
    x_target: ArrayLike,
    duty_cycle: ArrayLike = 0.5,
    ambient_temperature_k: ArrayLike = DEFAULT_AMBIENT_TEMPERATURE_K,
    crosstalk_temperature_k: ArrayLike = 0.0,
    max_pulses: int = 10_000_000,
    raise_on_failure: bool = True,
) -> BatchPulseCountResult:
    """Batched mirror of :func:`repro.devices.kinetics.pulses_to_switch`."""
    n = model.n
    pulse_length = _lanes(pulse_length_s, n, "pulse_length_s")
    duty = _lanes(duty_cycle, n, "duty_cycle")
    if np.any(pulse_length <= 0):
        raise DeviceModelError("pulse_length_s must be positive in every lane")
    if max_pulses < 1:
        raise DeviceModelError("max_pulses must be at least 1")
    if np.any((duty <= 0.0) | (duty > 1.0)):
        raise DeviceModelError("duty cycle must be in (0, 1] in every lane")

    budget_s = pulse_length * max_pulses
    result = time_to_switch_batch(
        model,
        voltage_v,
        x_start,
        x_target,
        ambient_temperature_k=ambient_temperature_k,
        crosstalk_temperature_k=crosstalk_temperature_k,
        max_time_s=budget_s,
        raise_on_failure=raise_on_failure,
    )
    pulses = np.where(
        result.switched,
        np.maximum(1, np.ceil(result.time_s / pulse_length)).astype(np.int64),
        np.int64(max_pulses),
    )
    period_s = pulse_length / duty
    return BatchPulseCountResult(
        flipped=result.switched,
        pulses=pulses,
        stress_time_s=np.minimum(result.time_s, pulses * pulse_length),
        wall_clock_s=pulses * period_s,
        final_x=result.final_x,
        final_temperature_k=result.final_temperature_k,
        converged=result.converged,
    )

"""Seeded random-number streams shared across subsystems.

Every stochastic subsystem of the reproduction (the campaign engine's random
sweeps, the Monte-Carlo population sampler) derives its generators from one
user-facing integer seed through :class:`numpy.random.SeedSequence` spawn
keys.  Each consumer names its stream with a stable string/integer key path,
so

* the same seed always reproduces the same draws in every subsystem,
* independent subsystems (or independent distributions inside one sampler)
  get statistically independent streams instead of sharing one generator, and
* adding a new stream never perturbs the draws of existing ones.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

SpawnKey = Union[int, str]

#: Upper bound (exclusive) for integer seeds derived for non-NumPy consumers.
DERIVED_SEED_BOUND = 2**63


def _key_to_int(key: SpawnKey) -> int:
    """Map one spawn-key element to a stable unsigned integer.

    Strings are hashed with SHA-256 (not ``hash()``, which is salted per
    process) so the derived streams are reproducible across runs and hosts.
    """
    if isinstance(key, bool):  # bool is an int subclass; reject to avoid surprises
        raise TypeError("spawn keys must be str or int, not bool")
    if isinstance(key, int):
        if key < 0:
            raise ValueError(f"integer spawn keys must be non-negative, got {key}")
        return key
    if isinstance(key, str):
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")
    raise TypeError(f"spawn keys must be str or int, got {type(key).__name__}")


def seed_sequence(seed: int, *spawn_key: SpawnKey) -> np.random.SeedSequence:
    """A :class:`~numpy.random.SeedSequence` for the named child stream."""
    return np.random.SeedSequence(
        entropy=int(seed), spawn_key=tuple(_key_to_int(key) for key in spawn_key)
    )


def child_rng(seed: int, *spawn_key: SpawnKey) -> np.random.Generator:
    """A :class:`~numpy.random.Generator` seeded for the named child stream.

    Example::

        rng = child_rng(7, "montecarlo", "device.activation_energy_ev")
    """
    return np.random.default_rng(seed_sequence(seed, *spawn_key))


def child_seed(seed: int, *spawn_key: SpawnKey) -> int:
    """A derived integer seed (< 2**63) for non-NumPy RNG consumers.

    Use this to seed :class:`random.Random` or an external tool from the same
    spawn-key tree, keeping all subsystems reproducible from one root seed.
    """
    state = seed_sequence(seed, *spawn_key).generate_state(2, dtype=np.uint64)
    return int((int(state[0]) << 32 ^ int(state[1])) % DERIVED_SEED_BOUND)

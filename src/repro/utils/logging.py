"""Library-wide logging setup.

The library never configures the root logger; it only provides namespaced
loggers so applications embedding the simulator keep full control over log
handling, while the examples get a convenient one-call console setup.
"""

from __future__ import annotations

import logging
from typing import Optional

_LIBRARY_LOGGER_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a logger inside the library's namespace."""
    if name is None:
        return logging.getLogger(_LIBRARY_LOGGER_NAME)
    if name.startswith(_LIBRARY_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_LIBRARY_LOGGER_NAME}.{name}")


_console_handler: Optional[logging.Handler] = None


def configure_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a simple console handler to the library logger (for examples/CLIs).

    Idempotent: repeated calls — including with different levels — retune the
    one managed handler instead of stacking duplicates, so every record is
    still emitted exactly once.
    """
    global _console_handler
    logger = get_logger()
    if _console_handler is None or _console_handler not in logger.handlers:
        existing = next(
            (h for h in logger.handlers if isinstance(h, logging.StreamHandler)), None
        )
        if existing is None:
            existing = logging.StreamHandler()
            existing.setFormatter(
                logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
            )
            logger.addHandler(existing)
        _console_handler = existing
    _console_handler.setLevel(level)
    logger.setLevel(level)
    return logger

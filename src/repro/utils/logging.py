"""Library-wide logging setup.

The library never configures the root logger; it only provides namespaced
loggers so applications embedding the simulator keep full control over log
handling, while the examples get a convenient one-call console setup.
"""

from __future__ import annotations

import logging
from typing import Optional

_LIBRARY_LOGGER_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a logger inside the library's namespace."""
    if name is None:
        return logging.getLogger(_LIBRARY_LOGGER_NAME)
    if name.startswith(_LIBRARY_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_LIBRARY_LOGGER_NAME}.{name}")


def configure_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a simple console handler to the library logger (for examples/CLIs)."""
    logger = get_logger()
    if not any(isinstance(handler, logging.StreamHandler) for handler in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s"))
        logger.addHandler(handler)
    logger.setLevel(level)
    return logger

"""Plain-text reporting helpers: ASCII tables and log-scale ASCII charts.

The benchmark harness prints the same rows/series the paper's figures show;
these helpers keep that output readable in a terminal and diffable in CI
without pulling in a plotting dependency.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Union

Number = Union[int, float]


def format_value(value: object, precision: int = 4) -> str:
    """Format one table value compactly."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.{precision - 1}e}"
        return f"{value:.{precision}g}"
    return str(value)


def _single_line(text: str) -> str:
    """Collapse any line boundary so table rows stay one line high."""
    return " ".join(text.splitlines()) if text else text


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]], precision: int = 4) -> str:
    """Render rows as a fixed-width ASCII table."""
    rendered_rows = [[_single_line(format_value(cell, precision)) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(str(cell).ljust(widths[index]) for index, cell in enumerate(cells))

    separator = "-+-".join("-" * width for width in widths)
    out = [line(list(headers)), separator]
    out.extend(line(row) for row in rendered_rows)
    return "\n".join(out)


def log_ascii_chart(
    labels: Sequence[object],
    values: Sequence[Number],
    width: int = 50,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Render a horizontal bar chart with a logarithmic axis.

    Mirrors the paper's log-scale figures: each label gets a bar whose length
    is proportional to log10(value).
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    positives = [value for value in values if value > 0]
    if not positives:
        return "(no positive data to chart)"
    low = math.floor(math.log10(min(positives)))
    high = math.ceil(math.log10(max(positives)))
    span = max(high - low, 1)

    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(len(str(label)) for label in labels)
    for label, value in zip(labels, values):
        if value <= 0:
            bar = ""
            rendered = "n/a"
        else:
            fraction = (math.log10(value) - low) / span
            bar = "#" * max(1, int(round(fraction * width)))
            rendered = format_value(float(value))
        lines.append(f"{str(label).rjust(label_width)} | {bar.ljust(width)} {rendered}{unit}")
    lines.append(f"{' ' * label_width} | log scale: 1e{low} .. 1e{high}")
    return "\n".join(lines)


def matrix_heatmap(matrix: Sequence[Sequence[Number]], precision: int = 1, cell_width: int = 7) -> str:
    """Render a small matrix (e.g. the Fig. 2a temperature map) as text."""
    lines = []
    for row in matrix:
        lines.append(" ".join(f"{float(value):{cell_width}.{precision}f}" for value in row))
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Serialise rows as CSV text."""
    def escape(cell: object) -> str:
        text = str(cell)
        if any(character in text for character in (",", '"', "\n", "\r")):
            return '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(escape(header) for header in headers)]
    lines.extend(",".join(escape(cell) for cell in row) for row in rows)
    return "\n".join(lines) + "\n"

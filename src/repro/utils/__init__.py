"""Reporting and logging utilities."""

from .logging import configure_console_logging, get_logger
from .tables import ascii_table, format_value, log_ascii_chart, matrix_heatmap, to_csv

__all__ = [
    "ascii_table",
    "format_value",
    "log_ascii_chart",
    "matrix_heatmap",
    "to_csv",
    "get_logger",
    "configure_console_logging",
]

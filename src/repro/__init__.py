"""NeuroHammer reproduction: inducing bit-flips in memristive crossbar memories.

A full Python reproduction of F. Staudigl et al., "NeuroHammer: Inducing
Bit-Flips in Memristive Crossbar Memories" (DATE 2022): the JART-style VCM
device compact model, the electro-thermal crossbar simulation and alpha-value
extraction, the circuit-level crossbar framework with its crosstalk hub and
memory controller, the NeuroHammer attack engine, the Sec. VI attack
scenarios on a ReRAM main-memory substrate, countermeasures, and an
experiment/benchmark harness regenerating every figure of the paper.

Typical entry points::

    from repro import hammer_once
    result = hammer_once(pulse_length_s=50e-9)
    print(result.pulses, result.flipped)

    from repro.experiments import run_fig3a
    print(run_fig3a().to_table())

Large parameter studies go through the campaign engine, which fans a
declarative sweep out over a worker pool and caches every point on disk so
re-runs and interrupted campaigns are incremental::

    from repro import CampaignRunner, CampaignSpec, ResultCache
    spec = CampaignSpec(
        name="pulse-study",
        axes=[{"path": "attack.pulse.length_s",
               "values": [10e-9, 50e-9, 100e-9]}],
    )
    report = CampaignRunner(spec, cache=ResultCache(".repro-cache"), workers=4).run()
    print(report.summary())

The same engine backs the command line: ``python -m repro run-fig 3a`` and
``python -m repro campaign run spec.json --workers 4``.

Statistical (device-to-device / cycle-to-cycle) questions go through the
Monte-Carlo variability engine, which evaluates whole sampled cell
populations through a NumPy-vectorized device model::

    from repro import MonteCarloConfig, MonteCarloEngine
    config = MonteCarloConfig(
        n_samples=2000,
        distributions=[{"path": "device.activation_energy_ev",
                        "kind": "normal", "mean": 1.0, "sigma": 0.02,
                        "relative": True}],
    )
    result = MonteCarloEngine(config).run()
    print(result.flip_probability)

On the command line: ``python -m repro mc run spec.json`` and
``python -m repro mc map spec.json --workers 4``.

Every layer is instrumented with opt-in, dependency-free telemetry
(:mod:`repro.obs`): counters, gauges, log-binned histograms and nested spans
that cost one attribute check when disabled::

    from repro import Telemetry, telemetry_capture
    with telemetry_capture(Telemetry()) as tel:
        MonteCarloEngine(config).run()
    print(tel.snapshot()["counters"]["solver.iterations"])

On the command line: ``python -m repro profile mc run spec.json``.
"""

from .attack import AttackResult, NeuroHammer, WorstCaseCornerScenario, YieldScenario, hammer_once
from .campaign import CampaignReport, CampaignRunner, CampaignSpec, ResultCache, SweepAxis
from .circuit import CrossbarArray, MemoryController
from .config import (
    AttackConfig,
    CrossbarGeometry,
    PulseConfig,
    SimulationConfig,
    ThermalSolverConfig,
    WireParameters,
)
from .devices import DeviceState, JartVcmModel, JartVcmParameters
from .errors import (
    CampaignError,
    CampaignInterrupted,
    FaultInjectionError,
    MonteCarloError,
    ReproError,
    StoreError,
    StoreUnavailableError,
)
from .faults import FaultPlan, RetryPolicy, graceful_shutdown, is_retryable, register_retryable
from .montecarlo import (
    AdaptiveConfig,
    AdaptiveSampler,
    FullArrayMonteCarloResult,
    ImportanceSettings,
    MonteCarloConfig,
    MonteCarloEngine,
    MonteCarloResult,
    ParameterDistribution,
    StreamingBinomialEstimator,
    flip_probability_map,
    refine_flip_probability_map,
)
from .obs import (
    AuditTrail,
    NumericsWatchdog,
    Telemetry,
    audit_capture,
    build_manifest,
    enable_telemetry,
    disable_telemetry,
    get_telemetry,
    numerics_capture,
    telemetry_capture,
)
from .store import LeaseManager, ResultStore, migrate_legacy_cache
from .thermal import (
    AnalyticCouplingModel,
    HeatSolver,
    build_voxel_model,
    extract_alpha_values,
    make_crosstalk_operator,
)

__version__ = "1.9.0"

__all__ = [
    "__version__",
    "hammer_once",
    "NeuroHammer",
    "AttackResult",
    "CrossbarArray",
    "MemoryController",
    "CrossbarGeometry",
    "WireParameters",
    "ThermalSolverConfig",
    "PulseConfig",
    "AttackConfig",
    "SimulationConfig",
    "JartVcmModel",
    "JartVcmParameters",
    "DeviceState",
    "AnalyticCouplingModel",
    "HeatSolver",
    "build_voxel_model",
    "extract_alpha_values",
    "ReproError",
    "CampaignError",
    "CampaignInterrupted",
    "FaultInjectionError",
    "MonteCarloError",
    "StoreError",
    "StoreUnavailableError",
    "FaultPlan",
    "RetryPolicy",
    "graceful_shutdown",
    "is_retryable",
    "register_retryable",
    "CampaignSpec",
    "SweepAxis",
    "CampaignRunner",
    "CampaignReport",
    "ResultCache",
    "ResultStore",
    "LeaseManager",
    "migrate_legacy_cache",
    "MonteCarloConfig",
    "MonteCarloEngine",
    "MonteCarloResult",
    "FullArrayMonteCarloResult",
    "ParameterDistribution",
    "ImportanceSettings",
    "AdaptiveConfig",
    "AdaptiveSampler",
    "StreamingBinomialEstimator",
    "flip_probability_map",
    "refine_flip_probability_map",
    "make_crosstalk_operator",
    "YieldScenario",
    "WorstCaseCornerScenario",
    "Telemetry",
    "get_telemetry",
    "enable_telemetry",
    "disable_telemetry",
    "telemetry_capture",
    "build_manifest",
    "AuditTrail",
    "audit_capture",
    "NumericsWatchdog",
    "numerics_capture",
]

"""Exception hierarchy for the NeuroHammer reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A configuration value is missing, inconsistent or out of range."""


class DeviceModelError(ReproError):
    """A device compact model was driven outside its validity range."""


class ConvergenceError(ReproError):
    """An iterative solver (Newton, linear system) failed to converge."""


class GeometryError(ReproError):
    """A crossbar or thermal geometry definition is invalid."""


class AttackError(ReproError):
    """An attack definition is inconsistent (e.g. aggressor equals victim)."""


class AddressingError(ReproError):
    """A memory address is outside the mapped range or otherwise invalid."""


class EccError(ReproError):
    """An ECC codec was used with inconsistent word sizes or invalid input."""


class ExperimentError(ReproError):
    """An experiment/benchmark harness was configured inconsistently."""


class CampaignError(ReproError):
    """A campaign spec, cache or runner was used inconsistently."""


class CampaignInterrupted(CampaignError):
    """A campaign was stopped by SIGINT/SIGTERM after draining bookkeeping.

    Completed points were stored in the result cache before this was raised,
    so the next run of the same spec resumes where the interrupted one left
    off.  The CLI maps this to heartbeat/ledger status ``interrupted`` and a
    130 exit code.
    """


class StoreError(CampaignError):
    """The shared result store was used inconsistently or is damaged."""


class StoreUnavailableError(StoreError):
    """The shared result store cannot be opened (read-only root, locked-out
    index, unusable sqlite).  Callers holding a legacy fallback — notably the
    :class:`~repro.campaign.cache.ResultCache` facade — degrade to the
    per-file path with a warning instead of failing the campaign."""


class FaultInjectionError(ReproError):
    """A fault-injection spec (``REPRO_FAULTS`` / ``--inject-faults``) is invalid."""


class MonteCarloError(ReproError):
    """A Monte-Carlo population spec or engine was used inconsistently."""

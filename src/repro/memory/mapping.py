"""Physical address mapping onto crossbar cells.

The RowHammer exploit the paper references (Seaborn et al.) needs "the
correct address mapping between the physical and virtual memory space to
hammer the correct cells".  This module provides that substrate for the
ReRAM case: a deterministic, invertible mapping from byte addresses to
(bank, crossbar tile, row, column) bit locations, plus the adjacency queries
an attacker needs ("which addresses are physically adjacent to this one?").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..errors import AddressingError

Cell = Tuple[int, int]


@dataclass(frozen=True)
class BitLocation:
    """Physical location of one bit."""

    bank: int
    tile: int
    row: int
    column: int

    def cell(self) -> Cell:
        """Crossbar cell coordinate within the tile."""
        return (self.row, self.column)


@dataclass
class AddressMapping:
    """Row-major interleaved mapping of byte addresses to crossbar bits.

    Layout: each crossbar tile stores ``rows x columns`` bits; consecutive
    bits of a byte live in consecutive columns of the same row; consecutive
    bytes fill a tile row-major; tiles fill a bank; banks interleave last.
    """

    rows: int = 64
    columns: int = 64
    tiles_per_bank: int = 16
    banks: int = 4

    def __post_init__(self) -> None:
        for name in ("rows", "columns", "tiles_per_bank", "banks"):
            if getattr(self, name) < 1:
                raise AddressingError(f"{name} must be at least 1")
        if self.columns % 8 != 0:
            raise AddressingError("columns must be a multiple of 8 so bytes do not straddle rows")

    # -- capacity ------------------------------------------------------------

    @property
    def bits_per_tile(self) -> int:
        """Storage bits in one crossbar tile."""
        return self.rows * self.columns

    @property
    def bytes_per_tile(self) -> int:
        """Storage bytes in one crossbar tile."""
        return self.bits_per_tile // 8

    @property
    def capacity_bytes(self) -> int:
        """Total capacity of the mapped memory [bytes]."""
        return self.bytes_per_tile * self.tiles_per_bank * self.banks

    # -- forward mapping -------------------------------------------------------

    def locate_bit(self, byte_address: int, bit_index: int) -> BitLocation:
        """Physical location of bit ``bit_index`` of the byte at ``byte_address``."""
        if not 0 <= bit_index < 8:
            raise AddressingError("bit_index must be in [0, 8)")
        self._check_address(byte_address)
        global_bit = byte_address * 8 + bit_index
        bits_per_bank = self.bits_per_tile * self.tiles_per_bank
        bank = global_bit // bits_per_bank
        within_bank = global_bit % bits_per_bank
        tile = within_bank // self.bits_per_tile
        within_tile = within_bank % self.bits_per_tile
        row = within_tile // self.columns
        column = within_tile % self.columns
        return BitLocation(bank=bank, tile=tile, row=row, column=column)

    def locate_byte(self, byte_address: int) -> List[BitLocation]:
        """Physical locations of all 8 bits of a byte."""
        return [self.locate_bit(byte_address, bit) for bit in range(8)]

    # -- inverse mapping --------------------------------------------------------

    def address_of(self, location: BitLocation) -> Tuple[int, int]:
        """Inverse mapping: (byte_address, bit_index) of a physical bit."""
        if not (0 <= location.bank < self.banks):
            raise AddressingError(f"bank {location.bank} out of range")
        if not (0 <= location.tile < self.tiles_per_bank):
            raise AddressingError(f"tile {location.tile} out of range")
        if not (0 <= location.row < self.rows and 0 <= location.column < self.columns):
            raise AddressingError(f"cell ({location.row}, {location.column}) out of range")
        global_bit = (
            location.bank * self.tiles_per_bank * self.bits_per_tile
            + location.tile * self.bits_per_tile
            + location.row * self.columns
            + location.column
        )
        return global_bit // 8, global_bit % 8

    # -- adjacency (what the attacker needs) -------------------------------------

    def physically_adjacent_bits(self, location: BitLocation) -> List[BitLocation]:
        """Bits whose cells share a word or bit line segment next to ``location``.

        These are the aggressor candidates for flipping the given bit with
        NeuroHammer: the same-row and same-column nearest neighbours inside
        the same tile.
        """
        neighbours = []
        for dr, dc in ((0, -1), (0, 1), (-1, 0), (1, 0)):
            row, column = location.row + dr, location.column + dc
            if 0 <= row < self.rows and 0 <= column < self.columns:
                neighbours.append(
                    BitLocation(bank=location.bank, tile=location.tile, row=row, column=column)
                )
        return neighbours

    def aggressor_addresses_for(self, byte_address: int, bit_index: int) -> List[Tuple[int, int]]:
        """(byte_address, bit_index) pairs the attacker must own to hammer a bit."""
        victim = self.locate_bit(byte_address, bit_index)
        return [self.address_of(neighbour) for neighbour in self.physically_adjacent_bits(victim)]

    def iter_addresses(self) -> Iterator[int]:
        """Iterate over every byte address of the mapped memory."""
        return iter(range(self.capacity_bytes))

    # -- helpers -----------------------------------------------------------------

    def _check_address(self, byte_address: int) -> None:
        if not 0 <= byte_address < self.capacity_bytes:
            raise AddressingError(
                f"byte address {byte_address:#x} outside capacity {self.capacity_bytes:#x}"
            )

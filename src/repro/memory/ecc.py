"""SEC-DED Hamming error-correcting code.

ReRAM main memories would realistically ship with ECC, and ECC is the first
line of defence discussed in the RowHammer literature the paper builds on.
This module provides a standard Hamming(72, 64)-style single-error-correct /
double-error-detect codec over arbitrary word widths, used by the memory
array model and the defense evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import EccError


def _parity_bit_count(data_bits: int) -> int:
    """Number of Hamming parity bits needed for ``data_bits`` data bits."""
    count = 0
    while (1 << count) < data_bits + count + 1:
        count += 1
    return count


@dataclass
class DecodeResult:
    """Outcome of decoding one ECC word."""

    data_bits: Tuple[int, ...]
    corrected: bool
    double_error_detected: bool
    #: Index (1-based, within the codeword) of the corrected bit, if any.
    corrected_position: Optional[int] = None


class HammingSecDed:
    """Single-error-correcting, double-error-detecting Hamming codec."""

    def __init__(self, data_bits: int = 64):
        if data_bits < 1:
            raise EccError("data_bits must be at least 1")
        self.data_bits = data_bits
        self.parity_bits = _parity_bit_count(data_bits)
        #: Total codeword length including the overall parity bit.
        self.codeword_bits = data_bits + self.parity_bits + 1

    # -- encoding ------------------------------------------------------------

    def encode(self, data: Sequence[int]) -> List[int]:
        """Encode a data word into a codeword (lists of 0/1 bits)."""
        if len(data) != self.data_bits:
            raise EccError(f"expected {self.data_bits} data bits, got {len(data)}")
        if any(bit not in (0, 1) for bit in data):
            raise EccError("data bits must be 0 or 1")

        # Positions are 1-based; powers of two hold parity bits.
        length = self.data_bits + self.parity_bits
        codeword = [0] * (length + 1)  # index 0 unused
        data_iter = iter(data)
        for position in range(1, length + 1):
            if position & (position - 1) == 0:  # power of two -> parity slot
                continue
            codeword[position] = next(data_iter)

        for p in range(self.parity_bits):
            parity_position = 1 << p
            parity = 0
            for position in range(1, length + 1):
                if position & parity_position and position != parity_position:
                    parity ^= codeword[position]
            codeword[parity_position] = parity

        overall = 0
        for position in range(1, length + 1):
            overall ^= codeword[position]
        return codeword[1:] + [overall]

    # -- decoding ------------------------------------------------------------

    def decode(self, codeword: Sequence[int]) -> DecodeResult:
        """Decode a codeword, correcting a single error if present."""
        if len(codeword) != self.codeword_bits:
            raise EccError(f"expected {self.codeword_bits} codeword bits, got {len(codeword)}")
        if any(bit not in (0, 1) for bit in codeword):
            raise EccError("codeword bits must be 0 or 1")

        length = self.data_bits + self.parity_bits
        bits = [0] + list(codeword[:length])
        stored_overall = codeword[length]

        syndrome = 0
        for p in range(self.parity_bits):
            parity_position = 1 << p
            parity = 0
            for position in range(1, length + 1):
                if position & parity_position:
                    parity ^= bits[position]
            if parity:
                syndrome |= parity_position

        overall = stored_overall
        for position in range(1, length + 1):
            overall ^= bits[position]

        corrected = False
        corrected_position: Optional[int] = None
        double_error = False
        if syndrome == 0 and overall == 0:
            pass  # clean word
        elif overall == 1:
            # Single error: either in a codeword bit (syndrome != 0) or in the
            # overall parity bit itself (syndrome == 0).
            if syndrome != 0:
                if syndrome <= length:
                    bits[syndrome] ^= 1
                    corrected_position = syndrome
                corrected = True
            else:
                corrected = True
        else:
            double_error = True

        data = [
            bits[position]
            for position in range(1, length + 1)
            if position & (position - 1) != 0
        ]
        return DecodeResult(
            data_bits=tuple(data),
            corrected=corrected,
            double_error_detected=double_error,
            corrected_position=corrected_position,
        )

    # -- parity separation (for memories that store parity out of band) --------

    def parity_of(self, codeword: Sequence[int]) -> List[int]:
        """Extract the parity bits (Hamming parities + overall bit) of a codeword."""
        if len(codeword) != self.codeword_bits:
            raise EccError(f"expected {self.codeword_bits} codeword bits, got {len(codeword)}")
        length = self.data_bits + self.parity_bits
        parities = [codeword[(1 << p) - 1] for p in range(self.parity_bits)]
        parities.append(codeword[length])
        return parities

    def assemble(self, data: Sequence[int], parity: Sequence[int]) -> List[int]:
        """Rebuild a codeword from separately stored data and parity bits."""
        if len(data) != self.data_bits:
            raise EccError(f"expected {self.data_bits} data bits, got {len(data)}")
        if len(parity) != self.parity_bits + 1:
            raise EccError(f"expected {self.parity_bits + 1} parity bits, got {len(parity)}")
        length = self.data_bits + self.parity_bits
        codeword = [0] * (length + 1)
        data_iter = iter(data)
        for position in range(1, length + 1):
            if position & (position - 1) == 0:
                continue
            codeword[position] = next(data_iter)
        for p in range(self.parity_bits):
            codeword[1 << p] = parity[p]
        return codeword[1:] + [parity[-1]]

    # -- convenience over integers --------------------------------------------

    def encode_int(self, value: int) -> List[int]:
        """Encode an unsigned integer of ``data_bits`` bits."""
        if value < 0 or value >= (1 << self.data_bits):
            raise EccError(f"value {value} does not fit in {self.data_bits} bits")
        bits = [(value >> i) & 1 for i in range(self.data_bits)]
        return self.encode(bits)

    def decode_int(self, codeword: Sequence[int]) -> Tuple[int, DecodeResult]:
        """Decode a codeword back into an unsigned integer."""
        result = self.decode(codeword)
        value = 0
        for i, bit in enumerate(result.data_bits):
            value |= bit << i
        return value, result

"""Behavioural ReRAM main-memory model built from crossbar tiles.

The security discussion of the paper (Sec. VI) assumes ReRAM replaces DRAM as
main memory.  This module provides that substrate as a behavioural model: a
byte-addressable memory whose bits live in crossbar tiles, with an explicit
disturbance interface so the attack-scenario engine can ask "the attacker
hammers address A — which victim bits flip, and after how many pulses?"
without simulating every tile at circuit level.

The disturbance figures (pulses-to-flip per neighbour class) are supplied by
a :class:`DisturbanceProfile`, which is normally derived from the circuit
simulation via :func:`profile_from_attack_result`, keeping the behavioural
model consistent with the physics stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import AddressingError, ConfigurationError
from .ecc import HammingSecDed
from .mapping import AddressMapping, BitLocation

Cell = Tuple[int, int]


@dataclass
class DisturbanceProfile:
    """Pulses-to-flip figures for victims of a hammered cell.

    ``same_line_pulses`` applies to victims sharing a word or bit line with
    the aggressor (the paper's half-selected cells); ``diagonal_pulses`` to
    diagonal neighbours (weaker coupling, no half-select stress under the V/2
    scheme, hence effectively immune — ``None`` encodes "does not flip").
    """

    same_line_pulses: int = 5655
    diagonal_pulses: Optional[int] = None
    #: Only victims currently storing this bit value can flip (SET-direction
    #: disturbance flips HRS cells, i.e. stored zeros under the default
    #: LRS-is-one encoding).
    vulnerable_bit: int = 0
    #: Pulse period of the hammering [s].
    pulse_period_s: float = 100e-9

    def __post_init__(self) -> None:
        if self.same_line_pulses < 1:
            raise ConfigurationError("same_line_pulses must be positive")
        if self.diagonal_pulses is not None and self.diagonal_pulses < 1:
            raise ConfigurationError("diagonal_pulses must be positive when given")
        if self.vulnerable_bit not in (0, 1):
            raise ConfigurationError("vulnerable_bit must be 0 or 1")

    def pulses_for(self, aggressor: BitLocation, victim: BitLocation) -> Optional[int]:
        """Pulses needed to flip ``victim`` by hammering ``aggressor`` (None = never)."""
        if aggressor.bank != victim.bank or aggressor.tile != victim.tile:
            return None
        dr = abs(aggressor.row - victim.row)
        dc = abs(aggressor.column - victim.column)
        if dr + dc == 0:
            return None
        if (dr == 0 or dc == 0) and dr + dc == 1:
            return self.same_line_pulses
        if dr == 1 and dc == 1:
            return self.diagonal_pulses
        return None


def profile_from_attack_result(pulses: int, pulse_period_s: float) -> DisturbanceProfile:
    """Build a disturbance profile from a circuit-level attack result."""
    return DisturbanceProfile(same_line_pulses=max(1, int(pulses)), pulse_period_s=pulse_period_s)


@dataclass
class FlipRecord:
    """One disturbance-induced bit flip observed by the memory model."""

    byte_address: int
    bit_index: int
    old_bit: int
    new_bit: int
    pulses_applied: int
    corrected_by_ecc: bool = False


class ReramMemory:
    """Byte-addressable ReRAM memory with a disturbance interface."""

    def __init__(
        self,
        mapping: AddressMapping = None,
        disturbance: DisturbanceProfile = None,
        ecc: Optional[HammingSecDed] = None,
        ecc_word_bytes: int = 8,
    ):
        self.mapping = mapping if mapping is not None else AddressMapping()
        self.disturbance = disturbance if disturbance is not None else DisturbanceProfile()
        self.ecc = ecc
        self.ecc_word_bytes = ecc_word_bytes
        if ecc is not None and ecc.data_bits != ecc_word_bytes * 8:
            raise ConfigurationError("ECC codec width does not match ecc_word_bytes")
        #: Data bits indexed by global bit number.
        self._bits = np.zeros(self.mapping.capacity_bytes * 8, dtype=np.uint8)
        #: Accumulated hammer pulses per aggressor bit location.
        self._hammer_counters: Dict[Tuple[int, int, int, int], int] = {}
        #: Stored parity bits per ECC word (written at write time).
        self._parity: Dict[int, List[int]] = {}
        self.flip_log: List[FlipRecord] = []
        #: Number of single-bit errors the ECC corrected on reads.
        self.ecc_corrections = 0
        #: Number of uncorrectable (double) errors the ECC detected on reads.
        self.ecc_detected_failures = 0

    # ------------------------------------------------------------------
    # ordinary accesses
    # ------------------------------------------------------------------

    def write_byte(self, address: int, value: int) -> None:
        """Write one byte (and refresh the ECC parity of its word)."""
        if not 0 <= value < 256:
            raise AddressingError("byte value must be in [0, 255]")
        self.mapping._check_address(address)
        for bit in range(8):
            self._bits[address * 8 + bit] = (value >> bit) & 1
        # A genuine write also resets the disturbance accumulated on the
        # written bits (the cells are re-programmed).
        for bit in range(8):
            location = self.mapping.locate_bit(address, bit)
            self._hammer_counters.pop(self._key(location), None)
        if self.ecc is not None:
            self._refresh_parity(address // self.ecc_word_bytes)

    def read_byte(self, address: int) -> int:
        """Read one byte (ECC-corrected if a codec is attached)."""
        self.mapping._check_address(address)
        if self.ecc is not None:
            word_base = (address // self.ecc_word_bytes) * self.ecc_word_bytes
            data, _ = self._read_ecc_word(word_base)
            return data[address - word_base]
        return self._raw_byte(address)

    def write_block(self, address: int, data: bytes) -> None:
        """Write a contiguous block of bytes."""
        for offset, value in enumerate(data):
            self.write_byte(address + offset, value)

    def read_block(self, address: int, length: int) -> bytes:
        """Read a contiguous block of bytes."""
        return bytes(self.read_byte(address + offset) for offset in range(length))

    # ------------------------------------------------------------------
    # disturbance interface
    # ------------------------------------------------------------------

    def hammer(self, byte_address: int, bit_index: int, pulses: int) -> List[FlipRecord]:
        """Hammer the cell storing one bit and apply any resulting flips.

        Returns the flips that happened *because of this call*.
        """
        if pulses < 1:
            raise AddressingError("pulses must be positive")
        aggressor = self.mapping.locate_bit(byte_address, bit_index)
        key = self._key(aggressor)
        self._hammer_counters[key] = self._hammer_counters.get(key, 0) + pulses
        accumulated = self._hammer_counters[key]

        flips: List[FlipRecord] = []
        for victim in self.mapping.physically_adjacent_bits(aggressor):
            needed = self.disturbance.pulses_for(aggressor, victim)
            if needed is None or accumulated < needed:
                continue
            victim_address, victim_bit = self.mapping.address_of(victim)
            global_bit = victim_address * 8 + victim_bit
            current = int(self._bits[global_bit])
            if current != self.disturbance.vulnerable_bit:
                continue
            new_bit = 1 - current
            self._bits[global_bit] = new_bit
            record = FlipRecord(
                byte_address=victim_address,
                bit_index=victim_bit,
                old_bit=current,
                new_bit=new_bit,
                pulses_applied=accumulated,
            )
            flips.append(record)
            self.flip_log.append(record)
        return flips

    def hammer_time_s(self, pulses: int) -> float:
        """Wall-clock time a hammer campaign of ``pulses`` pulses takes [s]."""
        return pulses * self.disturbance.pulse_period_s

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    @staticmethod
    def _key(location: BitLocation) -> Tuple[int, int, int, int]:
        return (location.bank, location.tile, location.row, location.column)

    def _raw_byte(self, address: int) -> int:
        value = 0
        for bit in range(8):
            value |= int(self._bits[address * 8 + bit]) << bit
        return value

    def _word_data_bits(self, word_base: int) -> List[int]:
        data_bits: List[int] = []
        for offset in range(self.ecc_word_bytes):
            raw = self._raw_byte(word_base + offset)
            data_bits.extend((raw >> bit) & 1 for bit in range(8))
        return data_bits

    def _refresh_parity(self, word_index: int) -> None:
        assert self.ecc is not None
        word_base = word_index * self.ecc_word_bytes
        codeword = self.ecc.encode(self._word_data_bits(word_base))
        self._parity[word_index] = self.ecc.parity_of(codeword)

    def _stored_parity(self, word_index: int) -> List[int]:
        assert self.ecc is not None
        parity = self._parity.get(word_index)
        if parity is None:
            # The word has never been written: its reference content is the
            # all-zero reset state of the array.
            codeword = self.ecc.encode([0] * self.ecc.data_bits)
            parity = self.ecc.parity_of(codeword)
            self._parity[word_index] = parity
        return parity

    def _read_ecc_word(self, word_base: int) -> Tuple[List[int], bool]:
        """Read one ECC word; returns (bytes, corrected_flag).

        The parity bits are stored at write time (in a spare column area that
        the attack cannot reach); a single disturbance flip per word is
        therefore corrected on read — the first-line defence the evaluation
        quantifies.
        """
        assert self.ecc is not None
        word_index = word_base // self.ecc_word_bytes
        codeword = self.ecc.assemble(self._word_data_bits(word_base), self._stored_parity(word_index))
        result = self.ecc.decode(codeword)
        if result.corrected:
            self.ecc_corrections += 1
        if result.double_error_detected:
            self.ecc_detected_failures += 1
        data_bytes = []
        for offset in range(self.ecc_word_bytes):
            value = 0
            for bit in range(8):
                value |= result.data_bits[offset * 8 + bit] << bit
            data_bytes.append(value)
        return data_bytes, result.corrected

"""Memory-isolation checker.

RowHammer-class attacks matter because "consciously triggered bit-flips
violate a fundamental concept of secure and reliable computing systems:
memory isolation" (Sec. II).  This module makes that property explicit and
checkable: given the page tables of every process and the frame ownership
records, it verifies that no process can reach — through its own address
translation — a frame it does not own.  The privilege-escalation scenario
asserts this property before the attack and shows it violated afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .pagetable import PageTable, PhysicalMemoryManager


@dataclass
class IsolationViolation:
    """One reachable frame that breaks the isolation property."""

    process: str
    virtual_page: int
    frame_number: int
    frame_owner: str
    #: "foreign_frame" (mapped frame owned by someone else) or
    #: "page_table_reachable" (process can write one of its own page tables).
    kind: str


@dataclass
class IsolationReport:
    """Result of an isolation audit."""

    violations: List[IsolationViolation] = field(default_factory=list)

    @property
    def intact(self) -> bool:
        """True if no violation was found."""
        return not self.violations

    def violations_of(self, process: str) -> List[IsolationViolation]:
        """Violations attributable to one process."""
        return [violation for violation in self.violations if violation.process == process]


def audit_isolation(
    page_tables: Dict[str, PageTable],
    manager: PhysicalMemoryManager,
    shared_owners: Tuple[str, ...] = ("shared",),
) -> IsolationReport:
    """Audit every process's reachable frames against the ownership records.

    Args:
        page_tables: Per-process page table (the process name is the owner).
        manager: Physical frame ownership records.
        shared_owners: Frame owners that every process may legitimately map
            (e.g. shared libraries).
    """
    report = IsolationReport()
    for process, table in page_tables.items():
        for index in range(table.entries):
            entry = table.read_entry(index)
            if not entry.present:
                continue
            frame = entry.frame_number
            if frame not in manager.frames:
                # Dangling mapping: treated as a violation of a non-existent
                # frame owned by nobody.
                report.violations.append(
                    IsolationViolation(
                        process=process,
                        virtual_page=index,
                        frame_number=frame,
                        frame_owner="<none>",
                        kind="foreign_frame",
                    )
                )
                continue
            owner = manager.owner_of(frame)
            page = manager.frames[frame]
            if owner != process and owner not in shared_owners:
                report.violations.append(
                    IsolationViolation(
                        process=process,
                        virtual_page=index,
                        frame_number=frame,
                        frame_owner=owner,
                        kind="foreign_frame",
                    )
                )
            elif page.kind == "page_table" and entry.writable:
                # A user process that can write any page-table frame (even its
                # own) can remap arbitrary physical memory.
                report.violations.append(
                    IsolationViolation(
                        process=process,
                        virtual_page=index,
                        frame_number=frame,
                        frame_owner=owner,
                        kind="page_table_reachable",
                    )
                )
    return report

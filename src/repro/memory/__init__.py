"""ReRAM main-memory substrate used by the Sec. VI attack scenarios.

The package layers a byte-addressable memory (with an explicit disturbance
interface fed by the circuit-level attack results), a physical address
mapping with adjacency queries, SEC-DED ECC, a page-table model stored in the
simulated memory, and a memory-isolation auditor.
"""

from .array import DisturbanceProfile, FlipRecord, ReramMemory, profile_from_attack_result
from .ecc import DecodeResult, HammingSecDed
from .isolation import IsolationReport, IsolationViolation, audit_isolation
from .mapping import AddressMapping, BitLocation
from .pagetable import (
    PTE_BYTES,
    Page,
    PageTable,
    PageTableEntry,
    PhysicalMemoryManager,
)

__all__ = [
    "DisturbanceProfile",
    "FlipRecord",
    "ReramMemory",
    "profile_from_attack_result",
    "HammingSecDed",
    "DecodeResult",
    "AddressMapping",
    "BitLocation",
    "PageTable",
    "PageTableEntry",
    "PhysicalMemoryManager",
    "Page",
    "PTE_BYTES",
    "IsolationReport",
    "IsolationViolation",
    "audit_isolation",
]

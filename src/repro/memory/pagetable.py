"""Minimal page-table model for the privilege-escalation scenario.

The RowHammer exploit the paper cites (Seaborn & Dullien) flips a bit inside
a page-table entry (PTE) so that the PTE points to an attacker-owned page
containing a page table, giving the attacker write access to page tables and
hence to all of physical memory.  This module provides the OS-level substrate
needed to replay that scenario on the ReRAM memory model: pages, page-table
entries stored *in* the simulated memory, ownership bookkeeping and an
address-translation routine whose behaviour changes when stored PTE bits are
flipped by the attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import AddressingError
from .array import ReramMemory

#: Size of one PTE in the simulated memory [bytes].
PTE_BYTES = 8
#: Bit layout of a PTE (little-endian within the 64-bit word).
PRESENT_BIT = 0
WRITABLE_BIT = 1
USER_BIT = 2
#: Physical frame number starts at this bit position.
PFN_SHIFT = 12


@dataclass
class PageTableEntry:
    """Decoded view of one page-table entry."""

    present: bool
    writable: bool
    user: bool
    frame_number: int

    def encode(self) -> int:
        """Encode the entry into its 64-bit stored representation."""
        value = self.frame_number << PFN_SHIFT
        if self.present:
            value |= 1 << PRESENT_BIT
        if self.writable:
            value |= 1 << WRITABLE_BIT
        if self.user:
            value |= 1 << USER_BIT
        return value

    @classmethod
    def decode(cls, value: int) -> "PageTableEntry":
        """Decode a 64-bit stored value into a page-table entry."""
        return cls(
            present=bool(value & (1 << PRESENT_BIT)),
            writable=bool(value & (1 << WRITABLE_BIT)),
            user=bool(value & (1 << USER_BIT)),
            frame_number=value >> PFN_SHIFT,
        )


@dataclass
class Page:
    """Bookkeeping for one physical page frame."""

    frame_number: int
    owner: str
    #: "data", "page_table" or "free".
    kind: str = "data"


class PageTable:
    """A single-level page table stored inside the simulated ReRAM memory."""

    def __init__(self, memory: ReramMemory, base_address: int, entries: int, page_size: int = 4096):
        if base_address % PTE_BYTES != 0:
            raise AddressingError("page table base must be aligned to the PTE size")
        if entries < 1:
            raise AddressingError("page table needs at least one entry")
        self.memory = memory
        self.base_address = base_address
        self.entries = entries
        self.page_size = page_size

    # -- entry accessors -----------------------------------------------------

    def entry_address(self, index: int) -> int:
        """Byte address of one PTE inside the memory."""
        if not 0 <= index < self.entries:
            raise AddressingError(f"PTE index {index} out of range")
        return self.base_address + index * PTE_BYTES

    def read_entry(self, index: int) -> PageTableEntry:
        """Read and decode one PTE from memory."""
        address = self.entry_address(index)
        raw = int.from_bytes(self.memory.read_block(address, PTE_BYTES), "little")
        return PageTableEntry.decode(raw)

    def write_entry(self, index: int, entry: PageTableEntry) -> None:
        """Encode and store one PTE in memory."""
        address = self.entry_address(index)
        self.memory.write_block(address, entry.encode().to_bytes(PTE_BYTES, "little"))

    # -- translation -----------------------------------------------------------

    def translate(self, virtual_address: int) -> Tuple[int, PageTableEntry]:
        """Translate a virtual address to a physical address.

        Raises :class:`AddressingError` for non-present pages (a page fault).
        """
        index = virtual_address // self.page_size
        offset = virtual_address % self.page_size
        entry = self.read_entry(index)
        if not entry.present:
            raise AddressingError(f"page fault: virtual address {virtual_address:#x} not mapped")
        return entry.frame_number * self.page_size + offset, entry


class PhysicalMemoryManager:
    """Frame allocator and ownership tracker for the scenario engine."""

    def __init__(self, total_frames: int, page_size: int = 4096):
        if total_frames < 1:
            raise AddressingError("need at least one physical frame")
        self.page_size = page_size
        self.frames: Dict[int, Page] = {
            frame: Page(frame_number=frame, owner="kernel", kind="free") for frame in range(total_frames)
        }

    def allocate(self, owner: str, kind: str = "data") -> Page:
        """Allocate the lowest free frame to an owner."""
        for frame in sorted(self.frames):
            page = self.frames[frame]
            if page.kind == "free":
                page.owner = owner
                page.kind = kind
                return page
        raise AddressingError("out of physical frames")

    def owner_of(self, frame_number: int) -> str:
        """Owner of a physical frame."""
        if frame_number not in self.frames:
            raise AddressingError(f"frame {frame_number} does not exist")
        return self.frames[frame_number].owner

    def frames_of(self, owner: str) -> List[Page]:
        """All frames owned by one principal."""
        return [page for page in self.frames.values() if page.owner == owner and page.kind != "free"]

    def page_tables_of(self, owner: str) -> List[Page]:
        """All page-table frames of one principal."""
        return [page for page in self.frames.values() if page.owner == owner and page.kind == "page_table"]

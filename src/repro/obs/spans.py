"""Span records: nested wall-time intervals with exclusive-time accounting.

A span is one timed phase (``mc.run``, ``solver.solve``, one campaign job).
Spans nest, forming a tree per telemetry scope; *exclusive* time is a span's
duration minus the time attributed to its (locally measured) children, so
summing exclusive times over a whole tree recovers the root's wall time
exactly — the invariant the ``repro profile`` span table is built on.

Spans merged from a concurrently running process (campaign pool workers) are
flagged ``remote``: their durations overlap the host span's clock rather than
consuming it, so they are excluded from the host's exclusive-time subtraction
(and can legitimately sum to more than the host's wall time — that surplus is
exactly the parallel speedup).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass
class SpanRecord:
    """One timed interval in the span tree."""

    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)
    start_s: float = 0.0
    duration_s: float = 0.0
    children: List["SpanRecord"] = field(default_factory=list)
    #: True when the span was measured in another process running concurrently
    #: with its host span (campaign pool workers).
    remote: bool = False

    @property
    def exclusive_s(self) -> float:
        """Wall time spent in this span but not in any locally timed child."""
        child_time = sum(child.duration_s for child in self.children if not child.remote)
        return max(0.0, self.duration_s - child_time)

    def walk(self) -> Iterator["SpanRecord"]:
        """Depth-first iteration over this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "exclusive_s": self.exclusive_s,
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.remote:
            payload["remote"] = True
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SpanRecord":
        return cls(
            name=str(payload.get("name", "?")),
            attrs=dict(payload.get("attrs", {})),
            start_s=float(payload.get("start_s", 0.0)),
            duration_s=float(payload.get("duration_s", 0.0)),
            children=[cls.from_dict(child) for child in payload.get("children", [])],
            remote=bool(payload.get("remote", False)),
        )


@dataclass
class SpanAggregate:
    """Per-name totals across a span forest (the profile table rows)."""

    name: str
    calls: int = 0
    total_s: float = 0.0
    exclusive_s: float = 0.0
    max_s: float = 0.0
    remote: bool = False

    def add(self, span: SpanRecord) -> None:
        self.calls += 1
        self.total_s += span.duration_s
        self.exclusive_s += span.exclusive_s
        if span.duration_s > self.max_s:
            self.max_s = span.duration_s
        self.remote = self.remote or span.remote


def aggregate_spans(roots: List[SpanRecord]) -> List[SpanAggregate]:
    """Fold a span forest into per-name aggregates, largest exclusive first."""
    by_name: Dict[str, SpanAggregate] = {}
    for root in roots:
        for span in root.walk():
            aggregate = by_name.get(span.name)
            if aggregate is None:
                aggregate = by_name[span.name] = SpanAggregate(name=span.name)
            aggregate.add(span)
    return sorted(by_name.values(), key=lambda a: a.exclusive_s, reverse=True)


def spans_from_snapshot(snapshot: Dict[str, Any]) -> List[SpanRecord]:
    """Rehydrate the span forest from a telemetry snapshot dict."""
    return [SpanRecord.from_dict(payload) for payload in snapshot.get("spans", [])]


def total_wall_s(roots: List[SpanRecord]) -> float:
    """Summed duration of the root spans (the profile table's 100% mark)."""
    return sum(root.duration_s for root in roots)


def find_span(roots: List[SpanRecord], name: str) -> Optional[SpanRecord]:
    """First span with the given name in depth-first order, or None."""
    for root in roots:
        for span in root.walk():
            if span.name == name:
                return span
    return None

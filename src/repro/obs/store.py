"""The run ledger: an append-only on-disk store of telemetry across runs.

One-shot telemetry (PR 6) dies with its process; the ledger is what makes it
an operational record.  Every ``campaign run`` / ``mc run`` / ``mc map`` /
``profile`` invocation appends one line to ``<obs dir>/ledger.jsonl`` — run
id, command, status, duration, headline counters — and writes the full
telemetry snapshot plus reproducibility manifest to
``<obs dir>/runs/<run id>.json``.  Both writes are atomic (single
``O_APPEND`` write for the index line, temp-file-plus-rename for the
snapshot), so concurrent runs sharing one obs dir cannot corrupt each other
and a crash mid-write never leaves a truncated entry.

The obs dir defaults to ``.repro-obs`` and is overridden by the
``REPRO_OBS_DIR`` environment variable or the CLI's ``--obs-dir`` flag.
``repro obs runs`` lists the ledger, ``repro obs show RUN`` renders one
entry's snapshot and ``repro obs diff RUN_A RUN_B`` reports counter, gauge
and span-aggregate deltas between two entries.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..errors import ReproError
from .export import write_snapshot
from .spans import aggregate_spans, spans_from_snapshot

#: Environment variable overriding the default obs directory.
OBS_DIR_ENV = "REPRO_OBS_DIR"

#: Default obs directory (relative to the working directory).
DEFAULT_OBS_DIR = ".repro-obs"

#: Counters promoted into the ledger index line so ``repro obs runs`` can
#: summarise work done without opening every snapshot file.
INDEX_COUNTERS = (
    "campaign.points",
    "campaign.cache.hits",
    "campaign.cache.misses",
    "mc.samples",
    "mc.arrays",
    "solver.solves",
    "adaptive.batches",
)


def default_obs_dir() -> Path:
    """The obs directory: ``$REPRO_OBS_DIR`` or ``.repro-obs``."""
    return Path(os.environ.get(OBS_DIR_ENV) or DEFAULT_OBS_DIR)


def new_run_id() -> str:
    """A sortable, collision-safe run id: UTC timestamp plus random suffix."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{uuid.uuid4().hex[:6]}"


@dataclass
class RunEntry:
    """One line of the ledger index."""

    run_id: str
    command: str
    label: str = ""
    spec_name: Optional[str] = None
    status: str = "ok"  # "ok" | "error" | "interrupted"
    started_unix_s: float = 0.0
    duration_s: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    snapshot_file: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "run_id": self.run_id,
            "command": self.command,
            "label": self.label,
            "status": self.status,
            "started_unix_s": self.started_unix_s,
            "duration_s": self.duration_s,
            "counters": dict(self.counters),
        }
        if self.spec_name is not None:
            payload["spec_name"] = self.spec_name
        if self.snapshot_file is not None:
            payload["snapshot_file"] = self.snapshot_file
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunEntry":
        return cls(
            run_id=str(payload["run_id"]),
            command=str(payload.get("command", "")),
            label=str(payload.get("label", "")),
            spec_name=payload.get("spec_name"),
            status=str(payload.get("status", "ok")),
            started_unix_s=float(payload.get("started_unix_s", 0.0)),
            duration_s=float(payload.get("duration_s", 0.0)),
            counters={k: float(v) for k, v in payload.get("counters", {}).items()},
            snapshot_file=payload.get("snapshot_file"),
        )


class RunLedger:
    """Append-only run store under one obs directory.

    Layout::

        <root>/ledger.jsonl         # one index line per recorded run
        <root>/runs/<run_id>.json   # full snapshot + manifest per run
        <root>/live/<run_id>.json   # heartbeat files (see repro.obs.live)
        <root>/audit/<run_id>.jsonl # fingerprint streams (see repro.obs.audit)
    """

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root) if root is not None else default_obs_dir()
        if self.root.exists() and not self.root.is_dir():
            raise ReproError(f"obs directory {self.root} exists and is not a directory")

    @property
    def index_path(self) -> Path:
        return self.root / "ledger.jsonl"

    @property
    def runs_dir(self) -> Path:
        return self.root / "runs"

    @property
    def live_dir(self) -> Path:
        return self.root / "live"

    @property
    def audit_dir(self) -> Path:
        return self.root / "audit"

    def audit_path(self, run_id: str) -> Path:
        """Where one run's determinism fingerprint stream lives (if recorded)."""
        return self.audit_dir / f"{run_id}.jsonl"

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record(
        self,
        command: str,
        snapshot: Dict[str, Any],
        run_id: Optional[str] = None,
        label: str = "",
        spec_name: Optional[str] = None,
        status: str = "ok",
        started_unix_s: Optional[float] = None,
        duration_s: Optional[float] = None,
        manifest: Optional[Dict[str, Any]] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> RunEntry:
        """Persist one run: full snapshot file plus one atomic index line."""
        run_id = run_id if run_id is not None else new_run_id()
        duration = float(
            duration_s if duration_s is not None else snapshot.get("elapsed_s", 0.0)
        )
        payload: Dict[str, Any] = {
            "run_id": run_id,
            "command": command,
            "label": label,
            "status": status,
            "started_unix_s": float(started_unix_s if started_unix_s is not None else time.time()),
            "duration_s": duration,
            **snapshot,
        }
        if spec_name is not None:
            payload["spec_name"] = spec_name
        if manifest is not None:
            payload["manifest"] = manifest
        if extra:
            payload.update(extra)
        snapshot_path = self.runs_dir / f"{run_id}.json"
        write_snapshot(snapshot_path, payload)

        counters = snapshot.get("counters", {})
        entry = RunEntry(
            run_id=run_id,
            command=command,
            label=label,
            spec_name=spec_name,
            status=status,
            started_unix_s=payload["started_unix_s"],
            duration_s=duration,
            counters={name: float(counters[name]) for name in INDEX_COUNTERS if name in counters},
            snapshot_file=os.path.relpath(snapshot_path, self.root),
        )
        self._append_line(entry.to_dict())
        return entry

    def _append_line(self, payload: Dict[str, Any]) -> None:
        """Append one JSON line with a single O_APPEND write (atomic for
        line-sized payloads on POSIX filesystems)."""
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(payload, sort_keys=True, default=str) + "\n"
        fd = os.open(self.index_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def entries(self) -> List[RunEntry]:
        """All index entries in append (chronological) order.

        Corrupt lines (a torn write from a killed process) are skipped so a
        damaged ledger degrades to a partial listing instead of failing.
        """
        try:
            text = self.index_path.read_text(encoding="utf-8")
        except OSError:
            return []
        entries: List[RunEntry] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                entries.append(RunEntry.from_dict(payload))
            except (ValueError, KeyError, TypeError):
                continue
        return entries

    def resolve(self, ref: str) -> RunEntry:
        """Resolve a run reference: exact id, unique prefix, or ``latest``.

        ``latest`` (and ``latest~N`` for the N-th most recent) address runs
        positionally; anything else matches on the run id.
        """
        entries = self.entries()
        if not entries:
            raise ReproError(f"obs ledger {self.index_path} has no recorded runs")
        if ref == "latest" or ref.startswith("latest~"):
            back = 0
            if ref.startswith("latest~"):
                try:
                    back = int(ref.split("~", 1)[1])
                except ValueError:
                    raise ReproError(f"bad run reference {ref!r}") from None
            if back < 0 or back >= len(entries):
                raise ReproError(
                    f"run reference {ref!r} is out of range ({len(entries)} runs recorded)"
                )
            return entries[-1 - back]
        exact = [entry for entry in entries if entry.run_id == ref]
        if exact:
            return exact[-1]
        matches = [entry for entry in entries if entry.run_id.startswith(ref)]
        if not matches:
            raise ReproError(f"no recorded run matches {ref!r} (try `repro obs runs`)")
        distinct = {entry.run_id for entry in matches}
        if len(distinct) > 1:
            raise ReproError(
                f"run reference {ref!r} is ambiguous: matches {sorted(distinct)[:5]}"
            )
        return matches[-1]

    def load_snapshot(self, ref: str) -> Dict[str, Any]:
        """The full persisted payload (snapshot + manifest) of one run."""
        entry = self.resolve(ref)
        path = self.runs_dir / f"{entry.run_id}.json"
        if entry.snapshot_file is not None:
            path = self.root / entry.snapshot_file
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise ReproError(f"run {entry.run_id}: snapshot file {path} is unreadable: {exc}") from exc
        except ValueError as exc:
            raise ReproError(f"run {entry.run_id}: snapshot file {path} is corrupt: {exc}") from exc


# ----------------------------------------------------------------------
# diffing
# ----------------------------------------------------------------------


def _pct(before: float, after: float) -> Optional[float]:
    if before == 0.0:
        return None
    return 100.0 * (after - before) / abs(before)


def diff_snapshots(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Structured deltas between two telemetry snapshots.

    Counters and gauge values are compared name by name; span forests are
    folded into per-name aggregates first (calls / total / exclusive time),
    so two runs of different shapes still diff meaningfully.
    """
    counters: Dict[str, Dict[str, Any]] = {}
    for name in sorted(set(a.get("counters", {})) | set(b.get("counters", {}))):
        before = float(a.get("counters", {}).get(name, 0.0))
        after = float(b.get("counters", {}).get(name, 0.0))
        counters[name] = {"a": before, "b": after, "delta": after - before, "pct": _pct(before, after)}

    gauges: Dict[str, Dict[str, Any]] = {}
    gauges_a, gauges_b = a.get("gauges", {}), b.get("gauges", {})
    for name in sorted(set(gauges_a) | set(gauges_b)):
        before = float(gauges_a.get(name, {}).get("value", 0.0))
        after = float(gauges_b.get(name, {}).get("value", 0.0))
        gauges[name] = {"a": before, "b": after, "delta": after - before, "pct": _pct(before, after)}

    spans: Dict[str, Dict[str, Any]] = {}
    agg_a = {row.name: row for row in aggregate_spans(spans_from_snapshot(a))}
    agg_b = {row.name: row for row in aggregate_spans(spans_from_snapshot(b))}
    for name in sorted(set(agg_a) | set(agg_b)):
        row_a, row_b = agg_a.get(name), agg_b.get(name)
        total_a = row_a.total_s if row_a else 0.0
        total_b = row_b.total_s if row_b else 0.0
        excl_a = row_a.exclusive_s if row_a else 0.0
        excl_b = row_b.exclusive_s if row_b else 0.0
        spans[name] = {
            "calls_a": row_a.calls if row_a else 0,
            "calls_b": row_b.calls if row_b else 0,
            "total_a": total_a,
            "total_b": total_b,
            "total_pct": _pct(total_a, total_b),
            "exclusive_a": excl_a,
            "exclusive_b": excl_b,
            "exclusive_pct": _pct(excl_a, excl_b),
        }

    elapsed_a = float(a.get("elapsed_s", 0.0))
    elapsed_b = float(b.get("elapsed_s", 0.0))
    return {
        "elapsed_s": {
            "a": elapsed_a,
            "b": elapsed_b,
            "delta": elapsed_b - elapsed_a,
            "pct": _pct(elapsed_a, elapsed_b),
        },
        "counters": counters,
        "gauges": gauges,
        "spans": spans,
    }


def _fmt_pct(pct: Optional[float]) -> str:
    return f"{pct:+8.1f}%" if pct is not None else "      new"


def render_diff(diff: Dict[str, Any], run_a: str = "A", run_b: str = "B") -> str:
    """Human-readable rendering of :func:`diff_snapshots`."""
    lines: List[str] = []
    elapsed = diff["elapsed_s"]
    lines.append(
        f"elapsed: {elapsed['a']:.3f}s -> {elapsed['b']:.3f}s "
        f"({_fmt_pct(elapsed['pct']).strip()})   [{run_a} -> {run_b}]"
    )
    if diff["counters"]:
        lines.append("")
        lines.append(f"{'counter':<42} {'a':>12} {'b':>12} {'delta':>12} {'change':>9}")
        lines.append("-" * len(lines[-1]))
        for name, row in diff["counters"].items():
            lines.append(
                f"{name:<42} {row['a']:>12g} {row['b']:>12g} "
                f"{row['delta']:>+12g} {_fmt_pct(row['pct'])}"
            )
    if diff["gauges"]:
        lines.append("")
        lines.append(f"{'gauge':<42} {'a':>12} {'b':>12} {'delta':>12} {'change':>9}")
        lines.append("-" * len(lines[-1]))
        for name, row in diff["gauges"].items():
            lines.append(
                f"{name:<42} {row['a']:>12.6g} {row['b']:>12.6g} "
                f"{row['delta']:>+12.3g} {_fmt_pct(row['pct'])}"
            )
    if diff["spans"]:
        lines.append("")
        lines.append(f"{'span (by name)':<36} {'excl a':>10} {'excl b':>10} {'change':>9}  calls")
        lines.append("-" * len(lines[-1]))
        for name, row in diff["spans"].items():
            lines.append(
                f"{name:<36} {row['exclusive_a']:>9.4f}s {row['exclusive_b']:>9.4f}s "
                f"{_fmt_pct(row['exclusive_pct'])}  {row['calls_a']}->{row['calls_b']}"
            )
    return "\n".join(lines)


def resilience_counts(snapshot: Dict[str, Any]) -> Dict[str, int]:
    """Fault-tolerance counters of one run's telemetry snapshot.

    Collects the campaign resilience counters (retries, worker crashes,
    quarantined points, pool restarts), the cache-corruption quarantines, and
    the total number of injected chaos faults — zero for each when the run
    never touched that path, so callers can test ``any(...)`` to decide
    whether the run had a resilience story worth printing.
    """
    counters = snapshot.get("counters") or {}
    return {
        "retried": int(counters.get("campaign.retries", 0)),
        "crashed": int(counters.get("campaign.crashes", 0)),
        "quarantined": int(counters.get("campaign.quarantined", 0)),
        "pool_restarts": int(counters.get("campaign.pool_restarts", 0)),
        "cache_corrupt": int(counters.get("cache.corrupt_entries", 0)),
        "faults_injected": int(
            sum(value for name, value in counters.items() if name.startswith("faults.injected."))
        ),
    }


def render_runs_table(entries: List[RunEntry], limit: Optional[int] = None) -> str:
    """The ``repro obs runs`` listing, most recent last."""
    if not entries:
        return "(no runs recorded)"
    if limit is not None and limit > 0:
        entries = entries[-limit:]
    lines = [f"{'run id':<23} {'when (utc)':<17} {'status':<7} {'duration':>10}  command"]
    lines.append("-" * len(lines[0]))
    for entry in entries:
        when = time.strftime("%Y-%m-%d %H:%M", time.gmtime(entry.started_unix_s))
        lines.append(
            f"{entry.run_id:<23} {when:<17} {entry.status:<7} "
            f"{entry.duration_s:>9.2f}s  {entry.command}"
        )
    return "\n".join(lines)

"""Reproducibility manifests for campaign and Monte-Carlo results.

A manifest is the minimal record needed to re-run (or audit) a stochastic
result: library and toolchain versions, the RNG seed, which numerical
backends were actually chosen at runtime, and — when telemetry was active —
a compact summary of the work performed.  It is a plain dict so it embeds
directly into result JSON payloads.
"""

from __future__ import annotations

import platform
import sys
from typing import Any, Dict, Optional

MANIFEST_SCHEMA_VERSION = 1


def _library_versions() -> Dict[str, Optional[str]]:
    versions: Dict[str, Optional[str]] = {}
    import repro

    versions["repro"] = repro.__version__
    for module_name in ("numpy", "scipy"):
        module = sys.modules.get(module_name)
        if module is None:
            try:
                module = __import__(module_name)
            except Exception:  # pragma: no cover - scipy-less installs
                versions[module_name] = None
                continue
        versions[module_name] = getattr(module, "__version__", None)
    return versions


def telemetry_summary(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Compress a telemetry snapshot to the manifest-sized essentials."""
    return {
        "elapsed_s": snapshot.get("elapsed_s"),
        "counters": dict(snapshot.get("counters", {})),
        "open_spans": snapshot.get("open_spans", 0),
        "root_spans": [span.get("name") for span in snapshot.get("spans", [])],
    }


def build_manifest(
    seed: Optional[int] = None,
    backends: Optional[Dict[str, str]] = None,
    telemetry_snapshot: Optional[Dict[str, Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a reproducibility manifest.

    ``backends`` names the numerical paths actually taken at runtime
    (e.g. ``{"solver": "sparse", "crosstalk": "fft"}``); ``extra`` merges
    caller-specific keys (mode, sample counts) at the top level.
    """
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "versions": _library_versions(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    if seed is not None:
        manifest["seed"] = int(seed)
    if backends:
        manifest["backends"] = dict(backends)
    if telemetry_snapshot is not None:
        manifest["telemetry"] = telemetry_summary(telemetry_snapshot)
    if extra:
        manifest.update(extra)
    return manifest

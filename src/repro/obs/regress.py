"""Performance-regression gate over the benchmark trajectory.

Benchmarks persist ``BENCH_<name>.json`` snapshots *and* append every record
to ``BENCH_history.jsonl`` (see ``benchmarks/conftest.py``), giving the perf
trajectory a history.  ``repro obs check-bench`` compares the latest record
per benchmark against committed baselines with per-metric tolerance and
exits non-zero on regression — the CI gate for hot-path slowdowns.

Baselines file schema (``benchmarks/BENCH_baselines.json``)::

    {
      "default_tolerance": 0.25,
      "metrics": [
        {
          "metric": "montecarlo.vectorized_s",     # <benchmark>.<dotted path>
          "baseline": 0.067,
          "direction": "lower",                    # lower|higher is better
          "tolerance": 0.25,                       # optional, overrides default
          "when": {"n_samples": 1000}              # optional record matcher
        }
      ]
    }

``when`` matches against top-level record keys, so smoke-configuration
entries (CI shrinks problem sizes via env vars) and full-run entries can
coexist with different baselines.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..errors import ReproError

#: Trajectory file benchmarks append to, next to the BENCH_*.json snapshots.
HISTORY_FILENAME = "BENCH_history.jsonl"

#: Committed baselines consumed by ``repro obs check-bench``.
BASELINES_FILENAME = "BENCH_baselines.json"

DEFAULT_TOLERANCE = 0.25


def append_history(record: Dict[str, Any], path: Union[str, Path]) -> None:
    """Append one benchmark record as a JSONL line (single O_APPEND write)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True, default=str) + "\n"
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode("utf-8"))
    finally:
        os.close(fd)


def load_history(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """All history records in append order; corrupt lines are skipped."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return []
    records: List[Dict[str, Any]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except ValueError:
            continue
        if isinstance(payload, dict):
            records.append(payload)
    return records


def load_bench_records(bench_dir: Union[str, Path]) -> List[Dict[str, Any]]:
    """Latest record per benchmark from a bench dir.

    Prefers the ``BENCH_history.jsonl`` trajectory; benchmarks present only
    as ``BENCH_<name>.json`` snapshots (older runs) are read from those.
    """
    bench_dir = Path(bench_dir)
    latest: Dict[str, Dict[str, Any]] = {}
    for record in load_history(bench_dir / HISTORY_FILENAME):
        name = record.get("benchmark")
        if name:
            latest[str(name)] = record
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        if path.name == BASELINES_FILENAME:
            continue
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        name = record.get("benchmark") or path.stem[len("BENCH_"):]
        if str(name) not in latest:
            latest[str(name)] = record
    return list(latest.values())


def _dig(record: Dict[str, Any], dotted: str) -> Optional[float]:
    node: Any = record
    for part in dotted.split("."):
        if isinstance(node, dict) and part in node:
            node = node[part]
        elif isinstance(node, list):
            try:
                node = node[int(part)]
            except (ValueError, IndexError):
                return None
        else:
            return None
    try:
        return float(node)
    except (TypeError, ValueError):
        return None


def _matches(record: Dict[str, Any], when: Optional[Dict[str, Any]]) -> bool:
    if not when:
        return True
    for key, expected in when.items():
        if key not in record:
            return False
        actual = record[key]
        if isinstance(expected, (int, float)) and isinstance(actual, (int, float)):
            if float(actual) != float(expected):
                return False
        elif actual != expected:
            return False
    return True


@dataclass
class CheckResult:
    """Outcome of one baseline check."""

    metric: str
    status: str  # "ok" | "fail" | "skipped" | "missing"
    baseline: Optional[float] = None
    actual: Optional[float] = None
    limit: Optional[float] = None
    direction: str = "lower"
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "status": self.status,
            "baseline": self.baseline,
            "actual": self.actual,
            "limit": self.limit,
            "direction": self.direction,
            "detail": self.detail,
        }


def load_baselines(path: Union[str, Path]) -> Dict[str, Any]:
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ReproError(f"baselines file {path} is unreadable: {exc}") from exc
    except ValueError as exc:
        raise ReproError(f"baselines file {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "metrics" not in payload:
        raise ReproError(f"baselines file {path} must be an object with a 'metrics' list")
    return payload


def check_bench(
    records: List[Dict[str, Any]],
    baselines: Dict[str, Any],
) -> List[CheckResult]:
    """Check the latest bench records against committed baselines.

    Each baseline's ``metric`` is ``<benchmark>.<dotted path into record>``.
    A ``lower``-direction metric fails when the actual exceeds
    ``baseline * (1 + tolerance)``; ``higher`` fails below
    ``baseline * (1 - tolerance)``.
    """
    default_tol = float(baselines.get("default_tolerance", DEFAULT_TOLERANCE))
    by_name = {str(record.get("benchmark")): record for record in records}
    results: List[CheckResult] = []
    for spec in baselines.get("metrics", []):
        metric = str(spec.get("metric", ""))
        bench_name, _, dotted = metric.partition(".")
        direction = str(spec.get("direction", "lower"))
        baseline = float(spec["baseline"])
        tolerance = float(spec.get("tolerance", default_tol))
        record = by_name.get(bench_name)
        if record is None:
            results.append(
                CheckResult(metric, "missing", baseline=baseline, direction=direction,
                            detail=f"no record for benchmark {bench_name!r}")
            )
            continue
        if not _matches(record, spec.get("when")):
            results.append(
                CheckResult(metric, "skipped", baseline=baseline, direction=direction,
                            detail="record does not match 'when' condition")
            )
            continue
        actual = _dig(record, dotted)
        if actual is None:
            results.append(
                CheckResult(metric, "missing", baseline=baseline, direction=direction,
                            detail=f"path {dotted!r} absent from record")
            )
            continue
        if direction == "higher":
            limit = baseline * (1.0 - tolerance)
            ok = actual >= limit
        else:
            limit = baseline * (1.0 + tolerance)
            ok = actual <= limit
        results.append(
            CheckResult(
                metric,
                "ok" if ok else "fail",
                baseline=baseline,
                actual=actual,
                limit=limit,
                direction=direction,
                detail="" if ok else (
                    f"{actual:.6g} {'<' if direction == 'higher' else '>'} "
                    f"allowed {limit:.6g} (baseline {baseline:.6g}, "
                    f"tolerance {tolerance:.0%})"
                ),
            )
        )
    return results


def gate_passed(results: List[CheckResult]) -> bool:
    """True iff no check failed and at least one actually ran.

    A gate that silently checks nothing (wrong dir, renamed benchmarks)
    must fail rather than green-light CI.
    """
    checked = [r for r in results if r.status in ("ok", "fail")]
    if not checked:
        return False
    return all(r.status == "ok" for r in checked)


def render_check_report(results: List[CheckResult]) -> str:
    if not results:
        return "(no baselines configured)"
    width = max(len(r.metric) for r in results)
    lines = [f"{'metric':<{width}} {'status':<8} {'actual':>12} {'baseline':>12} {'limit':>12}"]
    lines.append("-" * len(lines[0]))
    for r in results:
        actual = f"{r.actual:.6g}" if r.actual is not None else "-"
        baseline = f"{r.baseline:.6g}" if r.baseline is not None else "-"
        limit = f"{r.limit:.6g}" if r.limit is not None else "-"
        lines.append(f"{r.metric:<{width}} {r.status:<8} {actual:>12} {baseline:>12} {limit:>12}")
        if r.detail:
            lines.append(f"{'':<{width}}   {r.detail}")
    checked = sum(1 for r in results if r.status in ("ok", "fail"))
    failed = sum(1 for r in results if r.status == "fail")
    lines.append("")
    lines.append(
        f"{checked} checked, {failed} failed, "
        f"{sum(1 for r in results if r.status == 'skipped')} skipped, "
        f"{sum(1 for r in results if r.status == 'missing')} missing"
    )
    return "\n".join(lines)

"""OpenMetrics / Prometheus text exposition for telemetry snapshots.

Renders any snapshot (live or ledger-persisted) in the text format a
Prometheus-compatible scraper ingests — the exporter the ROADMAP's
``repro serve`` layer will sit behind.  Log-binned histograms become
cumulative ``_bucket{le=...}`` samples; span forests are folded into
per-name aggregates exposed as labelled counters.

A minimal :func:`parse_openmetrics` is included so exports can be
round-trip-verified (and so tests don't need a real Prometheus client).
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Tuple

from .spans import aggregate_spans, spans_from_snapshot

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str, prefix: str = "repro_") -> str:
    """A raw telemetry name as a valid OpenMetrics metric name."""
    cleaned = _NAME_OK.sub("_", name.replace(".", "_"))
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return prefix + cleaned


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_openmetrics(snapshot: Dict[str, Any], prefix: str = "repro_") -> str:
    """The snapshot as OpenMetrics text exposition (terminated by # EOF)."""
    lines: List[str] = []

    for name in sorted(snapshot.get("counters", {})):
        family = metric_name(name, prefix)
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family}_total {_fmt(float(snapshot['counters'][name]))}")

    for name in sorted(snapshot.get("gauges", {})):
        family = metric_name(name, prefix)
        gauge = snapshot["gauges"][name]
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_fmt(float(gauge.get('value', 0.0)))}")

    for name in sorted(snapshot.get("histograms", {})):
        family = metric_name(name, prefix)
        hist = snapshot["histograms"][name]
        lines.append(f"# TYPE {family} histogram")
        # Log bins are half-open [low, high); a bucket's `le` upper bound is
        # the bin's high edge.  Nonpositive observations sit below every
        # positive edge, so they seed the cumulative count.
        cumulative = int(hist.get("nonpositive", 0))
        for _low, high, count in hist.get("bins", []):
            cumulative += int(count)
            lines.append(f'{family}_bucket{{le="{_fmt(float(high))}"}} {cumulative}')
        lines.append(f'{family}_bucket{{le="+Inf"}} {int(hist.get("count", cumulative))}')
        lines.append(f"{family}_sum {_fmt(float(hist.get('sum', 0.0)))}")
        lines.append(f"{family}_count {int(hist.get('count', cumulative))}")

    aggregates = aggregate_spans(spans_from_snapshot(snapshot))
    if aggregates:
        for family_suffix, doc in (
            ("span_seconds", "Total wall time per span name"),
            ("span_exclusive_seconds", "Exclusive wall time per span name"),
            ("span_calls", "Number of calls per span name"),
        ):
            family = prefix + family_suffix
            lines.append(f"# TYPE {family} counter")
            for row in aggregates:
                label = _escape_label(row.name)
                value = {
                    "span_seconds": row.total_s,
                    "span_exclusive_seconds": row.exclusive_s,
                    "span_calls": float(row.calls),
                }[family_suffix]
                lines.append(f'{family}_total{{span="{label}"}} {_fmt(value)}')

    if "elapsed_s" in snapshot:
        family = prefix + "elapsed_seconds"
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_fmt(float(snapshot['elapsed_s']))}")
    if "open_spans" in snapshot:
        family = prefix + "open_spans"
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {int(snapshot['open_spans'])}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# minimal parser (round-trip verification)
# ----------------------------------------------------------------------

_TYPE_RE = re.compile(r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) (?P<type>\w+)$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"')


def _unescape_label(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_openmetrics(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse exposition text into ``{family: {type, samples}}``.

    ``samples`` maps ``(sample_name, labels_tuple)`` to float value, where
    ``labels_tuple`` is a sorted tuple of ``(key, value)`` pairs.  Raises
    ValueError on malformed lines or a missing ``# EOF`` terminator, which
    is what makes it useful as a round-trip check.
    """
    families: Dict[str, Dict[str, Any]] = {}
    current: str = ""
    saw_eof = False
    for raw in text.splitlines():
        line = raw.rstrip()
        if not line:
            continue
        if saw_eof:
            raise ValueError("content after # EOF terminator")
        if line == "# EOF":
            saw_eof = True
            continue
        match = _TYPE_RE.match(line)
        if match:
            current = match.group("name")
            families[current] = {"type": match.group("type"), "samples": {}}
            continue
        if line.startswith("#"):
            continue  # HELP/UNIT lines are legal; we don't emit or need them
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"malformed sample line: {line!r}")
        sample_name = match.group("name")
        labels: List[Tuple[str, str]] = []
        if match.group("labels"):
            labels = [
                (m.group("key"), _unescape_label(m.group("value")))
                for m in _LABEL_RE.finditer(match.group("labels"))
            ]
        family = current if sample_name.startswith(current) and current else sample_name
        if family not in families:
            families[family] = {"type": "untyped", "samples": {}}
        families[family]["samples"][(sample_name, tuple(sorted(labels)))] = _parse_value(
            match.group("value")
        )
    if not saw_eof:
        raise ValueError("exposition not terminated by # EOF")
    return families

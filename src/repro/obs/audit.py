"""Determinism audit trail: order-stable fingerprints at stage boundaries.

Every layer since the campaign engine stakes its correctness on
bit-reproducibility — spawn-keyed RNG trees, bit-identical retries,
zero-duplicate shared-store sweeps — yet none of it *observes* that
invariant.  This module records SHA-256 fingerprints of the numerical
payloads crossing stage boundaries (per-solve operating points, transient
trace segments, Monte-Carlo population draws and batch estimates, per-point
campaign payloads) into an opt-in, process-wide :class:`AuditTrail`, streams
them next to the run ledger, and diffs two runs' streams to pinpoint the
first divergent stage.

Design rules that make the streams comparable across executions:

* **Canonical bytes.**  Arrays are fingerprinted as C-contiguous float64
  (or their native integer/bool dtype) bytes prefixed with dtype and shape,
  so layout and view differences cannot alias two distinct populations.
  Nested payload dicts are fingerprinted as sorted-key JSON with volatile
  timing/manifest keys stripped (:data:`VOLATILE_KEYS`) — wall-clock fields
  are real but meaningless for determinism.
* **Order-stable keys.**  Records carry a stable identity (point index,
  batch index, RNG spawn-key digest) rather than a completion order; the
  campaign runner emits its per-point records sorted by index after the
  sweep, so serial, pool and multi-process shared-store executions of one
  seeded spec produce byte-identical streams.
* **Null-object opt-in.**  :data:`NULL_AUDIT` mirrors ``NULL_TELEMETRY``:
  a disabled hot path pays one attribute check.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ReproError
from ..utils.rng import SpawnKey, _key_to_int

#: Payload keys stripped before fingerprinting: measured wall-clock times and
#: host-specific manifests differ between bit-identical runs by construction.
VOLATILE_KEYS = frozenset(
    {
        "duration_s",
        "engine_duration_s",
        "compute_duration_s",
        "cached_duration_s",
        "elapsed_s",
        "wall_clock_s",
        "manifest",
        "telemetry",
    }
)

AUDIT_STREAM_KIND = "repro-audit"
AUDIT_STREAM_VERSION = 1


# ----------------------------------------------------------------------
# canonicalization + fingerprints
# ----------------------------------------------------------------------


def canonical_array_bytes(values: Any) -> bytes:
    """Canonical bytes of one array: dtype + shape header, C-order data.

    Float arrays are normalized to float64 so float32 intermediates cannot
    masquerade as a distinct population; integer and bool arrays keep their
    native width (their bit patterns are already exact).
    """
    array = np.asarray(values)
    if array.dtype.kind == "f" and array.dtype != np.float64:
        array = array.astype(np.float64)
    elif array.dtype.kind == "c":
        array = array.astype(np.complex128)
    array = np.ascontiguousarray(array)
    header = f"{array.dtype.str}|{array.shape}|".encode("ascii")
    return header + array.tobytes()


def strip_volatile(payload: Any, volatile: frozenset = VOLATILE_KEYS) -> Any:
    """Recursively drop volatile keys from a JSON-able payload."""
    if isinstance(payload, dict):
        return {
            key: strip_volatile(value, volatile)
            for key, value in payload.items()
            if key not in volatile
        }
    if isinstance(payload, (list, tuple)):
        return [strip_volatile(item, volatile) for item in payload]
    return payload


def fingerprint(
    arrays: Optional[Dict[str, Any]] = None, payload: Any = None
) -> str:
    """SHA-256 hex digest over canonicalized arrays and/or a JSON payload."""
    digest = hashlib.sha256()
    if arrays:
        for name in sorted(arrays):
            digest.update(name.encode("utf-8") + b"\x00")
            digest.update(canonical_array_bytes(arrays[name]))
    if payload is not None:
        canonical = json.dumps(
            strip_volatile(payload), sort_keys=True, separators=(",", ":"), default=str
        )
        digest.update(b"payload\x00" + canonical.encode("utf-8"))
    return digest.hexdigest()


def spawn_digest(seed: int, *spawn_key: SpawnKey) -> str:
    """Stable hex digest of one RNG spawn-key path (seed included).

    Uses the same string-hashing rule as the RNG tree itself
    (:func:`repro.utils.rng._key_to_int`), so two hosts deriving the same
    stream always report the same digest.
    """
    ints = (int(seed),) + tuple(_key_to_int(key) for key in spawn_key)
    raw = b"".join(value.to_bytes(16, "big", signed=False) for value in ints)
    return hashlib.sha256(raw).hexdigest()[:16]


# ----------------------------------------------------------------------
# the trail (null-object opt-in, mirrors telemetry)
# ----------------------------------------------------------------------


class NullAuditTrail:
    """Disabled audit trail: every record is one attribute check."""

    __slots__ = ()
    enabled = False

    def record(self, stage, key=None, arrays=None, payload=None, meta=None):
        return None

    def records(self):
        return []


NULL_AUDIT = NullAuditTrail()


class AuditTrail:
    """Accumulates order-stable stage fingerprints for one run."""

    enabled = True

    def __init__(self) -> None:
        self._records: List[Dict[str, Any]] = []
        self._stage_counts: Dict[str, int] = {}

    def record(
        self,
        stage: str,
        key: Any = None,
        arrays: Optional[Dict[str, Any]] = None,
        payload: Any = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Fingerprint one stage boundary.

        ``key`` is the stage-stable identity (point index, batch index,
        spawn digest); when omitted, a per-stage sequence number is used —
        only order-stable within a single process, so keyed records are
        preferred wherever an execution can be parallel.
        """
        if key is None:
            key = self._stage_counts.get(stage, 0)
        self._stage_counts[stage] = self._stage_counts.get(stage, 0) + 1
        record = {
            "seq": len(self._records),
            "stage": stage,
            "key": key,
            "sha256": fingerprint(arrays=arrays, payload=payload),
        }
        if meta:
            record["meta"] = dict(meta)
        self._records.append(record)
        return record

    def records(self) -> List[Dict[str, Any]]:
        return list(self._records)


# ----------------------------------------------------------------------
# the process-wide active instance
# ----------------------------------------------------------------------

_active: Any = NULL_AUDIT


def get_audit() -> Any:
    """The process-wide active audit trail (a no-op singleton when off)."""
    return _active


def audit_enabled() -> bool:
    """True when a live (non-null) audit trail is active."""
    return _active.enabled


def enable_audit(trail: Optional[AuditTrail] = None) -> AuditTrail:
    """Install (and return) a live audit trail as the process-wide instance."""
    global _active
    _active = trail if trail is not None else AuditTrail()
    return _active


def disable_audit() -> None:
    """Restore the disabled no-op singleton."""
    global _active
    _active = NULL_AUDIT


@contextmanager
def audit_capture(trail: Optional[Any] = None) -> Iterator[Any]:
    """Activate an audit trail for the duration of the block.

    The previous instance is restored on exit.  Pass :data:`NULL_AUDIT`
    explicitly to *suppress* auditing inside the block — the campaign
    runner does this around each job so stage records from in-process
    (serial) jobs cannot leak into the parent's stream and make it differ
    from a pool execution of the same spec.
    """
    global _active
    previous = _active
    _active = trail if trail is not None else AuditTrail()
    try:
        yield _active
    finally:
        _active = previous


# ----------------------------------------------------------------------
# stream persistence (rides next to the run ledger)
# ----------------------------------------------------------------------


def write_audit_stream(
    path: Union[str, Path],
    records: Sequence[Dict[str, Any]],
    run_id: Optional[str] = None,
    label: Optional[str] = None,
) -> Path:
    """Write one fingerprint stream as JSONL (header line + one per record)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "kind": AUDIT_STREAM_KIND,
        "version": AUDIT_STREAM_VERSION,
        "records": len(records),
    }
    if run_id:
        header["run_id"] = run_id
    if label:
        header["label"] = label
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(json.dumps(record, sort_keys=True) for record in records)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text("\n".join(lines) + "\n")
    tmp.replace(path)
    return path


def read_audit_stream(path: Union[str, Path]) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read one fingerprint stream; returns ``(header, records)``."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no audit stream at {path}")
    header: Dict[str, Any] = {}
    records: List[Dict[str, Any]] = []
    with path.open() as handle:
        for line_no, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            if line_no == 0 and entry.get("kind") == AUDIT_STREAM_KIND:
                header = entry
            else:
                records.append(entry)
    return header, records


# ----------------------------------------------------------------------
# the divergence differ
# ----------------------------------------------------------------------


def _identity(record: Dict[str, Any]) -> Tuple[str, str]:
    key = record.get("key")
    return str(record.get("stage")), json.dumps(key, sort_keys=True, default=str)


def diff_audit_streams(
    a_records: Sequence[Dict[str, Any]], b_records: Sequence[Dict[str, Any]]
) -> Dict[str, Any]:
    """Walk two fingerprint streams and pinpoint the first divergence.

    Records are compared pairwise in stream order: a mismatched stage/key
    pair means the runs took different stage sequences; matching identities
    with different fingerprints mean the same stage produced different
    numbers (the interesting case — the record's key names the exact
    point/batch/solve).  Returns a JSON-able report with the first
    divergence and total mismatch count.
    """
    report: Dict[str, Any] = {
        "identical": True,
        "a_records": len(a_records),
        "b_records": len(b_records),
        "compared": min(len(a_records), len(b_records)),
        "divergent": 0,
        "first_divergence": None,
    }

    def note(position: int, reason: str, a: Optional[dict], b: Optional[dict]) -> None:
        report["identical"] = False
        report["divergent"] += 1
        if report["first_divergence"] is None:
            report["first_divergence"] = {
                "position": position,
                "reason": reason,
                "stage": (a or b or {}).get("stage"),
                "key": (a or b or {}).get("key"),
                "a": a,
                "b": b,
            }

    for position in range(report["compared"]):
        a, b = a_records[position], b_records[position]
        if _identity(a) != _identity(b):
            note(position, "stage-mismatch", a, b)
        elif a.get("sha256") != b.get("sha256"):
            note(position, "fingerprint", a, b)
    if len(a_records) != len(b_records):
        longer = a_records if len(a_records) > len(b_records) else b_records
        missing_in = "b" if len(a_records) > len(b_records) else "a"
        extra = longer[report["compared"]]
        note(report["compared"], f"missing-in-{missing_in}", dict(extra), None)
    return report


def payload_max_abs_diff(a: Any, b: Any, path: str = "") -> Optional[Tuple[float, str]]:
    """Largest absolute numeric difference between two parallel payloads.

    Walks dicts/lists in parallel; returns ``(max_abs_diff, dotted path)``
    or ``None`` when no comparable numeric leaf differs.  Structure
    mismatches count as an infinite difference at the mismatching path.
    """
    if isinstance(a, dict) and isinstance(b, dict):
        best: Optional[Tuple[float, str]] = None
        for key in sorted(set(a) | set(b)):
            sub_path = f"{path}.{key}" if path else str(key)
            if key not in a or key not in b:
                return (float("inf"), sub_path)
            candidate = payload_max_abs_diff(a[key], b[key], sub_path)
            if candidate and (best is None or candidate[0] > best[0]):
                best = candidate
        return best
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            return (float("inf"), f"{path}[len]")
        best = None
        for index, (item_a, item_b) in enumerate(zip(a, b)):
            candidate = payload_max_abs_diff(item_a, item_b, f"{path}[{index}]")
            if candidate and (best is None or candidate[0] > best[0]):
                best = candidate
        return best
    numeric = (int, float)
    if isinstance(a, numeric) and isinstance(b, numeric) and not isinstance(a, bool) and not isinstance(b, bool):
        delta = abs(float(a) - float(b))
        return (delta, path) if delta > 0.0 else None
    if a != b:
        return (float("inf"), path)
    return None


def render_audit_diff(report: Dict[str, Any], a_name: str = "A", b_name: str = "B") -> str:
    """Human rendering of a :func:`diff_audit_streams` report."""
    lines = [
        f"audit streams: {a_name} ({report['a_records']} records) vs "
        f"{b_name} ({report['b_records']} records)"
    ]
    if report["identical"]:
        lines.append("IDENTICAL: every stage fingerprint matches")
        return "\n".join(lines)
    first = report["first_divergence"]
    lines.append(
        f"DIVERGENT: {report['divergent']} of {report['compared']} compared records differ"
    )
    lines.append(
        f"first divergence at position {first['position']}: "
        f"stage={first['stage']!r} key={first['key']!r} ({first['reason']})"
    )
    for name, record in (("a", first.get("a")), ("b", first.get("b"))):
        if record is None:
            lines.append(f"  {name}: (no record)")
            continue
        meta = record.get("meta")
        suffix = f" meta={json.dumps(meta, sort_keys=True, default=str)}" if meta else ""
        lines.append(f"  {name}: sha256={record.get('sha256', '')[:16]}…{suffix}")
    context = report.get("context")
    if context:
        lines.append(
            f"  payload max-abs-diff {context['max_abs_diff']:.6g} at {context['path']!r}"
        )
    return "\n".join(lines)

"""The telemetry core: metric registry, span tracing, and the active switch.

Design constraints (see the module docstring of :mod:`repro.obs`):

* **Opt-in.**  The process-wide active telemetry defaults to
  :data:`NULL_TELEMETRY`, whose every operation is a no-op.  Hot paths guard
  their instrumentation with one attribute check (``if tel.enabled:``), so a
  disabled run pays a handful of nanoseconds per solve, not per metric.
* **Dependency-free.**  Only the standard library is used; snapshots are
  plain JSON-serialisable dicts so they cross process boundaries (the
  campaign worker pool) through pickle or JSON without custom reducers.
* **Mergeable.**  Two telemetry states combine bin-by-bin / counter-by-
  counter (:meth:`Telemetry.merge_snapshot`), which is how per-job span trees
  measured inside pool workers are folded back into the parent campaign span.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from .spans import SpanRecord

#: Events kept per event name; older entries are dropped first so a long
#: adaptive run cannot grow the registry without bound.
MAX_EVENTS_PER_NAME = 2048

#: Log-histogram resolution: bins per decade of the observed value.
BINS_PER_DECADE = 4


class LogHistogram:
    """A log-binned histogram of positive-ish samples.

    Bin ``i`` covers ``[10**(i/BINS_PER_DECADE), 10**((i+1)/BINS_PER_DECADE))``;
    non-positive samples are tallied separately in :attr:`nonpositive`.  The
    binning is exact, stable across merges, and needs no a-priori range —
    the right shape for quantities spanning decades (time steps, residuals).
    """

    __slots__ = ("count", "total", "min", "max", "nonpositive", "bins")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.nonpositive = 0
        self.bins: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.nonpositive += 1
            return
        index = math.floor(math.log10(value) * BINS_PER_DECADE)
        self.bins[index] = self.bins.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """An estimate of the ``q``-quantile from the log bins.

        The rank-``ceil(q*count)`` sample is located in its bin and reported
        as the bin's geometric midpoint, clamped to the observed min/max —
        exact to within one bin width (~78% at 4 bins/decade), which is the
        resolution the histogram stores in the first place.  Returns None on
        an empty histogram.
        """
        if self.count == 0:
            return None
        q = min(max(float(q), 0.0), 1.0)
        rank = max(1, math.ceil(q * self.count))
        if self.nonpositive and rank <= self.nonpositive:
            # All we know about non-positive samples is that they exist;
            # the observed minimum bounds them.
            return min(self.min, 0.0)
        cumulative = self.nonpositive
        for index in sorted(self.bins):
            cumulative += self.bins[index]
            if cumulative >= rank:
                low = 10 ** (index / BINS_PER_DECADE)
                high = 10 ** ((index + 1) / BINS_PER_DECADE)
                value = math.sqrt(low * high)
                if self.min > 0.0:
                    value = max(value, self.min)
                return min(value, self.max)
        return self.max  # pragma: no cover - counts always sum to count

    def to_dict(self) -> Dict[str, Any]:
        edges = sorted(self.bins)
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "nonpositive": self.nonpositive,
            "bins": [
                [10 ** (index / BINS_PER_DECADE), 10 ** ((index + 1) / BINS_PER_DECADE), self.bins[index]]
                for index in edges
            ],
        }

    def merge_dict(self, payload: Dict[str, Any]) -> None:
        """Fold a serialised histogram into this one (bin-by-bin addition)."""
        self.count += int(payload.get("count", 0))
        self.total += float(payload.get("sum", 0.0))
        self.nonpositive += int(payload.get("nonpositive", 0))
        if payload.get("min") is not None:
            self.min = min(self.min, float(payload["min"]))
        if payload.get("max") is not None:
            self.max = max(self.max, float(payload["max"]))
        for low, _high, count in payload.get("bins", []):
            index = round(math.log10(low) * BINS_PER_DECADE)
            self.bins[index] = self.bins.get(index, 0) + int(count)


class _NullSpan:
    """The shared no-op span context manager of the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Disabled telemetry: every operation is a no-op.

    Instrumented code holds one of these when telemetry is off; the contract
    is that ``tel.enabled`` is the *only* check a hot path needs — every
    method is still callable (and free) so cold paths need no guards at all.
    """

    __slots__ = ()
    enabled = False

    def count(self, name: str, n: float = 1.0) -> None:
        return None

    def counter_value(self, name: str, default: float = 0.0) -> float:
        return default

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def event(self, name: str, **fields: Any) -> None:
        return None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN


NULL_TELEMETRY = NullTelemetry()


class _SpanContext:
    """Context manager that opens a span on enter and seals it on exit."""

    __slots__ = ("_telemetry", "_record", "_t0")

    def __init__(self, telemetry: "Telemetry", record: SpanRecord):
        self._telemetry = telemetry
        self._record = record
        self._t0 = 0.0

    def __enter__(self) -> SpanRecord:
        telemetry = self._telemetry
        record = self._record
        self._t0 = time.perf_counter()
        record.start_s = self._t0 - telemetry.epoch
        if telemetry._stack:
            telemetry._stack[-1].children.append(record)
        else:
            telemetry.spans.append(record)
        telemetry._stack.append(record)
        return record

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        record = self._record
        record.duration_s = time.perf_counter() - self._t0
        if exc_type is not None:
            record.attrs["error"] = exc_type.__name__
        stack = self._telemetry._stack
        # Tolerate a foreign unwound stack instead of corrupting the tree.
        if stack and stack[-1] is record:
            stack.pop()
        elif record in stack:  # pragma: no cover - malformed nesting
            while stack and stack[-1] is not record:
                stack.pop()
            stack.pop()


class Telemetry:
    """A live telemetry registry: counters, gauges, histograms, events, spans.

    One instance is one observation scope — typically the whole process (the
    module-level active instance) or one campaign job (the runner swaps a
    fresh instance in around each job so its spans serialise independently).
    Not thread-safe by design: the simulation stack is single-threaded per
    process, and pool workers each carry their own instance.
    """

    enabled = True

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, Dict[str, float]] = {}
        self.histograms: Dict[str, LogHistogram] = {}
        self.events: Dict[str, List[Dict[str, Any]]] = {}
        #: Completed root spans, in completion order.
        self.spans: List[SpanRecord] = []
        self._stack: List[SpanRecord] = []

    # -- metrics ------------------------------------------------------------

    def count(self, name: str, n: float = 1.0) -> None:
        """Add ``n`` to the named monotonic counter."""
        self.counters[name] = self.counters.get(name, 0.0) + n

    def counter_value(self, name: str, default: float = 0.0) -> float:
        """Current value of one counter (``default`` when never counted)."""
        return self.counters.get(name, default)

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge (last value wins; min/max/n are tracked)."""
        value = float(value)
        gauge = self.gauges.get(name)
        if gauge is None:
            self.gauges[name] = {"value": value, "min": value, "max": value, "n": 1}
            return
        gauge["value"] = value
        gauge["n"] += 1
        if value < gauge["min"]:
            gauge["min"] = value
        if value > gauge["max"]:
            gauge["max"] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the named log-binned histogram."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = LogHistogram()
        histogram.observe(value)

    def event(self, name: str, **fields: Any) -> None:
        """Append a structured event (e.g. one adaptive stopping decision)."""
        series = self.events.setdefault(name, [])
        series.append(fields)
        if len(series) > MAX_EVENTS_PER_NAME:
            del series[: len(series) - MAX_EVENTS_PER_NAME]

    # -- spans --------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a nested wall-time span: ``with tel.span("mc.run"): ...``."""
        return _SpanContext(self, SpanRecord(name=name, attrs=attrs))

    @property
    def open_span_count(self) -> int:
        """Spans currently entered but not yet exited."""
        return len(self._stack)

    @property
    def current_span(self) -> Optional[SpanRecord]:
        return self._stack[-1] if self._stack else None

    # -- snapshot / merge ---------------------------------------------------

    def snapshot(self, include_spans: bool = True) -> Dict[str, Any]:
        """The registry as one JSON-serialisable dict.

        The snapshot is a value: mutating the telemetry afterwards does not
        change it, and it can cross a process boundary and be merged into
        another instance with :meth:`merge_snapshot`.
        """
        payload: Dict[str, Any] = {
            "elapsed_s": time.perf_counter() - self.epoch,
            "counters": dict(self.counters),
            "gauges": {name: dict(gauge) for name, gauge in self.gauges.items()},
            "histograms": {name: hist.to_dict() for name, hist in self.histograms.items()},
            "events": {name: [dict(event) for event in series] for name, series in self.events.items()},
            "open_spans": len(self._stack),
        }
        if include_spans:
            payload["spans"] = [span.to_dict() for span in self.spans]
        return payload

    def merge_snapshot(self, snapshot: Dict[str, Any], remote: bool = False) -> None:
        """Fold another telemetry's snapshot into this registry.

        Counters and histograms add; gauges keep their latest value but widen
        min/max; events append.  Span trees attach under the currently open
        span (or as new roots).  ``remote=True`` marks the attached roots as
        measured in another process running concurrently, so their durations
        are *not* subtracted from the host span's exclusive time — a parallel
        child does not consume its parent's wall clock.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)
        for name, gauge in snapshot.get("gauges", {}).items():
            mine = self.gauges.get(name)
            if mine is None:
                self.gauges[name] = dict(gauge)
            else:
                mine["value"] = gauge["value"]
                mine["n"] += gauge.get("n", 1)
                mine["min"] = min(mine["min"], gauge["min"])
                mine["max"] = max(mine["max"], gauge["max"])
        for name, payload in snapshot.get("histograms", {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = LogHistogram()
            histogram.merge_dict(payload)
        for name, series in snapshot.get("events", {}).items():
            mine = self.events.setdefault(name, [])
            mine.extend(dict(event) for event in series)
            if len(mine) > MAX_EVENTS_PER_NAME:
                del mine[: len(mine) - MAX_EVENTS_PER_NAME]
        for span_dict in snapshot.get("spans", []):
            record = SpanRecord.from_dict(span_dict)
            record.remote = remote
            if self._stack:
                self._stack[-1].children.append(record)
            else:
                self.spans.append(record)


# ----------------------------------------------------------------------
# the process-wide active instance
# ----------------------------------------------------------------------

_active: Any = NULL_TELEMETRY


def get_telemetry() -> Any:
    """The process-wide active telemetry (a no-op singleton when disabled)."""
    return _active


def telemetry_enabled() -> bool:
    """True when a live (non-null) telemetry is active."""
    return _active.enabled


def enable_telemetry(telemetry: Optional[Telemetry] = None) -> Telemetry:
    """Install (and return) a live telemetry as the process-wide instance."""
    global _active
    _active = telemetry if telemetry is not None else Telemetry()
    return _active


def disable_telemetry() -> None:
    """Restore the disabled no-op singleton."""
    global _active
    _active = NULL_TELEMETRY


@contextmanager
def telemetry_capture(telemetry: Optional[Telemetry] = None) -> Iterator[Telemetry]:
    """Activate a fresh telemetry for the duration of the block.

    The previously active instance (live or null) is restored on exit, so
    captures nest: the campaign runner wraps each job in one to obtain the
    job's isolated span tree and metric deltas.
    """
    global _active
    previous = _active
    telemetry = enable_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        _active = previous

"""Live monitoring: atomic heartbeat files a second process can tail.

While a campaign or Monte-Carlo run executes, the active
:class:`HeartbeatWriter` rewrites one small JSON file (temp file plus
``os.replace``, so readers never see a torn write) at shard, array, and
adaptive-batch boundaries.  The file carries a monotonically increasing
``seq`` plus progress fields — points done, cache hits, samples drawn,
current CI half-width, worker utilization, ETA — which is exactly what
``repro campaign status --follow`` and ``repro obs top RUN`` poll from
another process, without touching the worker pool.

Instrumented code uses the same opt-in idiom as telemetry::

    from repro.obs import get_heartbeat

    hb = get_heartbeat()
    if hb.enabled:
        hb.update(done=done, cached=hits)

When no heartbeat scope is active, :func:`get_heartbeat` returns the no-op
:data:`NULL_HEARTBEAT` and the hot path pays one attribute check.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

#: Progress fields readers understand; anything else passed to ``update`` is
#: carried through verbatim.
TERMINAL_STATUSES = ("done", "failed", "interrupted")


class NullHeartbeat:
    """Inert stand-in used when no heartbeat scope is active."""

    enabled = False

    def update(self, **fields: Any) -> None:
        pass

    def advance(self, n: int = 1, **fields: Any) -> None:
        pass

    def finish(self, status: str = "done", **fields: Any) -> None:
        pass


NULL_HEARTBEAT = NullHeartbeat()

_active: "Union[HeartbeatWriter, NullHeartbeat]" = NULL_HEARTBEAT


def get_heartbeat() -> "Union[HeartbeatWriter, NullHeartbeat]":
    """The process-wide active heartbeat (a no-op when none is active)."""
    return _active


@contextmanager
def heartbeat_scope(writer: "HeartbeatWriter") -> Iterator["HeartbeatWriter"]:
    """Install ``writer`` as the active heartbeat for the scope's duration.

    Does not write a terminal status on exit — the owner decides between
    ``done`` and ``failed`` and calls :meth:`HeartbeatWriter.finish` itself.
    """
    global _active
    previous = _active
    _active = writer
    try:
        yield writer
    finally:
        _active = previous


class HeartbeatWriter:
    """Writes an atomically-replaced progress file for concurrent readers.

    Writes are throttled to one per ``min_interval_s`` except for the first
    write and :meth:`finish`, so per-point updates in a tight loop cost a
    clock read, not a filesystem write.
    """

    enabled = True

    def __init__(
        self,
        path: Union[str, Path],
        run_id: str = "",
        label: str = "",
        spec_name: Optional[str] = None,
        total: Optional[int] = None,
        min_interval_s: float = 0.05,
    ):
        self.path = Path(path)
        self.min_interval_s = float(min_interval_s)
        self._seq = 0
        self._last_write_monotonic: Optional[float] = None
        self._started_monotonic = time.monotonic()
        self._state: Dict[str, Any] = {
            "run_id": run_id,
            "label": label,
            "spec_name": spec_name,
            "pid": os.getpid(),
            "started_unix_s": time.time(),
            "status": "running",
            "total": total,
            "done": 0,
        }
        self._write(force=True)

    # ------------------------------------------------------------------

    def update(self, **fields: Any) -> None:
        """Merge progress fields and (throttled) rewrite the file."""
        self._state.update(fields)
        self._write()

    def advance(self, n: int = 1, **fields: Any) -> None:
        """Increment ``done`` by ``n`` and merge any extra fields."""
        self._state["done"] = int(self._state.get("done") or 0) + int(n)
        self.update(**fields)

    def finish(self, status: str = "done", **fields: Any) -> None:
        """Write the terminal state, bypassing the throttle."""
        self._state.update(fields)
        self._state["status"] = status
        self._write(force=True)

    # ------------------------------------------------------------------

    def _write(self, force: bool = False) -> None:
        now = time.monotonic()
        if (
            not force
            and self._last_write_monotonic is not None
            and now - self._last_write_monotonic < self.min_interval_s
        ):
            return
        self._last_write_monotonic = now
        self._seq += 1
        elapsed = now - self._started_monotonic
        payload = dict(self._state)
        payload["seq"] = self._seq
        payload["updated_unix_s"] = time.time()
        payload["elapsed_s"] = elapsed
        payload["eta_s"] = self._eta(elapsed)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True, default=str)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _eta(self, elapsed_s: float) -> Optional[float]:
        total = self._state.get("total")
        done = self._state.get("done")
        if not total or not done or done <= 0:
            return None
        # No observed rate yet: a resume that served every point from the
        # cache reports done=total with ~zero elapsed — extrapolating a rate
        # from that (or from a first write landing at elapsed=0) is
        # meaningless, so report "no estimate" instead of 0 or inf.
        if elapsed_s <= 0.0:
            return None
        remaining = max(0, int(total) - int(done))
        return elapsed_s / int(done) * remaining


# ----------------------------------------------------------------------
# readers
# ----------------------------------------------------------------------


def read_heartbeat(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """The current heartbeat state, or None if absent/not yet readable.

    A file mid-replace can never be seen torn (``os.replace`` is atomic),
    but it may not exist yet; both cases return None so pollers just retry.
    """
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


def follow_heartbeat(
    path: Union[str, Path],
    poll_s: float = 0.1,
    timeout_s: float = 60.0,
) -> Iterator[Dict[str, Any]]:
    """Yield each new heartbeat state (by ``seq``) until it terminates.

    Stops after the terminal status (``done``/``failed``) is yielded, or
    when ``timeout_s`` elapses with no new state — whichever comes first.
    The timeout clock resets on every new ``seq``, so a slow-but-alive run
    is followed indefinitely while a dead one is abandoned promptly.
    """
    last_seq = -1
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        state = read_heartbeat(path)
        if state is not None and int(state.get("seq", 0)) != last_seq:
            last_seq = int(state.get("seq", 0))
            deadline = time.monotonic() + timeout_s
            yield state
            if state.get("status") in TERMINAL_STATUSES:
                return
        time.sleep(poll_s)


def find_heartbeats(live_dir: Union[str, Path]) -> Dict[str, Dict[str, Any]]:
    """All readable heartbeat files in a live dir, keyed by run id."""
    result: Dict[str, Dict[str, Any]] = {}
    directory = Path(live_dir)
    if not directory.is_dir():
        return result
    for path in sorted(directory.glob("*.json")):
        state = read_heartbeat(path)
        if state is not None:
            result[str(state.get("run_id") or path.stem)] = state
    return result


def render_heartbeat(state: Dict[str, Any]) -> str:
    """One-line progress rendering used by ``--follow`` and ``obs top``."""
    done = state.get("done")
    total = state.get("total")
    parts = []
    if total:
        parts.append(f"{done or 0}/{total} points")
    elif done:
        parts.append(f"{done} done")
    for key, fmt in (
        ("cached", "cached={}"),
        ("failed", "failed={}"),
        ("retried", "retried={}"),
        ("crashed", "crashed={}"),
        ("quarantined", "quarantined={}"),
        ("samples", "samples={}"),
        ("batches", "batches={}"),
        ("arrays_done", "arrays={}"),
    ):
        value = state.get(key)
        if value:
            parts.append(fmt.format(value))
    ci = state.get("ci_half_width")
    if ci is not None:
        parts.append(f"ci_half_width={float(ci):.4g}")
    estimate = state.get("estimate")
    if estimate is not None:
        parts.append(f"estimate={float(estimate):.4g}")
    util = state.get("worker_utilization")
    if util is not None:
        parts.append(f"util={float(util):.0%}")
    eta = state.get("eta_s")
    if eta is not None:
        parts.append(f"eta={float(eta):.1f}s")
    elapsed = state.get("elapsed_s")
    if elapsed is not None:
        parts.append(f"elapsed={float(elapsed):.1f}s")
    status = state.get("status", "running")
    label = state.get("spec_name") or state.get("label") or state.get("run_id") or "?"
    return f"[{label}] {status}: " + " ".join(parts)

"""Opt-in observability: telemetry metrics, span tracing, run manifests.

The subsystem is dependency-free and disabled by default.  Instrumented code
asks for the process-wide instance and pays one attribute check when it is
off::

    from repro.obs import get_telemetry

    tel = get_telemetry()
    if tel.enabled:
        tel.count("solver.solves")

Enable it for a scope with :func:`telemetry_capture` (or globally with
:func:`enable_telemetry`), then export::

    from repro.obs import telemetry_capture, render_report

    with telemetry_capture() as tel:
        engine.run()
    print(render_report(tel.snapshot()))

The ``repro profile <cmd...>`` CLI wraps any subcommand in exactly this
pattern, and ``--telemetry out.json`` on ``mc run`` / ``mc map`` /
``campaign run`` writes the snapshot without changing the command's output.
"""

from .manifest import MANIFEST_SCHEMA_VERSION, build_manifest, telemetry_summary
from .spans import (
    SpanAggregate,
    SpanRecord,
    aggregate_spans,
    find_span,
    spans_from_snapshot,
    total_wall_s,
)
from .export import (
    render_aggregate_table,
    render_metrics,
    render_report,
    render_span_table,
    write_snapshot,
)
from .telemetry import (
    BINS_PER_DECADE,
    MAX_EVENTS_PER_NAME,
    NULL_TELEMETRY,
    LogHistogram,
    NullTelemetry,
    Telemetry,
    disable_telemetry,
    enable_telemetry,
    get_telemetry,
    telemetry_capture,
    telemetry_enabled,
)

__all__ = [
    "BINS_PER_DECADE",
    "MANIFEST_SCHEMA_VERSION",
    "MAX_EVENTS_PER_NAME",
    "NULL_TELEMETRY",
    "LogHistogram",
    "NullTelemetry",
    "SpanAggregate",
    "SpanRecord",
    "Telemetry",
    "aggregate_spans",
    "build_manifest",
    "disable_telemetry",
    "enable_telemetry",
    "find_span",
    "get_telemetry",
    "render_aggregate_table",
    "render_metrics",
    "render_report",
    "render_span_table",
    "spans_from_snapshot",
    "telemetry_capture",
    "telemetry_enabled",
    "telemetry_summary",
    "total_wall_s",
    "write_snapshot",
]

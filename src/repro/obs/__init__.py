"""Opt-in observability: telemetry metrics, span tracing, run manifests.

The subsystem is dependency-free and disabled by default.  Instrumented code
asks for the process-wide instance and pays one attribute check when it is
off::

    from repro.obs import get_telemetry

    tel = get_telemetry()
    if tel.enabled:
        tel.count("solver.solves")

Enable it for a scope with :func:`telemetry_capture` (or globally with
:func:`enable_telemetry`), then export::

    from repro.obs import telemetry_capture, render_report

    with telemetry_capture() as tel:
        engine.run()
    print(render_report(tel.snapshot()))

The ``repro profile <cmd...>`` CLI wraps any subcommand in exactly this
pattern, and ``--telemetry out.json`` on ``mc run`` / ``mc map`` /
``campaign run`` writes the snapshot without changing the command's output.

On top of the in-process layer sit the cross-run surfaces: the run ledger
(:mod:`repro.obs.store` — every CLI run's snapshot persisted under the obs
dir, ``repro obs runs/show/diff``), live heartbeat monitoring
(:mod:`repro.obs.live` — ``campaign status --follow`` / ``repro obs top``),
OpenMetrics export (:mod:`repro.obs.metrics_export`) and the benchmark
regression gate (:mod:`repro.obs.regress` — ``repro obs check-bench``).
"""

from .audit import (
    NULL_AUDIT,
    VOLATILE_KEYS,
    AuditTrail,
    NullAuditTrail,
    audit_capture,
    audit_enabled,
    canonical_array_bytes,
    diff_audit_streams,
    disable_audit,
    enable_audit,
    fingerprint,
    get_audit,
    payload_max_abs_diff,
    read_audit_stream,
    render_audit_diff,
    spawn_digest,
    strip_volatile,
    write_audit_stream,
)
from .live import (
    NULL_HEARTBEAT,
    HeartbeatWriter,
    NullHeartbeat,
    find_heartbeats,
    follow_heartbeat,
    get_heartbeat,
    heartbeat_scope,
    read_heartbeat,
    render_heartbeat,
)
from .manifest import MANIFEST_SCHEMA_VERSION, build_manifest, telemetry_summary
from .metrics_export import metric_name, parse_openmetrics, render_openmetrics
from .regress import (
    BASELINES_FILENAME,
    HISTORY_FILENAME,
    CheckResult,
    append_history,
    check_bench,
    gate_passed,
    load_baselines,
    load_bench_records,
    load_history,
    render_check_report,
)
from .store import (
    DEFAULT_OBS_DIR,
    OBS_DIR_ENV,
    RunEntry,
    RunLedger,
    default_obs_dir,
    diff_snapshots,
    new_run_id,
    render_diff,
    render_runs_table,
    resilience_counts,
)
from .spans import (
    SpanAggregate,
    SpanRecord,
    aggregate_spans,
    find_span,
    spans_from_snapshot,
    total_wall_s,
)
from .export import (
    render_aggregate_table,
    render_metrics,
    render_report,
    render_span_table,
    write_snapshot,
)
from .numerics import (
    NULL_WATCHDOG,
    NullNumericsWatchdog,
    NumericsWatchdog,
    disable_numerics,
    enable_numerics,
    get_watchdog,
    numerics_capture,
    watchdog_enabled,
)
from .telemetry import (
    BINS_PER_DECADE,
    MAX_EVENTS_PER_NAME,
    NULL_TELEMETRY,
    LogHistogram,
    NullTelemetry,
    Telemetry,
    disable_telemetry,
    enable_telemetry,
    get_telemetry,
    telemetry_capture,
    telemetry_enabled,
)

__all__ = [
    "BASELINES_FILENAME",
    "BINS_PER_DECADE",
    "DEFAULT_OBS_DIR",
    "HISTORY_FILENAME",
    "MANIFEST_SCHEMA_VERSION",
    "MAX_EVENTS_PER_NAME",
    "NULL_AUDIT",
    "NULL_HEARTBEAT",
    "NULL_TELEMETRY",
    "NULL_WATCHDOG",
    "OBS_DIR_ENV",
    "VOLATILE_KEYS",
    "AuditTrail",
    "CheckResult",
    "HeartbeatWriter",
    "LogHistogram",
    "NullAuditTrail",
    "NullHeartbeat",
    "NullNumericsWatchdog",
    "NullTelemetry",
    "NumericsWatchdog",
    "RunEntry",
    "RunLedger",
    "SpanAggregate",
    "SpanRecord",
    "Telemetry",
    "aggregate_spans",
    "append_history",
    "audit_capture",
    "audit_enabled",
    "canonical_array_bytes",
    "build_manifest",
    "check_bench",
    "default_obs_dir",
    "diff_audit_streams",
    "diff_snapshots",
    "disable_audit",
    "disable_numerics",
    "disable_telemetry",
    "enable_audit",
    "enable_numerics",
    "enable_telemetry",
    "find_heartbeats",
    "fingerprint",
    "get_audit",
    "get_watchdog",
    "numerics_capture",
    "payload_max_abs_diff",
    "read_audit_stream",
    "render_audit_diff",
    "spawn_digest",
    "strip_volatile",
    "watchdog_enabled",
    "write_audit_stream",
    "find_span",
    "follow_heartbeat",
    "gate_passed",
    "get_heartbeat",
    "get_telemetry",
    "heartbeat_scope",
    "load_baselines",
    "load_bench_records",
    "load_history",
    "metric_name",
    "new_run_id",
    "parse_openmetrics",
    "read_heartbeat",
    "render_aggregate_table",
    "render_check_report",
    "render_diff",
    "render_heartbeat",
    "render_metrics",
    "render_openmetrics",
    "render_report",
    "render_runs_table",
    "render_span_table",
    "resilience_counts",
    "spans_from_snapshot",
    "telemetry_capture",
    "telemetry_enabled",
    "telemetry_summary",
    "total_wall_s",
    "write_snapshot",
]

"""Numerics-health watchdog: NaN/Inf/underflow guards and anomaly detectors.

A silent numerical pathology — a NaN leaking out of a solve, a residual
that stalls instead of contracting, a Newton loop grinding at its iteration
ceiling, a Jacobian drifting toward singularity — corrupts results long
before anything crashes.  The watchdog turns those conditions into
structured ``numerics.*`` counters, gauges and events through the existing
:class:`~repro.obs.telemetry.Telemetry` registry, so they ride the same
snapshots, ledger records and OpenMetrics export as every other signal.

Opt-in with the same null-object idiom as telemetry: disabled call sites
pay one attribute check (:data:`NULL_WATCHDOG`).  The watchdog itself holds
no results — it only *emits*; enable telemetry alongside it to collect.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional, Sequence

import numpy as np

from .telemetry import get_telemetry

#: Fraction of the iteration budget at which a solve counts as "pressured".
ITERATION_PRESSURE_FRACTION = 0.9

#: Growth factor between consecutive residuals that flags a blowup step.
RESIDUAL_BLOWUP_FACTOR = 1e3


class NullNumericsWatchdog:
    """Disabled watchdog: every check is one attribute check."""

    __slots__ = ()
    enabled = False

    def check_array(self, stage, name, values):
        return True

    def check_residuals(self, stage, residuals):
        return True

    def check_iterations(self, stage, iterations, limit):
        return True

    def gauge_condition(self, stage, values):
        return None


NULL_WATCHDOG = NullNumericsWatchdog()


class NumericsWatchdog:
    """Emits ``numerics.*`` health signals through the active telemetry."""

    __slots__ = ()
    enabled = True

    def check_array(self, stage: str, name: str, values: Any) -> bool:
        """Guard one array against NaN/Inf/subnormal underflow.

        Returns False (and emits a ``numerics.nonfinite`` event plus
        counters) when any element is non-finite; subnormal values emit
        only the ``numerics.underflow`` counter — they are legal but are
        the canary for a collapsing scale.
        """
        array = np.asarray(values)
        if array.dtype.kind not in "fc":
            return True
        tel = get_telemetry()
        if tel.enabled:
            tel.count("numerics.checks")
        finite = np.isfinite(array)
        if finite.all():
            if array.dtype.kind == "f" and array.size:
                tiny = np.finfo(array.dtype).tiny
                subnormal = int(np.count_nonzero((np.abs(array) < tiny) & (array != 0)))
                if subnormal and tel.enabled:
                    tel.count("numerics.underflow", subnormal)
            return True
        nan_count = int(np.count_nonzero(np.isnan(array)))
        inf_count = int(array.size - np.count_nonzero(finite)) - nan_count
        if tel.enabled:
            tel.count("numerics.nonfinite")
            tel.event(
                "numerics.nonfinite",
                stage=stage,
                array=name,
                nan=nan_count,
                inf=inf_count,
                size=int(array.size),
            )
        return False

    def check_residuals(self, stage: str, residuals: Sequence[float]) -> bool:
        """Detect a non-contracting or blowing-up residual trajectory.

        A healthy damped-Newton trajectory ends below where it started and
        never jumps by more than :data:`RESIDUAL_BLOWUP_FACTOR` in one
        step.  Violations emit a ``numerics.residual_anomaly`` event with
        the offending step.
        """
        trajectory = [float(r) for r in residuals]
        if len(trajectory) < 2:
            return True
        tel = get_telemetry()
        blowup_step = None
        for index in range(1, len(trajectory)):
            previous, current = trajectory[index - 1], trajectory[index]
            if previous > 0.0 and current > previous * RESIDUAL_BLOWUP_FACTOR:
                blowup_step = index
                break
        stalled = trajectory[-1] >= trajectory[0] and trajectory[0] > 0.0
        if blowup_step is None and not stalled:
            return True
        if tel.enabled:
            tel.count("numerics.residual_anomalies")
            tel.event(
                "numerics.residual_anomaly",
                stage=stage,
                kind="blowup" if blowup_step is not None else "stall",
                step=blowup_step,
                first=trajectory[0],
                last=trajectory[-1],
                steps=len(trajectory),
            )
        return False

    def check_iterations(self, stage: str, iterations: int, limit: int) -> bool:
        """Flag a solve that consumed most of its iteration budget."""
        if limit <= 0 or iterations < ITERATION_PRESSURE_FRACTION * limit:
            return True
        tel = get_telemetry()
        if tel.enabled:
            tel.count("numerics.iteration_pressure")
            tel.event(
                "numerics.iteration_pressure",
                stage=stage,
                iterations=int(iterations),
                limit=int(limit),
            )
        return False

    def gauge_condition(self, stage: str, values: Any) -> Optional[float]:
        """Cheap conditioning proxy: max/min magnitude of the given entries.

        Applied to a Jacobian's nonzero data this is the spread of stamp
        magnitudes — not a true condition number, but it moves with one and
        costs one pass.  Recorded as the ``numerics.condition_proxy.<stage>``
        gauge.
        """
        array = np.abs(np.asarray(values, dtype=np.float64)).ravel()
        array = array[array > 0.0]
        if not array.size:
            return None
        proxy = float(array.max() / array.min())
        tel = get_telemetry()
        if tel.enabled:
            tel.gauge(f"numerics.condition_proxy.{stage}", proxy)
        return proxy


# ----------------------------------------------------------------------
# the process-wide active instance
# ----------------------------------------------------------------------

_active: Any = NULL_WATCHDOG


def get_watchdog() -> Any:
    """The process-wide active watchdog (a no-op singleton when off)."""
    return _active


def watchdog_enabled() -> bool:
    """True when a live (non-null) watchdog is active."""
    return _active.enabled


def enable_numerics(watchdog: Optional[NumericsWatchdog] = None) -> NumericsWatchdog:
    """Install (and return) a live watchdog as the process-wide instance."""
    global _active
    _active = watchdog if watchdog is not None else NumericsWatchdog()
    return _active


def disable_numerics() -> None:
    """Restore the disabled no-op singleton."""
    global _active
    _active = NULL_WATCHDOG


@contextmanager
def numerics_capture(watchdog: Optional[NumericsWatchdog] = None) -> Iterator[Any]:
    """Activate a watchdog for the duration of the block (restores on exit)."""
    global _active
    previous = _active
    _active = watchdog if watchdog is not None else NumericsWatchdog()
    try:
        yield _active
    finally:
        _active = previous

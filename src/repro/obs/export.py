"""Rendering and persistence of telemetry snapshots.

Two human surfaces — a flame-style span table and a metric listing — plus a
JSON writer for machine consumption (CI smoke checks, benchmark sidecars).
All functions take the *snapshot dict* rather than a live ``Telemetry`` so
they work equally on freshly captured and deserialised data.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .spans import SpanRecord, aggregate_spans, spans_from_snapshot, total_wall_s


def write_snapshot(path: Union[str, Path], snapshot: Dict[str, Any], indent: int = 2) -> Path:
    """Write a telemetry snapshot as JSON; parent directories are created."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=indent, sort_keys=True, default=str) + "\n")
    return path


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:9.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:8.2f}ms"
    return f"{value * 1e6:8.1f}us"


def render_span_table(
    snapshot: Dict[str, Any],
    max_depth: Optional[int] = None,
    sort: str = "total",
    top: Optional[int] = None,
) -> str:
    """The flame-style span tree: one indented row per span occurrence.

    Sibling spans of the same name are coalesced into one row (calls > 1)
    so per-iteration spans do not flood the table; ``%wall`` is the span's
    total share of the root wall time, ``excl`` the time spent in the span
    itself and not in any locally timed child.

    Sibling groups are emitted in deterministic order: by ``sort`` key
    (``"total"`` or ``"excl"`` time, descending), name ascending as the
    tie-break.  ``top`` keeps only the N largest groups per sibling level.
    """
    if sort not in ("total", "excl"):
        raise ValueError(f"sort must be 'total' or 'excl', not {sort!r}")
    roots = spans_from_snapshot(snapshot)
    if not roots:
        return "(no spans recorded)"
    wall = total_wall_s(roots) or 1.0
    lines = [f"{'span':<44} {'calls':>6} {'total':>10} {'excl':>10} {'%wall':>6}"]
    lines.append("-" * len(lines[0]))

    def emit(spans: List[SpanRecord], depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        groups: Dict[str, List[SpanRecord]] = {}
        for span in spans:
            groups.setdefault(span.name, []).append(span)
        rows = []
        for name, group in groups.items():
            total = sum(s.duration_s for s in group)
            exclusive = sum(s.exclusive_s for s in group)
            rows.append((name, group, total, exclusive))
        key = (lambda row: (-row[2], row[0])) if sort == "total" else (lambda row: (-row[3], row[0]))
        rows.sort(key=key)
        if top is not None and top > 0 and len(rows) > top:
            dropped = len(rows) - top
            rows = rows[:top]
        else:
            dropped = 0
        for name, group, total, exclusive in rows:
            label = ("  " * depth) + name + (" [remote]" if any(s.remote for s in group) else "")
            lines.append(
                f"{label:<44} {len(group):>6} {_format_seconds(total)} "
                f"{_format_seconds(exclusive)} {100.0 * total / wall:5.1f}%"
            )
            children = [child for span in group for child in span.children]
            emit(children, depth + 1)
        if dropped:
            lines.append(("  " * depth) + f"... ({dropped} more)")

    emit(roots, 0)
    return "\n".join(lines)


def render_aggregate_table(snapshot: Dict[str, Any]) -> str:
    """Per-name span totals, largest exclusive time first."""
    roots = spans_from_snapshot(snapshot)
    if not roots:
        return "(no spans recorded)"
    wall = total_wall_s(roots) or 1.0
    lines = [f"{'span (by name)':<36} {'calls':>6} {'total':>10} {'excl':>10} {'%excl':>6}"]
    lines.append("-" * len(lines[0]))
    for row in aggregate_spans(roots):
        name = row.name + (" [remote]" if row.remote else "")
        lines.append(
            f"{name:<36} {row.calls:>6} {_format_seconds(row.total_s)} "
            f"{_format_seconds(row.exclusive_s)} {100.0 * row.exclusive_s / wall:5.1f}%"
        )
    return "\n".join(lines)


def render_metrics(snapshot: Dict[str, Any]) -> str:
    """Counters, gauges and histogram summaries as an aligned listing."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            value = counters[name]
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:<42} {rendered:>12}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            gauge = gauges[name]
            lines.append(
                f"  {name:<42} {gauge['value']:>12.6g}  "
                f"(min {gauge['min']:.6g}, max {gauge['max']:.6g}, n={gauge['n']})"
            )
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            hist = histograms[name]
            if hist["count"]:
                line = (
                    f"  {name:<42} n={hist['count']:<8} mean={hist['mean']:.4g} "
                    f"min={hist['min']:.4g} max={hist['max']:.4g}"
                )
                if hist.get("p50") is not None:
                    line += (
                        f" p50={hist['p50']:.4g} p90={hist.get('p90', 0.0):.4g} "
                        f"p99={hist.get('p99', 0.0):.4g}"
                    )
                lines.append(line)
    events = snapshot.get("events", {})
    if events:
        lines.append("events:")
        for name in sorted(events):
            lines.append(f"  {name:<42} {len(events[name]):>8} recorded")
    return "\n".join(lines) if lines else "(no metrics recorded)"


def render_report(
    snapshot: Dict[str, Any],
    sort: str = "total",
    top: Optional[int] = None,
) -> str:
    """The full human-readable profile: span table plus metric listing."""
    parts = [render_span_table(snapshot, sort=sort, top=top)]
    aggregate = render_aggregate_table(snapshot)
    if aggregate != "(no spans recorded)":
        parts.append("")
        parts.append(aggregate)
    parts.append("")
    parts.append(render_metrics(snapshot))
    open_spans = snapshot.get("open_spans", 0)
    if open_spans:
        parts.append("")
        parts.append(f"WARNING: {open_spans} span(s) still open at snapshot time")
    return "\n".join(parts)

"""Concurrent-safe shared result store.

This package is the shared-state substrate of the campaign stack: a
directory that multiple ``campaign run`` processes (and, ahead, the serving
layer's refinement workers) read, write and cooperatively compute into at
once.

* :class:`~repro.store.store.ResultStore` — crash-consistent sqlite index
  (WAL mode, ``BEGIN IMMEDIATE`` writes, seeded lock-contention retries)
  over content-addressed payload files with per-entry SHA-256 checksums, so
  torn payloads are detected and quarantined rather than trusted.
* :class:`~repro.store.lease.LeaseManager` — advisory point leases (pid +
  expiry lock files with stale-steal after a liveness probe) that let N
  concurrent campaigns partition one sweep instead of duplicating it.
* :func:`~repro.store.store.migrate_legacy_cache` plus
  :meth:`~repro.store.store.ResultStore.verify` /
  :meth:`~repro.store.store.ResultStore.gc` — the operational trio behind
  ``repro store migrate|verify|gc``.

:class:`~repro.campaign.cache.ResultCache` fronts this package as a
compatibility facade: store directories are auto-detected, and a store that
cannot be opened degrades to the legacy per-file path with a warning.
"""

from ..errors import StoreError, StoreUnavailableError
from .index import INDEX_FILENAME, SCHEMA_VERSION, SqliteIndex
from .lease import DEFAULT_LEASE_TTL_S, LeaseManager, LeaseState
from .store import (
    LEASES_DIRNAME,
    PAYLOADS_DIRNAME,
    QUARANTINE_DIRNAME,
    ResultStore,
    is_store_dir,
    migrate_legacy_cache,
)

__all__ = [
    "DEFAULT_LEASE_TTL_S",
    "INDEX_FILENAME",
    "LEASES_DIRNAME",
    "PAYLOADS_DIRNAME",
    "QUARANTINE_DIRNAME",
    "SCHEMA_VERSION",
    "LeaseManager",
    "LeaseState",
    "ResultStore",
    "SqliteIndex",
    "StoreError",
    "StoreUnavailableError",
    "is_store_dir",
    "migrate_legacy_cache",
]

"""Concurrent-safe shared result store: sqlite index over checksummed payloads.

A :class:`ResultStore` is a directory multiple processes can read, write and
*cooperatively compute into* at once::

    store-root/
        index.sqlite        crash-consistent key index (WAL, BEGIN IMMEDIATE)
        payloads/ab/<sha256>.json   content-addressed payload files
        leases/<key>.lease  advisory point leases (see repro.store.lease)
        quarantine/         checksum-failed payloads, kept for inspection

Every entry row records the SHA-256 of the exact payload bytes, so a torn
or bit-rotted payload is *detected* — not merely unparseable-JSON-detected —
and quarantined through the same degrade-to-recompute path the legacy cache
uses.  Publishing is write-payload-then-index: a crash between the two
leaves an orphan payload (swept by :meth:`ResultStore.gc`), never an index
row pointing at garbage; a SIGKILL mid-index-commit is sqlite WAL's problem,
which is exactly why the index is sqlite.

Payloads are content-addressed: identical results share one file, and a
replaced entry simply re-points its row (the old payload becomes garbage for
:meth:`gc`).  :meth:`verify` re-hashes every live payload and reports
checksum failures, missing payloads, orphans and lease states;
:func:`migrate_legacy_cache` converts a legacy per-file
:class:`~repro.campaign.cache.ResultCache` directory in place.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from ..errors import StoreError, StoreUnavailableError
from ..faults.retry import RetryPolicy
from ..obs import get_telemetry
from ..utils.logging import get_logger
from .index import INDEX_FILENAME, SqliteIndex
from .lease import DEFAULT_LEASE_TTL_S, LeaseManager

logger = get_logger("store")

#: Subdirectories of a store root.
PAYLOADS_DIRNAME = "payloads"
LEASES_DIRNAME = "leases"
QUARANTINE_DIRNAME = "quarantine"


def is_store_dir(root: Union[str, Path]) -> bool:
    """Whether ``root`` looks like a :class:`ResultStore` directory."""
    return (Path(root) / INDEX_FILENAME).is_file()


def _umask_mode(base: int = 0o666) -> int:
    """``base`` masked by the process umask (os.umask is read-by-set)."""
    mask = os.umask(0)
    os.umask(mask)
    return base & ~mask


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class ResultStore:
    """A shared, checksummed, leasable result store rooted at one directory.

    The read/write surface mirrors :class:`~repro.campaign.cache.ResultCache`
    (``get``/``put``/``delete``/``clear``/``keys``/``contains``/``stats``),
    so the cache can front it as a compatibility facade.  On top of that it
    exposes the concurrency machinery: :attr:`leases` for cooperative point
    claiming, :meth:`verify`/:meth:`gc` for offline hygiene, and
    :meth:`hold_write_lock` for the chaos harness.

    Raises :class:`~repro.errors.StoreUnavailableError` from the constructor
    when the root cannot host a store (unwritable, index unusable); callers
    with a legacy path degrade instead of failing.
    """

    def __init__(
        self,
        root: Union[str, Path],
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        retry: Optional[RetryPolicy] = None,
    ):
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise StoreUnavailableError(f"store root {self.root} exists and is not a directory")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            self.payloads_dir.mkdir(exist_ok=True)
            self.quarantine_dir.mkdir(exist_ok=True)
        except OSError as exc:
            raise StoreUnavailableError(f"cannot create store directories under {self.root}: {exc}") from exc
        self.index = SqliteIndex(self.root / INDEX_FILENAME, retry=retry)
        try:
            self.leases = LeaseManager(self.root / LEASES_DIRNAME, ttl_s=lease_ttl_s)
        except (StoreError, OSError) as exc:
            raise StoreUnavailableError(f"cannot create lease directory under {self.root}: {exc}") from exc

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------

    @property
    def payloads_dir(self) -> Path:
        return self.root / PAYLOADS_DIRNAME

    @property
    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIRNAME

    def payload_path(self, sha256: str) -> Path:
        """Content-addressed location of one payload (two-level fan-out)."""
        return self.payloads_dir / sha256[:2] / f"{sha256}.json"

    # ------------------------------------------------------------------
    # read/write
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload for ``key``, or None on a miss.

        A checksum mismatch (torn write, bit rot) or a missing payload file
        quarantines the entry — the payload (if any) moves to
        ``quarantine/``, the index row is dropped, and the caller sees a
        plain miss so the point degrades to recomputation.
        """
        row = self.index.lookup(key)
        if row is None:
            return None
        path = self.payload_path(row["sha256"])
        try:
            data = path.read_bytes()
        except OSError:
            self._quarantine(key, row, None, reason="missing payload")
            return None
        if _sha256(data) != row["sha256"]:
            self._quarantine(key, row, data, reason="checksum mismatch")
            return None
        try:
            payload = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            payload = None
        if not isinstance(payload, dict):
            # Checksummed-but-unparseable means the *writer* published
            # garbage (it hashed what it wrote); keep the evidence too.
            self._quarantine(key, row, data, reason="unparseable payload")
            return None
        return payload

    def put(self, key: str, payload: Dict[str, Any], spec_name: Optional[str] = None) -> Path:
        """Publish ``payload`` under ``key``; returns the payload path.

        Payload first (atomic tmp → rename into the content-addressed slot,
        honouring the process umask so shared caches stay multi-user
        readable), index row second (``BEGIN IMMEDIATE`` upsert).  A crash
        between the two leaves only an orphan payload for :meth:`gc`.
        """
        text = json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
        data = text.encode("utf-8")
        sha = _sha256(data)
        path = self.payload_path(sha)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(prefix=f"{sha[:12]}.", suffix=".tmp", dir=path.parent)
            try:
                os.fchmod(fd, _umask_mode())
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                os.replace(tmp_name, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp_name)
                raise
        self.index.upsert(key, sha, len(data), spec_name=spec_name)
        return path

    def delete(self, key: str) -> bool:
        """Drop one entry; unlinks its payload when no other key shares it."""
        row = self.index.lookup(key)
        existed = self.index.remove(key)
        if existed and row is not None and self.index.references(row["sha256"]) == 0:
            with contextlib.suppress(OSError):
                os.unlink(self.payload_path(row["sha256"]))
        return existed

    def clear(self) -> int:
        """Drop every entry (payloads and quarantine files included)."""
        keys = self.index.keys()
        removed = 0
        for key in keys:
            if self.delete(key):
                removed += 1
        for path in list(self.quarantine_dir.glob("*")):
            with contextlib.suppress(OSError):
                os.unlink(path)
        return removed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def keys(self) -> List[str]:
        return self.index.keys()

    def contains(self, key: str) -> bool:
        return self.index.lookup(key) is not None

    def stats(self) -> Dict[str, Any]:
        """Entry/byte/quarantine counts, shaped like the legacy cache's."""
        return {
            "root": str(self.root),
            "backend": "store",
            "entries": self.index.count(),
            "bytes": self.index.total_bytes(),
            "corrupt": len(list(self.quarantine_dir.glob("*"))),
            "leases": len(self.leases.active()),
        }

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        return self.index.count()

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r}, entries={len(self)})"

    def close(self) -> None:
        self.index.close()

    # ------------------------------------------------------------------
    # quarantine
    # ------------------------------------------------------------------

    def _quarantine(
        self, key: str, row: Dict[str, Any], data: Optional[bytes], reason: str
    ) -> None:
        """Move a damaged entry aside: evidence into ``quarantine/``, row out.

        Mirrors the legacy cache's ``<key>.corrupt`` rename so operators
        find one convention everywhere; counts both the store-level
        checksum-failure counter and the legacy corrupt-entries counter.
        """
        target = self.quarantine_dir / f"{key}.corrupt"
        if data is not None:
            with contextlib.suppress(OSError):
                target.write_bytes(data)
        path = self.payload_path(row["sha256"])
        with contextlib.suppress(OSError):
            os.unlink(path)
        with contextlib.suppress(StoreError):
            self.index.remove(key)
        tel = get_telemetry()
        if tel.enabled:
            tel.count("store.checksum_failures")
            tel.count("cache.corrupt_entries")
        logger.warning("store %s: quarantined entry %s (%s)", self.root, key, reason)

    # ------------------------------------------------------------------
    # verify / gc
    # ------------------------------------------------------------------

    def verify(self, repair: bool = False) -> Dict[str, Any]:
        """Re-hash every live payload; report (and optionally repair) damage.

        Returns a report with ``entries``, ``ok``, ``checksum_failures``,
        ``missing_payloads``, ``orphan_payloads``, ``quarantined`` and lease
        counts, plus the headline aliases ``checked`` (entries examined),
        ``corrupt`` (checksum failures + missing payloads) and ``orphaned``
        (orphan payload files) that ``repro store verify --json`` consumers
        key on.  With ``repair=True`` damaged entries are quarantined (same
        path a concurrent reader would take) instead of merely reported.
        """
        report: Dict[str, Any] = {
            "root": str(self.root),
            "entries": 0,
            "ok": 0,
            "checksum_failures": 0,
            "missing_payloads": 0,
            "orphan_payloads": 0,
            "quarantined": len(list(self.quarantine_dir.glob("*"))),
            "leases": {"active": 0, "stale": 0},
            "bad_keys": [],
        }
        referenced = set()
        for row in self.index.rows():
            report["entries"] += 1
            referenced.add(row["sha256"])
            path = self.payload_path(row["sha256"])
            try:
                data = path.read_bytes()
            except OSError:
                report["missing_payloads"] += 1
                report["bad_keys"].append(row["key"])
                if repair:
                    self._quarantine(row["key"], row, None, reason="missing payload")
                continue
            if _sha256(data) != row["sha256"]:
                report["checksum_failures"] += 1
                report["bad_keys"].append(row["key"])
                if repair:
                    self._quarantine(row["key"], row, data, reason="checksum mismatch")
                continue
            report["ok"] += 1
        for path in self.payloads_dir.glob("*/*.json"):
            if path.stem not in referenced:
                report["orphan_payloads"] += 1
        now = time.time()
        for state in self.leases.active():
            bucket = "stale" if self.leases.is_stale(state, now) else "active"
            report["leases"][bucket] += 1
        report["checked"] = report["entries"]
        report["corrupt"] = report["checksum_failures"] + report["missing_payloads"]
        report["orphaned"] = report["orphan_payloads"]
        report["clean"] = report["corrupt"] == 0
        return report

    def gc(self) -> Dict[str, int]:
        """Sweep garbage: orphan payloads, temp files, stale leases.

        Orphans are payload files no index row references — the debris of a
        crash between payload write and index commit, or of replaced
        entries.  Never touches live data, so it is safe to run while
        campaigns are active (a payload written *after* the hash snapshot is
        not an orphan candidate; the snapshot is taken first).
        """
        referenced = self.index.referenced_hashes()
        swept = {"orphan_payloads": 0, "tmp_files": 0, "stale_leases": 0}
        for path in list(self.payloads_dir.glob("*/*.json")):
            if path.stem not in referenced and path.stem not in self.index.referenced_hashes():
                with contextlib.suppress(OSError):
                    os.unlink(path)
                    swept["orphan_payloads"] += 1
        for path in list(self.payloads_dir.glob("*/*.tmp")):
            with contextlib.suppress(OSError):
                os.unlink(path)
                swept["tmp_files"] += 1
        swept["stale_leases"] = self.leases.sweep()
        return swept

    # ------------------------------------------------------------------
    # chaos hook
    # ------------------------------------------------------------------

    def hold_write_lock(self, duration_s: float) -> None:
        """Hold the index write lock for ``duration_s`` (chaos harness).

        Used by the ``lock-hold`` injected fault to manufacture real
        ``database is locked`` contention for concurrent writers, proving
        the seeded retry path end to end.
        """
        with self.index.write("lock-hold"):
            time.sleep(duration_s)


# ----------------------------------------------------------------------
# migration
# ----------------------------------------------------------------------


def migrate_legacy_cache(
    root: Union[str, Path], lease_ttl_s: float = DEFAULT_LEASE_TTL_S
) -> Dict[str, Any]:
    """Convert a legacy per-file :class:`ResultCache` directory in place.

    Every readable ``<key>.json`` entry is published into a fresh store at
    the same root (content-addressed payload + index row) and the legacy
    file removed; unparseable legacy entries move to ``quarantine/``; legacy
    ``<key>.corrupt`` quarantine files move along unchanged.  Idempotent —
    re-running on a migrated (or partially migrated) directory only
    processes what is left.
    """
    root = Path(root)
    if not root.is_dir():
        raise StoreError(f"cannot migrate {root}: not a directory")
    store = ResultStore(root, lease_ttl_s=lease_ttl_s)
    report = {"root": str(root), "migrated": 0, "quarantined": 0, "already_store": 0}
    for path in sorted(root.glob("*.json")):
        key = path.stem
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            payload = None
        if not isinstance(payload, dict):
            with contextlib.suppress(OSError):
                os.replace(path, store.quarantine_dir / f"{key}.corrupt")
            report["quarantined"] += 1
            continue
        store.put(key, payload, spec_name=payload.get("spec_name"))
        with contextlib.suppress(OSError):
            os.unlink(path)
        report["migrated"] += 1
    for path in sorted(root.glob("*.corrupt")):
        with contextlib.suppress(OSError):
            os.replace(path, store.quarantine_dir / path.name)
            report["quarantined"] += 1
    report["entries"] = len(store)
    store.close()
    return report

"""Crash-consistent sqlite index over the shared result store.

One sqlite database (``index.sqlite`` under the store root) maps cache keys
to content-addressed payload files plus their SHA-256 checksums.  The index
is the store's source of truth: a key exists iff its row exists, and a
payload is live iff some row references its hash.

Crash consistency and concurrency come from sqlite itself, used carefully:

* **WAL mode** — readers never block writers and vice versa, and a torn
  process mid-commit leaves the database recoverable (the WAL replays or
  rolls back on the next open).
* **``BEGIN IMMEDIATE`` writes** — every mutation takes the write lock up
  front, so lock contention surfaces deterministically as
  ``sqlite3.OperationalError: database is locked`` at transaction start
  instead of as a mid-transaction upgrade deadlock.
* **Seeded contention retries** — ``busy_timeout`` is 0 and lock errors are
  retried under a :class:`~repro.faults.retry.RetryPolicy`, so backoff under
  contention is bit-reproducible like every other delay in the campaign
  stack.  ``sqlite3.OperationalError`` is registered retryable, so a lock
  error that escapes all the way to a campaign point still classifies as
  transient.

Connections are per-process: a :class:`SqliteIndex` inherited across
``fork()`` lazily reopens, because sharing one sqlite connection across
processes is undefined behaviour.
"""

from __future__ import annotations

import os
import sqlite3
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from ..errors import StoreError, StoreUnavailableError
from ..faults.retry import RetryPolicy, register_retryable
from ..obs import get_telemetry

# A campaign point that dies on a locked index is worth retrying: the lock
# holder finishes.  (Other OperationalErrors — unusable database file, disk
# I/O error — are rare enough that one extra retry round is harmless.)
register_retryable(sqlite3.OperationalError)

#: File name of the index database under a store root.
INDEX_FILENAME = "index.sqlite"

#: Current on-disk schema version (``meta.schema_version``).
SCHEMA_VERSION = 1

# Individual statements: sqlite3's executescript() would implicitly commit
# the surrounding BEGIN IMMEDIATE transaction, so the schema is applied
# statement by statement inside one write transaction instead.
_SCHEMA = (
    """CREATE TABLE IF NOT EXISTS entries (
           key        TEXT PRIMARY KEY,
           sha256     TEXT NOT NULL,
           size       INTEGER NOT NULL,
           created_s  REAL NOT NULL,
           spec_name  TEXT
       )""",
    "CREATE INDEX IF NOT EXISTS entries_by_sha ON entries(sha256)",
    """CREATE TABLE IF NOT EXISTS meta (
           name  TEXT PRIMARY KEY,
           value TEXT NOT NULL
       )""",
)


def _default_retry() -> RetryPolicy:
    """Contention-retry schedule: ~8 attempts spanning a few seconds.

    Cumulative worst-case wait is ~2.5 s plus jitter — comfortably longer
    than any sane index transaction (including the injected ``lock-hold``
    chaos fault), short enough that a truly wedged database surfaces fast.
    """
    return RetryPolicy(
        max_attempts=8, base_delay_s=0.02, backoff_factor=2.0, max_delay_s=0.75, jitter=0.5
    )


def _is_lock_error(exc: sqlite3.OperationalError) -> bool:
    text = str(exc).lower()
    return "locked" in text or "busy" in text


class SqliteIndex:
    """The store's key → (payload hash, checksum, metadata) table.

    All mutations go through :meth:`write`, a ``BEGIN IMMEDIATE`` transaction
    with seeded lock retries; reads are plain WAL-snapshot selects.  Raises
    :class:`~repro.errors.StoreUnavailableError` when the database cannot be
    opened or initialised at all, and :class:`~repro.errors.StoreError` when
    a write cannot acquire the lock within the retry budget.
    """

    def __init__(self, path: Union[str, Path], retry: Optional[RetryPolicy] = None):
        self.path = Path(path)
        self.retry = retry if retry is not None else _default_retry()
        self._conn: Optional[sqlite3.Connection] = None
        self._conn_pid: Optional[int] = None
        try:
            self._initialise()
        except (sqlite3.Error, OSError) as exc:
            raise StoreUnavailableError(
                f"cannot open store index {self.path}: {type(exc).__name__}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(str(self.path), timeout=0.0, isolation_level=None)
        conn.row_factory = sqlite3.Row
        # Contention is handled by our own seeded retries, not sqlite's
        # unseeded internal sleep loop.
        conn.execute("PRAGMA busy_timeout = 0")
        conn.execute("PRAGMA synchronous = NORMAL")
        return conn

    def connection(self) -> sqlite3.Connection:
        """The per-process connection, reopened after a ``fork()``."""
        pid = os.getpid()
        if self._conn is None or self._conn_pid != pid:
            if self._conn is not None and self._conn_pid == pid:
                self._conn.close()
            self._conn = self._connect()
            self._conn_pid = pid
        return self._conn

    def _initialise(self) -> None:
        conn = self.connection()
        # Entering WAL needs a moment of exclusive access; a concurrent
        # opener mid-write is transient, so let sqlite's own busy loop ride
        # it out here (init only — determinism doesn't care about open time).
        conn.execute("PRAGMA busy_timeout = 5000")
        try:
            mode = conn.execute("PRAGMA journal_mode = WAL").fetchone()[0]
        finally:
            conn.execute("PRAGMA busy_timeout = 0")
        if str(mode).lower() != "wal":
            # Filesystems without shared-memory support (some network mounts)
            # refuse WAL; the store's crash-consistency story depends on it.
            raise StoreUnavailableError(
                f"store index {self.path} cannot enter WAL mode (got {mode!r})"
            )
        with self.write("schema") as cur:
            for statement in _SCHEMA:
                cur.execute(statement)
            row = cur.execute("SELECT value FROM meta WHERE name = 'schema_version'").fetchone()
            if row is None:
                cur.execute(
                    "INSERT INTO meta (name, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
            elif int(row[0]) > SCHEMA_VERSION:
                raise StoreUnavailableError(
                    f"store index {self.path} has schema version {row[0]} "
                    f"(this library understands <= {SCHEMA_VERSION})"
                )

    def close(self) -> None:
        """Close the per-process connection (reopened lazily on next use)."""
        if self._conn is not None and self._conn_pid == os.getpid():
            self._conn.close()
        self._conn = None
        self._conn_pid = None

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    @contextmanager
    def write(self, key: str = "") -> Iterator[sqlite3.Cursor]:
        """A ``BEGIN IMMEDIATE`` write transaction with seeded lock retries.

        ``key`` decorrelates the backoff streams of concurrent writers (it
        feeds the :class:`RetryPolicy`'s jitter spawn key), so two processes
        colliding on the lock do not re-collide in lockstep.
        """
        conn = self.connection()
        attempt = 0
        while True:
            try:
                conn.execute("BEGIN IMMEDIATE")
                break
            except sqlite3.OperationalError as exc:
                if not _is_lock_error(exc):
                    raise StoreError(f"store index {self.path}: {exc}") from exc
                attempt += 1
                if attempt >= self.retry.max_attempts:
                    raise StoreError(
                        f"store index {self.path} is locked "
                        f"(gave up after {attempt} attempts)"
                    ) from exc
                delay = self.retry.delay_s(attempt, key=f"index-lock:{key}")
                tel = get_telemetry()
                if tel.enabled:
                    tel.count("store.lock_waits")
                    tel.observe("store.lock_wait_s", delay)
                time.sleep(delay)
        cur = conn.cursor()
        try:
            yield cur
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        else:
            conn.execute("COMMIT")
        finally:
            cur.close()

    # ------------------------------------------------------------------
    # entry operations
    # ------------------------------------------------------------------

    def upsert(
        self,
        key: str,
        sha256: str,
        size: int,
        spec_name: Optional[str] = None,
        created_s: Optional[float] = None,
    ) -> None:
        """Insert or replace one entry row (last writer wins per key)."""
        if created_s is None:
            created_s = time.time()
        with self.write(key) as cur:
            cur.execute(
                "INSERT OR REPLACE INTO entries (key, sha256, size, created_s, spec_name) "
                "VALUES (?, ?, ?, ?, ?)",
                (key, sha256, int(size), float(created_s), spec_name),
            )

    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """The entry row for ``key`` as a plain dict, or None."""
        row = (
            self.connection()
            .execute("SELECT * FROM entries WHERE key = ?", (key,))
            .fetchone()
        )
        return dict(row) if row is not None else None

    def remove(self, key: str) -> bool:
        """Drop one entry row; True if it existed."""
        with self.write(key) as cur:
            cur.execute("DELETE FROM entries WHERE key = ?", (key,))
            return cur.rowcount > 0

    def keys(self) -> List[str]:
        """All keys, sorted (stable across processes for a given content)."""
        rows = self.connection().execute("SELECT key FROM entries ORDER BY key").fetchall()
        return [row[0] for row in rows]

    def rows(self) -> List[Dict[str, Any]]:
        """All entry rows as plain dicts, ordered by key."""
        rows = self.connection().execute("SELECT * FROM entries ORDER BY key").fetchall()
        return [dict(row) for row in rows]

    def count(self) -> int:
        return int(self.connection().execute("SELECT COUNT(*) FROM entries").fetchone()[0])

    def total_bytes(self) -> int:
        value = self.connection().execute("SELECT COALESCE(SUM(size), 0) FROM entries").fetchone()[0]
        return int(value)

    def references(self, sha256: str) -> int:
        """How many entries reference one content hash (payload liveness)."""
        return int(
            self.connection()
            .execute("SELECT COUNT(*) FROM entries WHERE sha256 = ?", (sha256,))
            .fetchone()[0]
        )

    def referenced_hashes(self) -> set:
        rows = self.connection().execute("SELECT DISTINCT sha256 FROM entries").fetchall()
        return {row[0] for row in rows}

    def __len__(self) -> int:
        return self.count()

    def __repr__(self) -> str:
        return f"SqliteIndex({str(self.path)!r})"

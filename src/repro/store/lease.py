"""Advisory point leases: cooperative sweep partitioning across processes.

A lease is a claim on one pending campaign point: *"I am computing this key;
don't duplicate the work."*  It is advisory — nothing stops a process from
computing an unleased point — but the campaign runner honours it, so N
concurrent ``campaign run`` invocations of the same spec partition the sweep
instead of each computing every point.

One lease is one JSON file (``leases/<key>.lease`` under the store root)
holding the owner's pid, hostname, and an expiry deadline.  The protocol:

* **acquire** — ``O_CREAT | O_EXCL``: exactly one process wins creation.
* **probe** — a lease is *stale* when its deadline passed, or when its owner
  pid is provably dead (same host, ``kill -0`` raises ``ProcessLookupError``).
  A live owner refreshes its deadline while computing, so a deadline that
  lapsed means the owner stopped making progress.
* **steal** — the stale file is first renamed to a per-stealer tombstone
  (``os.rename`` succeeds for exactly one stealer; losers get
  ``FileNotFoundError``), then the winner re-acquires through the normal
  ``O_EXCL`` path.  Renaming before unlinking closes the classic race where
  two stealers both unlink and the second unlink removes the *winner's*
  fresh lease.
* **release** — the owner unlinks its own file after publishing the result
  (or after giving up on the point).

Leases deliberately live beside — not inside — the sqlite index: a
SIGKILLed owner must never leave the *index* needing recovery, and lock
files make the ownership probe (pid liveness) possible at all.
"""

from __future__ import annotations

import contextlib
import json
import os
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..errors import StoreError

#: Default lease lifetime; owners refresh at half-life while computing, so
#: this only has to outlive one *refresh interval*, not one job.
DEFAULT_LEASE_TTL_S = 600.0

_LEASE_SUFFIX = ".lease"


@dataclass(frozen=True)
class LeaseState:
    """Decoded contents of one lease file."""

    key: str
    pid: int
    host: str
    created_s: float
    deadline_s: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "pid": self.pid,
            "host": self.host,
            "created_s": self.created_s,
            "deadline_s": self.deadline_s,
        }


def _pid_alive(pid: int) -> bool:
    """Probe pid liveness on this host; unknown errors count as alive."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return True  # can't tell; err on the safe side
    return True


class LeaseManager:
    """Acquire/probe/steal/release point leases under one directory."""

    def __init__(self, root: Union[str, Path], ttl_s: float = DEFAULT_LEASE_TTL_S):
        if ttl_s <= 0:
            raise StoreError("lease ttl_s must be positive")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.ttl_s = float(ttl_s)
        self.host = socket.gethostname()
        #: Keys this manager currently holds -> deadline (unix seconds).
        self._held: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # paths and state
    # ------------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}{_LEASE_SUFFIX}"

    def read(self, key: str) -> Optional[LeaseState]:
        """The current lease on ``key``, or None (missing/unreadable)."""
        try:
            payload = json.loads(self.path_for(key).read_text(encoding="utf-8"))
            return LeaseState(
                key=key,
                pid=int(payload["pid"]),
                host=str(payload.get("host", "")),
                created_s=float(payload.get("created_s", 0.0)),
                deadline_s=float(payload["deadline_s"]),
            )
        except (OSError, ValueError, KeyError, TypeError):
            # Mid-write or torn lease files read as "no usable lease"; the
            # O_EXCL acquire below still serialises any racing claimants.
            return None

    def is_stale(self, state: LeaseState, now: Optional[float] = None) -> bool:
        """Past-deadline, or provably dead owner on this host."""
        if now is None:
            now = time.time()
        if now >= state.deadline_s:
            return True
        if state.host == self.host and not _pid_alive(state.pid):
            return True
        return False

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------

    def _payload(self, key: str, now: float) -> bytes:
        state = LeaseState(
            key=key, pid=os.getpid(), host=self.host, created_s=now, deadline_s=now + self.ttl_s
        )
        return (json.dumps(state.to_dict(), sort_keys=True) + "\n").encode("utf-8")

    def acquire(self, key: str) -> bool:
        """Try to claim ``key``; True iff this process now holds the lease."""
        now = time.time()
        path = self.path_for(key)
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o666)
        except FileExistsError:
            return False
        except OSError as exc:
            raise StoreError(f"cannot create lease {path}: {exc}") from exc
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(self._payload(key, now))
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(path)
            raise
        self._held[key] = now + self.ttl_s
        return True

    def steal(self, key: str) -> bool:
        """Take over a *stale* lease; True iff this process now holds it.

        Re-probes before acting (the owner may have refreshed since the
        caller looked), tombstones the stale file so exactly one stealer
        proceeds, then re-acquires through the normal exclusive path.
        """
        state = self.read(key)
        if state is None:
            # Lease vanished (released or already stolen): just try to claim.
            return self.acquire(key)
        if not self.is_stale(state):
            return False
        path = self.path_for(key)
        tombstone = path.with_name(f"{path.name}.stale.{os.getpid()}")
        try:
            os.rename(path, tombstone)
        except FileNotFoundError:
            return self.acquire(key)  # someone else got there first
        except OSError as exc:
            raise StoreError(f"cannot tombstone stale lease {path}: {exc}") from exc
        with contextlib.suppress(OSError):
            os.unlink(tombstone)
        return self.acquire(key)

    def release(self, key: str) -> bool:
        """Give up a lease this process holds; True if a file was removed."""
        self._held.pop(key, None)
        try:
            os.unlink(self.path_for(key))
        except FileNotFoundError:
            return False
        except OSError as exc:
            raise StoreError(f"cannot release lease for {key}: {exc}") from exc
        return True

    def release_all(self) -> int:
        """Release every lease this process still holds (shutdown path)."""
        released = 0
        for key in list(self._held):
            with contextlib.suppress(StoreError):
                if self.release(key):
                    released += 1
        return released

    def refresh(self, key: str) -> None:
        """Extend a held lease's deadline (atomic replace of the file)."""
        if key not in self._held:
            raise StoreError(f"refresh of lease {key!r} this process does not hold")
        now = time.time()
        path = self.path_for(key)
        tmp = path.with_name(f"{path.name}.refresh.{os.getpid()}")
        try:
            tmp.write_bytes(self._payload(key, now))
            os.replace(tmp, path)
        except OSError as exc:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise StoreError(f"cannot refresh lease for {key}: {exc}") from exc
        self._held[key] = now + self.ttl_s

    def refresh_due(self, fraction: float = 0.5) -> int:
        """Refresh every held lease past ``fraction`` of its lifetime.

        Called opportunistically from runner wait loops; cheap when nothing
        is due (one clock read plus a dict scan).
        """
        now = time.time()
        refreshed = 0
        for key, deadline in list(self._held.items()):
            if now >= deadline - self.ttl_s * (1.0 - fraction):
                self.refresh(key)
                refreshed += 1
        return refreshed

    # ------------------------------------------------------------------
    # introspection / gc
    # ------------------------------------------------------------------

    @property
    def held(self) -> List[str]:
        """Keys this process currently holds (sorted)."""
        return sorted(self._held)

    def holds(self, key: str) -> bool:
        return key in self._held

    def active(self) -> List[LeaseState]:
        """All readable lease files, stale or not."""
        states = []
        for path in sorted(self.root.glob(f"*{_LEASE_SUFFIX}")):
            state = self.read(path.name[: -len(_LEASE_SUFFIX)])
            if state is not None:
                states.append(state)
        return states

    def sweep(self) -> int:
        """Remove stale lease files and orphaned steal/refresh temp files."""
        removed = 0
        now = time.time()
        for path in list(self.root.glob(f"*{_LEASE_SUFFIX}")):
            key = path.name[: -len(_LEASE_SUFFIX)]
            state = self.read(key)
            if state is not None and not self.is_stale(state, now):
                continue
            with contextlib.suppress(OSError):
                os.unlink(path)
                removed += 1
        for pattern in (f"*{_LEASE_SUFFIX}.stale.*", f"*{_LEASE_SUFFIX}.refresh.*"):
            for path in list(self.root.glob(pattern)):
                with contextlib.suppress(OSError):
                    os.unlink(path)
                    removed += 1
        return removed

    def __repr__(self) -> str:
        return f"LeaseManager({str(self.root)!r}, ttl_s={self.ttl_s}, held={len(self._held)})"

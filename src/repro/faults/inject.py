"""Deterministic, seeded fault injection for chaos-testing campaigns.

The harness is activated by a compact spec string carried in the
``REPRO_FAULTS`` environment variable (the ``--inject-faults`` CLI flag sets
it, and pool workers inherit it), so the *same* schedule is visible to the
campaign parent and to every worker process without touching job payloads —
point keys, and therefore the result cache, are unaffected by injection.

Spec grammar (rules separated by ``;``)::

    ACTION@I1,I2,...[xT]     fire at the listed point indices
    ACTION~RATE[xT]          fire with probability RATE per point (seeded)
    seed=N                   seed for rate draws and anything stochastic
    hang=S                   how long the "hang" action sleeps (default 3600)

``xT`` repeats the fault for the first ``T`` execution attempts of the point
(default 1: the fault is transient and a retry succeeds; a large ``T`` makes
it effectively permanent).  Actions:

``raise``
    Raise :class:`InjectedFault` — registered retryable, so the campaign's
    :class:`~repro.faults.retry.RetryPolicy` should absorb it.
``fatal``
    Raise :class:`InjectedFatalFault` — *not* retryable; exercises the
    transient-vs-deterministic classification path.
``hang``
    Sleep past any sane deadline; exercises the timeout/straggler path.
``kill``
    SIGKILL the current process — in a pool worker this simulates the OOM
    killer; exercises crash detection, re-dispatch and quarantine.
``corrupt-cache``
    Truncate the point's cache entry right after it is written; exercises
    the cache-quarantine path on the next run.
``torn-write``
    Tear the point's just-published payload file in half (the index row and
    its checksum stay intact); exercises the shared store's checksum
    detection and quarantine path in a concurrent reader.
``lock-hold``
    Hold the shared store's index write lock for ``lock=S`` seconds (default
    0.25) right before the point publishes; exercises the seeded
    ``database is locked`` contention retries of concurrent writers.
``perturb``
    Nudge the first numeric leaf of the point's freshly computed result by
    one part in 2**40 *before* it is published — the payload stays fully
    self-consistent (caches, checksums and reports all agree on the
    perturbed value), but a determinism-audit fingerprint of the point must
    diverge; exercises ``repro obs audit``'s divergence localization.

Rate-based rules draw a Bernoulli decision from a child stream of the shared
RNG tree keyed by ``(seed, action, point index, attempt)`` — the decision
depends only on the schedule and the point, never on worker scheduling, so
two runs of the same seeded spec inject bit-identically.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Tuple, Union

from ..errors import FaultInjectionError
from ..obs import get_telemetry
from ..utils.rng import child_rng
from .retry import register_retryable

#: Environment variable the harness reads its spec from.
FAULTS_ENV = "REPRO_FAULTS"

#: Actions understood by the spec grammar.
FAULT_ACTIONS = (
    "raise",
    "fatal",
    "hang",
    "kill",
    "corrupt-cache",
    "torn-write",
    "lock-hold",
    "perturb",
)

#: Relative bump applied by the "perturb" action: one ulp-scale nudge, far
#: below any physical tolerance but fatal to a bitwise fingerprint.
PERTURB_RELATIVE = 2.0**-40

#: Default sleep of the "hang" action — far past any sane job timeout.
DEFAULT_HANG_S = 3600.0

#: Default duration of the "lock-hold" action — long enough that concurrent
#: writers reliably collide, short enough that their seeded retries absorb it.
DEFAULT_LOCK_HOLD_S = 0.25


@register_retryable
class InjectedFault(RuntimeError):
    """A deliberately injected *transient* failure (retry should succeed)."""


class InjectedFatalFault(RuntimeError):
    """A deliberately injected *deterministic* failure (never retried)."""


@dataclass(frozen=True)
class FaultRule:
    """One parsed injection rule: an action plus where/how often it fires."""

    action: str
    indices: Optional[Tuple[int, ...]] = None  # None => rate-based
    rate: float = 0.0
    times: int = 1  # fire on execution attempts 0 .. times-1

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise FaultInjectionError(
                f"unknown fault action {self.action!r}; expected one of {FAULT_ACTIONS}"
            )
        if self.times < 1:
            raise FaultInjectionError(f"fault rule {self.action!r}: xT repeat must be >= 1")
        if self.indices is None and not 0.0 < self.rate <= 1.0:
            raise FaultInjectionError(f"fault rule {self.action!r}: rate must be in (0, 1]")

    def fires(self, index: int, attempt: int, seed: int) -> bool:
        """Whether this rule injects at ``(point index, execution attempt)``."""
        if attempt >= self.times:
            return False
        if self.indices is not None:
            return index in self.indices
        rng = child_rng(seed, "faults", "inject", self.action, index, attempt)
        return float(rng.random()) < self.rate

    def to_spec(self) -> str:
        where = (
            ",".join(str(i) for i in self.indices)
            if self.indices is not None
            else f"{self.rate:g}"
        )
        sep = "@" if self.indices is not None else "~"
        tail = f"x{self.times}" if self.times != 1 else ""
        return f"{self.action}{sep}{where}{tail}"


@dataclass(frozen=True)
class FaultPlan:
    """A full injection schedule: rules plus the seed for rate-based draws."""

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0
    hang_s: float = DEFAULT_HANG_S
    lock_s: float = DEFAULT_LOCK_HOLD_S

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar (see module docstring)."""
        rules = []
        seed = 0
        hang_s = DEFAULT_HANG_S
        lock_s = DEFAULT_LOCK_HOLD_S
        for token in (part.strip() for part in spec.split(";")):
            if not token:
                continue
            if token.startswith("seed="):
                seed = _parse_int(token[5:], f"seed in {token!r}")
                continue
            if token.startswith("hang="):
                hang_s = _parse_float(token[5:], f"hang duration in {token!r}")
                continue
            if token.startswith("lock="):
                lock_s = _parse_float(token[5:], f"lock-hold duration in {token!r}")
                continue
            rules.append(_parse_rule(token))
        return cls(rules=tuple(rules), seed=seed, hang_s=hang_s, lock_s=lock_s)

    def to_spec(self) -> str:
        """Round-trippable spec string (what the CLI exports to workers)."""
        parts = [rule.to_spec() for rule in self.rules]
        if self.seed:
            parts.append(f"seed={self.seed}")
        if self.hang_s != DEFAULT_HANG_S:
            parts.append(f"hang={self.hang_s:g}")
        if self.lock_s != DEFAULT_LOCK_HOLD_S:
            parts.append(f"lock={self.lock_s:g}")
        return ";".join(parts)

    def should(self, action: str, index: int, attempt: int = 0) -> bool:
        """Whether any rule injects ``action`` at this point/attempt."""
        return any(
            rule.action == action and rule.fires(index, attempt, self.seed)
            for rule in self.rules
        )


def _parse_int(text: str, what: str) -> int:
    try:
        return int(text)
    except ValueError as exc:
        raise FaultInjectionError(f"invalid {what}: {text!r}") from exc


def _parse_float(text: str, what: str) -> float:
    try:
        return float(text)
    except ValueError as exc:
        raise FaultInjectionError(f"invalid {what}: {text!r}") from exc


def _parse_rule(token: str) -> FaultRule:
    for sep in ("@", "~"):
        if sep in token:
            action, _, rest = token.partition(sep)
            times = 1
            if "x" in rest:
                rest, _, times_text = rest.rpartition("x")
                times = _parse_int(times_text, f"repeat count in {token!r}")
            if sep == "@":
                indices = tuple(
                    _parse_int(part, f"point index in {token!r}")
                    for part in rest.split(",")
                    if part != ""
                )
                if not indices:
                    raise FaultInjectionError(f"fault rule {token!r} lists no point indices")
                return FaultRule(action=action, indices=indices, times=times)
            return FaultRule(
                action=action, rate=_parse_float(rest, f"rate in {token!r}"), times=times
            )
    raise FaultInjectionError(
        f"fault rule {token!r} is not ACTION@indices or ACTION~rate (see repro.faults.inject)"
    )


# ----------------------------------------------------------------------
# active plan (env-driven so pool workers see the same schedule)
# ----------------------------------------------------------------------

_cached_env: Optional[str] = None
_cached_plan: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The plan parsed from ``$REPRO_FAULTS``, or None when unset/empty.

    Parsed lazily and cached per raw value, so the per-job cost of a
    disabled harness is one ``os.environ`` lookup and a string compare.
    """
    global _cached_env, _cached_plan
    raw = os.environ.get(FAULTS_ENV) or ""
    if raw != _cached_env:
        _cached_env = raw
        _cached_plan = FaultPlan.parse(raw) if raw.strip() else None
    return _cached_plan


# ----------------------------------------------------------------------
# injection sites
# ----------------------------------------------------------------------

#: Execution attempt of the job currently running in this process; the
#: campaign dispatch wrapper sets it so transient (``x1``) faults stop firing
#: once the point is retried.
_current_attempt = 0


def set_current_attempt(attempt: int) -> None:
    """Record the execution attempt of the job about to run in this process."""
    global _current_attempt
    _current_attempt = int(attempt)


def current_attempt() -> int:
    """The execution attempt recorded by the dispatch wrapper (0-based)."""
    return _current_attempt


def _count(action: str) -> None:
    tel = get_telemetry()
    if tel.enabled:
        tel.count(f"faults.injected.{action}")


def fire_point_faults(index: int, attempt: Optional[int] = None) -> None:
    """Run the in-job injection sites for one campaign point.

    Called from the job execution path *inside* the error-capture boundary,
    so a raised fault becomes an ordinary error record.  Order matters:
    ``hang`` and ``kill`` pre-empt the raising actions, mirroring how a real
    wedged or OOM-killed worker never gets to raise anything.
    """
    plan = active_plan()
    if plan is None:
        return
    if attempt is None:
        attempt = _current_attempt
    if plan.should("hang", index, attempt):
        _count("hang")
        time.sleep(plan.hang_s)
    if plan.should("kill", index, attempt):
        _count("kill")
        os.kill(os.getpid(), signal.SIGKILL)
    if plan.should("fatal", index, attempt):
        _count("fatal")
        raise InjectedFatalFault(f"injected deterministic fault at point {index}")
    if plan.should("raise", index, attempt):
        _count("raise")
        raise InjectedFault(f"injected transient fault at point {index} (attempt {attempt})")


def should_corrupt_cache(index: int) -> bool:
    """Whether the ``corrupt-cache`` action fires for this point's entry."""
    plan = active_plan()
    return plan is not None and plan.should("corrupt-cache", index)


def corrupt_cache_entry(path: Union[str, Path]) -> None:
    """Overwrite a just-written cache entry with a truncated payload."""
    _count("corrupt-cache")
    Path(path).write_text('{"status": "ok", "result": {"truncated', encoding="utf-8")


def should_tear_write(index: int) -> bool:
    """Whether the ``torn-write`` action fires for this point's payload."""
    plan = active_plan()
    return plan is not None and plan.should("torn-write", index)


def tear_payload(path: Union[str, Path]) -> None:
    """Truncate a just-published payload file to half its bytes.

    Against the shared store this leaves an index row whose checksum no
    longer matches the payload — the torn write a crash mid-``write()``
    could produce on a non-atomic filesystem — so the next reader must
    *detect* (not merely fail-to-parse) and quarantine it.
    """
    _count("torn-write")
    path = Path(path)
    data = path.read_bytes()
    with open(path, "wb") as handle:
        handle.write(data[: max(1, len(data) // 2)])


def should_perturb_result(index: int) -> bool:
    """Whether the ``perturb`` action fires for this point's result."""
    plan = active_plan()
    return plan is not None and plan.should("perturb", index, _current_attempt)


def perturb_result(result: Any) -> Any:
    """Perform the ``perturb`` action: nudge the first numeric leaf in place.

    Walks dicts (sorted keys) and lists depth-first and multiplies the first
    finite float found by ``1 + PERTURB_RELATIVE`` (or adds the epsilon when
    the value is zero).  The walk is deterministic, so two perturbed runs of
    the same point diverge *identically* — the differ localizes the point,
    not the noise.
    """
    _count("perturb")

    def nudge(value: float) -> float:
        return value * (1.0 + PERTURB_RELATIVE) if value else PERTURB_RELATIVE

    def walk(node: Any) -> bool:
        if isinstance(node, dict):
            for key in sorted(node):
                value = node[key]
                if isinstance(value, float):
                    node[key] = nudge(value)
                    return True
                if walk(value):
                    return True
            return False
        if isinstance(node, list):
            for position, value in enumerate(node):
                if isinstance(value, float):
                    node[position] = nudge(value)
                    return True
                if walk(value):
                    return True
            return False
        return False

    walk(result)
    return result


def should_hold_lock(index: int) -> bool:
    """Whether the ``lock-hold`` action fires before this point publishes."""
    plan = active_plan()
    return plan is not None and plan.should("lock-hold", index)


def hold_store_lock(store: Any) -> None:
    """Perform the ``lock-hold`` action against one shared result store.

    Holds the store's index write lock for the plan's ``lock=S`` duration so
    every concurrent writer hits ``database is locked`` and must ride it out
    through the seeded retry schedule.
    """
    _count("lock-hold")
    plan = active_plan()
    store.hold_write_lock(plan.lock_s if plan is not None else DEFAULT_LOCK_HOLD_S)

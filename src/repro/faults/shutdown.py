"""Graceful shutdown: turn SIGINT/SIGTERM into a drained, resumable stop.

Without this, Ctrl-C during a pooled campaign raises
:class:`KeyboardInterrupt` at an arbitrary bytecode boundary: in-flight
bookkeeping is lost, the heartbeat file stays frozen at ``running``, and no
ledger record is written.  :func:`graceful_shutdown` converts the *first*
SIGINT/SIGTERM into a cooperative flag the campaign runner polls between
records and inside its pool wait loop — completed results are harvested and
cached, the pool is torn down, and :class:`~repro.errors.CampaignInterrupted`
propagates to the CLI, which flushes the heartbeat with status
``interrupted``, records the run in the obs ledger, and exits 130.

A *second* signal restores the previous handler and re-raises immediately,
so a wedged drain can always be cut short the classic way.
"""

from __future__ import annotations

import os
import signal
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

#: Signals converted into a cooperative stop (SIGTERM absent on some platforms).
SHUTDOWN_SIGNALS = tuple(
    sig for sig in (getattr(signal, "SIGINT", None), getattr(signal, "SIGTERM", None)) if sig
)


class ShutdownFlag:
    """Cooperative stop request shared between the handler and the runner."""

    def __init__(self) -> None:
        self.requested = False
        self.signum: Optional[int] = None

    def request(self, signum: int) -> None:
        self.requested = True
        self.signum = signum

    @property
    def signal_name(self) -> str:
        if self.signum is None:
            return "signal"
        try:
            return signal.Signals(self.signum).name
        except ValueError:  # pragma: no cover - unknown signal number
            return f"signal {self.signum}"


@contextmanager
def graceful_shutdown() -> Iterator[ShutdownFlag]:
    """Install first-signal-drains / second-signal-kills handlers for a scope.

    Signal handlers can only be installed from the main thread; anywhere else
    (e.g. a campaign run inside a worker thread) the scope degrades to an
    inert flag and the default signal behaviour is untouched.
    """
    flag = ShutdownFlag()
    if threading.current_thread() is not threading.main_thread():
        yield flag
        return
    previous: Dict[int, object] = {}
    owner_pid = os.getpid()

    def _handler(signum: int, frame: object) -> None:
        if os.getpid() != owner_pid:
            # A child forked while this handler was installed (e.g. a pool
            # worker between fork and its initializer) inherited it; the
            # cooperative flag means nothing there, and swallowing the
            # signal would make the worker unkillable by pool teardown.
            # Restore the default disposition and re-deliver.
            signal.signal(signum, signal.SIG_DFL)
            os.kill(os.getpid(), signum)
            return
        if flag.requested:
            # Second signal: give up on draining, restore the old behaviour
            # and deliver the signal through it.
            handler = previous.get(signum, signal.SIG_DFL)
            signal.signal(signum, handler)
            raise KeyboardInterrupt
        flag.request(signum)

    for sig in SHUTDOWN_SIGNALS:
        try:
            previous[sig] = signal.signal(sig, _handler)
        except (ValueError, OSError):  # pragma: no cover - exotic embedding
            continue
    try:
        yield flag
    finally:
        for sig, handler in previous.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover
                continue

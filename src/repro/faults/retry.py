"""Retry policies and transient-vs-deterministic error classification.

A long campaign meets two very different kinds of failure.  *Transient*
failures — a Newton solve that wandered off from an unlucky warm start, an
OS-level flake such as a dropped pipe or a momentary out-of-memory — would
very likely succeed if simply run again.  *Deterministic* failures — an
invalid configuration, an attack spec whose victim equals an aggressor —
will fail identically forever, and retrying them only burns wall clock.

The split is expressed through a **retryable-exception registry**: subsystems
register the exception types whose failures are worth retrying
(:func:`register_retryable`), and :func:`is_retryable` classifies a caught
exception against it.  ``repro.circuit.solver`` registers its
:class:`~repro.errors.ConvergenceError` on import; common OS-level flakes are
registered here.  An exception instance can also override the registry with
an explicit boolean ``retryable`` attribute.

:class:`RetryPolicy` is the schedule half: bounded attempts with exponential
backoff whose jitter is drawn from the shared seeded RNG tree
(:mod:`repro.utils.rng`), so two runs of the same campaign back off
identically — retries never make a campaign non-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Type

from ..errors import CampaignError
from ..utils.rng import child_rng

#: Exception types whose failures are considered transient.  Seeded with the
#: OS-level flakes a multiprocessing campaign can realistically hit; domain
#: subsystems add their own via :func:`register_retryable`.
_RETRYABLE_TYPES: set = {
    ConnectionError,  # includes BrokenPipeError / ConnectionResetError
    TimeoutError,
    InterruptedError,
    BlockingIOError,
    EOFError,
    MemoryError,
}


def register_retryable(exc_type: Type[BaseException]) -> Type[BaseException]:
    """Mark ``exc_type`` (and its subclasses) as transient; usable as a decorator.

    Returns the type unchanged so it can annotate an exception definition::

        @register_retryable
        class FlakyBackendError(ReproError):
            ...
    """
    if not (isinstance(exc_type, type) and issubclass(exc_type, BaseException)):
        raise TypeError(f"register_retryable needs an exception type, got {exc_type!r}")
    _RETRYABLE_TYPES.add(exc_type)
    return exc_type


def retryable_types() -> FrozenSet[Type[BaseException]]:
    """The currently registered transient exception types (a snapshot)."""
    return frozenset(_RETRYABLE_TYPES)


def is_retryable(exc: BaseException) -> bool:
    """True when ``exc`` should be treated as transient.

    An explicit boolean ``retryable`` attribute on the instance wins over the
    registry, so a subsystem can flag one specific raise either way without
    (de)registering a whole type.
    """
    override = getattr(exc, "retryable", None)
    if isinstance(override, bool):
        return override
    return isinstance(exc, tuple(_RETRYABLE_TYPES))


@dataclass
class RetryPolicy:
    """Bounded, seeded exponential backoff applied per campaign point.

    ``max_attempts`` counts total executions of one point (first try
    included); the delay before retry ``k`` (1-based) is::

        min(max_delay_s, base_delay_s * backoff_factor ** (k - 1)) * (1 + jitter * u)

    where ``u`` is drawn uniformly from ``[0, 1)`` on a child stream of the
    shared RNG tree keyed by ``(seed, point key, k)`` — deterministic for a
    given seed, decorrelated across points so a burst of transient failures
    does not retry in lockstep.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    backoff_factor: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise CampaignError("RetryPolicy.max_attempts must be >= 1")
        if self.base_delay_s < 0:
            raise CampaignError("RetryPolicy.base_delay_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise CampaignError("RetryPolicy.backoff_factor must be >= 1")
        if self.max_delay_s < self.base_delay_s:
            raise CampaignError("RetryPolicy.max_delay_s must be >= base_delay_s")
        if not 0.0 <= self.jitter <= 1.0:
            raise CampaignError("RetryPolicy.jitter must be in [0, 1]")

    # ------------------------------------------------------------------

    def delay_s(self, retry: int, key: str = "") -> float:
        """Backoff before the ``retry``-th re-execution (1-based) of ``key``."""
        if retry < 1:
            raise CampaignError("retry number is 1-based")
        base = min(self.max_delay_s, self.base_delay_s * self.backoff_factor ** (retry - 1))
        if self.jitter and base > 0.0:
            rng = child_rng(self.seed, "faults", "retry-jitter", str(key), retry)
            base *= 1.0 + self.jitter * float(rng.random())
        return base

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """True when a point that failed on (0-based) ``attempt`` gets another."""
        return attempt + 1 < self.max_attempts and is_retryable(exc)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (recorded in campaign metadata)."""
        return {
            "max_attempts": self.max_attempts,
            "base_delay_s": self.base_delay_s,
            "backoff_factor": self.backoff_factor,
            "max_delay_s": self.max_delay_s,
            "jitter": self.jitter,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RetryPolicy":
        known = {f: payload[f] for f in cls.__dataclass_fields__ if f in payload}
        unknown = set(payload) - set(known)
        if unknown:
            raise CampaignError(f"unknown RetryPolicy fields: {sorted(unknown)}")
        return cls(**known)

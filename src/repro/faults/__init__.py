"""Fault tolerance: retry policies, fault injection, graceful shutdown.

This package is the resilience layer of the campaign/Monte-Carlo stack.  It
answers three questions a multi-hour sweep inevitably raises:

* *Was that failure worth retrying?* — :class:`~repro.faults.retry.RetryPolicy`
  plus the retryable-exception registry
  (:func:`~repro.faults.retry.register_retryable` /
  :func:`~repro.faults.retry.is_retryable`), which solver non-convergence and
  OS-level flakes register into.  The campaign runner applies the policy per
  point with seeded exponential backoff.
* *What happens when a worker dies?* — the runner's crash recovery (pid
  liveness probes + start sentinels) re-dispatches unfinished points and
  quarantines a poison point with a ``status="crashed"`` record; this package
  provides the deterministic chaos harness (:mod:`repro.faults.inject`,
  activated via ``$REPRO_FAULTS`` / ``--inject-faults``) that proves it.
* *What does Ctrl-C mean?* — :func:`~repro.faults.shutdown.graceful_shutdown`
  turns the first SIGINT/SIGTERM into a drained, cached, resumable stop
  (:class:`~repro.errors.CampaignInterrupted`), and the second into an
  immediate exit.

Everything is seeded through the shared RNG tree (:mod:`repro.utils.rng`):
backoff jitter and rate-based fault draws are bit-reproducible, so chaos
tests can assert exact retry/crash/quarantine counts across runs.
"""

from ..errors import CampaignInterrupted, FaultInjectionError
from .inject import (
    DEFAULT_HANG_S,
    DEFAULT_LOCK_HOLD_S,
    FAULT_ACTIONS,
    FAULTS_ENV,
    PERTURB_RELATIVE,
    FaultPlan,
    FaultRule,
    InjectedFatalFault,
    InjectedFault,
    active_plan,
    corrupt_cache_entry,
    current_attempt,
    fire_point_faults,
    hold_store_lock,
    perturb_result,
    set_current_attempt,
    should_corrupt_cache,
    should_hold_lock,
    should_perturb_result,
    should_tear_write,
    tear_payload,
)
from .retry import RetryPolicy, is_retryable, register_retryable, retryable_types
from .shutdown import SHUTDOWN_SIGNALS, ShutdownFlag, graceful_shutdown

__all__ = [
    "DEFAULT_HANG_S",
    "DEFAULT_LOCK_HOLD_S",
    "FAULT_ACTIONS",
    "FAULTS_ENV",
    "PERTURB_RELATIVE",
    "SHUTDOWN_SIGNALS",
    "CampaignInterrupted",
    "FaultInjectionError",
    "FaultPlan",
    "FaultRule",
    "InjectedFatalFault",
    "InjectedFault",
    "RetryPolicy",
    "ShutdownFlag",
    "active_plan",
    "corrupt_cache_entry",
    "current_attempt",
    "fire_point_faults",
    "graceful_shutdown",
    "hold_store_lock",
    "is_retryable",
    "perturb_result",
    "register_retryable",
    "retryable_types",
    "set_current_attempt",
    "should_corrupt_cache",
    "should_hold_lock",
    "should_perturb_result",
    "should_tear_write",
    "tear_payload",
]

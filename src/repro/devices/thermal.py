"""Cell-level self-heating helpers (paper Eq. 6).

The filament temperature of a cell is coupled to its own dissipation: a
hotter filament conducts differently, which changes the dissipated power,
which changes the temperature.  These helpers solve that fixed point so the
rest of the stack can ask for "the quasi-static temperature of this cell
under this bias" without re-implementing the iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K
from ..errors import ConvergenceError
from .base import DeviceState, MemristorModel


@dataclass
class ThermalOperatingPoint:
    """Self-consistent electro-thermal operating point of a single cell."""

    voltage_v: float
    current_a: float
    power_w: float
    filament_temperature_k: float
    ambient_temperature_k: float
    crosstalk_temperature_k: float

    @property
    def temperature_rise_k(self) -> float:
        """Temperature rise above ambient, including crosstalk [K]."""
        return self.filament_temperature_k - self.ambient_temperature_k

    @property
    def self_heating_k(self) -> float:
        """Temperature rise caused by the cell's own dissipation only [K]."""
        return self.temperature_rise_k - self.crosstalk_temperature_k


def solve_operating_point(
    model: MemristorModel,
    voltage_v: float,
    x: float,
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    crosstalk_temperature_k: float = 0.0,
    tolerance_k: float = 0.05,
    max_iterations: int = 200,
) -> ThermalOperatingPoint:
    """Solve the self-consistent filament temperature of a biased cell.

    Fixed-point iteration on ``T = T_amb + dT_crosstalk + Rth_eff * P(V, x, T)``
    with damping; raises :class:`ConvergenceError` if the iteration does not
    settle (which indicates thermal runaway beyond the model validity).
    """
    temperature = ambient_temperature_k + crosstalk_temperature_k
    state = DeviceState(x=x, filament_temperature_k=temperature)
    rth = model.thermal_resistance_k_per_w()
    damping = 0.6
    current_a = model.current(voltage_v, state)
    for _ in range(max_iterations):
        current_a = model.current(voltage_v, state)
        power_w = abs(voltage_v * current_a)
        target = ambient_temperature_k + crosstalk_temperature_k + rth * power_w
        new_temperature = temperature + damping * (target - temperature)
        if abs(new_temperature - temperature) < tolerance_k:
            state.filament_temperature_k = new_temperature
            current_a = model.current(voltage_v, state)
            power_w = abs(voltage_v * current_a)
            return ThermalOperatingPoint(
                voltage_v=voltage_v,
                current_a=current_a,
                power_w=power_w,
                filament_temperature_k=new_temperature,
                ambient_temperature_k=ambient_temperature_k,
                crosstalk_temperature_k=crosstalk_temperature_k,
            )
        temperature = new_temperature
        state.filament_temperature_k = temperature
    raise ConvergenceError(
        f"filament temperature did not converge for V={voltage_v} V, x={x} "
        f"(last T={temperature:.1f} K); the bias point is likely in thermal runaway"
    )


def equilibrium_temperature(
    model: MemristorModel,
    voltage_v: float,
    x: float,
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    crosstalk_temperature_k: float = 0.0,
) -> float:
    """Convenience wrapper returning only the self-consistent temperature [K]."""
    point = solve_operating_point(
        model,
        voltage_v,
        x,
        ambient_temperature_k=ambient_temperature_k,
        crosstalk_temperature_k=crosstalk_temperature_k,
    )
    return point.filament_temperature_k

"""JART-VCM-v1b style compact model of a filamentary VCM ReRAM cell.

This is the primary device model of the reproduction.  It follows the
structure of the Juelich-Aachen Resistive Switching Tools (JART) VCM v1b
model used by the paper (deterministic variant, Bengel et al., TCAS-I 2020):

* The internal state is the oxygen-vacancy concentration ``N_disc`` of the
  disc region of the filament, normalised here to ``x`` in [0, 1] between
  ``n_disc_min`` (HRS) and ``n_disc_max`` (LRS).
* The cell current flows through a nonlinear electrode/oxide interface
  (Schottky-like, thermionic with barrier lowering by the vacancy
  concentration) in series with the ohmic disc, plug and line resistances.
* The switching kinetics follow thermally activated, field-accelerated ion
  hopping (Mott-Gurney law): an Arrhenius factor in the filament temperature
  and a sinh term in the driving voltage.
* The filament temperature follows the paper's Eq. (6),
  ``T = Rth_eff * P + T0``, plus the additional temperature delivered by the
  crosstalk hub (Eq. 5).

The default parameters are calibrated (see ``repro.experiments.calibration``)
so that the operating point of the paper's Fig. 2a is reproduced: an LRS cell
driven at V_SET = 1.05 V from a 300 K ambient settles at ≈947 K, and the
victim operating point of Fig. 3a (50 ns pulses, 50 nm spacing, 300 K) needs
a few thousand hammer pulses.  The kinetic prefactor is an explicit
calibration constant subsuming the attempt frequency, vacancy density and
geometric factors that the public JART parameter set does not fully pin
down; every figure uses the same value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..constants import (
    BOLTZMANN_EV_PER_K,
    BOLTZMANN_J_PER_K,
    DEFAULT_AMBIENT_TEMPERATURE_K,
    ELEMENTARY_CHARGE_C,
    RICHARDSON_A_PER_M2K2,
)
from ..errors import DeviceModelError
from .base import DeviceState, MemristorModel


@dataclass
class JartVcmParameters:
    """Physical parameters of the JART-style VCM compact model."""

    # ---- filament geometry ----------------------------------------------
    #: Filament radius [m] (paper Fig. 2b: diameter 30 nm).
    filament_radius_m: float = 15e-9
    #: Length of the disc region [m].
    disc_length_m: float = 1e-9
    #: Length of the plug region [m].
    plug_length_m: float = 4e-9

    # ---- vacancy concentrations ------------------------------------------
    #: Minimum disc vacancy concentration (HRS) [1/m^3].
    n_disc_min_per_m3: float = 0.008e26
    #: Maximum disc vacancy concentration (LRS) [1/m^3].
    n_disc_max_per_m3: float = 20e26
    #: Plug vacancy concentration [1/m^3].
    n_plug_per_m3: float = 20e26

    # ---- conduction --------------------------------------------------------
    #: Electron mobility in the oxide [m^2/(V s)].
    electron_mobility_m2_per_vs: float = 4e-6
    #: Charge number of the mobile donors (oxygen vacancies).
    charge_number: int = 2
    #: Series resistance of electrodes and ohmic TiOx layer [Ohm].
    series_resistance_ohm: float = 650.0
    #: Zero-state effective interface barrier height [eV].
    barrier_height_ev: float = 0.35
    #: Barrier lowering at full LRS (x = 1) [eV].
    barrier_lowering_ev: float = 0.22
    #: Interface nonlinearity voltage of the sinh characteristic [V].
    interface_voltage_v: float = 0.05

    # ---- thermal -----------------------------------------------------------
    #: Effective thermal resistance R_th,eff of the cell [K/W] (paper Eq. 6).
    rth_eff_k_per_w: float = 2.15e6

    # ---- switching kinetics ------------------------------------------------
    #: Activation energy of ion hopping [eV].
    activation_energy_ev: float = 1.2
    #: Activation energy of the RESET direction [eV].
    reset_activation_energy_ev: float = 1.05
    #: Effective ion hopping distance [m].
    hop_distance_m: float = 0.5e-9
    #: Kinetic prefactor of the SET direction [1/s] (calibration constant).
    set_rate_prefactor_per_s: float = 1.2e16
    #: Kinetic prefactor of the RESET direction [1/s].
    reset_rate_prefactor_per_s: float = 2.9e15

    def __post_init__(self) -> None:
        if self.n_disc_min_per_m3 <= 0 or self.n_disc_max_per_m3 <= self.n_disc_min_per_m3:
            raise DeviceModelError("need 0 < n_disc_min < n_disc_max")
        if self.filament_radius_m <= 0 or self.disc_length_m <= 0 or self.plug_length_m <= 0:
            raise DeviceModelError("filament geometry must be positive")
        if self.interface_voltage_v <= 0:
            raise DeviceModelError("interface_voltage_v must be positive")
        if self.barrier_lowering_ev >= self.barrier_height_ev:
            raise DeviceModelError("barrier lowering must be smaller than the barrier height")
        if self.rth_eff_k_per_w < 0:
            raise DeviceModelError("rth_eff_k_per_w must be non-negative")
        if self.activation_energy_ev <= 0 or self.reset_activation_energy_ev <= 0:
            raise DeviceModelError("activation energies must be positive")
        if self.set_rate_prefactor_per_s <= 0 or self.reset_rate_prefactor_per_s <= 0:
            raise DeviceModelError("kinetic prefactors must be positive")

    @property
    def filament_area_m2(self) -> float:
        """Cross-sectional area of the filament [m^2]."""
        return math.pi * self.filament_radius_m ** 2

    @property
    def field_coefficient_k_per_v(self) -> float:
        """Coefficient of the sinh field-acceleration term [K/V].

        Equals ``a z e / (2 k_B l_disc)`` so that the sinh argument is
        ``field_coefficient * V_drive / T``.
        """
        return (
            self.hop_distance_m
            * self.charge_number
            * ELEMENTARY_CHARGE_C
            / (2.0 * BOLTZMANN_J_PER_K * self.disc_length_m)
        )


class JartVcmModel(MemristorModel):
    """Deterministic JART-style VCM cell model."""

    name = "jart_vcm_v1b"

    def __init__(self, parameters: JartVcmParameters = None):
        self.parameters = parameters if parameters is not None else JartVcmParameters()

    # ------------------------------------------------------------------
    # state mapping
    # ------------------------------------------------------------------

    def disc_concentration(self, x: float) -> float:
        """Oxygen vacancy concentration of the disc for normalised state x."""
        p = self.parameters
        x = self.clamp_state(x)
        return p.n_disc_min_per_m3 + x * (p.n_disc_max_per_m3 - p.n_disc_min_per_m3)

    def normalised_state(self, n_disc_per_m3: float) -> float:
        """Inverse of :meth:`disc_concentration`."""
        p = self.parameters
        x = (n_disc_per_m3 - p.n_disc_min_per_m3) / (p.n_disc_max_per_m3 - p.n_disc_min_per_m3)
        return self.clamp_state(x)

    # ------------------------------------------------------------------
    # resistive elements
    # ------------------------------------------------------------------

    def disc_resistance(self, x: float) -> float:
        """Ohmic resistance of the disc region [Ohm]."""
        p = self.parameters
        sigma = p.charge_number * ELEMENTARY_CHARGE_C * p.electron_mobility_m2_per_vs * self.disc_concentration(x)
        return p.disc_length_m / (sigma * p.filament_area_m2)

    def plug_resistance(self) -> float:
        """Ohmic resistance of the plug region [Ohm]."""
        p = self.parameters
        sigma = p.charge_number * ELEMENTARY_CHARGE_C * p.electron_mobility_m2_per_vs * p.n_plug_per_m3
        return p.plug_length_m / (sigma * p.filament_area_m2)

    def ohmic_resistance(self, x: float) -> float:
        """Total ohmic series resistance (disc + plug + electrodes) [Ohm]."""
        return self.disc_resistance(x) + self.plug_resistance() + self.parameters.series_resistance_ohm

    def interface_saturation_current(self, x: float, temperature_k: float) -> float:
        """Saturation current of the Schottky-like interface element [A]."""
        p = self.parameters
        barrier_ev = p.barrier_height_ev - p.barrier_lowering_ev * self.clamp_state(x)
        thermionic = RICHARDSON_A_PER_M2K2 * temperature_k ** 2 * p.filament_area_m2
        return thermionic * math.exp(-barrier_ev / (BOLTZMANN_EV_PER_K * temperature_k))

    # ------------------------------------------------------------------
    # electrical characteristic
    # ------------------------------------------------------------------

    def current(self, voltage_v: float, state: DeviceState) -> float:
        """Cell current [A], solving the internal series combination.

        The cell voltage splits between the nonlinear interface
        ``V_int = V_nl * asinh(I / I_s)`` and the ohmic resistances; the
        resulting scalar equation in I is monotone and solved by bisection
        refined with Newton steps.
        """
        self.check_voltage(voltage_v)
        if voltage_v == 0.0:
            return 0.0
        sign = 1.0 if voltage_v > 0.0 else -1.0
        magnitude = abs(voltage_v)
        x = self.clamp_state(state.x)
        temperature = max(state.filament_temperature_k, 1.0)
        r_ohmic = self.ohmic_resistance(x)
        i_sat = self.interface_saturation_current(x, temperature)
        v_nl = self.parameters.interface_voltage_v

        def residual(current_a: float) -> float:
            return v_nl * math.asinh(current_a / i_sat) + current_a * r_ohmic - magnitude

        low, high = 0.0, magnitude / r_ohmic
        # residual(low) = -magnitude < 0 and residual(high) >= 0, so the root
        # is always bracketed; 60 bisection steps give ~1e-18 A resolution.
        for _ in range(60):
            mid = 0.5 * (low + high)
            if residual(mid) > 0.0:
                high = mid
            else:
                low = mid
        return sign * 0.5 * (low + high)

    def interface_voltage(self, voltage_v: float, state: DeviceState) -> float:
        """Voltage drop across the nonlinear interface element [V] (signed)."""
        current_a = self.current(voltage_v, state)
        x = self.clamp_state(state.x)
        temperature = max(state.filament_temperature_k, 1.0)
        i_sat = self.interface_saturation_current(x, temperature)
        return self.parameters.interface_voltage_v * math.asinh(current_a / i_sat)

    def driving_voltage(self, voltage_v: float, state: DeviceState) -> float:
        """Voltage available to drive ion migration [V] (signed).

        Comprises the drops over the disc and the interface depletion region,
        i.e. the full cell voltage minus the drops over the plug and the
        external series resistance.
        """
        current_a = self.current(voltage_v, state)
        series = self.plug_resistance() + self.parameters.series_resistance_ohm
        return voltage_v - current_a * series

    # ------------------------------------------------------------------
    # switching kinetics
    # ------------------------------------------------------------------

    def state_derivative(self, voltage_v: float, state: DeviceState) -> float:
        """dx/dt from thermally activated, field-accelerated ion hopping."""
        if voltage_v == 0.0:
            return 0.0
        p = self.parameters
        temperature = max(state.filament_temperature_k, 1.0)
        v_drive = self.driving_voltage(voltage_v, state)
        field_argument = p.field_coefficient_k_per_v * abs(v_drive) / temperature
        # Guard against overflow for pathological inputs; sinh(50) ~ 2.6e21
        # already corresponds to instantaneous switching.
        field_argument = min(field_argument, 50.0)
        field_term = math.sinh(field_argument)
        if voltage_v > 0.0:
            arrhenius = math.exp(-p.activation_energy_ev / (BOLTZMANN_EV_PER_K * temperature))
            rate = p.set_rate_prefactor_per_s * arrhenius * field_term
            if state.x >= 1.0:
                return 0.0
            return rate
        arrhenius = math.exp(-p.reset_activation_energy_ev / (BOLTZMANN_EV_PER_K * temperature))
        rate = p.reset_rate_prefactor_per_s * arrhenius * field_term
        if state.x <= 0.0:
            return 0.0
        return -rate

    def thermal_resistance_k_per_w(self) -> float:
        """Effective thermal resistance R_th,eff of the cell [K/W] (Eq. 6)."""
        return self.parameters.rth_eff_k_per_w

    def _make_batched(self):
        """Array-wide kernel backed by the Monte-Carlo vectorized model.

        Imported lazily: :mod:`repro.montecarlo.vectorized` depends on this
        module, so the import must not run at module-load time.
        """
        from ..montecarlo.vectorized import JartArrayModel

        return JartArrayModel(self.parameters)

    # ------------------------------------------------------------------
    # characterisation helpers
    # ------------------------------------------------------------------

    def lrs_resistance_ohm(self, read_voltage_v: float = 0.2,
                           temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K) -> float:
        """Static LRS resistance at the read voltage [Ohm]."""
        return self.resistance(DeviceState(1.0, temperature_k), read_voltage_v)

    def hrs_resistance_ohm(self, read_voltage_v: float = 0.2,
                           temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K) -> float:
        """Static HRS resistance at the read voltage [Ohm]."""
        return self.resistance(DeviceState(0.0, temperature_k), read_voltage_v)

    def resistance_window(self, read_voltage_v: float = 0.2) -> float:
        """HRS/LRS resistance ratio at the read voltage."""
        return self.hrs_resistance_ohm(read_voltage_v) / self.lrs_resistance_ohm(read_voltage_v)

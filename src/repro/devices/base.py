"""Abstract interface shared by every memristive compact model.

The circuit level only ever talks to devices through this interface, so the
JART-style VCM model, the linear-ion-drift baseline and the Yakopcic model are
interchangeable everywhere (crossbar, transient engine, attack estimator).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K
from ..errors import DeviceModelError


@dataclass
class DeviceState:
    """Dynamic state of a single memristive cell.

    Attributes:
        x: Normalised internal state in [0, 1]; 0 is the fully high-resistive
            state (HRS), 1 the fully low-resistive state (LRS).
        filament_temperature_k: Local filament temperature including
            self-heating and any externally imposed crosstalk contribution.
    """

    x: float
    filament_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K

    def copy(self) -> "DeviceState":
        """Return an independent copy of this state."""
        return DeviceState(self.x, self.filament_temperature_k)


class MemristorModel(abc.ABC):
    """Behavioural compact model of a two-terminal memristive device.

    A model is stateless: all dynamic quantities live in :class:`DeviceState`
    objects owned by the caller, which keeps the model safe to share between
    the 25 crosspoints of a crossbar (and between threads).
    """

    #: Human-readable model name used in reports.
    name: str = "memristor"

    # -- electrical -------------------------------------------------------

    @abc.abstractmethod
    def current(self, voltage_v: float, state: DeviceState) -> float:
        """Device current [A] for a given applied cell voltage [V]."""

    def conductance(self, voltage_v: float, state: DeviceState) -> float:
        """Small-signal conductance dI/dV [S] around ``voltage_v``.

        The default implementation uses a symmetric finite difference, which
        is accurate enough for the Newton nodal solver; models with analytic
        derivatives may override it.
        """
        delta = max(1e-4, abs(voltage_v) * 1e-4)
        upper = self.current(voltage_v + delta, state)
        lower = self.current(voltage_v - delta, state)
        g = (upper - lower) / (2.0 * delta)
        if g <= 0.0:
            # A passive resistive device can never present a negative or zero
            # small-signal conductance to the solver; clamp to a floor that
            # keeps the nodal matrix well conditioned.
            g = 1e-12
        return g

    def resistance(self, state: DeviceState, read_voltage_v: float = 0.2) -> float:
        """Static resistance V/I at the given read voltage [Ohm]."""
        current = self.current(read_voltage_v, state)
        if abs(current) < 1e-18:
            return 1e18
        return read_voltage_v / current

    # -- dynamics ---------------------------------------------------------

    @abc.abstractmethod
    def state_derivative(self, voltage_v: float, state: DeviceState) -> float:
        """Time derivative of the normalised state dx/dt [1/s]."""

    def dissipated_power(self, voltage_v: float, state: DeviceState) -> float:
        """Joule power dissipated in the cell [W]."""
        return abs(voltage_v * self.current(voltage_v, state))

    def update_temperature(
        self,
        voltage_v: float,
        state: DeviceState,
        ambient_temperature_k: float,
        crosstalk_temperature_k: float = 0.0,
    ) -> float:
        """Return the quasi-static filament temperature [K] (paper Eq. 6).

        ``crosstalk_temperature_k`` is the *additional* temperature delivered
        by the crosstalk hub (Eq. 5), i.e. the temperature rise caused by the
        neighbouring cells' dissipation.
        """
        rise = self.thermal_resistance_k_per_w() * self.dissipated_power(voltage_v, state)
        return ambient_temperature_k + crosstalk_temperature_k + rise

    def thermal_resistance_k_per_w(self) -> float:
        """Effective thermal resistance R_th,eff of the cell [K/W] (Eq. 6)."""
        return 0.0

    # -- state helpers ----------------------------------------------------

    def hrs_state(self, ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K) -> DeviceState:
        """A pristine high-resistive state."""
        return DeviceState(x=0.0, filament_temperature_k=ambient_temperature_k)

    def lrs_state(self, ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K) -> DeviceState:
        """A fully formed low-resistive state."""
        return DeviceState(x=1.0, filament_temperature_k=ambient_temperature_k)

    def state_from_bit(
        self,
        bit: int,
        ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
        lrs_is_one: bool = True,
    ) -> DeviceState:
        """Map a logical bit to a device state using the given encoding."""
        if bit not in (0, 1):
            raise DeviceModelError(f"bit must be 0 or 1, got {bit!r}")
        stored_as_lrs = (bit == 1) == lrs_is_one
        if stored_as_lrs:
            return self.lrs_state(ambient_temperature_k)
        return self.hrs_state(ambient_temperature_k)

    @staticmethod
    def clamp_state(x: float) -> float:
        """Clamp a normalised state variable into its physical range [0, 1]."""
        if x < 0.0:
            return 0.0
        if x > 1.0:
            return 1.0
        return x

    @staticmethod
    def check_voltage(voltage_v: float, limit_v: float = 10.0) -> None:
        """Guard against numerically absurd voltages reaching the model."""
        if not (-limit_v <= voltage_v <= limit_v):
            raise DeviceModelError(
                f"cell voltage {voltage_v!r} V outside the model validity range "
                f"[-{limit_v}, {limit_v}] V"
            )


def bit_from_state(state: DeviceState, threshold: float = 0.5, lrs_is_one: bool = True) -> int:
    """Decode the logical bit stored in a device state."""
    is_lrs = state.x >= threshold
    if lrs_is_one:
        return 1 if is_lrs else 0
    return 0 if is_lrs else 1

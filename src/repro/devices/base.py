"""Abstract interface shared by every memristive compact model.

The circuit level only ever talks to devices through this interface, so the
JART-style VCM model, the linear-ion-drift baseline and the Yakopcic model are
interchangeable everywhere (crossbar, transient engine, attack estimator).
"""

from __future__ import annotations

import abc
from collections.abc import Mapping as MappingABC
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Tuple

import numpy as np

from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K
from ..errors import DeviceModelError

Cell = Tuple[int, int]


@dataclass
class DeviceState:
    """Dynamic state of a single memristive cell.

    Attributes:
        x: Normalised internal state in [0, 1]; 0 is the fully high-resistive
            state (HRS), 1 the fully low-resistive state (LRS).
        filament_temperature_k: Local filament temperature including
            self-heating and any externally imposed crosstalk contribution.
    """

    x: float
    filament_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K

    def copy(self) -> "DeviceState":
        """Return an independent copy of this state."""
        return DeviceState(self.x, self.filament_temperature_k)


class DeviceStateArrays:
    """Struct-of-arrays device state of a whole crossbar.

    Replaces the per-cell ``Dict[Cell, DeviceState]`` of the original engine
    with two ``(rows, columns)`` float64 arrays, so the nodal solver and the
    transient engine can evaluate every device in one vectorized call.  The
    Mapping-based API of :class:`~repro.circuit.crossbar.CrossbarArray` is
    preserved through :class:`DeviceStateMapView`.
    """

    __slots__ = ("x", "temperature_k")

    def __init__(
        self,
        rows: int,
        columns: int,
        x: float = 0.0,
        temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    ):
        if rows < 1 or columns < 1:
            raise DeviceModelError("state arrays need at least one row and one column")
        self.x = np.full((int(rows), int(columns)), float(x), dtype=np.float64)
        self.temperature_k = np.full(
            (int(rows), int(columns)), float(temperature_k), dtype=np.float64
        )

    @classmethod
    def from_arrays(cls, x: np.ndarray, temperature_k: np.ndarray) -> "DeviceStateArrays":
        """Wrap existing arrays (copied) into a state container."""
        x = np.asarray(x, dtype=np.float64)
        temperature_k = np.asarray(temperature_k, dtype=np.float64)
        if x.ndim != 2 or x.shape != temperature_k.shape:
            raise DeviceModelError("state arrays must be matching (rows, columns) arrays")
        out = cls(x.shape[0], x.shape[1])
        out.x[...] = x
        out.temperature_k[...] = temperature_k
        return out

    @classmethod
    def from_mapping(
        cls, rows: int, columns: int, states: Mapping[Cell, "DeviceState"]
    ) -> "DeviceStateArrays":
        """Convert a legacy per-cell state mapping into arrays."""
        out = cls(rows, columns)
        for cell, state in states.items():
            out.x[cell] = state.x
            out.temperature_k[cell] = state.filament_temperature_k
        return out

    @property
    def rows(self) -> int:
        return self.x.shape[0]

    @property
    def columns(self) -> int:
        return self.x.shape[1]

    @property
    def shape(self) -> Tuple[int, int]:
        return self.x.shape

    def copy(self) -> "DeviceStateArrays":
        """Independent deep copy (checkpoint/restore)."""
        return DeviceStateArrays.from_arrays(self.x, self.temperature_k)

    def view(self, cell: Cell) -> "DeviceStateView":
        """Live per-cell proxy with the :class:`DeviceState` attribute API."""
        return DeviceStateView(self, tuple(cell))

    def as_mapping(self) -> "DeviceStateMapView":
        """Live Mapping[Cell, DeviceState]-compatible view of the arrays."""
        return DeviceStateMapView(self)


class DeviceStateView:
    """Per-cell proxy exposing the :class:`DeviceState` attribute API.

    Reads and writes go straight through to the owning
    :class:`DeviceStateArrays`, which preserves the original semantics where
    ``crossbar.states[cell]`` returned a live, mutable object.
    """

    __slots__ = ("_arrays", "_cell")

    def __init__(self, arrays: DeviceStateArrays, cell: Cell):
        object.__setattr__(self, "_arrays", arrays)
        object.__setattr__(self, "_cell", cell)

    @property
    def x(self) -> float:
        return float(self._arrays.x[self._cell])

    @x.setter
    def x(self, value: float) -> None:
        self._arrays.x[self._cell] = value

    @property
    def filament_temperature_k(self) -> float:
        return float(self._arrays.temperature_k[self._cell])

    @filament_temperature_k.setter
    def filament_temperature_k(self, value: float) -> None:
        self._arrays.temperature_k[self._cell] = value

    def copy(self) -> DeviceState:
        """Detached :class:`DeviceState` snapshot of this cell."""
        return DeviceState(self.x, self.filament_temperature_k)

    def __repr__(self) -> str:
        return f"DeviceStateView(cell={self._cell}, x={self.x}, T={self.filament_temperature_k})"


class DeviceStateMapView(MappingABC):
    """Mapping[Cell, DeviceState]-compatible view over :class:`DeviceStateArrays`.

    Keeps every caller of the historic ``crossbar.states`` dict working
    (lookup, iteration, ``items()``/``values()``, assignment of
    :class:`DeviceState` objects) while the authoritative storage stays in
    flat arrays.  Exposes the backing container as :attr:`arrays` so
    array-native code can skip the per-cell proxies entirely.
    """

    __slots__ = ("arrays",)

    def __init__(self, arrays: DeviceStateArrays):
        self.arrays = arrays

    def _check(self, cell) -> Cell:
        cell = tuple(cell)
        if (
            len(cell) != 2
            or not (0 <= cell[0] < self.arrays.rows)
            or not (0 <= cell[1] < self.arrays.columns)
        ):
            raise KeyError(cell)
        return cell

    def __getitem__(self, cell) -> DeviceStateView:
        return DeviceStateView(self.arrays, self._check(cell))

    def __setitem__(self, cell, state) -> None:
        cell = self._check(cell)
        self.arrays.x[cell] = state.x
        self.arrays.temperature_k[cell] = state.filament_temperature_k

    def __iter__(self) -> Iterator[Cell]:
        for row in range(self.arrays.rows):
            for column in range(self.arrays.columns):
                yield (row, column)

    def __len__(self) -> int:
        return self.arrays.rows * self.arrays.columns

    def __contains__(self, cell) -> bool:
        try:
            self._check(cell)
        except KeyError:
            return False
        return True


class BatchedDeviceModel(abc.ABC):
    """Vectorized device-model interface consumed by the array-native engine.

    Implementations evaluate whole arrays of independent devices in one call:
    every argument is broadcastable (typically the flattened per-device
    voltages, states and temperatures of a crossbar) and every return value
    has the broadcast shape.  :meth:`MemristorModel.batched` supplies one per
    scalar model; models without a native vectorized kernel fall back to
    :class:`ScalarBatchedModel`, which preserves correctness at scalar speed.
    """

    @abc.abstractmethod
    def current(
        self, voltage_v: np.ndarray, x: np.ndarray, temperature_k: np.ndarray
    ) -> np.ndarray:
        """Per-device current [A]."""

    def conductance(
        self, voltage_v: np.ndarray, x: np.ndarray, temperature_k: np.ndarray
    ) -> np.ndarray:
        """Per-device small-signal conductance dI/dV [S].

        Mirrors the scalar default exactly: a symmetric finite difference with
        the same step rule and the same positive floor, so Newton trajectories
        of the vectorized solver match the legacy per-device path.
        """
        voltage_v = np.asarray(voltage_v, dtype=np.float64)
        delta = np.maximum(1e-4, np.abs(voltage_v) * 1e-4)
        upper = self.current(voltage_v + delta, x, temperature_k)
        lower = self.current(voltage_v - delta, x, temperature_k)
        g = (upper - lower) / (2.0 * delta)
        return np.where(g <= 0.0, 1e-12, g)

    @abc.abstractmethod
    def state_derivative(
        self, voltage_v: np.ndarray, x: np.ndarray, temperature_k: np.ndarray
    ) -> np.ndarray:
        """Per-device dx/dt [1/s]."""

    def clamp_state(self, x: np.ndarray) -> np.ndarray:
        """Per-device state clamp, mirroring the scalar model's clamp rule."""
        return np.clip(x, 0.0, 1.0)


class ScalarBatchedModel(BatchedDeviceModel):
    """Loop-based fallback adapter for models without a vectorized kernel."""

    def __init__(self, model: "MemristorModel"):
        self.model = model

    def _map(self, fn, voltage_v, x, temperature_k) -> np.ndarray:
        voltage_v, x, temperature_k = np.broadcast_arrays(
            np.asarray(voltage_v, dtype=np.float64),
            np.asarray(x, dtype=np.float64),
            np.asarray(temperature_k, dtype=np.float64),
        )
        flat_v = voltage_v.ravel()
        flat_x = x.ravel()
        flat_t = temperature_k.ravel()
        out = np.empty(flat_v.shape, dtype=np.float64)
        for k in range(flat_v.size):
            out[k] = fn(float(flat_v[k]), DeviceState(float(flat_x[k]), float(flat_t[k])))
        return out.reshape(voltage_v.shape)

    def current(self, voltage_v, x, temperature_k) -> np.ndarray:
        return self._map(self.model.current, voltage_v, x, temperature_k)

    def conductance(self, voltage_v, x, temperature_k) -> np.ndarray:
        # Delegate to the scalar model so per-model conductance overrides
        # (analytic derivatives, custom floors) are honoured exactly.
        return self._map(self.model.conductance, voltage_v, x, temperature_k)

    def state_derivative(self, voltage_v, x, temperature_k) -> np.ndarray:
        return self._map(self.model.state_derivative, voltage_v, x, temperature_k)

    def clamp_state(self, x: np.ndarray) -> np.ndarray:
        # Honour per-model clamp overrides (e.g. a floor keeping the nodal
        # matrix away from zero conductance) element for element.
        x = np.asarray(x, dtype=np.float64)
        flat = x.ravel()
        out = np.empty(flat.shape, dtype=np.float64)
        for k in range(flat.size):
            out[k] = self.model.clamp_state(float(flat[k]))
        return out.reshape(x.shape)


class MemristorModel(abc.ABC):
    """Behavioural compact model of a two-terminal memristive device.

    A model is stateless: all dynamic quantities live in :class:`DeviceState`
    objects owned by the caller, which keeps the model safe to share between
    the 25 crosspoints of a crossbar (and between threads).
    """

    #: Human-readable model name used in reports.
    name: str = "memristor"

    # -- electrical -------------------------------------------------------

    @abc.abstractmethod
    def current(self, voltage_v: float, state: DeviceState) -> float:
        """Device current [A] for a given applied cell voltage [V]."""

    def conductance(self, voltage_v: float, state: DeviceState) -> float:
        """Small-signal conductance dI/dV [S] around ``voltage_v``.

        The default implementation uses a symmetric finite difference, which
        is accurate enough for the Newton nodal solver; models with analytic
        derivatives may override it.
        """
        delta = max(1e-4, abs(voltage_v) * 1e-4)
        upper = self.current(voltage_v + delta, state)
        lower = self.current(voltage_v - delta, state)
        g = (upper - lower) / (2.0 * delta)
        if g <= 0.0:
            # A passive resistive device can never present a negative or zero
            # small-signal conductance to the solver; clamp to a floor that
            # keeps the nodal matrix well conditioned.
            g = 1e-12
        return g

    def batched(self) -> BatchedDeviceModel:
        """Vectorized counterpart of this model (cached).

        Array-native consumers (the sparse nodal solver, the transient
        engine) evaluate all devices of a crossbar through this interface in
        one call.  Models ship native NumPy kernels where available; the
        default is a loop-based adapter that keeps arbitrary scalar models
        correct at their original speed.
        """
        cached = getattr(self, "_batched_cache", None)
        if cached is None:
            cached = self._make_batched()
            self._batched_cache = cached
        return cached

    def _make_batched(self) -> BatchedDeviceModel:
        return ScalarBatchedModel(self)

    def resistance(self, state: DeviceState, read_voltage_v: float = 0.2) -> float:
        """Static resistance V/I at the given read voltage [Ohm]."""
        current = self.current(read_voltage_v, state)
        if abs(current) < 1e-18:
            return 1e18
        return read_voltage_v / current

    # -- dynamics ---------------------------------------------------------

    @abc.abstractmethod
    def state_derivative(self, voltage_v: float, state: DeviceState) -> float:
        """Time derivative of the normalised state dx/dt [1/s]."""

    def dissipated_power(self, voltage_v: float, state: DeviceState) -> float:
        """Joule power dissipated in the cell [W]."""
        return abs(voltage_v * self.current(voltage_v, state))

    def update_temperature(
        self,
        voltage_v: float,
        state: DeviceState,
        ambient_temperature_k: float,
        crosstalk_temperature_k: float = 0.0,
    ) -> float:
        """Return the quasi-static filament temperature [K] (paper Eq. 6).

        ``crosstalk_temperature_k`` is the *additional* temperature delivered
        by the crosstalk hub (Eq. 5), i.e. the temperature rise caused by the
        neighbouring cells' dissipation.
        """
        rise = self.thermal_resistance_k_per_w() * self.dissipated_power(voltage_v, state)
        return ambient_temperature_k + crosstalk_temperature_k + rise

    def thermal_resistance_k_per_w(self) -> float:
        """Effective thermal resistance R_th,eff of the cell [K/W] (Eq. 6)."""
        return 0.0

    # -- state helpers ----------------------------------------------------

    def hrs_state(self, ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K) -> DeviceState:
        """A pristine high-resistive state."""
        return DeviceState(x=0.0, filament_temperature_k=ambient_temperature_k)

    def lrs_state(self, ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K) -> DeviceState:
        """A fully formed low-resistive state."""
        return DeviceState(x=1.0, filament_temperature_k=ambient_temperature_k)

    def state_from_bit(
        self,
        bit: int,
        ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
        lrs_is_one: bool = True,
    ) -> DeviceState:
        """Map a logical bit to a device state using the given encoding."""
        if bit not in (0, 1):
            raise DeviceModelError(f"bit must be 0 or 1, got {bit!r}")
        stored_as_lrs = (bit == 1) == lrs_is_one
        if stored_as_lrs:
            return self.lrs_state(ambient_temperature_k)
        return self.hrs_state(ambient_temperature_k)

    @staticmethod
    def clamp_state(x: float) -> float:
        """Clamp a normalised state variable into its physical range [0, 1]."""
        if x < 0.0:
            return 0.0
        if x > 1.0:
            return 1.0
        return x

    @staticmethod
    def check_voltage(voltage_v: float, limit_v: float = 10.0) -> None:
        """Guard against numerically absurd voltages reaching the model."""
        if not (-limit_v <= voltage_v <= limit_v):
            raise DeviceModelError(
                f"cell voltage {voltage_v!r} V outside the model validity range "
                f"[-{limit_v}, {limit_v}] V"
            )


def bit_from_state(state: DeviceState, threshold: float = 0.5, lrs_is_one: bool = True) -> int:
    """Decode the logical bit stored in a device state."""
    is_lrs = state.x >= threshold
    if lrs_is_one:
        return 1 if is_lrs else 0
    return 0 if is_lrs else 1

"""Generalised Yakopcic memristor model (alternate device model).

The Yakopcic model describes the device current with a hyperbolic-sine
conduction term and the state motion with threshold-activated exponentials.
It sits between the linear-ion-drift baseline and the full VCM model in terms
of fidelity: nonlinear conduction and threshold-like switching, but no
explicit temperature physics.  It is provided so users can cross-check how
much of the NeuroHammer effect is attributable to the *thermal* acceleration
(only present in the VCM model) versus mere voltage nonlinearity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import DeviceModelError
from .base import BatchedDeviceModel, DeviceState, MemristorModel


@dataclass
class YakopcicParameters:
    """Parameters of the generalised Yakopcic model."""

    #: Conduction amplitude in the high-conductive branch [A].
    a1: float = 2.3e-4
    #: Conduction amplitude in the low-conductive branch [A].
    a2: float = 3.6e-6
    #: Conduction nonlinearity [1/V].
    b: float = 2.0
    #: State motion amplitude above the positive threshold [1/s].
    a_p: float = 5e6
    #: State motion amplitude below the negative threshold [1/s].
    a_n: float = 5e6
    #: Positive switching threshold [V].
    v_p: float = 0.85
    #: Negative switching threshold [V].
    v_n: float = 0.85
    #: Motion decay exponents.
    alpha_p: float = 4.0
    alpha_n: float = 4.0
    #: State boundary softening parameters.
    x_p: float = 0.9
    x_n: float = 0.1
    #: Effective thermal resistance [K/W] for bookkeeping parity.
    rth_eff_k_per_w: float = 2.0e6

    def __post_init__(self) -> None:
        if self.a1 <= 0 or self.a2 <= 0:
            raise DeviceModelError("conduction amplitudes must be positive")
        if self.v_p <= 0 or self.v_n <= 0:
            raise DeviceModelError("thresholds must be positive")
        if not (0.0 < self.x_n < self.x_p < 1.0):
            raise DeviceModelError("state boundaries must satisfy 0 < x_n < x_p < 1")


class YakopcicModel(MemristorModel):
    """Generalised threshold-type memristor model after Yakopcic et al."""

    name = "yakopcic"

    def __init__(self, parameters: YakopcicParameters = None):
        self.parameters = parameters if parameters is not None else YakopcicParameters()

    # -- electrical -------------------------------------------------------

    def current(self, voltage_v: float, state: DeviceState) -> float:
        self.check_voltage(voltage_v)
        p = self.parameters
        x = self.clamp_state(state.x)
        if voltage_v >= 0.0:
            return p.a1 * x * math.sinh(p.b * voltage_v)
        return p.a2 * x * math.sinh(p.b * voltage_v)

    # -- dynamics ---------------------------------------------------------

    def _motion(self, voltage_v: float) -> float:
        """Threshold-activated state motion g(V)."""
        p = self.parameters
        if voltage_v > p.v_p:
            return p.a_p * (math.exp(voltage_v) - math.exp(p.v_p))
        if voltage_v < -p.v_n:
            return -p.a_n * (math.exp(-voltage_v) - math.exp(p.v_n))
        return 0.0

    def _window(self, x: float, direction_positive: bool) -> float:
        """Boundary-aware motion damping f(x)."""
        p = self.parameters
        if direction_positive:
            if x < p.x_p:
                return 1.0
            span = 1.0 - p.x_p
            return math.exp(-(x - p.x_p) / span) if span > 0 else 0.0
        if x > p.x_n:
            return 1.0
        span = p.x_n
        return math.exp((x - p.x_n) / span) if span > 0 else 0.0

    def state_derivative(self, voltage_v: float, state: DeviceState) -> float:
        motion = self._motion(voltage_v)
        if motion == 0.0:
            return 0.0
        x = self.clamp_state(state.x)
        return motion * self._window(x, direction_positive=motion > 0.0)

    def thermal_resistance_k_per_w(self) -> float:
        return self.parameters.rth_eff_k_per_w

    def hrs_state(self, ambient_temperature_k: float = 300.0) -> DeviceState:
        # The Yakopcic conduction term vanishes at x = 0, which would make the
        # HRS an ideal open circuit; use a small residual state instead so the
        # crossbar solver always sees a finite conductance.
        return DeviceState(x=0.01, filament_temperature_k=ambient_temperature_k)

    def _make_batched(self) -> BatchedDeviceModel:
        return BatchedYakopcic(self)


class BatchedYakopcic(BatchedDeviceModel):
    """NumPy-vectorized Yakopcic kernel (closed-form, loop-free).

    Conductance falls back to the inherited finite-difference rule, matching
    the scalar model (which does not override the default either).
    """

    def __init__(self, model: YakopcicModel):
        self.parameters = model.parameters

    def current(self, voltage_v, x, temperature_k) -> np.ndarray:
        p = self.parameters
        voltage_v = np.asarray(voltage_v, dtype=np.float64)
        if np.any(np.abs(voltage_v) > 10.0):
            raise DeviceModelError("cell voltage outside the model validity range [-10, 10] V")
        x = np.clip(np.asarray(x, dtype=np.float64), 0.0, 1.0)
        amplitude = np.where(voltage_v >= 0.0, p.a1, p.a2)
        return amplitude * x * np.sinh(p.b * voltage_v)

    def state_derivative(self, voltage_v, x, temperature_k) -> np.ndarray:
        p = self.parameters
        voltage_v = np.asarray(voltage_v, dtype=np.float64)
        x = np.clip(np.asarray(x, dtype=np.float64), 0.0, 1.0)
        motion = np.where(
            voltage_v > p.v_p,
            p.a_p * (np.exp(voltage_v) - math.exp(p.v_p)),
            np.where(
                voltage_v < -p.v_n,
                -p.a_n * (np.exp(-voltage_v) - math.exp(p.v_n)),
                0.0,
            ),
        )
        span_p = 1.0 - p.x_p
        window_pos = np.where(
            x < p.x_p,
            1.0,
            np.exp(-(x - p.x_p) / span_p) if span_p > 0 else 0.0,
        )
        window_neg = np.where(
            x > p.x_n,
            1.0,
            np.exp((x - p.x_n) / p.x_n) if p.x_n > 0 else 0.0,
        )
        window = np.where(motion > 0.0, window_pos, window_neg)
        return np.where(motion == 0.0, 0.0, motion * window)

"""Memristive device compact models.

The flagship model is :class:`JartVcmModel`, a JART-VCM-v1b style filamentary
VCM cell with temperature-dependent switching kinetics — the mechanism the
NeuroHammer attack exploits.  The linear-ion-drift and Yakopcic models serve
as temperature-agnostic baselines for the ablation studies.
"""

from .base import (
    BatchedDeviceModel,
    DeviceState,
    DeviceStateArrays,
    DeviceStateMapView,
    DeviceStateView,
    MemristorModel,
    ScalarBatchedModel,
    bit_from_state,
)
from .jart_vcm import JartVcmModel, JartVcmParameters
from .kinetics import (
    PulseCountResult,
    StateTrajectoryPoint,
    SwitchingResult,
    pulses_to_switch,
    time_to_switch,
)
from .linear_ion_drift import LinearIonDriftModel, LinearIonDriftParameters
from .thermal import ThermalOperatingPoint, equilibrium_temperature, solve_operating_point
from .windows import (
    WINDOW_FUNCTIONS,
    biolek_window,
    get_window,
    joglekar_window,
    prodromakis_window,
    rectangular_window,
)
from .yakopcic import YakopcicModel, YakopcicParameters

__all__ = [
    "DeviceState",
    "DeviceStateArrays",
    "DeviceStateMapView",
    "DeviceStateView",
    "BatchedDeviceModel",
    "ScalarBatchedModel",
    "MemristorModel",
    "bit_from_state",
    "JartVcmModel",
    "JartVcmParameters",
    "LinearIonDriftModel",
    "LinearIonDriftParameters",
    "YakopcicModel",
    "YakopcicParameters",
    "ThermalOperatingPoint",
    "equilibrium_temperature",
    "solve_operating_point",
    "SwitchingResult",
    "PulseCountResult",
    "StateTrajectoryPoint",
    "time_to_switch",
    "pulses_to_switch",
    "WINDOW_FUNCTIONS",
    "get_window",
    "rectangular_window",
    "joglekar_window",
    "biolek_window",
    "prodromakis_window",
]

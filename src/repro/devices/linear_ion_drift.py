"""HP-style linear ion drift memristor model (baseline device).

This is the classic Strukov/Williams model: the device is a series
combination of a doped (low resistance) and an undoped (high resistance)
region, and the boundary between them drifts proportionally to the current.
It has *no* temperature dependence, which is exactly why it serves as the
ablation baseline (ABL2): driving the NeuroHammer workload with this model
shows that without thermally accelerated kinetics the attack does not work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K
from ..errors import DeviceModelError
from .base import BatchedDeviceModel, DeviceState, MemristorModel
from .windows import WindowFunction, get_batched_window, get_window


@dataclass
class LinearIonDriftParameters:
    """Parameters of the linear ion drift model."""

    #: Resistance when fully doped (x = 1) [Ohm].
    r_on_ohm: float = 2_000.0
    #: Resistance when fully undoped (x = 0) [Ohm].
    r_off_ohm: float = 2_000_000.0
    #: Ion mobility [m^2 / (V s)].
    mobility_m2_per_vs: float = 1e-14
    #: Device (oxide) thickness [m].
    thickness_m: float = 10e-9
    #: Name of the window function shaping the boundary dynamics.
    window: str = "biolek"
    #: Window order parameter.
    window_order: int = 2
    #: Effective thermal resistance [K/W]; kept for interface parity with the
    #: VCM model so the thermal bookkeeping still works (the *kinetics* stay
    #: temperature independent, which is the point of the baseline).
    rth_eff_k_per_w: float = 2.0e6

    def __post_init__(self) -> None:
        if self.r_on_ohm <= 0 or self.r_off_ohm <= 0:
            raise DeviceModelError("resistances must be positive")
        if self.r_on_ohm >= self.r_off_ohm:
            raise DeviceModelError("r_on must be smaller than r_off")
        if self.mobility_m2_per_vs <= 0 or self.thickness_m <= 0:
            raise DeviceModelError("mobility and thickness must be positive")
        if self.window_order < 1:
            raise DeviceModelError("window_order must be >= 1")


class LinearIonDriftModel(MemristorModel):
    """Linear ion drift memristor with a configurable window function."""

    name = "linear_ion_drift"

    def __init__(self, parameters: LinearIonDriftParameters = None):
        self.parameters = parameters if parameters is not None else LinearIonDriftParameters()
        self._window: WindowFunction = get_window(self.parameters.window)

    # -- electrical -------------------------------------------------------

    def memristance(self, state: DeviceState) -> float:
        """Instantaneous memristance R(x) [Ohm]."""
        p = self.parameters
        x = self.clamp_state(state.x)
        return p.r_on_ohm * x + p.r_off_ohm * (1.0 - x)

    def current(self, voltage_v: float, state: DeviceState) -> float:
        self.check_voltage(voltage_v)
        return voltage_v / self.memristance(state)

    def conductance(self, voltage_v: float, state: DeviceState) -> float:
        return 1.0 / self.memristance(state)

    # -- dynamics ---------------------------------------------------------

    def state_derivative(self, voltage_v: float, state: DeviceState) -> float:
        p = self.parameters
        current_a = self.current(voltage_v, state)
        window_value = self._window(self.clamp_state(state.x), current_a)
        if isinstance(window_value, float) and window_value < 0.0:
            window_value = 0.0
        drift = p.mobility_m2_per_vs * p.r_on_ohm / (p.thickness_m ** 2)
        return drift * current_a * window_value

    def thermal_resistance_k_per_w(self) -> float:
        return self.parameters.rth_eff_k_per_w

    # -- convenience ------------------------------------------------------

    def hrs_state(self, ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K) -> DeviceState:
        return DeviceState(x=0.0, filament_temperature_k=ambient_temperature_k)

    def lrs_state(self, ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K) -> DeviceState:
        return DeviceState(x=1.0, filament_temperature_k=ambient_temperature_k)

    def _make_batched(self) -> BatchedDeviceModel:
        return BatchedLinearIonDrift(self)


class BatchedLinearIonDrift(BatchedDeviceModel):
    """NumPy-vectorized linear ion drift kernel (closed-form, loop-free)."""

    def __init__(self, model: LinearIonDriftModel):
        self.parameters = model.parameters
        self._window = get_batched_window(model.parameters.window)

    def _memristance(self, x: np.ndarray) -> np.ndarray:
        p = self.parameters
        x = np.clip(x, 0.0, 1.0)
        return p.r_on_ohm * x + p.r_off_ohm * (1.0 - x)

    def current(self, voltage_v, x, temperature_k) -> np.ndarray:
        voltage_v = np.asarray(voltage_v, dtype=np.float64)
        if np.any(np.abs(voltage_v) > 10.0):
            raise DeviceModelError("cell voltage outside the model validity range [-10, 10] V")
        return voltage_v / self._memristance(np.asarray(x, dtype=np.float64))

    def conductance(self, voltage_v, x, temperature_k) -> np.ndarray:
        out = 1.0 / self._memristance(np.asarray(x, dtype=np.float64))
        return np.broadcast_to(out, np.broadcast_shapes(out.shape, np.shape(voltage_v))).copy()

    def state_derivative(self, voltage_v, x, temperature_k) -> np.ndarray:
        p = self.parameters
        current_a = self.current(voltage_v, x, temperature_k)
        window = np.maximum(self._window(np.clip(np.asarray(x, dtype=np.float64), 0.0, 1.0), current_a), 0.0)
        drift = p.mobility_m2_per_vs * p.r_on_ohm / (p.thickness_m ** 2)
        return drift * current_a * window

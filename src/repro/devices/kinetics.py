"""Switching-kinetics solvers built on top of the device compact models.

These routines answer the questions the attack analysis needs:

* How long does a cell need under a constant bias (and a constant crosstalk
  temperature contribution) until its state crosses a threshold?
* How many rectangular pulses of a given length does that correspond to?

They integrate the state ODE ``dx/dt`` of any :class:`MemristorModel` with an
adaptive step size and a self-consistent filament temperature, i.e. they
capture the positive feedback between state, current, self-heating and
switching rate that makes VCM SET transitions abrupt.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..constants import DEFAULT_AMBIENT_TEMPERATURE_K
from ..errors import DeviceModelError
from .base import DeviceState, MemristorModel
from .thermal import solve_operating_point


@dataclass
class SwitchingResult:
    """Outcome of a constant-bias switching-time integration."""

    #: True if the target state was reached within the time budget.
    switched: bool
    #: Time spent under bias until the target was reached (or the budget) [s].
    time_s: float
    #: Final normalised state.
    final_x: float
    #: Final filament temperature [K].
    final_temperature_k: float
    #: Number of integration steps taken (diagnostic).
    steps: int


@dataclass
class StateTrajectoryPoint:
    """One sample of a recorded state trajectory."""

    time_s: float
    x: float
    temperature_k: float
    rate_per_s: float


def _biased_temperature(
    model: MemristorModel,
    voltage_v: float,
    x: float,
    ambient_temperature_k: float,
    crosstalk_temperature_k: float,
) -> float:
    """Self-consistent filament temperature for the given bias and state."""
    point = solve_operating_point(
        model,
        voltage_v,
        x,
        ambient_temperature_k=ambient_temperature_k,
        crosstalk_temperature_k=crosstalk_temperature_k,
    )
    return point.filament_temperature_k


def time_to_switch(
    model: MemristorModel,
    voltage_v: float,
    x_start: float,
    x_target: float,
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    crosstalk_temperature_k: float = 0.0,
    max_time_s: float = 10.0,
    max_dx_per_step: float = 0.02,
    record: Optional[List[StateTrajectoryPoint]] = None,
) -> SwitchingResult:
    """Integrate the state ODE under constant bias until ``x_target`` is hit.

    Args:
        model: Device compact model.
        voltage_v: Constant cell voltage applied while the bias is active.
        x_start: Initial normalised state.
        x_target: Threshold state; the integration stops when crossed.
        ambient_temperature_k: Ambient temperature (paper's T0).
        crosstalk_temperature_k: Additional temperature delivered by the
            crosstalk hub while the bias is active.
        max_time_s: Upper bound on the biased time; beyond it the result is
            reported as not switched.
        max_dx_per_step: Adaptive step control — each step is sized so the
            state moves by at most this amount.
        record: Optional list receiving the sampled trajectory.

    Returns:
        A :class:`SwitchingResult`.
    """
    if not 0.0 <= x_start <= 1.0 or not 0.0 <= x_target <= 1.0:
        raise DeviceModelError("states must lie in [0, 1]")
    if max_time_s <= 0:
        raise DeviceModelError("max_time_s must be positive")

    towards_set = x_target >= x_start
    x = x_start
    time_s = 0.0
    steps = 0
    # Re-solving the electro-thermal operating point every step would be
    # wasteful: the temperature only moves when the state does.  Refresh it
    # whenever the state has moved by more than a quarter step bound.
    temperature = _biased_temperature(
        model, voltage_v, x, ambient_temperature_k, crosstalk_temperature_k
    )
    x_at_last_thermal_solve = x

    while time_s < max_time_s:
        steps += 1
        if abs(x - x_at_last_thermal_solve) > 0.25 * max_dx_per_step:
            temperature = _biased_temperature(
                model, voltage_v, x, ambient_temperature_k, crosstalk_temperature_k
            )
            x_at_last_thermal_solve = x
        state = DeviceState(x=x, filament_temperature_k=temperature)
        rate = model.state_derivative(voltage_v, state)
        if record is not None:
            record.append(StateTrajectoryPoint(time_s, x, temperature, rate))
        moving_towards_target = (rate > 0 and towards_set) or (rate < 0 and not towards_set)
        if rate == 0.0 or not moving_towards_target:
            # The bias cannot move the state towards the target at all.
            return SwitchingResult(False, max_time_s, x, temperature, steps)
        remaining = abs(x_target - x)
        if remaining <= 0.0:
            break
        dt = min(max_dx_per_step, remaining) / abs(rate)
        if time_s + dt >= max_time_s:
            dt = max_time_s - time_s
            x = x + math.copysign(min(abs(rate) * dt, remaining), x_target - x)
            time_s = max_time_s
            break
        x = x + math.copysign(min(abs(rate) * dt, remaining), x_target - x)
        time_s += dt
        if (towards_set and x >= x_target) or (not towards_set and x <= x_target):
            break

    switched = (towards_set and x >= x_target) or (not towards_set and x <= x_target)
    return SwitchingResult(switched, time_s, x, temperature, steps)


@dataclass
class PulseCountResult:
    """Outcome of a pulsed switching estimation."""

    #: True if the flip happened within the pulse budget.
    flipped: bool
    #: Number of pulses needed (equals the budget when not flipped).
    pulses: int
    #: Cumulative biased (active) time [s].
    stress_time_s: float
    #: Total campaign time including idle parts of each period [s].
    wall_clock_s: float
    #: Final normalised state of the victim.
    final_x: float
    final_temperature_k: float


def pulses_to_switch(
    model: MemristorModel,
    voltage_v: float,
    pulse_length_s: float,
    x_start: float,
    x_target: float,
    duty_cycle: float = 0.5,
    ambient_temperature_k: float = DEFAULT_AMBIENT_TEMPERATURE_K,
    crosstalk_temperature_k: float = 0.0,
    max_pulses: int = 10_000_000,
) -> PulseCountResult:
    """Count rectangular pulses required to move the state across a threshold.

    The thermal model is quasi-static (the paper extracts *static* crosstalk
    coefficients), so the filament temperature follows the bias instantly and
    relaxes instantly between pulses; state motion therefore only accumulates
    during the active part of each period and the pulse count equals the
    biased switching time divided by the pulse length, with the state
    trajectory integrated through the same adaptive ODE solver as
    :func:`time_to_switch`.
    """
    if pulse_length_s <= 0:
        raise DeviceModelError("pulse_length_s must be positive")
    if max_pulses < 1:
        raise DeviceModelError("max_pulses must be at least 1")
    if not 0.0 < duty_cycle <= 1.0:
        raise DeviceModelError("duty cycle must be in (0, 1]")

    budget_s = pulse_length_s * max_pulses
    result = time_to_switch(
        model,
        voltage_v,
        x_start,
        x_target,
        ambient_temperature_k=ambient_temperature_k,
        crosstalk_temperature_k=crosstalk_temperature_k,
        max_time_s=budget_s,
    )
    if result.switched:
        pulses = max(1, int(math.ceil(result.time_s / pulse_length_s)))
        flipped = True
    else:
        pulses = max_pulses
        flipped = False
    period_s = pulse_length_s / duty_cycle
    return PulseCountResult(
        flipped=flipped,
        pulses=pulses,
        stress_time_s=min(result.time_s, pulses * pulse_length_s),
        wall_clock_s=pulses * period_s,
        final_x=result.final_x,
        final_temperature_k=result.final_temperature_k,
    )

"""Window functions for ion-drift memristor models.

Window functions confine the normalised state variable of drift-based
memristor models to [0, 1] and shape the nonlinearity of the state update
near the boundaries.  They are used by the linear-ion-drift baseline model
(:mod:`repro.devices.linear_ion_drift`), which serves as the comparison
device model for the ablation benchmark ABL2 in DESIGN.md.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..errors import DeviceModelError

WindowFunction = Callable[[float, float], float]

#: Array-in/array-out window: (state array, current array) -> window array.
BatchedWindowFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]


def rectangular_window(x: float, current_a: float) -> float:
    """Hard clipping window: 1 inside (0, 1), 0 at the boundaries."""
    if x <= 0.0 and current_a < 0.0:
        return 0.0
    if x >= 1.0 and current_a > 0.0:
        return 0.0
    return 1.0


def joglekar_window(x: float, current_a: float, p: int = 2) -> float:
    """Joglekar window ``1 - (2x - 1)^(2p)``.

    Symmetric in x; does not resolve the boundary-lock issue but is the most
    widely used literature baseline.
    """
    if p < 1:
        raise DeviceModelError("Joglekar window order p must be >= 1")
    return 1.0 - (2.0 * x - 1.0) ** (2 * p)


def biolek_window(x: float, current_a: float, p: int = 2) -> float:
    """Biolek window ``1 - (x - step(-i))^(2p)``.

    Depends on the current direction, which removes the boundary lock of the
    Joglekar window: a device parked at x = 1 can still move back down when
    the current reverses.
    """
    if p < 1:
        raise DeviceModelError("Biolek window order p must be >= 1")
    step = 1.0 if current_a < 0.0 else 0.0
    return 1.0 - (x - step) ** (2 * p)


def prodromakis_window(x: float, current_a: float, p: int = 2, j: float = 1.0) -> float:
    """Prodromakis window ``j (1 - ((x - 0.5)^2 + 0.75)^p)``."""
    if p < 1:
        raise DeviceModelError("Prodromakis window order p must be >= 1")
    return j * (1.0 - ((x - 0.5) ** 2 + 0.75) ** p)


#: Registry used by configuration files to select a window by name.
WINDOW_FUNCTIONS: Dict[str, WindowFunction] = {
    "rectangular": rectangular_window,
    "joglekar": joglekar_window,
    "biolek": biolek_window,
    "prodromakis": prodromakis_window,
}


def get_window(name: str) -> WindowFunction:
    """Look up a window function by name."""
    try:
        return WINDOW_FUNCTIONS[name]
    except KeyError as exc:
        raise DeviceModelError(
            f"unknown window function {name!r}; available: {sorted(WINDOW_FUNCTIONS)}"
        ) from exc


# ----------------------------------------------------------------------
# vectorized counterparts (element-for-element identical to the scalars)
# ----------------------------------------------------------------------


def rectangular_window_batch(x: np.ndarray, current_a: np.ndarray) -> np.ndarray:
    blocked = ((x <= 0.0) & (current_a < 0.0)) | ((x >= 1.0) & (current_a > 0.0))
    return np.where(blocked, 0.0, 1.0)


def biolek_window_batch(x: np.ndarray, current_a: np.ndarray, p: int = 2) -> np.ndarray:
    if p < 1:
        raise DeviceModelError("Biolek window order p must be >= 1")
    step = np.where(current_a < 0.0, 1.0, 0.0)
    return 1.0 - (x - step) ** (2 * p)


#: Registry of the vectorized windows, keyed like :data:`WINDOW_FUNCTIONS`.
#: The Joglekar and Prodromakis scalars are pure broadcast arithmetic and
#: serve both registries unchanged; only the branching windows need
#: dedicated branch-free variants.
BATCHED_WINDOW_FUNCTIONS: Dict[str, BatchedWindowFunction] = {
    "rectangular": rectangular_window_batch,
    "joglekar": joglekar_window,
    "biolek": biolek_window_batch,
    "prodromakis": prodromakis_window,
}


def get_batched_window(name: str) -> BatchedWindowFunction:
    """Look up the vectorized variant of a window function by name."""
    try:
        return BATCHED_WINDOW_FUNCTIONS[name]
    except KeyError as exc:
        raise DeviceModelError(
            f"unknown window function {name!r}; available: {sorted(BATCHED_WINDOW_FUNCTIONS)}"
        ) from exc

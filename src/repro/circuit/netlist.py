"""Netlist representation of a passive memristive crossbar.

The netlist models what the paper instantiates in Cadence Virtuoso: every
word line and bit line is a resistive wire chain with one node per crosspoint
plus a driver attachment node, and a memristive device connects the word-line
node to the bit-line node at every crosspoint.  Drivers are attached through
their output resistance, so line loading and IR drop are captured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import CrossbarGeometry, WireParameters
from ..errors import GeometryError

Cell = Tuple[int, int]

GROUND_NODE = "gnd"


@dataclass(frozen=True)
class Resistor:
    """A two-terminal linear resistor."""

    name: str
    node_a: str
    node_b: str
    resistance_ohm: float

    def __post_init__(self) -> None:
        if self.resistance_ohm <= 0:
            raise GeometryError(f"resistor {self.name} must have positive resistance")

    @property
    def conductance_s(self) -> float:
        """Conductance of the resistor [S]."""
        return 1.0 / self.resistance_ohm


@dataclass(frozen=True)
class DriverPort:
    """Attachment point of a line driver (Thevenin source)."""

    name: str
    node: str
    #: "row" or "column".
    line_type: str
    line_index: int
    series_resistance_ohm: float


@dataclass(frozen=True)
class CrosspointDevice:
    """A memristive device connecting a word-line node to a bit-line node."""

    cell: Cell
    wordline_node: str
    bitline_node: str


@dataclass
class CrossbarNetlist:
    """Fully expanded crossbar netlist."""

    geometry: CrossbarGeometry
    wires: WireParameters
    nodes: List[str] = field(default_factory=list)
    resistors: List[Resistor] = field(default_factory=list)
    devices: List[CrosspointDevice] = field(default_factory=list)
    drivers: List[DriverPort] = field(default_factory=list)

    # -- node naming -------------------------------------------------------

    @staticmethod
    def wordline_node(row: int, column: int) -> str:
        """Word-line node of a crosspoint."""
        return f"wl_{row}_{column}"

    @staticmethod
    def bitline_node(row: int, column: int) -> str:
        """Bit-line node of a crosspoint."""
        return f"bl_{row}_{column}"

    @staticmethod
    def row_driver_node(row: int) -> str:
        """Node at which the word-line driver attaches."""
        return f"row_drv_{row}"

    @staticmethod
    def column_driver_node(column: int) -> str:
        """Node at which the bit-line driver attaches."""
        return f"col_drv_{column}"

    # -- queries ------------------------------------------------------------

    def device_at(self, cell: Cell) -> CrosspointDevice:
        """Return the crosspoint device of a cell."""
        self.geometry.validate_cell(*cell)
        return self.devices[cell[0] * self.geometry.columns + cell[1]]

    def driver_for(self, line_type: str, index: int) -> DriverPort:
        """Return the driver port of a word line ("row") or bit line ("column")."""
        for driver in self.drivers:
            if driver.line_type == line_type and driver.line_index == index:
                return driver
        raise GeometryError(f"no driver for {line_type} {index}")

    @property
    def node_count(self) -> int:
        """Number of circuit nodes (excluding ground)."""
        return len(self.nodes)

    # -- vectorized index arrays --------------------------------------------
    #
    # Everything the array-native solver needs is precomputed here exactly
    # once per netlist: node-name -> index, and flat index arrays describing
    # where every device and resistor stamps into the nodal matrix.  The
    # caches assume the netlist is not mutated after construction (true for
    # every netlist produced by :func:`build_crossbar_netlist`).

    @cached_property
    def node_index(self) -> Dict[str, int]:
        """Node name -> row index in the nodal system (ground excluded)."""
        return {name: i for i, name in enumerate(self.nodes)}

    @cached_property
    def device_index_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-device ``(wordline_idx, bitline_idx, cell_row, cell_col)`` arrays."""
        index = self.node_index
        count = len(self.devices)
        wordline = np.fromiter(
            (index[d.wordline_node] for d in self.devices), dtype=np.int64, count=count
        )
        bitline = np.fromiter(
            (index[d.bitline_node] for d in self.devices), dtype=np.int64, count=count
        )
        rows = np.fromiter((d.cell[0] for d in self.devices), dtype=np.int64, count=count)
        cols = np.fromiter((d.cell[1] for d in self.devices), dtype=np.int64, count=count)
        return wordline, bitline, rows, cols

    @cached_property
    def resistor_index_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-resistor ``(node_a_idx, node_b_idx, conductance)``; -1 marks ground."""
        index = self.node_index
        count = len(self.resistors)
        node_a = np.fromiter(
            (index.get(r.node_a, -1) for r in self.resistors), dtype=np.int64, count=count
        )
        node_b = np.fromiter(
            (index.get(r.node_b, -1) for r in self.resistors), dtype=np.int64, count=count
        )
        conductance = np.fromiter(
            (r.conductance_s for r in self.resistors), dtype=np.float64, count=count
        )
        return node_a, node_b, conductance


def build_crossbar_netlist(
    geometry: CrossbarGeometry = None, wires: WireParameters = None
) -> CrossbarNetlist:
    """Expand a crossbar geometry into its netlist.

    Word lines run horizontally: the driver of row ``r`` attaches before
    column 0 and segments chain the crosspoints left to right.  Bit lines run
    vertically: the driver of column ``c`` attaches before row 0 and segments
    chain the crosspoints top to bottom.
    """
    geometry = geometry if geometry is not None else CrossbarGeometry()
    wires = wires if wires is not None else WireParameters()
    netlist = CrossbarNetlist(geometry=geometry, wires=wires)

    segment_r = max(wires.segment_resistance_ohm, 1e-6)
    driver_r = max(wires.driver_resistance_ohm, 1e-3)

    # Nodes.
    for row in range(geometry.rows):
        netlist.nodes.append(netlist.row_driver_node(row))
        for column in range(geometry.columns):
            netlist.nodes.append(netlist.wordline_node(row, column))
    for column in range(geometry.columns):
        netlist.nodes.append(netlist.column_driver_node(column))
        for row in range(geometry.rows):
            netlist.nodes.append(netlist.bitline_node(row, column))

    # Word-line wire chains and drivers.
    for row in range(geometry.rows):
        previous = netlist.row_driver_node(row)
        netlist.drivers.append(
            DriverPort(
                name=f"row_driver_{row}",
                node=previous,
                line_type="row",
                line_index=row,
                series_resistance_ohm=driver_r,
            )
        )
        for column in range(geometry.columns):
            node = netlist.wordline_node(row, column)
            netlist.resistors.append(
                Resistor(f"rw_{row}_{column}", previous, node, segment_r)
            )
            previous = node

    # Bit-line wire chains and drivers.
    for column in range(geometry.columns):
        previous = netlist.column_driver_node(column)
        netlist.drivers.append(
            DriverPort(
                name=f"column_driver_{column}",
                node=previous,
                line_type="column",
                line_index=column,
                series_resistance_ohm=driver_r,
            )
        )
        for row in range(geometry.rows):
            node = netlist.bitline_node(row, column)
            netlist.resistors.append(
                Resistor(f"rb_{row}_{column}", previous, node, segment_r)
            )
            previous = node

    # Crosspoint devices in row-major order.
    for row in range(geometry.rows):
        for column in range(geometry.columns):
            netlist.devices.append(
                CrosspointDevice(
                    cell=(row, column),
                    wordline_node=netlist.wordline_node(row, column),
                    bitline_node=netlist.bitline_node(row, column),
                )
            )
    return netlist

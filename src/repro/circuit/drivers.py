"""Line drivers and write-bias schemes for passive crossbars.

The paper biases the crossbar with the classic V/2 scheme: the selected word
line is driven to the full write voltage, the selected bit line to ground and
every unselected line to half the write voltage, so only the selected cell
sees the full voltage while every half-selected cell (sharing a line with the
selected cell) sees V/2 — the stress the NeuroHammer attack exploits.  The
V/3 scheme is provided as well because it is the standard mitigation knob
(ablation ABL3): half-selected cells then only see V/3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..config import CrossbarGeometry
from ..errors import ConfigurationError, GeometryError

Cell = Tuple[int, int]

#: Selection categories a cell can fall into under a write bias.
FULL_SELECTED = "full"
HALF_SELECTED = "half"
UNSELECTED = "unselected"


@dataclass
class BiasPattern:
    """Driver voltages applied to every word and bit line.

    ``None`` means the line floats (no driver attached).
    """

    row_voltages_v: Dict[int, Optional[float]] = field(default_factory=dict)
    column_voltages_v: Dict[int, Optional[float]] = field(default_factory=dict)
    #: Human-readable description used in traces and reports.
    label: str = "bias"

    def row_voltage(self, row: int) -> Optional[float]:
        """Driver voltage of a word line, or None if floating."""
        return self.row_voltages_v.get(row)

    def column_voltage(self, column: int) -> Optional[float]:
        """Driver voltage of a bit line, or None if floating."""
        return self.column_voltages_v.get(column)

    def nominal_cell_voltage(self, cell: Cell) -> Optional[float]:
        """Ideal (wire-drop-free) voltage across a cell, or None if undefined."""
        row_v = self.row_voltage(cell[0])
        column_v = self.column_voltage(cell[1])
        if row_v is None or column_v is None:
            return None
        return row_v - column_v

    def scaled(self, factor: float) -> "BiasPattern":
        """Return a copy with every driven voltage scaled by ``factor``."""
        return BiasPattern(
            row_voltages_v={r: (None if v is None else v * factor) for r, v in self.row_voltages_v.items()},
            column_voltages_v={c: (None if v is None else v * factor) for c, v in self.column_voltages_v.items()},
            label=self.label,
        )


def idle_bias(geometry: CrossbarGeometry, label: str = "idle") -> BiasPattern:
    """All lines grounded — the resting state of the array."""
    return BiasPattern(
        row_voltages_v={row: 0.0 for row in range(geometry.rows)},
        column_voltages_v={column: 0.0 for column in range(geometry.columns)},
        label=label,
    )


def write_bias(
    geometry: CrossbarGeometry,
    targets: Iterable[Cell],
    amplitude_v: float,
    scheme: str = "v_half",
    label: Optional[str] = None,
) -> BiasPattern:
    """Write-bias pattern for one or more simultaneously selected cells.

    Args:
        geometry: Crossbar geometry.
        targets: Cells receiving the full write voltage.
        amplitude_v: Write amplitude (positive for SET polarity).
        scheme: ``"v_half"`` (paper default) or ``"v_third"``.
        label: Optional label stored in the pattern.
    """
    target_list = [tuple(cell) for cell in targets]
    if not target_list:
        raise ConfigurationError("write bias needs at least one target cell")
    for cell in target_list:
        geometry.validate_cell(*cell)
    if scheme == "v_half":
        unselected_row_v = amplitude_v / 2.0
        unselected_column_v = amplitude_v / 2.0
    elif scheme == "v_third":
        unselected_row_v = amplitude_v / 3.0
        unselected_column_v = 2.0 * amplitude_v / 3.0
    else:
        raise ConfigurationError(f"unknown bias scheme {scheme!r}")

    selected_rows = {cell[0] for cell in target_list}
    selected_columns = {cell[1] for cell in target_list}
    rows = {
        row: (amplitude_v if row in selected_rows else unselected_row_v)
        for row in range(geometry.rows)
    }
    columns = {
        column: (0.0 if column in selected_columns else unselected_column_v)
        for column in range(geometry.columns)
    }
    return BiasPattern(rows, columns, label=label or f"write_{scheme}")


def read_bias(
    geometry: CrossbarGeometry,
    target: Cell,
    read_voltage_v: float = 0.2,
    scheme: str = "v_half",
) -> BiasPattern:
    """Read-bias pattern: a small sensing voltage on the selected cell."""
    return write_bias(geometry, [target], read_voltage_v, scheme=scheme, label="read")


def classify_cells(
    geometry: CrossbarGeometry, targets: Iterable[Cell]
) -> Dict[Cell, str]:
    """Classify every cell as fully selected, half selected or unselected.

    Half-selected cells share exactly one line (row or column) with a target;
    they are the candidate victims of the NeuroHammer attack.  Note that with
    several simultaneous targets, cells at the intersection of one target's
    row and another target's column become fully selected as well — this is
    why the attack engine hammers multi-aggressor patterns in an interleaved
    fashion by default.
    """
    target_set: Set[Cell] = {tuple(cell) for cell in targets}
    for cell in target_set:
        geometry.validate_cell(*cell)
    selected_rows = {cell[0] for cell in target_set}
    selected_columns = {cell[1] for cell in target_set}
    classification: Dict[Cell, str] = {}
    for cell in geometry.iter_cells():
        in_row = cell[0] in selected_rows
        in_column = cell[1] in selected_columns
        if in_row and in_column:
            classification[cell] = FULL_SELECTED
        elif in_row or in_column:
            classification[cell] = HALF_SELECTED
        else:
            classification[cell] = UNSELECTED
    return classification


def half_selected_cells(geometry: CrossbarGeometry, targets: Iterable[Cell]) -> List[Cell]:
    """Cells exposed to the half-select stress for the given targets."""
    classification = classify_cells(geometry, targets)
    return [cell for cell, kind in classification.items() if kind == HALF_SELECTED]


def half_select_voltage(amplitude_v: float, scheme: str = "v_half") -> float:
    """Voltage across a half-selected cell for the given scheme."""
    if scheme == "v_half":
        return amplitude_v / 2.0
    if scheme == "v_third":
        return amplitude_v / 3.0
    raise ConfigurationError(f"unknown bias scheme {scheme!r}")
